//! Join-based feature augmentation for machine learning (ARDA; Chepurko
//! et al., VLDB 2020; tutorial §2.7).
//!
//! Given a base table with a join key and a prediction target, discover
//! joinable lake tables, join their numeric columns in as candidate
//! features, select the useful ones, and measure the downstream model's
//! improvement. Selection follows ARDA's random-injection idea: inject
//! synthetic noise features and keep only real features that outrank the
//! noise.

use crate::ml::{feature_target_correlation, r_squared, LinearModel};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use td_table::{Column, ColumnRef, DataLake, Table, TableId};

/// Augmentation parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Minimum containment of the base key in a candidate key column.
    pub min_key_containment: f64,
    /// Ridge regularization.
    pub lambda: f64,
    /// Noise features injected for selection.
    pub noise_features: usize,
    /// Train fraction of the base rows.
    pub train_fraction: f64,
    /// Seed for the split and noise.
    pub seed: u64,
}

impl Default for AugmentConfig {
    fn default() -> Self {
        AugmentConfig {
            min_key_containment: 0.5,
            lambda: 1e-3,
            noise_features: 5,
            train_fraction: 0.7,
            seed: 21,
        }
    }
}

/// One discovered candidate feature: a numeric lake column reachable
/// through a key join.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateFeature {
    /// The numeric column.
    pub column: ColumnRef,
    /// Key column it joins through.
    pub key_column: ColumnRef,
    /// Containment of the base key in the candidate key.
    pub key_containment: f64,
    /// |correlation| with the target on the training split.
    pub relevance: f64,
    /// Whether selection kept it.
    pub selected: bool,
}

/// Outcome of an augmentation run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AugmentOutcome {
    /// Test R² with base features only.
    pub base_r2: f64,
    /// Test R² with base + all joined features (no selection).
    pub join_all_r2: f64,
    /// Test R² with base + selected features.
    pub selected_r2: f64,
    /// Every discovered candidate with its selection verdict.
    pub candidates: Vec<CandidateFeature>,
}

/// Map from join-key token to the (first) row holding it.
fn key_index(key: &Column) -> HashMap<String, usize> {
    let mut m = HashMap::new();
    for (i, v) in key.values.iter().enumerate() {
        if let Some(t) = v.join_token() {
            m.entry(t).or_insert(i);
        }
    }
    m
}

/// Mean of the non-None entries (0 if none).
fn mean_of(values: &[Option<f64>]) -> f64 {
    let (mut s, mut n) = (0.0, 0usize);
    for v in values.iter().flatten() {
        s += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        s / n as f64
    }
}

/// Run ARDA-style augmentation for a regression task.
///
/// `base` must contain the join key at `key_col` and a numeric target at
/// `target_col`; its other numeric columns are the base features.
///
/// # Panics
/// Panics if the target column has non-numeric rows everywhere or the
/// base table is too small to split.
#[must_use]
pub fn augment_regression(
    lake: &DataLake,
    base: &Table,
    key_col: usize,
    target_col: usize,
    cfg: &AugmentConfig,
) -> AugmentOutcome {
    let n = base.num_rows();
    assert!(n >= 10, "base table too small");
    let key_tokens: Vec<Option<String>> = base.columns[key_col]
        .values
        .iter()
        .map(td_table::Value::join_token)
        .collect();
    let base_key_set: std::collections::HashSet<&String> = key_tokens.iter().flatten().collect();
    let ys: Vec<f64> = base.columns[target_col]
        .values
        .iter()
        .map(|v| v.as_f64().unwrap_or(0.0))
        .collect();

    // Base features: numeric columns other than key/target.
    let mut features: Vec<(Option<ColumnRef>, Vec<Option<f64>>)> = Vec::new();
    for (ci, col) in base.columns.iter().enumerate() {
        if ci == key_col || ci == target_col || !col.is_numeric() {
            continue;
        }
        features.push((
            None,
            col.values.iter().map(td_table::Value::as_f64).collect(),
        ));
    }
    let num_base_features = features.len();

    // Discover joinable numeric features in the lake.
    let mut discovered: Vec<(ColumnRef, ColumnRef, f64, Vec<Option<f64>>)> = Vec::new();
    for (tid, table) in lake.iter() {
        for (ki, kcol) in table.columns.iter().enumerate() {
            if kcol.is_numeric() {
                continue;
            }
            let ktokens = kcol.token_set();
            if ktokens.is_empty() || base_key_set.is_empty() {
                continue;
            }
            let cont = base_key_set
                .iter()
                .filter(|t| ktokens.contains(t.as_str()))
                .count() as f64
                / base_key_set.len() as f64;
            if cont < cfg.min_key_containment {
                continue;
            }
            let kidx = key_index(kcol);
            for (ni, ncol) in table.columns.iter().enumerate() {
                if ni == ki || !ncol.is_numeric() {
                    continue;
                }
                let joined: Vec<Option<f64>> = key_tokens
                    .iter()
                    .map(|kt| {
                        kt.as_ref()
                            .and_then(|t| kidx.get(t))
                            .and_then(|&row| ncol.values[row].as_f64())
                    })
                    .collect();
                discovered.push((
                    ColumnRef::new(tid, ni),
                    ColumnRef::new(tid, ki),
                    cont,
                    joined,
                ));
            }
        }
    }

    // Train/test split.
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.gen_range(0..=i));
    }
    let ntrain = ((n as f64) * cfg.train_fraction).round() as usize;
    let (train_rows, test_rows) = order.split_at(ntrain.clamp(1, n - 1));

    // Materialize a design matrix from a set of feature vectors with mean
    // imputation (means from the training rows).
    let materialize = |feats: &[&Vec<Option<f64>>], rows: &[usize], means: &[f64]| {
        rows.iter()
            .map(|&r| {
                feats
                    .iter()
                    .enumerate()
                    .map(|(fi, f)| f[r].unwrap_or(means[fi]))
                    .collect::<Vec<f64>>()
            })
            .collect::<Vec<Vec<f64>>>()
    };
    let ys_of = |rows: &[usize]| rows.iter().map(|&r| ys[r]).collect::<Vec<f64>>();

    let evaluate = |feats: Vec<&Vec<Option<f64>>>| -> f64 {
        if feats.is_empty() {
            // Mean-only model.
            let mean = ys_of(train_rows).iter().sum::<f64>() / train_rows.len() as f64;
            let m = LinearModel {
                weights: vec![],
                bias: mean,
            };
            let xs: Vec<Vec<f64>> = test_rows.iter().map(|_| vec![]).collect();
            return r_squared(&m, &xs, &ys_of(test_rows));
        }
        let means: Vec<f64> = feats
            .iter()
            .map(|f| {
                let train_vals: Vec<Option<f64>> = train_rows.iter().map(|&r| f[r]).collect();
                mean_of(&train_vals)
            })
            .collect();
        let xtr = materialize(&feats, train_rows, &means);
        let xte = materialize(&feats, test_rows, &means);
        match LinearModel::fit_ridge(&xtr, &ys_of(train_rows), cfg.lambda) {
            Some(m) => r_squared(&m, &xte, &ys_of(test_rows)),
            None => 0.0,
        }
    };

    let base_feats: Vec<&Vec<Option<f64>>> = features.iter().map(|(_, f)| f).collect();
    let base_r2 = evaluate(base_feats.clone());

    let mut all_feats = base_feats.clone();
    for (_, _, _, f) in &discovered {
        all_feats.push(f);
    }
    let join_all_r2 = evaluate(all_feats);

    // Selection: rank joined features by |train correlation| against
    // injected noise features; keep those beating the strongest noise.
    let train_ys = ys_of(train_rows);
    let corr_of = |f: &Vec<Option<f64>>| {
        let m = mean_of(&train_rows.iter().map(|&r| f[r]).collect::<Vec<_>>());
        let xs: Vec<Vec<f64>> = train_rows
            .iter()
            .map(|&r| vec![f[r].unwrap_or(m)])
            .collect();
        feature_target_correlation(&xs, &train_ys, 0).abs()
    };
    let noise_bar = (0..cfg.noise_features)
        .map(|_| {
            let f: Vec<Option<f64>> = (0..n).map(|_| Some(rng.gen::<f64>())).collect();
            corr_of(&f)
        })
        .fold(0.0f64, f64::max);

    let mut candidates = Vec::with_capacity(discovered.len());
    let mut selected_feats = base_feats;
    for (col, key, cont, f) in &discovered {
        let rel = corr_of(f);
        let selected = rel > noise_bar;
        if selected {
            selected_feats.push(f);
        }
        candidates.push(CandidateFeature {
            column: *col,
            key_column: *key,
            key_containment: *cont,
            relevance: rel,
            selected,
        });
    }
    let selected_r2 = evaluate(selected_feats);

    let _ = num_base_features;
    let _: Vec<TableId> = Vec::new();
    AugmentOutcome {
        base_r2,
        join_all_r2,
        selected_r2,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::domains::DomainRegistry;
    use td_table::Value;

    /// Benchmark: base(city, x0, y) where y = 2*f1 + 0.5*x0 - f2 + noise,
    /// with f1 and f2 living in *separate lake tables* joined on city, plus
    /// noise tables with junk numerics.
    fn setup(n: usize) -> (DataLake, Table) {
        let r = DomainRegistry::standard();
        let city = r.id("city").unwrap();
        let det = |i: usize, salt: u64| {
            (td_sketch::hash::hash_u64(i as u64, salt) % 1000) as f64 / 500.0 - 1.0
        };
        let f1: Vec<f64> = (0..n).map(|i| det(i, 1)).collect();
        let f2: Vec<f64> = (0..n).map(|i| det(i, 2)).collect();
        let x0: Vec<f64> = (0..n).map(|i| det(i, 3)).collect();
        let y: Vec<f64> = (0..n)
            .map(|i| 2.0 * f1[i] + 0.5 * x0[i] - f2[i] + det(i, 4) * 0.05)
            .collect();
        let keys: Vec<Value> = (0..n as u64).map(|i| r.value(city, i)).collect();

        let base = Table::new(
            "base",
            vec![
                Column::new("city", keys.clone()),
                Column::new("x0", x0.iter().map(|&v| Value::Float(v)).collect()),
                Column::new("y", y.iter().map(|&v| Value::Float(v)).collect()),
            ],
        )
        .unwrap();

        let mut lake = DataLake::new();
        lake.add(
            Table::new(
                "features1",
                vec![
                    Column::new("city", keys.clone()),
                    Column::new("f1", f1.iter().map(|&v| Value::Float(v)).collect()),
                ],
            )
            .unwrap(),
        );
        lake.add(
            Table::new(
                "features2",
                vec![
                    Column::new("city", keys.clone()),
                    Column::new("f2", f2.iter().map(|&v| Value::Float(v)).collect()),
                    Column::new("junk", (0..n).map(|i| Value::Float(det(i, 99))).collect()),
                ],
            )
            .unwrap(),
        );
        // Pure-noise joinable table.
        lake.add(
            Table::new(
                "noise",
                vec![
                    Column::new("city", keys),
                    Column::new("n1", (0..n).map(|i| Value::Float(det(i, 7))).collect()),
                    Column::new("n2", (0..n).map(|i| Value::Float(det(i, 8))).collect()),
                ],
            )
            .unwrap(),
        );
        // Unjoinable table (different domain).
        let gene = r.id("gene").unwrap();
        lake.add(
            Table::new(
                "unjoinable",
                vec![
                    Column::new("gene", (0..50u64).map(|i| r.value(gene, i)).collect()),
                    Column::new("z", (0..50).map(|i| Value::Float(det(i, 9))).collect()),
                ],
            )
            .unwrap(),
        );
        (lake, base)
    }

    #[test]
    fn augmentation_improves_the_model() {
        let (lake, base) = setup(200);
        let out = augment_regression(&lake, &base, 0, 2, &AugmentConfig::default());
        assert!(
            out.selected_r2 > out.base_r2 + 0.2,
            "selected {} vs base {}",
            out.selected_r2,
            out.base_r2
        );
        assert!(out.selected_r2 > 0.9, "selected R² {}", out.selected_r2);
    }

    #[test]
    fn selection_keeps_signal_and_drops_noise() {
        let (lake, base) = setup(200);
        let out = augment_regression(&lake, &base, 0, 2, &AugmentConfig::default());
        let by_name = |name: &str| {
            out.candidates
                .iter()
                .filter(|c| {
                    lake.table(c.column.table).columns[c.column.column as usize].name == name
                })
                .collect::<Vec<_>>()
        };
        assert!(by_name("f1")[0].selected, "f1 should be selected");
        assert!(by_name("f2")[0].selected, "f2 should be selected");
        let noise_selected = ["n1", "n2", "junk"]
            .iter()
            .filter(|n| by_name(n)[0].selected)
            .count();
        assert!(
            noise_selected <= 1,
            "{noise_selected} noise features survived"
        );
    }

    #[test]
    fn selection_is_no_worse_than_join_all() {
        let (lake, base) = setup(200);
        let out = augment_regression(&lake, &base, 0, 2, &AugmentConfig::default());
        assert!(
            out.selected_r2 >= out.join_all_r2 - 0.05,
            "selected {} vs join-all {}",
            out.selected_r2,
            out.join_all_r2
        );
    }

    #[test]
    fn unjoinable_tables_contribute_no_candidates() {
        let (lake, base) = setup(100);
        let out = augment_regression(&lake, &base, 0, 2, &AugmentConfig::default());
        let unjoinable = lake.get_by_name("unjoinable").unwrap().0;
        assert!(out.candidates.iter().all(|c| c.column.table != unjoinable));
    }

    #[test]
    fn partial_join_coverage_still_works() {
        let (mut lake, base) = setup(150);
        // A feature table covering only half the keys.
        let r = DomainRegistry::standard();
        let city = r.id("city").unwrap();
        lake.add(
            Table::new(
                "half",
                vec![
                    Column::new("city", (0..75u64).map(|i| r.value(city, i)).collect()),
                    Column::new("h", (0..75).map(|i| Value::Float(i as f64)).collect()),
                ],
            )
            .unwrap(),
        );
        let out = augment_regression(&lake, &base, 0, 2, &AugmentConfig::default());
        assert!(out
            .candidates
            .iter()
            .any(|c| (c.key_containment - 0.5).abs() < 0.01));
    }
}
