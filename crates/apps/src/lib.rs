//! # td-apps — data-science applications of table discovery
//!
//! The tutorial's §2.7: discovery as a service to downstream tasks.
//! [`augment`] reproduces ARDA-style join-based feature augmentation with
//! noise-injection feature selection; [`trainset`] harvests labeled
//! training examples from the lake by embedding similarity to seed
//! classes; [`stitch`] unions web-table fragments and measures the
//! knowledge-base completion boost stitching provides; [`ml`] supplies the
//! dependency-free ridge/logistic models those experiments train.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod augment;
pub mod ml;
pub mod stitch;
pub mod trainset;

pub use augment::{augment_regression, AugmentConfig, AugmentOutcome, CandidateFeature};
pub use ml::{accuracy, r_squared, LinearModel};
pub use stitch::{kb_completion, stitch_group, stitchable_groups, CompletionReport};
pub use trainset::{discover_training_set, HarvestedExample, TrainsetConfig};
