//! Minimal learning machinery for the application experiments: ridge
//! regression (normal equations + Gaussian elimination) and logistic
//! regression (gradient descent), with train/test evaluation helpers.
//!
//! These are the "downstream models" whose improvement ARDA-style
//! augmentation is measured by — deliberately simple, dependency-free,
//! and deterministic.

use serde::{Deserialize, Serialize};

/// A fitted linear model `y = w · x + b`.
/// ```
/// use td_apps::LinearModel;
///
/// // y = 3x - 1
/// let xs: Vec<Vec<f64>> = (0..50).map(|i| vec![f64::from(i)]).collect();
/// let ys: Vec<f64> = (0..50).map(|i| 3.0 * f64::from(i) - 1.0).collect();
/// let model = LinearModel::fit_ridge(&xs, &ys, 1e-9).unwrap();
/// assert!((model.predict(&[100.0]) - 299.0).abs() < 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinearModel {
    /// Feature weights.
    pub weights: Vec<f64>,
    /// Intercept.
    pub bias: f64,
}

/// Solve `A x = b` by Gaussian elimination with partial pivoting.
/// Returns `None` if the system is (numerically) singular.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = a.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in (col + 1)..n {
            let f = a[row][col] / a[col][col];
            let (pivot_rows, rest) = a.split_at_mut(row);
            let pivot_row = &pivot_rows[col];
            for (x, p) in rest[0].iter_mut().zip(pivot_row).skip(col) {
                *x -= f * p;
            }
            b[row] -= f * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for col in (0..n).rev() {
        let mut s = b[col];
        for k in (col + 1)..n {
            s -= a[col][k] * x[k];
        }
        x[col] = s / a[col][col];
    }
    Some(x)
}

impl LinearModel {
    /// Fit ridge regression: minimize `Σ (y - w·x - b)² + λ‖w‖²`.
    ///
    /// Solved in closed form on the augmented design (bias unpenalized).
    /// Returns `None` on empty input or a singular system.
    #[must_use]
    pub fn fit_ridge(xs: &[Vec<f64>], ys: &[f64], lambda: f64) -> Option<LinearModel> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let d = xs[0].len();
        let da = d + 1; // augmented with bias column
        let mut xtx = vec![vec![0.0f64; da]; da];
        let mut xty = vec![0.0f64; da];
        for (x, &y) in xs.iter().zip(ys) {
            debug_assert_eq!(x.len(), d);
            for i in 0..d {
                for j in 0..d {
                    xtx[i][j] += x[i] * x[j];
                }
                xtx[i][d] += x[i];
                xtx[d][i] += x[i];
                xty[i] += x[i] * y;
            }
            xtx[d][d] += 1.0;
            xty[d] += y;
        }
        for (i, row) in xtx.iter_mut().enumerate().take(d) {
            row[i] += lambda;
        }
        let w = solve(xtx, xty)?;
        Some(LinearModel {
            weights: w[..d].to_vec(),
            bias: w[d],
        })
    }

    /// Fit logistic regression (labels in {0,1}) by full-batch gradient
    /// descent with L2 regularization.
    #[must_use]
    pub fn fit_logistic(
        xs: &[Vec<f64>],
        ys: &[f64],
        lambda: f64,
        lr: f64,
        epochs: usize,
    ) -> Option<LinearModel> {
        if xs.is_empty() || xs.len() != ys.len() {
            return None;
        }
        let d = xs[0].len();
        let n = xs.len() as f64;
        let mut w = vec![0.0f64; d];
        let mut b = 0.0f64;
        for _ in 0..epochs {
            let mut gw = vec![0.0f64; d];
            let mut gb = 0.0f64;
            for (x, &y) in xs.iter().zip(ys) {
                let z: f64 = x.iter().zip(&w).map(|(a, c)| a * c).sum::<f64>() + b;
                let p = 1.0 / (1.0 + (-z).exp());
                let err = p - y;
                for (g, a) in gw.iter_mut().zip(x) {
                    *g += err * a;
                }
                gb += err;
            }
            for (wi, g) in w.iter_mut().zip(&gw) {
                *wi -= lr * (g / n + lambda * *wi);
            }
            b -= lr * gb / n;
        }
        Some(LinearModel {
            weights: w,
            bias: b,
        })
    }

    /// Raw linear score `w · x + b`.
    #[must_use]
    pub fn score(&self, x: &[f64]) -> f64 {
        self.weights.iter().zip(x).map(|(w, a)| w * a).sum::<f64>() + self.bias
    }

    /// Regression prediction.
    #[must_use]
    pub fn predict(&self, x: &[f64]) -> f64 {
        self.score(x)
    }

    /// Classification probability.
    #[must_use]
    pub fn predict_proba(&self, x: &[f64]) -> f64 {
        1.0 / (1.0 + (-self.score(x)).exp())
    }
}

/// Coefficient of determination R² of predictions against truth.
#[must_use]
pub fn r_squared(model: &LinearModel, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    if ys.is_empty() {
        return 0.0;
    }
    let mean = ys.iter().sum::<f64>() / ys.len() as f64;
    let ss_tot: f64 = ys.iter().map(|y| (y - mean).powi(2)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(x, y)| (y - model.predict(x)).powi(2))
        .sum();
    if ss_tot == 0.0 {
        0.0
    } else {
        1.0 - ss_res / ss_tot
    }
}

/// Classification accuracy at threshold 0.5.
#[must_use]
pub fn accuracy(model: &LinearModel, xs: &[Vec<f64>], ys: &[f64]) -> f64 {
    if ys.is_empty() {
        return 0.0;
    }
    let ok = xs
        .iter()
        .zip(ys)
        .filter(|(x, &y)| (model.predict_proba(x) >= 0.5) == (y >= 0.5))
        .count();
    ok as f64 / ys.len() as f64
}

/// Pearson correlation of one feature with the target (feature ranking).
#[must_use]
pub fn feature_target_correlation(xs: &[Vec<f64>], ys: &[f64], feature: usize) -> f64 {
    let col: Vec<f64> = xs.iter().map(|x| x[feature]).collect();
    td_table::gen::bench_join::pearson(&col, ys)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn synthetic_regression(n: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        // y = 2 x0 - 3 x1 + 1 + tiny deterministic noise.
        let mut xs = Vec::with_capacity(n);
        let mut ys = Vec::with_capacity(n);
        for i in 0..n {
            let x0 = (i as f64 * 0.37).sin();
            let x1 = (i as f64 * 0.11).cos();
            let noise = ((i * 2_654_435_761) % 1000) as f64 / 1e5;
            xs.push(vec![x0, x1]);
            ys.push(2.0 * x0 - 3.0 * x1 + 1.0 + noise);
        }
        (xs, ys)
    }

    #[test]
    fn ridge_recovers_linear_coefficients() {
        let (xs, ys) = synthetic_regression(200);
        let m = LinearModel::fit_ridge(&xs, &ys, 1e-6).unwrap();
        assert!((m.weights[0] - 2.0).abs() < 0.05, "w0 {}", m.weights[0]);
        assert!((m.weights[1] + 3.0).abs() < 0.05, "w1 {}", m.weights[1]);
        assert!((m.bias - 1.0).abs() < 0.05, "b {}", m.bias);
        assert!(r_squared(&m, &xs, &ys) > 0.99);
    }

    #[test]
    fn ridge_regularization_shrinks_weights() {
        let (xs, ys) = synthetic_regression(100);
        let loose = LinearModel::fit_ridge(&xs, &ys, 1e-6).unwrap();
        let tight = LinearModel::fit_ridge(&xs, &ys, 100.0).unwrap();
        let norm = |m: &LinearModel| m.weights.iter().map(|w| w * w).sum::<f64>();
        assert!(norm(&tight) < norm(&loose));
    }

    #[test]
    fn logistic_separates_linearly_separable_data() {
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for i in 0..100 {
            let x = i as f64 / 50.0 - 1.0; // [-1, 1]
            xs.push(vec![x]);
            ys.push(if x > 0.1 { 1.0 } else { 0.0 });
        }
        let m = LinearModel::fit_logistic(&xs, &ys, 1e-4, 0.5, 2000).unwrap();
        assert!(
            accuracy(&m, &xs, &ys) > 0.93,
            "acc {}",
            accuracy(&m, &xs, &ys)
        );
        assert!(m.predict_proba(&[1.0]) > 0.8);
        assert!(m.predict_proba(&[-1.0]) < 0.2);
    }

    #[test]
    fn degenerate_inputs_are_handled() {
        assert!(LinearModel::fit_ridge(&[], &[], 1.0).is_none());
        // Constant feature + ridge still solves (regularized).
        let xs = vec![vec![1.0], vec![1.0], vec![1.0]];
        let ys = vec![2.0, 2.0, 2.0];
        let m = LinearModel::fit_ridge(&xs, &ys, 0.1).unwrap();
        assert!((m.predict(&[1.0]) - 2.0).abs() < 0.2);
    }

    #[test]
    fn r_squared_of_mean_model_is_zero() {
        let ys = vec![1.0, 2.0, 3.0];
        let xs = vec![vec![0.0], vec![0.0], vec![0.0]];
        let m = LinearModel {
            weights: vec![0.0],
            bias: 2.0,
        };
        assert!(r_squared(&m, &xs, &ys).abs() < 1e-12);
    }

    #[test]
    fn feature_correlation_ranks_informative_features() {
        let (xs, ys) = synthetic_regression(100);
        // Add a noise feature.
        let xs3: Vec<Vec<f64>> = xs
            .iter()
            .enumerate()
            .map(|(i, x)| {
                let mut v = x.clone();
                v.push(((i * 7919) % 100) as f64 / 100.0);
                v
            })
            .collect();
        let c0 = feature_target_correlation(&xs3, &ys, 0).abs();
        let c2 = feature_target_correlation(&xs3, &ys, 2).abs();
        assert!(c0 > c2, "informative {c0} vs noise {c2}");
    }
}
