//! Table stitching for knowledge-base completion (Lehmberg & Bizer, VLDB
//! 2017; Ling et al., IJCAI 2013; tutorial §2.7).
//!
//! Web tables arrive as many small fragments of one logical relation.
//! *Stitching* unions fragments with semantically equivalent headers into
//! one large table; the stitched table gives annotation enough evidence to
//! identify the relation its column pair expresses, after which its rows
//! can be matched against a knowledge base and the *missing* facts
//! proposed as completions. Tiny fragments alone often fail annotation
//! (too few KB-covered rows), which is exactly why stitching boosts
//! completion — the effect experiment E16 measures.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use td_table::{DataLake, Table, TableId};
use td_understand::annotate::{annotate_table, AnnotateConfig};
use td_understand::kb::KnowledgeBase;

/// Normalize a header for schema-level matching.
#[must_use]
pub fn normalize_header(h: &str) -> String {
    h.trim()
        .to_lowercase()
        .trim_end_matches(|c: char| c.is_ascii_digit() || c == '_')
        .to_string()
}

/// Group tables whose normalized header sequences are identical — the
/// stitchable groups.
#[must_use]
pub fn stitchable_groups(lake: &DataLake) -> Vec<Vec<TableId>> {
    let mut groups: HashMap<Vec<String>, Vec<TableId>> = HashMap::new();
    for (id, t) in lake.iter() {
        let key: Vec<String> = t.headers().iter().map(|h| normalize_header(h)).collect();
        groups.entry(key).or_default().push(id);
    }
    let mut out: Vec<Vec<TableId>> = groups.into_values().collect();
    out.sort_by(|a, b| b.len().cmp(&a.len()).then(a.first().cmp(&b.first())));
    out
}

/// Stitch a group of tables (same arity, matching normalized headers) into
/// one union table.
///
/// # Panics
/// Panics if the group is empty or arities differ.
#[must_use]
pub fn stitch_group(lake: &DataLake, group: &[TableId]) -> Table {
    assert!(!group.is_empty(), "empty stitch group");
    let first = lake.table(group[0]);
    let mut acc = first.clone();
    for &id in &group[1..] {
        let t = lake.table(id);
        assert_eq!(
            t.num_cols(),
            acc.num_cols(),
            "arity mismatch in stitch group"
        );
        let alignment: Vec<Option<usize>> = (0..acc.num_cols()).map(Some).collect();
        acc = acc.union_with(t, &alignment);
    }
    acc.name = format!("stitched_{}", first.name);
    acc
}

/// Completion report: facts proposed with and without stitching.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct CompletionReport {
    /// Distinct new facts proposed from individual fragments.
    pub facts_from_fragments: usize,
    /// Distinct new facts proposed from stitched tables.
    pub facts_from_stitched: usize,
    /// Fragments whose relation annotation succeeded.
    pub fragments_annotated: usize,
    /// Total fragments considered.
    pub fragments_total: usize,
    /// Stitched groups whose relation annotation succeeded.
    pub stitched_annotated: usize,
    /// Total stitched groups.
    pub stitched_total: usize,
}

/// Facts (subject, object, relation) a table proposes: its annotated
/// relation applied to rows whose pair the KB does *not* already assert.
fn proposed_facts(
    table: &Table,
    kb: &KnowledgeBase,
    cfg: &AnnotateConfig,
) -> (bool, HashSet<(String, String, u32)>) {
    let ann = annotate_table(table, kb, cfg);
    let mut out = HashSet::new();
    let mut annotated = false;
    for rel in &ann.relations {
        annotated = true;
        for r in 0..table.num_rows() {
            let (Some(s), Some(o)) = (
                table.columns[rel.subject].values[r].as_text(),
                table.columns[rel.object].values[r].as_text(),
            ) else {
                continue;
            };
            if kb.relations_of(&s, &o).contains(&rel.relation) {
                continue; // already known
            }
            out.insert((s.to_lowercase(), o.to_lowercase(), rel.relation));
        }
    }
    (annotated, out)
}

/// Run KB completion over a lake, both per-fragment and per stitched
/// group, and report the coverage gain.
#[must_use]
pub fn kb_completion(
    lake: &DataLake,
    kb: &KnowledgeBase,
    cfg: &AnnotateConfig,
) -> CompletionReport {
    let mut report = CompletionReport::default();
    let mut frag_facts: HashSet<(String, String, u32)> = HashSet::new();
    for (_, t) in lake.iter() {
        report.fragments_total += 1;
        let (ok, facts) = proposed_facts(t, kb, cfg);
        if ok {
            report.fragments_annotated += 1;
        }
        frag_facts.extend(facts);
    }
    let mut stitched_facts: HashSet<(String, String, u32)> = HashSet::new();
    for group in stitchable_groups(lake) {
        report.stitched_total += 1;
        let stitched = stitch_group(lake, &group);
        let (ok, facts) = proposed_facts(&stitched, kb, cfg);
        if ok {
            report.stitched_annotated += 1;
        }
        stitched_facts.extend(facts);
    }
    report.facts_from_fragments = frag_facts.len();
    report.facts_from_stitched = stitched_facts.len();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::bench_union::RelationSpec;
    use td_table::gen::domains::DomainRegistry;
    use td_table::Column;
    use td_understand::kb::KbConfig;

    /// Fragments of a (city → country) relation, 6 rows each, with KB
    /// relation coverage 0.5 — each fragment alone sees ~3 covered rows.
    fn setup(
        fragment_rows: u64,
        num_fragments: u64,
        relation_coverage: f64,
    ) -> (DataLake, KnowledgeBase, RelationSpec) {
        let r = DomainRegistry::standard();
        let spec = RelationSpec {
            key_dom: r.id("city").unwrap(),
            attr_dom: r.id("country").unwrap(),
            rel_id: 6,
        };
        let kb = KnowledgeBase::build(
            &r,
            &[spec],
            &KbConfig {
                vocab_per_domain: 2_048,
                facts_per_relation: 2_048,
                type_coverage: 1.0,
                relation_coverage,
                ..Default::default()
            },
        );
        let mut lake = DataLake::new();
        for f in 0..num_fragments {
            let lo = f * fragment_rows;
            let t = Table::new(
                format!("frag_{f:03}.csv"),
                vec![
                    Column::new(
                        "city",
                        (lo..lo + fragment_rows)
                            .map(|i| r.value(spec.key_dom, i))
                            .collect(),
                    ),
                    Column::new(
                        "country",
                        (lo..lo + fragment_rows)
                            .map(|i| r.value(spec.attr_dom, spec.attr_index(i)))
                            .collect(),
                    ),
                ],
            )
            .unwrap();
            lake.add(t);
        }
        (lake, kb, spec)
    }

    #[test]
    fn fragments_group_into_one_stitchable_family() {
        let (lake, _, _) = setup(6, 10, 0.5);
        let groups = stitchable_groups(&lake);
        assert_eq!(groups.len(), 1);
        assert_eq!(groups[0].len(), 10);
    }

    #[test]
    fn stitch_concatenates_rows() {
        let (lake, _, _) = setup(6, 10, 0.5);
        let groups = stitchable_groups(&lake);
        let stitched = stitch_group(&lake, &groups[0]);
        assert_eq!(stitched.num_rows(), 60);
        assert_eq!(stitched.num_cols(), 2);
    }

    #[test]
    fn normalized_headers_merge_suffixed_variants() {
        assert_eq!(normalize_header("city_2"), "city");
        assert_eq!(normalize_header("CITY"), "city");
        assert_eq!(normalize_header(" country "), "country");
    }

    #[test]
    fn stitching_boosts_kb_completion() {
        // Tiny fragments + annotation demanding a decent support: alone
        // they often fail to identify the relation; stitched they succeed.
        let (lake, kb, _) = setup(4, 25, 0.35);
        let cfg = AnnotateConfig {
            min_relation_support: 0.25,
            ..Default::default()
        };
        let report = kb_completion(&lake, &kb, &cfg);
        assert!(
            report.facts_from_stitched > report.facts_from_fragments,
            "stitched {} vs fragments {}",
            report.facts_from_stitched,
            report.facts_from_fragments
        );
        assert!(
            report.fragments_annotated < report.fragments_total,
            "every fragment annotated — the premise didn't hold"
        );
        assert_eq!(report.stitched_annotated, report.stitched_total);
    }

    #[test]
    fn proposed_facts_exclude_known_ones() {
        let (lake, kb, spec) = setup(10, 2, 1.0);
        // Full coverage: every pair already known → nothing to propose.
        let report = kb_completion(&lake, &kb, &AnnotateConfig::default());
        assert_eq!(report.facts_from_stitched, 0);
        assert_eq!(report.facts_from_fragments, 0);
        let _ = spec;
    }

    #[test]
    fn completion_fills_exactly_the_uncovered_pairs() {
        let (lake, kb, spec) = setup(10, 4, 0.5);
        let report = kb_completion(&lake, &kb, &AnnotateConfig::default());
        // Count uncovered pairs among the 40 rows.
        let r = DomainRegistry::standard();
        let mut uncovered = 0;
        for i in 0..40u64 {
            let s = r.value(spec.key_dom, i).to_string();
            let o = r.value(spec.attr_dom, spec.attr_index(i)).to_string();
            if !kb.relations_of(&s, &o).contains(&spec.rel_id) {
                uncovered += 1;
            }
        }
        assert_eq!(report.facts_from_stitched, uncovered);
    }
}
