//! Training-set discovery and construction from a data lake (tutorial
//! §2.7; Leva-style representation-driven harvesting).
//!
//! Given a handful of labeled seed examples, harvest additional labeled
//! rows from the lake: every candidate value is scored by its embedding
//! similarity to the per-class seed centroids and labeled by the nearest
//! one, with a confidence margin. High-confidence harvested examples grow
//! the training set — the "data lakes as training-data source" idea the
//! tutorial highlights.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use td_embed::model::Embedder;
use td_embed::vector::{add_scaled, cosine, normalize};
use td_table::DataLake;

/// A harvested candidate example.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HarvestedExample {
    /// The value text.
    pub value: String,
    /// Predicted class (index into the seed classes).
    pub label: usize,
    /// Confidence: similarity margin between best and second-best class.
    pub confidence: f64,
}

/// Parameters for [`discover_training_set`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TrainsetConfig {
    /// Keep only examples with at least this margin.
    pub min_confidence: f64,
    /// Cap on harvested examples.
    pub max_examples: usize,
}

impl Default for TrainsetConfig {
    fn default() -> Self {
        TrainsetConfig {
            min_confidence: 0.05,
            max_examples: 500,
        }
    }
}

/// Harvest labeled examples from the lake.
///
/// `seeds[c]` holds the seed values of class `c` (at least one non-empty
/// class required). Returns examples sorted by descending confidence,
/// excluding the seeds themselves.
#[must_use]
pub fn discover_training_set(
    lake: &DataLake,
    seeds: &[Vec<String>],
    embedder: &dyn Embedder,
    cfg: &TrainsetConfig,
) -> Vec<HarvestedExample> {
    let dim = embedder.dim();
    let centroids: Vec<Vec<f32>> = seeds
        .iter()
        .map(|class| {
            let mut c = vec![0.0f32; dim];
            for s in class {
                add_scaled(&mut c, &embedder.embed(&s.to_lowercase()), 1.0);
            }
            normalize(&mut c);
            c
        })
        .collect();
    assert!(
        centroids.iter().any(|c| c.iter().any(|&x| x != 0.0)),
        "at least one non-empty seed class required"
    );
    let seed_set: HashSet<String> = seeds.iter().flatten().map(|s| s.to_lowercase()).collect();

    let mut seen: HashSet<String> = HashSet::new();
    let mut out = Vec::new();
    for (_, col) in lake.columns() {
        if col.is_numeric() {
            continue;
        }
        for t in col.token_set() {
            if seed_set.contains(&t) || !seen.insert(t.clone()) {
                continue;
            }
            let v = embedder.embed(&t);
            let mut sims: Vec<(usize, f64)> = centroids
                .iter()
                .enumerate()
                .map(|(c, cv)| (c, f64::from(cosine(&v, cv))))
                .collect();
            sims.sort_by(|a, b| b.1.total_cmp(&a.1));
            let (best, best_sim) = sims[0];
            let second = sims.get(1).map_or(0.0, |s| s.1);
            let confidence = best_sim - second;
            if confidence >= cfg.min_confidence {
                out.push(HarvestedExample {
                    value: t,
                    label: best,
                    confidence,
                });
            }
        }
    }
    out.sort_by(|a, b| {
        b.confidence
            .total_cmp(&a.confidence)
            .then(a.value.cmp(&b.value))
    });
    out.truncate(cfg.max_examples);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_embed::model::DomainEmbedder;
    use td_table::gen::domains::DomainRegistry;
    use td_table::{Column, Table};

    fn setup() -> (DataLake, DomainRegistry, DomainEmbedder) {
        let r = DomainRegistry::standard();
        let mut lake = DataLake::new();
        for (name, lo) in [("city", 0u64), ("city", 200), ("gene", 0), ("gene", 200)] {
            let d = r.id(name).unwrap();
            let col = Column::new(name, (lo..lo + 50).map(|i| r.value(d, i)).collect());
            lake.add(Table::new(format!("{name}_{lo}"), vec![col]).unwrap());
        }
        let emb = DomainEmbedder::from_registry(&r, 1_000, 64, 0.4, 13);
        (lake, r, emb)
    }

    fn seeds(r: &DomainRegistry) -> Vec<Vec<String>> {
        let city = r.id("city").unwrap();
        let gene = r.id("gene").unwrap();
        vec![
            (500..505u64)
                .map(|i| r.value(city, i).to_string())
                .collect(),
            (500..505u64)
                .map(|i| r.value(gene, i).to_string())
                .collect(),
        ]
    }

    #[test]
    fn harvested_labels_match_ground_truth() {
        let (lake, r, emb) = setup();
        let harvested = discover_training_set(&lake, &seeds(&r), &emb, &TrainsetConfig::default());
        assert!(harvested.len() >= 150, "harvested {}", harvested.len());
        // Ground truth: which domain vocabulary the value belongs to.
        let city_vocab: HashSet<String> = r
            .vocab(r.id("city").unwrap(), 1_000)
            .iter()
            .map(|v| v.to_string().to_lowercase())
            .collect();
        let correct = harvested
            .iter()
            .filter(|h| {
                let truth = usize::from(!city_vocab.contains(&h.value));
                h.label == truth
            })
            .count();
        let acc = correct as f64 / harvested.len() as f64;
        assert!(acc > 0.95, "harvest accuracy {acc}");
    }

    #[test]
    fn seeds_are_excluded() {
        let (mut lake, r, emb) = setup();
        // Put a seed value into the lake explicitly.
        let s = seeds(&r);
        lake.add(
            Table::new(
                "with_seed",
                vec![Column::from_strings("c", &[s[0][0].as_str()])],
            )
            .unwrap(),
        );
        let harvested = discover_training_set(&lake, &s, &emb, &TrainsetConfig::default());
        let seed_lower = s[0][0].to_lowercase();
        assert!(harvested.iter().all(|h| h.value != seed_lower));
    }

    #[test]
    fn confidence_ordering_and_cap() {
        let (lake, r, emb) = setup();
        let harvested = discover_training_set(
            &lake,
            &seeds(&r),
            &emb,
            &TrainsetConfig {
                max_examples: 20,
                ..Default::default()
            },
        );
        assert!(harvested.len() <= 20);
        for w in harvested.windows(2) {
            assert!(w[0].confidence >= w[1].confidence);
        }
    }

    #[test]
    fn high_threshold_filters_everything_ambiguous() {
        let (lake, r, emb) = setup();
        let strict = discover_training_set(
            &lake,
            &seeds(&r),
            &emb,
            &TrainsetConfig {
                min_confidence: 0.9,
                ..Default::default()
            },
        );
        let loose = discover_training_set(
            &lake,
            &seeds(&r),
            &emb,
            &TrainsetConfig {
                min_confidence: 0.0,
                ..Default::default()
            },
        );
        assert!(strict.len() <= loose.len());
    }
}
