//! Criterion microbenchmarks: index build and query across the families
//! the tutorial's §3 compares (inverted lists, LSH, LSH Ensemble, HNSW,
//! flat scan).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use td::embed::seeded_unit_vector;
use td::index::{FlatIndex, Hnsw, HnswParams, InvertedSetIndexBuilder, LshEnsemble, MinHashLsh};
use td::sketch::{MinHashSignature, MinHasher};

fn random_sets(n: usize, avg: usize) -> Vec<Vec<String>> {
    (0..n)
        .map(|s| {
            let len = avg / 2 + (td::sketch::hash_u64(s as u64, 1) as usize) % avg;
            (0..len)
                .map(|i| {
                    format!(
                        "v{}",
                        td::sketch::hash_u64((s * 1000 + i) as u64, 2) % 50_000
                    )
                })
                .collect()
        })
        .collect()
}

fn signatures(sets: &[Vec<String>], k: usize) -> (MinHasher, Vec<MinHashSignature>) {
    let h = MinHasher::new(k, 1);
    let sigs = sets
        .iter()
        .map(|s| h.sign(s.iter().map(String::as_str)))
        .collect();
    (h, sigs)
}

fn bench_inverted(c: &mut Criterion) {
    let sets = random_sets(2_000, 60);
    let mut b = InvertedSetIndexBuilder::new();
    for s in &sets {
        b.add_set(s.iter().map(String::as_str));
    }
    let idx = b.build();
    let q = &sets[7];
    let mut g = c.benchmark_group("inverted_topk");
    g.bench_function("merge", |bch| {
        bch.iter(|| idx.top_k_merge(q.iter().map(String::as_str), 10));
    });
    g.bench_function("probe", |bch| {
        bch.iter(|| idx.top_k_probe(q.iter().map(String::as_str), 10));
    });
    g.bench_function("adaptive", |bch| {
        bch.iter(|| idx.top_k_adaptive(q.iter().map(String::as_str), 10));
    });
    g.finish();
}

fn bench_lsh_vs_ensemble(c: &mut Criterion) {
    let sets = random_sets(2_000, 60);
    let (_, sigs) = signatures(&sets, 128);
    let mut lsh = MinHashLsh::with_threshold(128, 0.5);
    for (i, s) in sigs.iter().enumerate() {
        lsh.insert(i as u32, s);
    }
    let ens = LshEnsemble::build(
        sigs.iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.clone()))
            .collect(),
        8,
    );
    let q = &sigs[3];
    let mut g = c.benchmark_group("lsh_query");
    g.bench_function("minhash_lsh", |b| {
        b.iter(|| black_box(lsh.query(q)));
    });
    g.bench_function("lsh_ensemble_t0.5", |b| {
        b.iter(|| black_box(ens.query_containment(q, 0.5)));
    });
    g.finish();
}

fn bench_vector_indices(c: &mut Criterion) {
    let dim = 64;
    for &n in &[1_000usize, 10_000] {
        let vecs: Vec<Vec<f32>> = (0..n as u64).map(|i| seeded_unit_vector(i, dim)).collect();
        let mut flat = FlatIndex::new(dim);
        let mut hnsw = Hnsw::new(dim, HnswParams::default());
        for v in &vecs {
            flat.insert(v.clone());
            hnsw.insert(v.clone());
        }
        let q = seeded_unit_vector(999_999, dim);
        let mut g = c.benchmark_group(format!("vector_query_n{n}"));
        g.bench_with_input(BenchmarkId::new("flat", n), &n, |b, _| {
            b.iter(|| black_box(flat.search(&q, 10)));
        });
        g.bench_with_input(BenchmarkId::new("hnsw_ef64", n), &n, |b, _| {
            b.iter(|| black_box(hnsw.search(&q, 10, 64)));
        });
        g.finish();
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inverted, bench_lsh_vs_ensemble, bench_vector_indices
}
criterion_main!(benches);
