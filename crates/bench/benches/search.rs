//! Criterion benchmarks: end-to-end search latency per discovery family
//! over one shared synthetic lake.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use td::core::join::{ContainmentJoinSearch, ExactJoinSearch, ExactStrategy, MateSearch};
use td::core::union::{
    max_weight_matching, MeasureContext, StarmieConfig, StarmieSearch, TusSearch, UnionMeasure,
    VectorBackend,
};
use td::core::{KeywordConfig, KeywordSearch};
use td::embed::{ContextualEncoder, DomainEmbedder, NGramEmbedder};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};

fn bench_search_families(c: &mut Criterion) {
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 300,
        rows: (30, 120),
        cols: (2, 5),
        seed: 8,
        ..Default::default()
    });
    let (_, qt) = gl.lake.iter().next().unwrap();
    let qt = qt.clone();
    let qcol = qt
        .columns
        .iter()
        .find(|col| !col.is_numeric())
        .cloned()
        .expect("a textual query column");

    let kw = KeywordSearch::build(&gl.lake, &KeywordConfig::default());
    c.bench_function("keyword_search", |b| {
        b.iter(|| black_box(kw.search("geography dataset records", 10)));
    });

    let exact = ExactJoinSearch::build(&gl.lake);
    c.bench_function("exact_join_adaptive_top10", |b| {
        b.iter(|| black_box(exact.search(&qcol, 10, ExactStrategy::Adaptive)));
    });

    let cont = ContainmentJoinSearch::build(&gl.lake, 128, 8);
    c.bench_function("containment_top10", |b| {
        b.iter(|| black_box(cont.top_k(&qcol, 10)));
    });

    let mate = MateSearch::build(&gl.lake);
    c.bench_function("mate_composite_top10", |b| {
        b.iter(|| black_box(mate.search(&qt, &[0, 1], 10)));
    });

    let tus = TusSearch::build(
        &gl.lake,
        MeasureContext {
            domain_emb: DomainEmbedder::from_registry(&gl.registry, 2_048, 64, 0.4, 3),
            ngram_emb: NGramEmbedder::new(64, 3, 3),
            sample: 32,
        },
    );
    c.bench_function("tus_ensemble_top10", |b| {
        b.iter(|| black_box(tus.search(&qt, 10, UnionMeasure::Ensemble)));
    });

    let starmie = StarmieSearch::build(
        &gl.lake,
        DomainEmbedder::from_registry(&gl.registry, 2_048, 64, 0.4, 3),
        StarmieConfig {
            encoder: ContextualEncoder::default(),
            backend: VectorBackend::Hnsw,
            ..Default::default()
        },
    );
    c.bench_function("starmie_hnsw_top10", |b| {
        b.iter(|| black_box(starmie.search(&qt, 10)));
    });
}

fn bench_matching(c: &mut Criterion) {
    for &n in &[8usize, 32] {
        let w: Vec<Vec<f64>> = (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| ((td::sketch::hash_u64((i * n + j) as u64, 3) % 1000) as f64) / 1000.0)
                    .collect()
            })
            .collect();
        c.bench_function(&format!("hungarian_{n}x{n}"), |b| {
            b.iter(|| black_box(max_weight_matching(&w)));
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search_families, bench_matching
}
criterion_main!(benches);
