//! Criterion microbenchmarks: sketch construction and comparison.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use td::sketch::{HyperLogLog, KmvSketch, MinHasher, QcrSketch};

fn tokens(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("token-{i}")).collect()
}

fn bench_minhash(c: &mut Criterion) {
    let mut g = c.benchmark_group("minhash_sign");
    for &n in &[100usize, 1_000, 10_000] {
        let toks = tokens(n);
        let hasher = MinHasher::new(128, 1);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| hasher.sign(toks.iter().map(String::as_str)));
        });
    }
    g.finish();

    let hasher = MinHasher::new(128, 1);
    let a = hasher.sign(tokens(5_000).iter().map(String::as_str));
    let t2 = tokens(8_000);
    let b2 = hasher.sign(t2.iter().map(String::as_str));
    c.bench_function("minhash_jaccard_estimate", |b| {
        b.iter(|| black_box(a.jaccard(&b2)));
    });
}

fn bench_kmv(c: &mut Criterion) {
    let mut g = c.benchmark_group("kmv_build");
    for &n in &[1_000usize, 10_000] {
        let toks = tokens(n);
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| KmvSketch::from_tokens(256, 1, toks.iter().map(String::as_str)));
        });
    }
    g.finish();

    let t1 = tokens(10_000);
    let t2: Vec<String> = (5_000..15_000).map(|i| format!("token-{i}")).collect();
    let a = KmvSketch::from_tokens(256, 1, t1.iter().map(String::as_str));
    let b2 = KmvSketch::from_tokens(256, 1, t2.iter().map(String::as_str));
    c.bench_function("kmv_containment_estimate", |b| {
        b.iter(|| black_box(a.estimate_containment_in(&b2)));
    });
}

fn bench_hll(c: &mut Criterion) {
    let toks = tokens(10_000);
    c.bench_function("hll_insert_10k", |b| {
        b.iter(|| {
            let mut h = HyperLogLog::new(12, 1);
            for t in &toks {
                h.insert(t);
            }
            black_box(h.estimate())
        });
    });
}

fn bench_qcr(c: &mut Criterion) {
    let pairs: Vec<(String, f64)> = (0..5_000)
        .map(|i| (format!("k{i}"), (i as f64 * 0.37).sin()))
        .collect();
    c.bench_function("qcr_build_5k", |b| {
        b.iter(|| QcrSketch::build(512, 1, &pairs));
    });
    let a = QcrSketch::build(512, 1, &pairs);
    let pairs2: Vec<(String, f64)> = (0..5_000)
        .map(|i| (format!("k{i}"), (i as f64 * 0.37).cos()))
        .collect();
    let b2 = QcrSketch::build(512, 1, &pairs2);
    c.bench_function("qcr_estimate", |b| {
        b.iter(|| black_box(a.estimate_pearson(&b2)));
    });
}

criterion_group!(benches, bench_minhash, bench_kmv, bench_hll, bench_qcr);
criterion_main!(benches);
