//! batch_report — batched vs one-at-a-time serving throughput, emitting
//! `BENCH_batch.json`.
//!
//! One synthetic lake is served by a single td-serve server over real
//! sockets, and the same deterministic per-family workloads (all eight
//! search families) are driven through it five ways: one request per
//! frame (the classic path), then `Request::Batch` frames of size 1, 4,
//! 8, and 16. The report records per-family and aggregate throughput at
//! each batch size and *asserts* the byte-identity invariant on every
//! single sub-reply: whatever the batch size, each query's answer must
//! equal the direct in-process `execute` on the oracle pipeline.
//!
//! Batching buys throughput two ways: the batched probe sweeps in
//! `td-core`/`td-index` run the per-query work on scoped threads (which
//! needs cores), and a 16-query batch pays the framing/queueing/cache
//! round-trip once instead of 16 times (which doesn't). Like
//! `shard_report`, the ≥1.5× speedup assertion is armed only on ≥4-core
//! machines; on fewer cores the sweep still runs and records what
//! amortization alone buys.
//!
//! The result cache is flushed (via `Reload`) before every phase so
//! each phase measures execution, not cache hits.
//!
//! Flags (all optional): `--seed N`, `--tables N` (default 10000),
//! `--queries N` (queries per family, default 8), `--k N`,
//! `--workers N`.

use std::sync::Arc;

use td::core::{DiscoveryPipeline, PipelineConfig};
use td::serve::{execute, Client, Reply, Request, RequestEnvelope, Server, ServerConfig, Status};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::{Table, TableId};
use td_bench::{ms, print_table, time, BenchReport, Timer};

struct Args {
    seed: u64,
    tables: usize,
    queries: usize,
    k: usize,
    workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        tables: 10_000,
        queries: 8,
        k: 10,
        workers: 2,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--seed" => args.seed = val.parse().unwrap_or(args.seed),
            "--tables" => args.tables = val.parse().unwrap_or(args.tables),
            "--queries" => args.queries = val.parse().unwrap_or(args.queries),
            "--k" => args.k = val.parse().unwrap_or(args.k),
            "--workers" => args.workers = val.parse().unwrap_or(args.workers),
            _ => {}
        }
        i += 2;
    }
    args
}

/// One named workload per search family: `queries` requests each, built
/// from query tables sampled at a fixed stride. Batches must be
/// family-homogeneous, so the workloads stay grouped.
fn build_workloads(tables: &[(TableId, Table)], args: &Args) -> Vec<(&'static str, Vec<Request>)> {
    let step = (tables.len() / args.queries.max(1)).max(1);
    let k = args.k;
    let qts: Vec<&Table> = tables
        .iter()
        .step_by(step)
        .take(args.queries)
        .map(|(_, t)| t)
        .collect();
    let mut out: Vec<(&'static str, Vec<Request>)> = Vec::new();

    out.push((
        "keyword",
        qts.iter()
            .enumerate()
            .map(|(qi, _)| Request::Keyword {
                query: ["dataset", "census", "city", "total"][qi % 4].to_string(),
                k: k + qi % 3,
            })
            .collect(),
    ));
    out.push((
        "unionable",
        qts.iter()
            .map(|qt| Request::Unionable {
                table: (*qt).clone(),
                k,
            })
            .collect(),
    ));
    out.push((
        "unionable_semantic",
        qts.iter()
            .map(|qt| Request::UnionableSemantic {
                table: (*qt).clone(),
                k,
            })
            .collect(),
    ));
    out.push((
        "unionable_relationship",
        qts.iter()
            .map(|qt| Request::UnionableRelationship {
                table: (*qt).clone(),
                k,
            })
            .collect(),
    ));
    out.push((
        "multi_joinable",
        qts.iter()
            .map(|qt| Request::MultiJoinable {
                table: (*qt).clone(),
                key_cols: vec![0, 1],
                k,
            })
            .collect(),
    ));
    out.push((
        "joinable",
        qts.iter()
            .filter_map(|qt| {
                qt.columns.first().map(|c| Request::Joinable {
                    column: c.clone(),
                    k,
                })
            })
            .collect(),
    ));
    out.push((
        "fuzzy_joinable",
        qts.iter()
            .filter_map(|qt| {
                qt.columns.first().map(|c| Request::FuzzyJoinable {
                    column: c.clone(),
                    tau: 0.8,
                    k,
                })
            })
            .collect(),
    ));
    out.push((
        "correlated",
        qts.iter()
            .filter_map(|qt| {
                let key = qt.columns.iter().find(|c| !c.is_numeric())?;
                let num = qt.columns.iter().find(|c| c.is_numeric())?;
                Some(Request::Correlated {
                    key: key.clone(),
                    numeric: num.clone(),
                    k,
                })
            })
            .collect(),
    ));
    out.retain(|(_, w)| !w.is_empty());
    out
}

/// Flush the server's result cache so the next phase executes for real.
fn flush_cache(client: &mut Client) {
    let resp = client
        .call(&RequestEnvelope {
            id: 0,
            deadline_ms: 0,
            req: Request::Reload,
        })
        .expect("reload");
    assert_eq!(resp.status, Status::Ok, "cache flush must succeed");
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("batch");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: args.tables,
            rows: (8, 24),
            cols: (2, 4),
            seed: args.seed,
            ..LakeGenConfig::default()
        })
    });
    // Exact retrieval for the byte-identity assertion, the same choice
    // shard_report makes: the flat vector backend is exhaustive, so
    // batched and sequential execution provably see identical windows.
    let mut cfg = PipelineConfig::default();
    cfg.starmie.backend = td::core::union::starmie::VectorBackend::Flat;
    let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
    let (oracle, t_build) =
        time(|| Arc::new(DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg)));
    println!(
        "batch_report: lake of {} tables (gen {} ms, build {} ms), seed {}, {} cores",
        tables.len(),
        ms(t_gen),
        ms(t_build),
        args.seed,
        cores
    );

    let workloads = build_workloads(&tables, &args);
    let total_queries: usize = workloads.iter().map(|(_, w)| w.len()).sum();
    // The byte-identity oracle: every sub-reply in every phase must
    // equal this direct in-process answer.
    let expected: Vec<(&'static str, Vec<Reply>)> = workloads
        .iter()
        .map(|(name, w)| (*name, w.iter().map(|r| execute(&oracle, r)).collect()))
        .collect();

    let mut server = Server::start(
        Arc::clone(&oracle),
        ServerConfig {
            workers: args.workers,
            ..ServerConfig::default()
        },
    )
    .expect("start server");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    // Phase 0: one request per frame — the baseline the batch frames
    // are measured against.
    flush_cache(&mut client);
    let mut id = 1u64;
    let mut family_seq_secs: Vec<f64> = Vec::new();
    let wall = Timer::start();
    for ((_, w), (_, want)) in workloads.iter().zip(&expected) {
        let t = Timer::start();
        for (req, want) in w.iter().zip(want) {
            let resp = client
                .call(&RequestEnvelope {
                    id,
                    deadline_ms: 0,
                    req: req.clone(),
                })
                .expect("call");
            id += 1;
            assert_eq!(resp.status, Status::Ok);
            assert_eq!(
                resp.reply.as_ref(),
                Some(want),
                "single-request reply diverged from the oracle on {}",
                req.endpoint()
            );
        }
        family_seq_secs.push(t.elapsed().as_secs_f64());
    }
    let seq_secs = wall.elapsed().as_secs_f64();
    let seq_rps = total_queries as f64 / seq_secs.max(1e-9);

    // Batch-size sweep: the same workloads, b queries per frame.
    let mut sweep: Vec<(usize, f64, f64)> = Vec::new(); // (b, secs, rps)
    let mut family_b16_secs: Vec<f64> = vec![0.0; workloads.len()];
    for &b in &[1usize, 4, 8, 16] {
        flush_cache(&mut client);
        let wall = Timer::start();
        for (fi, ((_, w), (_, want))) in workloads.iter().zip(&expected).enumerate() {
            let t = Timer::start();
            for (chunk, want) in w.chunks(b).zip(want.chunks(b)) {
                let resp = client
                    .call(&RequestEnvelope {
                        id,
                        deadline_ms: 0,
                        req: Request::Batch {
                            requests: chunk.to_vec(),
                        },
                    })
                    .expect("batch call");
                id += 1;
                assert_eq!(resp.status, Status::Ok);
                let Some(Reply::Batch(subs)) = resp.reply else {
                    panic!("batch frame must answer Reply::Batch");
                };
                assert_eq!(subs.len(), chunk.len());
                for ((sub, req), want) in subs.iter().zip(chunk).zip(want) {
                    assert_eq!(
                        sub,
                        want,
                        "batch={b} sub-reply diverged from the oracle on {}",
                        req.endpoint()
                    );
                }
            }
            if b == 16 {
                family_b16_secs[fi] = t.elapsed().as_secs_f64();
            }
        }
        let secs = wall.elapsed().as_secs_f64();
        sweep.push((b, secs, total_queries as f64 / secs.max(1e-9)));
    }
    server.shutdown();

    // Per-family table: sequential vs batch=16.
    let rows: Vec<Vec<String>> = workloads
        .iter()
        .enumerate()
        .map(|(fi, (name, w))| {
            let seq = family_seq_secs[fi];
            let b16 = family_b16_secs[fi];
            let speedup = if b16 > 0.0 { seq / b16 } else { 0.0 };
            vec![
                (*name).to_string(),
                w.len().to_string(),
                format!("{:.1}", w.len() as f64 / seq.max(1e-9)),
                format!("{:.1}", w.len() as f64 / b16.max(1e-9)),
                format!("{speedup:.2}x"),
            ]
        })
        .collect();
    print_table(
        "batched vs one-at-a-time (every sub-reply checked against the oracle)",
        &[
            "family",
            "queries",
            "seq (req/s)",
            "batch16 (req/s)",
            "speedup",
        ],
        &rows,
    );

    let batch16_rps = sweep.last().map_or(0.0, |&(_, _, rps)| rps);
    let speedup = if seq_rps > 0.0 {
        batch16_rps / seq_rps
    } else {
        0.0
    };
    println!(
        "aggregate: sequential {seq_rps:.1} req/s, batch=16 {batch16_rps:.1} req/s \
         ({speedup:.2}x, {cores} cores)"
    );
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "batch=16 must reach >= 1.5x one-at-a-time throughput on a \
             {cores}-core machine (got {speedup:.2}x)"
        );
    } else {
        println!(
            "note: only {cores} core(s) available — the batched probe sweeps \
             cannot run queries in parallel, so the >= 1.5x speedup assertion \
             is skipped and the sweep measures round-trip amortization instead"
        );
    }

    let sweep_json: Vec<serde_json::Value> = sweep
        .iter()
        .map(|&(b, secs, rps)| {
            serde_json::json!({
                "batch_size": b,
                "run_seconds": secs,
                "queries": total_queries,
                "throughput_rps": rps,
                "speedup_vs_sequential": if seq_rps > 0.0 { rps / seq_rps } else { 0.0 },
            })
        })
        .collect();
    let families_json: Vec<serde_json::Value> = workloads
        .iter()
        .enumerate()
        .map(|(fi, (name, w))| {
            serde_json::json!({
                "family": *name,
                "queries": w.len(),
                "sequential_rps": w.len() as f64 / family_seq_secs[fi].max(1e-9),
                "batch16_rps": w.len() as f64 / family_b16_secs[fi].max(1e-9),
            })
        })
        .collect();
    report
        .stage("generate", t_gen)
        .stage("pipeline_build", t_build)
        .field("seed", &args.seed)
        .field("tables", &tables.len())
        .field("queries_per_family", &args.queries)
        .field("k", &args.k)
        .field("workers", &args.workers)
        .field("cores", &cores)
        .field("total_queries", &total_queries)
        .field("sequential_rps", &seq_rps)
        .field("speedup_batch16_vs_sequential", &speedup)
        .field("speedup_assertion_armed", &(cores >= 4))
        .field(
            "byte_identity",
            &"every sub-reply byte-equal to the in-process oracle",
        )
        .field("sweep", &serde_json::Value::Seq(sweep_json))
        .field("families", &serde_json::Value::Seq(families_json));
    report.finish();
}
