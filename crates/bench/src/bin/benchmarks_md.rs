//! benchmarks_md — render the committed `benches/BENCH_*.json`
//! snapshots into a criterion-table-style `BENCHMARKS.md`.
//!
//! The bench report binaries each write one JSON snapshot; this bin is
//! the presentation layer, turning those snapshots into the familiar
//! comparison-table format (first column of every row is the 1.00x
//! baseline, later columns annotated faster/slower). It never runs a
//! benchmark itself, so regenerating the markdown is instant and
//! byte-deterministic for a given set of snapshots.
//!
//! Flags: `--benches <dir>` (default `benches`), `--out <file>`
//! (default `BENCHMARKS.md`).

use serde::content_get;
use serde_json::Value;
use std::fmt::Write as _;

/// One comparison table: a header row of column labels plus rows of
/// `(label, values-in-nanoseconds)`. The first value in each row is
/// that row's 1.00x baseline.
struct Table {
    title: String,
    note: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<f64>)>,
}

fn fmt_time(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} us", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

fn cell(base: f64, v: f64) -> String {
    let ratio = if base > 0.0 { v / base } else { 1.0 };
    let t = fmt_time(v);
    if (ratio - 1.0).abs() <= 0.05 {
        format!("`{t}` (✅ **{ratio:.2}x**)")
    } else if ratio > 1.0 {
        format!("`{t}` (❌ *{ratio:.2}x slower*)")
    } else {
        format!("`{t}` (🚀 **{:.2}x faster**)", 1.0 / ratio)
    }
}

fn render_table(out: &mut String, t: &Table) {
    let _ = writeln!(out, "#### {}\n", t.title);
    if !t.note.is_empty() {
        let _ = writeln!(out, "{}\n", t.note);
    }
    let mut header = String::from("|        |");
    let mut rule = String::from("|:-------|");
    for c in &t.columns {
        let _ = write!(header, " `{c}` |");
        rule.push_str(":---|");
    }
    let _ = writeln!(out, "{header}");
    let _ = writeln!(out, "{rule}");
    for (label, vals) in &t.rows {
        let base = vals.first().copied().unwrap_or(0.0);
        let mut row = if label.is_empty() {
            String::from("|        |")
        } else {
            format!("| `{label}` |")
        };
        for &v in vals {
            let _ = write!(row, " {} |", cell(base, v));
        }
        let _ = writeln!(out, "{row}");
    }
    out.push('\n');
}

// --- snapshot access helpers over the vendored Value tree ------------

fn get<'a>(v: &'a Value, key: &str) -> Option<&'a Value> {
    content_get(v.as_map()?, key)
}

fn num(v: &Value) -> Option<f64> {
    match *v {
        Value::I64(n) => Some(n as f64),
        Value::U64(n) => Some(n as f64),
        Value::F64(n) => Some(n),
        _ => None,
    }
}

fn numf(v: &Value, key: &str) -> Option<f64> {
    get(v, key).and_then(num)
}

fn field<'a>(report: &'a Value, key: &str) -> Option<&'a Value> {
    get(report, "fields").and_then(|f| get(f, key))
}

fn fieldf(report: &Value, key: &str) -> Option<f64> {
    field(report, key).and_then(num)
}

/// The per-experiment stage timings, in file order.
fn stages_table(report: &Value) -> Option<Table> {
    let stages = get(report, "stages")?.as_map()?;
    let mut columns = Vec::new();
    let mut vals = Vec::new();
    for (k, v) in stages {
        columns.push(k.as_str()?.to_string());
        vals.push(num(v)? * 1e6); // stages are milliseconds
    }
    if columns.is_empty() {
        return None;
    }
    Some(Table {
        title: "build stages".into(),
        note: "Wall time of each build/prepare stage; the first stage is the baseline.".into(),
        columns,
        rows: vec![(String::new(), vals)],
    })
}

/// Tables for one experiment: the generic stages table plus any
/// report-specific sweeps we know how to read.
fn tables_for(name: &str, report: &Value) -> Vec<Table> {
    let mut out = Vec::new();
    match name {
        "batch" => {
            // Batched vs one-at-a-time serving: per-query service time
            // at each batch size, sequential singles as the baseline.
            if let (Some(seq_rps), Some(Value::Seq(sweep))) =
                (fieldf(report, "sequential_rps"), field(report, "sweep"))
            {
                let mut columns = vec!["one-at-a-time".to_string()];
                let mut vals = vec![1e9 / seq_rps];
                for point in sweep {
                    let (Some(b), Some(rps)) =
                        (numf(point, "batch_size"), numf(point, "throughput_rps"))
                    else {
                        continue;
                    };
                    columns.push(format!("batch of {b}"));
                    vals.push(1e9 / rps);
                }
                out.push(Table {
                    title: "batched vs one-at-a-time serving".into(),
                    note: format!(
                        "Per-query service time over a real socket, {} queries across all \
                         eight search families on a {}-table lake; every sub-reply is \
                         asserted byte-equal to the in-process oracle before timing counts.",
                        fieldf(report, "total_queries").unwrap_or(0.0),
                        fieldf(report, "tables").unwrap_or(0.0),
                    ),
                    columns,
                    rows: vec![(String::new(), vals)],
                });
            }
            if let Some(Value::Seq(fams)) = field(report, "families") {
                let rows = fams
                    .iter()
                    .filter_map(|f| {
                        let name = get(f, "family")?.as_str()?.to_string();
                        let seq = numf(f, "sequential_rps")?;
                        let b16 = numf(f, "batch16_rps")?;
                        Some((name, vec![1e9 / seq, 1e9 / b16]))
                    })
                    .collect::<Vec<_>>();
                if !rows.is_empty() {
                    out.push(Table {
                        title: "per-family speedup at batch=16".into(),
                        note: "Families dominated by per-request overhead batch best; \
                               compute-bound families (fuzzy join) batch least."
                            .into(),
                        columns: vec!["one-at-a-time".into(), "batch of 16".into()],
                        rows,
                    });
                }
            }
        }
        "shard" => {
            if let Some(Value::Seq(sweep)) = field(report, "sweep") {
                let mut columns = Vec::new();
                let mut per_req = Vec::new();
                let mut p95 = Vec::new();
                for point in sweep {
                    let (Some(s), Some(rps), Some(p)) = (
                        numf(point, "shards"),
                        numf(point, "throughput_rps"),
                        numf(point, "p95_ms"),
                    ) else {
                        continue;
                    };
                    columns.push(format!("{s} shard(s)"));
                    per_req.push(1e9 / rps);
                    p95.push(p * 1e6);
                }
                if !columns.is_empty() {
                    out.push(Table {
                        title: "scatter-gather vs shard count".into(),
                        note: "Per-request service time and p95 latency as the lake is \
                               partitioned; every reply is asserted byte-equal to the \
                               single-pipeline oracle."
                            .into(),
                        columns,
                        rows: vec![("per-request".into(), per_req), ("p95".into(), p95)],
                    });
                }
            }
        }
        "ingest" => {
            if let Some(Value::Seq(knee)) = field(report, "segment_knee") {
                let mut columns = Vec::new();
                let mut snap = Vec::new();
                let mut mix = Vec::new();
                for point in knee {
                    let (Some(s), Some(sm), Some(qm)) = (
                        numf(point, "segments"),
                        numf(point, "snapshot_ms"),
                        numf(point, "query_mix_ms"),
                    ) else {
                        continue;
                    };
                    columns.push(format!("{s} segment(s)"));
                    snap.push(sm * 1e6);
                    mix.push(qm * 1e6);
                }
                if !columns.is_empty() {
                    out.push(Table {
                        title: "segmented ingest knee".into(),
                        note: "Snapshot cost and query-mix latency as live segments \
                               accumulate before compaction."
                            .into(),
                        columns,
                        rows: vec![("snapshot".into(), snap), ("query mix".into(), mix)],
                    });
                }
            }
        }
        "store" => {
            if let (Some(rebuild), Some(restore)) =
                (fieldf(report, "rebuild_ms"), fieldf(report, "restore_ms"))
            {
                out.push(Table {
                    title: "cold start: rebuild vs restore".into(),
                    note: "Booting the pipeline from raw tables vs from a td-store \
                           snapshot + WAL."
                        .into(),
                    columns: vec!["full rebuild".into(), "snapshot restore".into()],
                    rows: vec![(String::new(), vec![rebuild * 1e6, restore * 1e6])],
                });
            }
        }
        "trace" => {
            if let Some(Value::Seq(rounds)) = field(report, "overhead_rounds") {
                let rows = rounds
                    .iter()
                    .filter_map(|r| {
                        let round = numf(r, "round")?;
                        let off = numf(r, "off_p95_ns")?;
                        let on = numf(r, "on_p95_ns")?;
                        Some((format!("round {round} p95"), vec![off, on]))
                    })
                    .collect::<Vec<_>>();
                if !rows.is_empty() {
                    out.push(Table {
                        title: "tracing overhead".into(),
                        note: "p95 request latency with td-trace off (baseline) vs on; \
                               the trace_report binary asserts the overhead budget."
                            .into(),
                        columns: vec!["tracing off".into(), "tracing on".into()],
                        rows,
                    });
                }
            }
        }
        "serve" => {
            if let Some(Value::Seq(endpoints)) = field(report, "endpoints") {
                let rows = endpoints
                    .iter()
                    .filter_map(|e| {
                        let name = get(e, "endpoint")?.as_str()?.to_string();
                        let p50 = numf(e, "p50_ns")?;
                        let p95 = numf(e, "p95_ns")?;
                        let p99 = numf(e, "p99_ns")?;
                        Some((name, vec![p50, p95, p99]))
                    })
                    .collect::<Vec<_>>();
                if !rows.is_empty() {
                    out.push(Table {
                        title: "per-endpoint service latency".into(),
                        note: "p50 is each endpoint's baseline; the slower markers show \
                               tail amplification, not a regression."
                            .into(),
                        columns: vec!["p50".into(), "p95".into(), "p99".into()],
                        rows,
                    });
                }
            }
        }
        "lint" => {
            let mut columns = Vec::new();
            let mut vals = Vec::new();
            for rule in [
                "rule_ns_parse",
                "rule_ns_graph",
                "rule_ns_TD007",
                "rule_ns_TD008",
                "rule_ns_TD009",
                "rule_ns_TD010",
                "rule_ns_TD011",
                "rule_ns_TD012",
            ] {
                if let Some(ns) = fieldf(report, rule) {
                    columns.push(rule.trim_start_matches("rule_ns_").to_string());
                    vals.push(ns);
                }
            }
            if !columns.is_empty() {
                out.push(Table {
                    title: "lint pass timings".into(),
                    note: format!(
                        "Full-workspace scan over {} files; parse is the baseline.",
                        fieldf(report, "files_scanned").unwrap_or(0.0)
                    ),
                    columns,
                    rows: vec![(String::new(), vals)],
                });
            }
        }
        _ => {}
    }
    if let Some(t) = stages_table(report) {
        out.push(t);
    }
    out
}

/// One-line summary under each experiment heading.
fn headline(name: &str, report: &Value) -> String {
    let wall = numf(report, "wall_ms").map_or_else(String::new, |w| {
        format!(" Snapshot wall time {}.", fmt_time(w * 1e6))
    });
    let extra = match name {
        "batch" => fieldf(report, "speedup_batch16_vs_sequential").map(|s| {
            format!(
                " Batch-of-16 frames serve {s:.2}x the one-at-a-time throughput \
                 on the snapshot machine ({} core(s)).",
                fieldf(report, "cores").unwrap_or(0.0)
            )
        }),
        "shard" => fieldf(report, "speedup_4shard_vs_1shard").map(|s| {
            format!(
                " 4 shards serve {s:.2}x the 1-shard throughput on the snapshot \
                 machine ({} core(s)).",
                fieldf(report, "cores").unwrap_or(0.0)
            )
        }),
        "store" => fieldf(report, "speedup_vs_rebuild")
            .map(|s| format!(" Restore is {s:.2}x cheaper than a full rebuild.")),
        "lint" => fieldf(report, "unwaived_total")
            .map(|n| format!(" {n} unwaived diagnostics (asserted zero).")),
        _ => None,
    };
    format!("{}{}", extra.unwrap_or_default(), wall)
}

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let mut benches_dir = "benches".to_string();
    let mut out_path = "BENCHMARKS.md".to_string();
    let mut i = 1;
    while i + 1 < argv.len() {
        match argv[i].as_str() {
            "--benches" => benches_dir = argv[i + 1].clone(),
            "--out" => out_path = argv[i + 1].clone(),
            _ => {}
        }
        i += 2;
    }

    let mut snapshots: Vec<(String, Value)> = Vec::new();
    let entries = std::fs::read_dir(&benches_dir).expect("read benches dir");
    let mut paths: Vec<std::path::PathBuf> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("BENCH_") && n.ends_with(".json"))
        })
        .collect();
    paths.sort();
    for path in &paths {
        let text = std::fs::read_to_string(path).expect("read snapshot");
        let v = serde_json::parse_value(&text).expect("parse snapshot");
        let name = get(&v, "experiment")
            .and_then(Value::as_str)
            .unwrap_or("unknown")
            .to_string();
        snapshots.push((name, v));
    }
    assert!(
        !snapshots.is_empty(),
        "no BENCH_*.json snapshots under {benches_dir}"
    );

    let mut md = String::new();
    md.push_str("# Benchmarks\n\n## Table of Contents\n\n");
    md.push_str("- [Overview](#overview)\n- [Benchmark Results](#benchmark-results)\n");
    for (name, _) in &snapshots {
        let _ = writeln!(md, "    - [{name}](#{name})");
    }
    md.push_str(
        "\n## Overview\n\n\
         Comparison tables rendered from the committed `benches/BENCH_*.json`\n\
         snapshots. The first column of every row is that row's `1.00x`\n\
         baseline; later columns are annotated relative to it. Absolute\n\
         numbers are one machine's datapoint — the *relations* are the\n\
         contract, asserted by the report binaries themselves (a snapshot\n\
         violating them cannot be regenerated, because the generator aborts\n\
         instead of writing it). Regenerate this file with\n\
         `cargo run --release -p td-bench --bin benchmarks_md` after\n\
         refreshing any snapshot.\n\n\
         ## Benchmark Results\n\n",
    );
    for (name, report) in &snapshots {
        let _ = writeln!(md, "### {name}\n");
        let line = headline(name, report);
        if !line.is_empty() {
            let _ = writeln!(md, "{}\n", line.trim_start());
        }
        for t in tables_for(name, report) {
            render_table(&mut md, &t);
        }
    }
    md.push_str("---\nGenerated by `td-bench --bin benchmarks_md` from `benches/BENCH_*.json`.\n");

    std::fs::write(&out_path, &md).expect("write BENCHMARKS.md");
    println!(
        "wrote {out_path} from {} snapshot(s) under {benches_dir}",
        snapshots.len()
    );
}
