//! E01 — Figure 1 end-to-end: every component of the discovery
//! architecture exercised on one synthetic lake, with build times.
//!
//! Reproduces: the architecture diagram of the tutorial as a working
//! system (the paper's only figure).

use td::core::{DiscoveryPipeline, PipelineConfig};
use td::embed::{ContextualEncoder, DomainEmbedder};
use td::nav::{
    rank_homographs, HomographConfig, LinkageConfig, LinkageGraph, Organization, OrganizeConfig,
};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::TableId;
use td_bench::{ms, print_table, record, time, BenchReport};

fn main() {
    let mut report = BenchReport::new("e01_pipeline");
    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 1000,
            rows: (20, 150),
            cols: (2, 6),
            seed: 1,
            ..Default::default()
        })
    });
    println!(
        "E01: end-to-end pipeline over {} tables / {} columns (generated in {} ms)",
        gl.lake.len(),
        gl.lake.num_columns(),
        ms(t_gen)
    );

    let (pipeline, t_build) =
        time(|| DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default()));

    let (graph, t_graph) = time(|| LinkageGraph::build(&gl.lake, &LinkageConfig::default()));
    let emb = DomainEmbedder::from_registry(&gl.registry, 2_048, 64, 0.4, 5);
    let enc = ContextualEncoder::default();
    let (org, t_org) = time(|| {
        let items: Vec<(TableId, Vec<f32>)> = gl
            .lake
            .iter()
            .map(|(id, t)| (id, enc.encode_table_vector(&emb, t)))
            .collect();
        Organization::build(&items, &OrganizeConfig::default())
    });
    let (homographs, t_homo) = time(|| rank_homographs(&gl.lake, &HomographConfig::default()));

    let mut rows = vec![
        vec![
            "offline pipeline (profile+understand+index)".into(),
            ms(t_build),
        ],
        vec!["linkage graph".into(), ms(t_graph)],
        vec!["organization".into(), ms(t_org)],
        vec!["homograph ranking".into(), ms(t_homo)],
    ];

    // Online queries.
    let (_, qt) = gl.lake.iter().next().unwrap();
    let qt = qt.clone();
    let (kw, t_kw) = time(|| pipeline.search_keyword("geography dataset", 10));
    rows.push(vec![format!("keyword query ({} hits)", kw.len()), ms(t_kw)]);
    if let Some(ci) = qt.columns.iter().position(|c| !c.is_numeric()) {
        let (join, t_join) = time(|| pipeline.search_joinable(&qt.columns[ci], 10));
        rows.push(vec![
            format!("joinable query ({} hits)", join.len()),
            ms(t_join),
        ]);
    }
    let (un, t_un) = time(|| pipeline.search_unionable(&qt, 10));
    rows.push(vec![
        format!("unionable query ({} hits)", un.len()),
        ms(t_un),
    ]);

    print_table("component timings", &["component", "time (ms)"], &rows);
    println!(
        "\nlinkage edges: {}, organization nodes: {}, homograph candidates: {}",
        graph.num_edges(),
        org.num_nodes(),
        homographs.len()
    );
    let payload = serde_json::json!({
        "tables": gl.lake.len(),
        "columns": gl.lake.num_columns(),
        "build_ms": t_build.as_secs_f64() * 1e3,
        "linkage_edges": graph.num_edges(),
        "org_nodes": org.num_nodes(),
    });
    record("e01_pipeline", &payload);
    report
        .stage("generate", t_gen)
        .stage("pipeline_build", t_build)
        .stage("linkage_graph", t_graph)
        .stage("organization", t_org)
        .stage("homograph_ranking", t_homo)
        .stage("query_keyword", t_kw)
        .stage("query_unionable", t_un)
        .merge(&payload);
    report.finish();
}
