//! E02 — LSH Ensemble (Zhu et al., VLDB 2016): containment search under
//! cardinality skew.
//!
//! Regenerates the paper's two headline shapes:
//! 1. Jaccard-tuned LSH misses high-containment large domains that
//!    containment search finds (recall gap grows with skew).
//! 2. More cardinality partitions → better precision at equal recall.

use std::collections::HashSet;
use td::core::join::{ContainmentJoinSearch, JaccardJoinSearch};
use td::table::gen::bench_join::{JoinBenchConfig, JoinBenchmark};
use td::table::TableId;
use td_bench::{print_table, record, BenchReport};

fn recall_precision(hits: &[TableId], relevant: &HashSet<TableId>) -> (f64, f64) {
    if relevant.is_empty() {
        return (0.0, 0.0);
    }
    let tp = hits.iter().filter(|t| relevant.contains(t)).count();
    let recall = tp as f64 / relevant.len() as f64;
    let precision = if hits.is_empty() {
        1.0
    } else {
        tp as f64 / hits.len() as f64
    };
    (recall, precision)
}

fn main() {
    let mut report = BenchReport::new("e02_lsh_ensemble");
    let bench = JoinBenchmark::generate(&JoinBenchConfig {
        query_size: 400,
        num_relevant: 80,
        num_noise: 40,
        card_range: (50, 40_000), // three orders of magnitude of skew
        seed: 2,
        ..Default::default()
    });
    let query = &bench.query.columns[bench.query_key];
    println!(
        "E02: containment search, {} corpus tables, cardinalities {}..{}",
        bench.lake.len(),
        50,
        40_000
    );

    // --- Part 1: containment thresholds, ensemble vs Jaccard-LSH --------
    let jaccard = report.measure("jaccard_build", || {
        JaccardJoinSearch::build(&bench.lake, 256)
    });
    let ensemble = report.measure("ensemble_build", || {
        ContainmentJoinSearch::build(&bench.lake, 256, 16)
    });
    let mut rows = Vec::new();
    let mut sweep = Vec::new();
    for &t in &[0.25, 0.5, 0.7, 0.9] {
        let relevant: HashSet<TableId> = bench
            .truth
            .iter()
            .filter(|x| x.containment >= t + 0.05) // clear of the boundary
            .map(|x| x.table)
            .collect();
        let ens_hits: Vec<TableId> = ensemble
            .query_threshold(query, t)
            .into_iter()
            .map(|(c, _)| c.table)
            .collect();
        // The classic baseline: LSH tuned for *Jaccard* threshold t.
        let lsh_hits: Vec<TableId> = jaccard
            .lsh_threshold_query(query, t)
            .into_iter()
            .map(|(c, _)| c.table)
            .collect();
        let (er, ep) = recall_precision(&ens_hits, &relevant);
        let (jr, jp) = recall_precision(&lsh_hits, &relevant);
        rows.push(vec![
            format!("{t:.2}"),
            format!("{er:.2}"),
            format!("{ep:.2}"),
            format!("{jr:.2}"),
            format!("{jp:.2}"),
        ]);
        let payload = serde_json::json!({
            "threshold": t, "ensemble_recall": er, "ensemble_precision": ep,
            "jaccard_lsh_recall": jr, "jaccard_lsh_precision": jp,
        });
        record("e02_lsh_ensemble", &payload);
        sweep.push(payload);
    }
    print_table(
        "containment threshold sweep (relevant = containment ≥ t+0.05)",
        &[
            "t",
            "ens recall",
            "ens prec",
            "jacc-LSH recall",
            "jacc-LSH prec",
        ],
        &rows,
    );

    // --- Part 2: partition-count ablation --------------------------------
    let t = 0.7;
    let relevant: HashSet<TableId> = bench
        .truth
        .iter()
        .filter(|x| x.containment >= 0.75)
        .map(|x| x.table)
        .collect();
    let mut rows = Vec::new();
    let mut ablation = Vec::new();
    for &parts in &[1usize, 2, 4, 8, 16, 32] {
        let ens = ContainmentJoinSearch::build(&bench.lake, 256, parts);
        let (hits_scored, raw) = ens.query_threshold_with_stats(query, t);
        let hits: Vec<TableId> = hits_scored.into_iter().map(|(c, _)| c.table).collect();
        let (r, p) = recall_precision(&hits, &relevant);
        rows.push(vec![
            parts.to_string(),
            format!("{r:.2}"),
            format!("{p:.2}"),
            raw.to_string(),
        ]);
        let payload = serde_json::json!({
            "partitions": parts, "recall": r, "precision": p, "raw_candidates": raw,
        });
        record("e02_partitions", &payload);
        ablation.push(payload);
    }
    print_table(
        &format!("partition ablation at t = {t} (raw candidates = pre-verification work)"),
        &["partitions", "recall", "precision", "raw candidates"],
        &rows,
    );
    println!("\nexpected shape: ensemble recall >> Jaccard-LSH recall at high t;");
    println!("raw candidate work shrinks as partitions grow, at equal recall.");
    report
        .field("threshold_sweep", &sweep)
        .field("partition_ablation", &ablation);
    report.finish();
}
