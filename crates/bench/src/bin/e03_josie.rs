//! E03 — JOSIE (Zhu et al., SIGMOD 2019): exact top-k overlap search and
//! the cost-model ablation (merge vs probe vs adaptive).
//!
//! Two workloads expose both regimes of the trade-off JOSIE's cost model
//! navigates:
//!
//! * **Zipf tokens** (web-table-like): a few tokens appear in most sets,
//!   so full merging reads enormous posting lists — probing with exact
//!   verification and early exit wins at small k.
//! * **Near-disjoint tokens** (entity-id-like): posting lists are tiny,
//!   so merging is almost free and probing's per-candidate verification
//!   is pure overhead — merging wins.
//!
//! The adaptive strategy should track the cheaper regime in both, while
//! all three return identical exact answers.

use td::core::join::{ExactJoinSearch, ExactStrategy};
use td::table::gen::lakegen::Zipf;
use td::table::{Column, DataLake, Table, Value};
use td_bench::{ms, print_table, record, time, BenchReport};

/// Corpus whose sets draw tokens from a Zipf(s) vocabulary.
fn zipf_lake(num_sets: usize, set_size: usize, vocab: usize, s: f64, seed: u64) -> DataLake {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    let zipf = Zipf::new(vocab, s);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut lake = DataLake::new();
    for t in 0..num_sets {
        let values: Vec<Value> = (0..set_size)
            .map(|_| Value::Text(format!("tok{}", zipf.sample(&mut rng))))
            .collect();
        lake.add(
            Table::new(format!("set_{t:05}.csv"), vec![Column::new("v", values)])
                .expect("one column"),
        );
    }
    lake
}

fn run_workload(name: &str, lake: &DataLake, query: &Column, report: &mut BenchReport) {
    let (search, t_build) = time(|| ExactJoinSearch::build(lake));
    report.stage(&format!("build[{name}]"), t_build);
    let mut runs = Vec::new();
    println!(
        "\n--- workload: {name} ({} sets, index in {} ms) ---",
        search.len(),
        ms(t_build)
    );
    let mut rows = Vec::new();
    for &k in &[1usize, 5, 10, 20, 50] {
        let mut cells = vec![k.to_string()];
        let mut reference: Option<Vec<usize>> = None;
        for (sname, strat) in [
            ("merge", ExactStrategy::Merge),
            ("probe", ExactStrategy::Probe),
            ("adaptive", ExactStrategy::Adaptive),
        ] {
            let (out, t) = time(|| search.search(query, k, strat));
            let (hits, stats) = out;
            let overlaps: Vec<usize> = hits.iter().map(|h| h.overlap).collect();
            match &reference {
                None => reference = Some(overlaps),
                Some(r) => {
                    assert_eq!(r, &overlaps, "strategy {sname} disagreed at k={k}")
                }
            }
            let cost = stats.postings_read + stats.verify_tokens_read;
            cells.push(format!("{cost} ({} ms)", ms(t)));
            let payload = serde_json::json!({
                "workload": name, "k": k, "strategy": sname,
                "postings_read": stats.postings_read,
                "sets_verified": stats.sets_verified,
                "verify_tokens": stats.verify_tokens_read,
                "total_cost": cost,
                "ms": t.as_secs_f64() * 1e3,
            });
            record("e03_josie", &payload);
            runs.push(payload);
        }
        rows.push(cells);
    }
    print_table(
        "total elements touched = postings read + verification tokens (time)",
        &["k", "merge", "probe", "adaptive"],
        &rows,
    );
    report.field(&format!("runs[{name}]"), &runs);
}

fn main() {
    let mut report = BenchReport::new("e03_josie");
    println!("E03: exact top-k overlap (JOSIE) — cost-model ablation");

    // Web-table-like: heavy-hitter tokens shared by most sets.
    let zl = zipf_lake(3_000, 80, 2_000, 1.1, 7);
    let zq = zl.table(td::table::TableId(42)).columns[0].clone();
    run_workload("zipf tokens (heavy posting lists)", &zl, &zq, &mut report);

    // Entity-id-like: wide vocabulary, almost disjoint sets.
    let dl = zipf_lake(3_000, 80, 2_000_000, 0.0, 9);
    let dq = dl.table(td::table::TableId(42)).columns[0].clone();
    run_workload(
        "near-disjoint tokens (short posting lists)",
        &dl,
        &dq,
        &mut report,
    );

    println!("\nexpected shape: identical answers everywhere; under Zipf tokens");
    println!("probe/adaptive touch far fewer elements than merge at small k;");
    println!("under disjoint tokens merge is near-free and adaptive follows it.");
    report.finish();
}
