//! E04 — Table Union Search (Nargesian et al., VLDB 2018): the
//! attribute-unionability measure ablation.
//!
//! Regenerates the paper's shape: the ensemble of syntactic + semantic +
//! NL measures dominates any single measure (MAP / P@k), because
//! candidates with low value overlap but same-domain attributes are only
//! reachable through the semantic signals.

use std::collections::HashSet;
use td::core::metrics::{mean_average_precision, ndcg_at_k, precision_at_k};
use td::core::union::{MeasureContext, TusSearch, UnionMeasure};
use td::embed::{DomainEmbedder, NGramEmbedder};
use td::table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};
use td::table::TableId;
use td_bench::{print_table, record, BenchReport};

fn main() {
    let mut report = BenchReport::new("e04_tus");
    // Decoy-free benchmark: TUS's column-level definition of unionability
    // (relation decoys are SANTOS's experiment, E05).
    let bench = UnionBenchmark::generate(&UnionBenchConfig {
        num_queries: 5,
        positives: 8,
        partials: 4,
        relation_decoys: 0,
        homograph_decoys: 0,
        noise: 40,
        rows: 100,
        key_slice: 200,
        key_overlap: 0.25,
        homograph_range: 1,
        ..Default::default()
    });
    println!(
        "E04: union search, {} queries over {} corpus tables",
        bench.queries.len(),
        bench.lake.len()
    );
    let tus = report.measure("tus_build", || {
        TusSearch::build(
            &bench.lake,
            MeasureContext {
                domain_emb: DomainEmbedder::from_registry(&bench.registry, 4_096, 64, 0.4, 3),
                ngram_emb: NGramEmbedder::new(64, 3, 3),
                sample: 48,
            },
        )
    });

    let mut rows = Vec::new();
    let mut measures = Vec::new();
    for measure in [
        UnionMeasure::Syntactic,
        UnionMeasure::Semantic,
        UnionMeasure::NaturalLanguage,
        UnionMeasure::Ensemble,
    ] {
        let runs: Vec<(Vec<TableId>, HashSet<TableId>)> = (0..bench.queries.len())
            .map(|q| {
                let res: Vec<TableId> = tus
                    .search(&bench.queries[q], 20, measure)
                    .into_iter()
                    .map(|(t, _)| t)
                    .collect();
                let rel: HashSet<TableId> = bench.tables_with_grade(q, 2).into_iter().collect();
                (res, rel)
            })
            .collect();
        let map = mean_average_precision(&runs);
        let mut cells = vec![format!("{measure:?}"), format!("{map:.3}")];
        for &k in &[5usize, 10, 20] {
            let p = runs
                .iter()
                .map(|(res, rel)| precision_at_k(res, rel, k.min(rel.len())))
                .sum::<f64>()
                / runs.len() as f64;
            cells.push(format!("{p:.3}"));
        }
        // Graded NDCG with partials as grade 1.
        let ndcg = (0..bench.queries.len())
            .map(|q| {
                let grades: std::collections::HashMap<TableId, u8> = bench
                    .truth_for(q)
                    .into_iter()
                    .map(|t| (t.table, t.grade))
                    .collect();
                ndcg_at_k(&runs[q].0, &grades, 10)
            })
            .sum::<f64>()
            / bench.queries.len() as f64;
        cells.push(format!("{ndcg:.3}"));
        let payload = serde_json::json!({
            "measure": format!("{measure:?}"), "map": map, "ndcg10": ndcg,
        });
        record("e04_tus", &payload);
        measures.push(payload);
        rows.push(cells);
    }
    print_table(
        "measure ablation",
        &["measure", "MAP", "P@5*", "P@10*", "P@20*", "NDCG@10"],
        &rows,
    );
    println!("  (* P@k capped at the number of relevant tables)");
    println!("\nexpected shape: Ensemble >= max(single measures); Syntactic weakest");
    println!("under low value overlap; Semantic carries most of the signal.");
    report.field("measures", &measures);
    report.finish();
}
