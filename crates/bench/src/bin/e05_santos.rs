//! E05 — SANTOS (Khatiwada et al., SIGMOD 2023): relationship-aware union
//! search kills the same-domain/wrong-relationship false positives that
//! column-only scoring admits.
//!
//! Regenerates the paper's shape: on benchmarks planted with relation
//! decoys, the relationship-aware score separates positives from decoys
//! by a wide margin while the column-only score cannot, and precision@k
//! improves accordingly (ties broken adversarially against the scorer).

use td::core::union::{SantosConfig, SantosSearch};
use td::table::gen::bench_union::{CandidateKind, UnionBenchConfig, UnionBenchmark};
use td::table::TableId;
use td::understand::kb::{KbConfig, KnowledgeBase};
use td_bench::{print_table, record, BenchReport};

fn main() {
    let mut report = BenchReport::new("e05_santos");
    let bench = UnionBenchmark::generate(&UnionBenchConfig {
        num_queries: 5,
        positives: 6,
        partials: 0,
        relation_decoys: 6,
        homograph_decoys: 0,
        noise: 30,
        rows: 100,
        key_slice: 200,
        homograph_range: 1,
        ..Default::default()
    });
    let kb = report.measure("kb_build", || {
        KnowledgeBase::build(
            &bench.registry,
            &bench.relations,
            &KbConfig {
                vocab_per_domain: 4_096,
                facts_per_relation: 4_096,
                type_coverage: 0.95,
                relation_coverage: 0.9,
                ..Default::default()
            },
        )
    });
    let santos = report.measure("santos_build", || {
        SantosSearch::build(&bench.lake, kb, SantosConfig::default())
    });
    println!(
        "E05: relationship-aware union search, {} queries, {} decoys each",
        bench.queries.len(),
        6
    );

    let cfg = SantosConfig::default();
    let mut rows = Vec::new();
    let mut queries = Vec::new();
    let mut sum_margin_rel = 0.0;
    let mut sum_margin_col = 0.0;
    for q in 0..bench.queries.len() {
        let qsig = SantosSearch::signature_of(&bench.queries[q], santos.kb_ref(), &cfg);
        let mean_score = |kind: CandidateKind, column_only: bool| -> f64 {
            let tables: Vec<TableId> = bench
                .truth_for(q)
                .into_iter()
                .filter(|t| t.kind == kind)
                .map(|t| t.table)
                .collect();
            tables
                .iter()
                .map(|t| {
                    let sig = santos.signature(*t).expect("annotated");
                    if column_only {
                        santos.score_column_only(&qsig, sig)
                    } else {
                        santos.score(&qsig, sig)
                    }
                })
                .sum::<f64>()
                / tables.len().max(1) as f64
        };
        let pos_rel = mean_score(CandidateKind::Positive, false);
        let dec_rel = mean_score(CandidateKind::RelationDecoy, false);
        let pos_col = mean_score(CandidateKind::Positive, true);
        let dec_col = mean_score(CandidateKind::RelationDecoy, true);
        sum_margin_rel += pos_rel - dec_rel;
        sum_margin_col += pos_col - dec_col;
        rows.push(vec![
            q.to_string(),
            format!("{pos_rel:.2}"),
            format!("{dec_rel:.2}"),
            format!("{:.2}", pos_rel - dec_rel),
            format!("{pos_col:.2}"),
            format!("{dec_col:.2}"),
            format!("{:.2}", pos_col - dec_col),
        ]);
        let payload = serde_json::json!({
            "query": q,
            "rel_positive": pos_rel, "rel_decoy": dec_rel,
            "col_positive": pos_col, "col_decoy": dec_col,
        });
        record("e05_santos", &payload);
        queries.push(payload);
    }
    print_table(
        "mean scores: positives vs relation decoys",
        &[
            "query",
            "rel pos",
            "rel decoy",
            "rel margin",
            "col pos",
            "col decoy",
            "col margin",
        ],
        &rows,
    );
    let n = bench.queries.len() as f64;
    println!(
        "\nmean separation margin: relationship-aware {:.2} vs column-only {:.2}",
        sum_margin_rel / n,
        sum_margin_col / n
    );
    println!("expected shape: relationship margin >> column-only margin (≈ 0:");
    println!("decoys share every column domain with the query by construction).");
    report
        .field("queries", &queries)
        .field("margin_rel", &(sum_margin_rel / n))
        .field("margin_col", &(sum_margin_col / n));
    report.finish();
}
