//! E06 — Starmie (Fan et al., 2022): contextualized column encoders and
//! the vector-index trade-off.
//!
//! Regenerates two shapes: (1) on homograph-heavy queries, contextual
//! encoding (α > 0) beats context-free encoding at column retrieval;
//! (2) HNSW approaches the exact flat scan's quality at a fraction of the
//! query latency (measured at a larger corpus in E17; here quality).

use std::collections::HashSet;
use td::core::union::{StarmieConfig, StarmieSearch, VectorBackend};
use td::embed::{ContextualEncoder, DomainEmbedder};
use td::table::gen::bench_union::{CandidateKind, UnionBenchConfig, UnionBenchmark};
use td::table::TableId;
use td_bench::{ms, print_table, record, time, BenchReport};

fn column_precision(
    s: &StarmieSearch<DomainEmbedder>,
    bench: &UnionBenchmark,
    q: usize,
    k: usize,
) -> (f64, usize) {
    let pos: HashSet<TableId> = bench.tables_with_grade(q, 2).into_iter().collect();
    let decoys: HashSet<TableId> = bench
        .truth_for(q)
        .into_iter()
        .filter(|t| t.kind == CandidateKind::HomographDecoy)
        .map(|t| t.table)
        .collect();
    let hits = s.search_column(&bench.queries[q], 0, k);
    let good = hits.iter().filter(|(c, _)| pos.contains(&c.table)).count();
    let fooled = hits
        .iter()
        .filter(|(c, _)| decoys.contains(&c.table))
        .count();
    (good as f64 / k as f64, fooled)
}

fn main() {
    let mut report = BenchReport::new("e06_starmie");
    let bench = UnionBenchmark::generate(&UnionBenchConfig {
        num_queries: 5,
        positives: 6,
        partials: 0,
        relation_decoys: 0,
        homograph_decoys: 6,
        noise: 30,
        rows: 100,
        key_slice: 200,
        homograph_range: 500,
        ..Default::default()
    });
    println!(
        "E06: contextual column encoders, {} queries with homograph decoys",
        bench.queries.len()
    );

    // --- Part 1: context mixing weight ablation --------------------------
    let mut rows = Vec::new();
    let mut alphas = Vec::new();
    for &alpha in &[0.0f32, 0.2, 0.4, 0.6, 0.8] {
        let s = StarmieSearch::build(
            &bench.lake,
            DomainEmbedder::from_registry(&bench.registry, 4_096, 64, 0.4, 3),
            StarmieConfig {
                encoder: ContextualEncoder { alpha, sample: 48 },
                backend: VectorBackend::Flat,
                ..Default::default()
            },
        );
        let mut p_sum = 0.0;
        let mut fooled_sum = 0usize;
        for q in 0..bench.queries.len() {
            let (p, fooled) = column_precision(&s, &bench, q, 6);
            p_sum += p;
            fooled_sum += fooled;
        }
        let p = p_sum / bench.queries.len() as f64;
        rows.push(vec![
            format!("{alpha:.1}"),
            format!("{p:.2}"),
            fooled_sum.to_string(),
        ]);
        let payload = serde_json::json!({
            "alpha": alpha, "column_p_at_6": p, "decoys_in_top6": fooled_sum,
        });
        record("e06_alpha", &payload);
        alphas.push(payload);
    }
    print_table(
        "context weight α vs column-retrieval quality (query = homograph key column)",
        &[
            "alpha",
            "P@6 (positives)",
            "decoy columns in top-6 (all queries)",
        ],
        &rows,
    );

    // --- Part 2: flat vs HNSW backends ------------------------------------
    let mut rows = Vec::new();
    let mut backends = Vec::new();
    for (name, backend) in [
        ("flat (exact)", VectorBackend::Flat),
        ("HNSW", VectorBackend::Hnsw),
    ] {
        let (s, t_build) = time(|| {
            StarmieSearch::build(
                &bench.lake,
                DomainEmbedder::from_registry(&bench.registry, 4_096, 64, 0.4, 3),
                StarmieConfig {
                    encoder: ContextualEncoder {
                        alpha: 0.5,
                        sample: 48,
                    },
                    backend,
                    ..Default::default()
                },
            )
        });
        let mut p_sum = 0.0;
        let (_, t_query) = time(|| {
            for q in 0..bench.queries.len() {
                let (p, _) = column_precision(&s, &bench, q, 6);
                p_sum += p;
            }
        });
        let p = p_sum / bench.queries.len() as f64;
        rows.push(vec![
            name.to_string(),
            format!("{p:.2}"),
            ms(t_build),
            ms(t_query),
        ]);
        let payload = serde_json::json!({
            "backend": name, "column_p_at_6": p,
            "build_ms": t_build.as_secs_f64() * 1e3,
            "query_ms": t_query.as_secs_f64() * 1e3,
        });
        record("e06_backend", &payload);
        backends.push(payload);
    }
    print_table(
        "vector backend at α = 0.5",
        &["backend", "P@6", "build (ms)", "5-query time (ms)"],
        &rows,
    );
    println!("\nexpected shape: P@6 rises steeply from α=0 (decoys dominate) and");
    println!("saturates; HNSW quality ≈ flat. Latency separation appears at scale (E17).");
    report
        .field("alpha_sweep", &alphas)
        .field("backends", &backends);
    report.finish();
}
