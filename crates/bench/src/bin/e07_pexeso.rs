//! E07 — PEXESO (Dong et al., ICDE 2021): embedding-predicate fuzzy joins
//! and pivot-based filtering.
//!
//! Regenerates two shapes: (1) fuzzy join recall on dirty (typo'd) keys
//! where exact equi-join finds nothing; (2) pivot filtering prunes value
//! pairs without changing results, with more pivots pruning more.

use td::core::join::FuzzyJoinSearch;
use td::embed::NGramEmbedder;
use td::table::gen::words::vocab_word;
use td::table::{Column, DataLake, Table};
use td_bench::{ms, print_table, record, time, BenchReport};

/// Swap two interior characters (one deterministic typo).
fn typo(s: &str, salt: u64) -> String {
    let mut c: Vec<char> = s.chars().collect();
    if c.len() >= 4 {
        let i = 1 + (td::sketch::hash_u64(salt, 0x7E) as usize) % (c.len() - 2);
        c.swap(i, i - 1);
    }
    c.into_iter().collect()
}

fn main() {
    let mut report = BenchReport::new("e07_pexeso");
    // Corpus: one dirty copy of the query values (every value typo'd),
    // one half-dirty copy, and unrelated columns.
    let n = 120u64;
    let originals: Vec<String> = (0..n).map(|i| vocab_word(0xE7, i, 3)).collect();
    let mut lake = DataLake::new();
    let dirty: Vec<String> = originals
        .iter()
        .enumerate()
        .map(|(i, s)| typo(s, i as u64))
        .collect();
    lake.add(Table::new("dirty_full.csv", vec![Column::from_strings("w", &dirty)]).unwrap());
    let half: Vec<String> = originals
        .iter()
        .enumerate()
        .map(|(i, s)| {
            if i % 2 == 0 {
                typo(s, i as u64)
            } else {
                vocab_word(0xAB, i as u64 + 900, 3)
            }
        })
        .collect();
    lake.add(Table::new("dirty_half.csv", vec![Column::from_strings("w", &half)]).unwrap());
    for u in 0..4u64 {
        let other: Vec<String> = (0..n).map(|i| vocab_word(0x99 + u, i + 5_000, 3)).collect();
        lake.add(
            Table::new(
                format!("unrelated_{u}.csv"),
                vec![Column::from_strings("w", &other)],
            )
            .unwrap(),
        );
    }
    let query = Column::from_strings("w", &originals);
    println!(
        "E07: fuzzy join over typo'd values, {} corpus columns",
        lake.num_columns()
    );

    // Exact equi-join baseline: zero overlap with the dirty copies.
    let qset = query.token_set();
    let exact_overlap = lake.table(td::table::TableId(0)).columns[0]
        .token_set()
        .intersection(&qset)
        .count();
    println!("exact equi-join overlap with the fully dirty copy: {exact_overlap}");

    // --- Part 1: tau sweep -------------------------------------------------
    let search = report.measure("fuzzy_build", || {
        FuzzyJoinSearch::build(&lake, NGramEmbedder::new(64, 3, 7), 8, 128)
    });
    let mut rows = Vec::new();
    let mut tau_sweep = Vec::new();
    for &tau in &[0.4f32, 0.5, 0.6, 0.7, 0.8] {
        let (hits, _) = search.search(&query, tau, 6);
        let score_of = |name: &str| {
            hits.iter()
                .find(|(c, _)| lake.table(c.table).name == name)
                .map_or(0.0, |(_, s)| *s)
        };
        rows.push(vec![
            format!("{tau:.1}"),
            format!("{:.2}", score_of("dirty_full.csv")),
            format!("{:.2}", score_of("dirty_half.csv")),
            format!("{:.2}", score_of("unrelated_0.csv")),
        ]);
        let payload = serde_json::json!({
            "tau": tau,
            "dirty_full": score_of("dirty_full.csv"),
            "dirty_half": score_of("dirty_half.csv"),
            "unrelated": score_of("unrelated_0.csv"),
        });
        record("e07_tau", &payload);
        tau_sweep.push(payload);
    }
    print_table(
        "fuzzy containment by similarity threshold τ",
        &["tau", "dirty_full", "dirty_half", "unrelated"],
        &rows,
    );

    // --- Part 2: pivot-count ablation ---------------------------------------
    let mut rows = Vec::new();
    let mut pivot_sweep = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for &pivots in &[0usize, 2, 4, 8, 16] {
        let s = FuzzyJoinSearch::build(&lake, NGramEmbedder::new(64, 3, 7), pivots, 128);
        let (out, t) = time(|| s.search(&query, 0.6, 6));
        let (hits, stats) = out;
        let scores: Vec<String> = hits.iter().map(|(_, s)| format!("{s:.3}")).collect();
        match &reference {
            None => reference = Some(scores),
            Some(r) => assert_eq!(r, &scores, "pivots changed results"),
        }
        let total = stats.pairs_verified + stats.pairs_pruned;
        rows.push(vec![
            pivots.to_string(),
            stats.pairs_verified.to_string(),
            stats.pairs_pruned.to_string(),
            format!(
                "{:.0}%",
                100.0 * stats.pairs_pruned as f64 / total.max(1) as f64
            ),
            ms(t),
        ]);
        let payload = serde_json::json!({
            "pivots": pivots,
            "verified": stats.pairs_verified,
            "pruned": stats.pairs_pruned,
            "ms": t.as_secs_f64() * 1e3,
        });
        record("e07_pivots", &payload);
        pivot_sweep.push(payload);
    }
    print_table(
        "pivot filtering at τ = 0.6, n-gram embeddings (identical results across rows)",
        &[
            "pivots",
            "pairs verified",
            "pairs pruned",
            "pruned %",
            "time (ms)",
        ],
        &rows,
    );

    // --- Part 3: pruning on clustered embeddings ----------------------------
    // N-gram vectors barely cluster, so the triangle bound is loose. Real
    // word embeddings cluster by semantic domain — PEXESO's regime — which
    // the domain-anchored model reproduces: pruning becomes substantial.
    use td::embed::DomainEmbedder;
    use td::table::gen::domains::DomainRegistry;
    let r = DomainRegistry::standard();
    let mut clake = DataLake::new();
    for (name, lo) in [
        ("city", 0u64),
        ("gene", 0),
        ("animal", 0),
        ("company", 0),
        ("city", 500),
    ] {
        let d = r.id(name).unwrap();
        let col = Column::new(
            name,
            (lo..lo + 100).map(|i| r.value(d, i)).collect::<Vec<_>>(),
        );
        clake.add(Table::new(format!("{name}_{lo}.csv"), vec![col]).unwrap());
    }
    let cquery = Column::new(
        "q",
        (200..300u64)
            .map(|i| r.value(r.id("city").unwrap(), i))
            .collect::<Vec<_>>(),
    );
    let mut rows = Vec::new();
    let mut clustered_sweep = Vec::new();
    let mut reference: Option<Vec<String>> = None;
    for &pivots in &[0usize, 2, 4, 8, 16] {
        let emb = DomainEmbedder::from_registry(&r, 2_048, 64, 0.3, 11);
        let s = FuzzyJoinSearch::build(&clake, emb, pivots, 128);
        let (out, t) = time(|| s.search(&cquery, 0.6, 5));
        let (hits, stats) = out;
        let scores: Vec<String> = hits.iter().map(|(_, s)| format!("{s:.3}")).collect();
        match &reference {
            None => reference = Some(scores),
            Some(rf) => assert_eq!(rf, &scores, "pivots changed results"),
        }
        let total = stats.pairs_verified + stats.pairs_pruned;
        rows.push(vec![
            pivots.to_string(),
            stats.pairs_verified.to_string(),
            stats.pairs_pruned.to_string(),
            format!(
                "{:.0}%",
                100.0 * stats.pairs_pruned as f64 / total.max(1) as f64
            ),
            ms(t),
        ]);
        let payload = serde_json::json!({
            "pivots": pivots,
            "verified": stats.pairs_verified,
            "pruned": stats.pairs_pruned,
            "ms": t.as_secs_f64() * 1e3,
        });
        record("e07_pivots_clustered", &payload);
        clustered_sweep.push(payload);
    }
    print_table(
        "pivot filtering at τ = 0.6, clustered (domain) embeddings",
        &[
            "pivots",
            "pairs verified",
            "pairs pruned",
            "pruned %",
            "time (ms)",
        ],
        &rows,
    );
    println!("\nexpected shape: dirty_full ≈ 1.0 at moderate τ and falls as τ → 1;");
    println!("dirty_half ≈ 0.5; unrelated ≈ 0; pruning grows with pivot count and");
    println!("is far stronger on clustered embeddings (PEXESO's regime).");
    report
        .field("exact_overlap", &exact_overlap)
        .field("tau_sweep", &tau_sweep)
        .field("pivot_sweep", &pivot_sweep)
        .field("pivot_sweep_clustered", &clustered_sweep);
    report.finish();
}
