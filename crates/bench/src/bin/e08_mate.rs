//! E08 — MATE (Esmailoghli et al., VLDB 2022): multi-attribute joins via
//! row super-keys.
//!
//! Regenerates two shapes: (1) the single-attribute composition baseline
//! scores coincidental-value decoys at 1.0 while the composite (row-level)
//! search scores them 0; (2) the super-key filter removes most candidate
//! rows before exact verification, across key arities.

use std::collections::HashSet;
use td::core::join::MateSearch;
use td::table::gen::bench_join::{MultiJoinBenchmark, MultiJoinConfig};
use td::table::TableId;
use td_bench::{ms, print_table, record, time, BenchReport};

fn main() {
    let mut report = BenchReport::new("e08_mate");
    println!("E08: multi-attribute joinable search (composite keys)");
    let mut rows_quality = Vec::new();
    let mut rows_filter = Vec::new();
    let mut arities = Vec::new();
    for &arity in &[2usize, 3, 4] {
        let bench = MultiJoinBenchmark::generate(&MultiJoinConfig {
            query_rows: 250,
            key_arity: arity,
            num_relevant: 15,
            num_single_attr: 15,
            seed: 4,
            ..Default::default()
        });
        let search = MateSearch::build(&bench.lake);
        let key_cols: Vec<usize> = (0..arity).collect();
        let decoys: HashSet<TableId> = bench
            .truth
            .iter()
            .filter(|t| t.single_attr_only)
            .map(|t| t.table)
            .collect();

        let ((hits, stats), t_query) = time(|| search.search(&bench.query, &key_cols, 30));
        let composite_decoys_passing = hits
            .iter()
            .filter(|(t, s)| decoys.contains(t) && *s > 0.0)
            .count();
        let single = search.search_single_attribute(&bench.query, &key_cols, &bench.lake, 30);
        let single_decoys_passing = single
            .iter()
            .filter(|(t, s)| decoys.contains(t) && *s > 0.9)
            .count();
        // Max absolute error of composite scores against ground truth.
        let max_err = hits
            .iter()
            .filter_map(|(t, s)| {
                bench
                    .truth
                    .iter()
                    .find(|x| x.table == *t)
                    .map(|x| (s - x.row_containment).abs())
            })
            .fold(0.0f64, f64::max);

        rows_quality.push(vec![
            arity.to_string(),
            composite_decoys_passing.to_string(),
            single_decoys_passing.to_string(),
            format!("{max_err:.3}"),
            ms(t_query),
        ]);
        let sk_rate = 100.0 * (stats.rows_fetched - stats.rows_after_superkey) as f64
            / stats.rows_fetched.max(1) as f64;
        let fp_after_sk = stats.rows_after_superkey - stats.rows_verified;
        rows_filter.push(vec![
            arity.to_string(),
            stats.rows_fetched.to_string(),
            stats.rows_after_superkey.to_string(),
            stats.rows_verified.to_string(),
            format!("{sk_rate:.0}%"),
            fp_after_sk.to_string(),
        ]);
        let payload = serde_json::json!({
            "arity": arity,
            "composite_decoys_passing": composite_decoys_passing,
            "single_attr_decoys_passing": single_decoys_passing,
            "max_score_error": max_err,
            "rows_fetched": stats.rows_fetched,
            "rows_after_superkey": stats.rows_after_superkey,
            "rows_verified": stats.rows_verified,
        });
        record("e08_mate", &payload);
        arities.push(payload);
    }
    print_table(
        "decoy rejection (15 decoys each) and score accuracy",
        &[
            "arity",
            "decoys passing composite",
            "decoys fooling single-attr",
            "max |score error|",
            "query (ms)",
        ],
        &rows_quality,
    );
    print_table(
        "super-key filter effectiveness",
        &[
            "arity",
            "rows fetched",
            "after super-key",
            "verified",
            "filtered %",
            "false positives after filter",
        ],
        &rows_filter,
    );
    println!("\nexpected shape: composite rejects all decoys that fool the single-");
    println!("attribute baseline; the 64-bit super-key filters most fetched rows.");
    report.field("arities", &arities);
    report.finish();
}
