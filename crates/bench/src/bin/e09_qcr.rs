//! E09 — Correlated dataset search (Santos et al., ICDE 2022): QCR sketch
//! accuracy vs budget, and top-k correlated retrieval.
//!
//! Regenerates two shapes: (1) correlation-estimate error shrinks with
//! sketch size; (2) top-k retrieval returns the extreme-|ρ| plants first,
//! matching the exact join-then-correlate oracle.

use td::core::join::{exact_join_correlation, CorrelatedSearch};
use td::table::gen::bench_join::{CorrelationBenchmark, CorrelationConfig};
use td_bench::{ms, print_table, record, time, BenchReport};

fn main() {
    let mut report = BenchReport::new("e09_qcr");
    let bench = CorrelationBenchmark::generate(&CorrelationConfig {
        query_rows: 2_000,
        rhos: vec![0.95, 0.8, 0.6, 0.4, 0.2, 0.0, -0.2, -0.4, -0.6, -0.8, -0.95],
        key_containment: 0.9,
        seed: 5,
    });
    println!(
        "E09: correlated search over {} candidate tables, {} query rows",
        bench.lake.len(),
        bench.query.num_rows()
    );

    // --- Part 1: sketch budget vs estimation error -------------------------
    let mut rows = Vec::new();
    let mut budget_sweep = Vec::new();
    for &k in &[32usize, 64, 128, 256, 512, 1024, 4096] {
        let (search, t_build) = time(|| CorrelatedSearch::build(&bench.lake, k));
        let hits = search.search(&bench.query.columns[0], &bench.query.columns[1], 20, 5);
        let mut err_sum = 0.0;
        let mut n = 0usize;
        for h in &hits {
            let t = bench
                .truth
                .iter()
                .find(|t| t.table == h.numeric_column.table)
                .expect("benchmark table");
            err_sum += (h.estimated_correlation - t.realized_rho).abs();
            n += 1;
        }
        let mae = err_sum / n.max(1) as f64;
        rows.push(vec![k.to_string(), format!("{mae:.3}"), ms(t_build)]);
        let payload = serde_json::json!({
            "sketch_k": k, "mae": mae, "build_ms": t_build.as_secs_f64() * 1e3,
        });
        record("e09_budget", &payload);
        budget_sweep.push(payload);
    }
    print_table(
        "sketch budget vs mean |estimate − realized ρ|",
        &["sketch k", "MAE", "build (ms)"],
        &rows,
    );

    // --- Part 2: top-k retrieval vs the exact oracle ------------------------
    let search = report.measure("final_build", || CorrelatedSearch::build(&bench.lake, 1024));
    let hits = search.search(&bench.query.columns[0], &bench.query.columns[1], 6, 20);
    let mut rows = Vec::new();
    let mut topk = Vec::new();
    for h in &hits {
        let cand = bench.lake.table(h.numeric_column.table);
        let exact = exact_join_correlation(
            &bench.query.columns[0],
            &bench.query.columns[1],
            &cand.columns[0],
            &cand.columns[1],
        )
        .unwrap_or(0.0);
        let t = bench
            .truth
            .iter()
            .find(|t| t.table == h.numeric_column.table)
            .expect("benchmark table");
        rows.push(vec![
            cand.name.clone(),
            format!("{:+.2}", t.rho),
            format!("{exact:+.3}"),
            format!("{:+.3}", h.estimated_correlation),
            h.shared_keys.to_string(),
        ]);
        let payload = serde_json::json!({
            "table": cand.name, "planted": t.rho, "exact": exact,
            "estimated": h.estimated_correlation, "shared_keys": h.shared_keys,
        });
        record("e09_topk", &payload);
        topk.push(payload);
    }
    print_table(
        "top-6 by |estimated correlation| (k = 1024)",
        &[
            "table",
            "planted ρ",
            "exact join ρ",
            "sketch estimate",
            "shared sample",
        ],
        &rows,
    );
    println!("\nexpected shape: MAE decreases monotonically-ish with sketch k;");
    println!("the top hits are the ±0.95/±0.8 plants with matching signs.");
    report
        .field("budget_sweep", &budget_sweep)
        .field("topk", &topk);
    report.finish();
}
