//! E10 — Semantic type detection: Sherlock-style feature model vs
//! Sato-style table-context model (Hulsebos et al. KDD 2019; Zhang et al.
//! VLDB 2020).
//!
//! Regenerates the Sato shape: on columns whose surface format is
//! distinctive, features alone suffice; on format-ambiguous columns
//! (several domains rendering identically), accuracy collapses for the
//! feature model and is restored by the type co-occurrence context.

use td::table::gen::domains::DomainRegistry;
use td::table::{Column, Table};
use td::understand::types::ContextTypeClassifier;
use td_bench::{print_table, record, BenchReport};

fn domain_column(r: &DomainRegistry, name: &str, lo: u64, n: u64) -> Column {
    let d = r.id(name).expect("standard domain");
    Column::new(name, (lo..lo + n).map(|i| r.value(d, i)).collect())
}

/// Tables pairing each target domain with a context partner.
fn world_tables(
    r: &DomainRegistry,
    worlds: &[(&str, &str)],
    lo: u64,
    reps: u64,
) -> Vec<(Table, Vec<String>)> {
    let mut out = Vec::new();
    for rep in 0..reps {
        for (target, ctx) in worlds {
            let t = Table::new(
                format!("{target}_{rep}"),
                vec![
                    domain_column(r, target, lo + rep * 40, 25),
                    domain_column(r, ctx, lo + rep * 40, 25),
                ],
            )
            .expect("equal len");
            out.push((t, vec![(*target).to_string(), (*ctx).to_string()]));
        }
    }
    out
}

fn accuracy_on(
    clf: &ContextTypeClassifier,
    test: &[(Table, Vec<String>)],
    contextual: bool,
) -> f64 {
    let mut ok = 0usize;
    let mut total = 0usize;
    for (t, labels) in test {
        let preds: Vec<String> = if contextual {
            clf.predict_table_labels(t)
                .iter()
                .map(|s| (*s).to_string())
                .collect()
        } else {
            t.columns
                .iter()
                .map(|c| clf.base.predict_label(c).to_string())
                .collect()
        };
        // Grade the first (target) column only.
        total += 1;
        if preds[0] == labels[0] {
            ok += 1;
        }
    }
    ok as f64 / total.max(1) as f64
}

fn main() {
    let mut report = BenchReport::new("e10_types");
    let r = DomainRegistry::standard();
    println!("E10: semantic type detection, feature model vs table context");

    // Distinct-format targets: every format is unique → features suffice.
    let distinct: [(&str, &str); 4] = [
        ("email", "city"),
        ("phone", "person"),
        ("gene", "company"),
        ("event_date", "product"),
    ];
    // Ambiguous targets: all four render as Proper{3} — identical features.
    let ambiguous: [(&str, &str); 4] = [
        ("country", "phone"),
        ("company", "stock_ticker"),
        ("movie", "person"),
        ("book", "email"),
    ];

    let mut rows = Vec::new();
    let mut settings = Vec::new();
    for (name, worlds) in [
        ("distinct formats", &distinct),
        ("ambiguous formats", &ambiguous),
    ] {
        let train = world_tables(&r, worlds, 0, 10);
        let train_refs: Vec<(&Table, Vec<&str>)> = train
            .iter()
            .map(|(t, l)| (t, l.iter().map(String::as_str).collect()))
            .collect();
        let clf = ContextTypeClassifier::train(&train_refs, 4.0);
        let test = world_tables(&r, worlds, 20_000, 10);
        let feat_acc = accuracy_on(&clf, &test, false);
        let ctx_acc = accuracy_on(&clf, &test, true);
        rows.push(vec![
            name.to_string(),
            format!("{feat_acc:.2}"),
            format!("{ctx_acc:.2}"),
        ]);
        let payload = serde_json::json!({
            "setting": name, "feature_accuracy": feat_acc, "context_accuracy": ctx_acc,
        });
        record("e10_types", &payload);
        settings.push(payload);
    }
    print_table(
        "target-column accuracy (40 test tables each)",
        &[
            "setting",
            "features only (Sherlock-like)",
            "with context (Sato-like)",
        ],
        &rows,
    );
    println!("\nexpected shape: both near-perfect on distinct formats; on ambiguous");
    println!("formats features ≈ random among 4 confusables, context recovers most.");
    report.field("settings", &settings);
    report.finish();
}
