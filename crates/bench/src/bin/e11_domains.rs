//! E11 — Data-driven domain discovery (Ota et al. VLDB 2020; Li et al.
//! KDD 2017): recovering value domains by clustering overlapping columns.
//!
//! Regenerates the shape: near-perfect pairwise F1 on clean lakes,
//! degrading gracefully as noise columns (random token mixtures that
//! bridge domains) are added, with the Jaccard gate controlling the
//! precision/recall balance.

use std::collections::HashMap;
use td::table::gen::domains::DomainRegistry;
use td::table::{Column, ColumnRef, DataLake, Table};
use td::understand::domain::{discover_domains, pairwise_f1, DomainDiscoveryConfig};
use td_bench::{print_table, record, BenchReport};

/// Lake with `cols` columns per named domain (overlapping slices) plus
/// `noise` columns mixing values from ALL domains (the bridging hazard).
fn build_lake(
    r: &DomainRegistry,
    names: &[&str],
    cols: usize,
    noise: usize,
    seed: u64,
) -> (DataLake, HashMap<ColumnRef, String>) {
    let mut lake = DataLake::new();
    let mut truth = HashMap::new();
    for (di, name) in names.iter().enumerate() {
        let d = r.id(name).expect("standard domain");
        for c in 0..cols {
            let lo = (c * 15) as u64;
            let col = Column::new(
                format!("{name}_{c}"),
                (lo..lo + 60).map(|i| r.value(d, i)).collect(),
            );
            let id = lake.add(Table::new(format!("t_{di}_{c}"), vec![col]).unwrap());
            truth.insert(ColumnRef::new(id, 0), (*name).to_string());
        }
    }
    for nz in 0..noise {
        // Mixture column: values drawn round-robin from every domain.
        let values: Vec<td::table::Value> = (0..60u64)
            .map(|i| {
                let d = r
                    .id(names[(i as usize + nz) % names.len()])
                    .expect("standard domain");
                r.value(d, td::sketch::hash_u64(i + nz as u64 * 100, seed) % 60)
            })
            .collect();
        lake.add(Table::new(format!("noise_{nz}"), vec![Column::new("mix", values)]).unwrap());
    }
    (lake, truth)
}

fn main() {
    let mut report = BenchReport::new("e11_domains");
    let r = DomainRegistry::standard();
    let names = ["city", "gene", "animal", "company", "disease", "movie"];
    println!(
        "E11: domain discovery over {} domains x 6 columns",
        names.len()
    );

    // --- Part 1: noise sweep ------------------------------------------------
    let mut rows = Vec::new();
    let mut noise_sweep = Vec::new();
    for &noise_pct in &[0usize, 10, 20, 30, 40] {
        let noise = names.len() * 6 * noise_pct / 100;
        let (lake, truth) = build_lake(&r, &names, 6, noise, 13);
        let domains = discover_domains(&lake, &DomainDiscoveryConfig::default());
        let clusters: Vec<Vec<ColumnRef>> = domains.iter().map(|d| d.columns.clone()).collect();
        let (p, rec, f1) = pairwise_f1(&clusters, &truth);
        rows.push(vec![
            format!("{noise_pct}%"),
            domains.len().to_string(),
            format!("{p:.2}"),
            format!("{rec:.2}"),
            format!("{f1:.2}"),
        ]);
        let payload = serde_json::json!({
            "noise_pct": noise_pct, "domains_found": domains.len(),
            "precision": p, "recall": rec, "f1": f1,
        });
        record("e11_noise", &payload);
        noise_sweep.push(payload);
    }
    print_table(
        "noise sweep (noise = mixture columns bridging domains)",
        &["noise", "domains found", "precision", "recall", "F1"],
        &rows,
    );

    // --- Part 2: threshold sweep ---------------------------------------------
    let (lake, truth) = build_lake(&r, &names, 6, 7, 13);
    let mut rows = Vec::new();
    let mut threshold_sweep = Vec::new();
    for &thr in &[0.02f64, 0.05, 0.1, 0.2, 0.4, 0.8] {
        let domains = discover_domains(
            &lake,
            &DomainDiscoveryConfig {
                jaccard_threshold: thr,
                ..Default::default()
            },
        );
        let clusters: Vec<Vec<ColumnRef>> = domains.iter().map(|d| d.columns.clone()).collect();
        let (p, rec, f1) = pairwise_f1(&clusters, &truth);
        rows.push(vec![
            format!("{thr:.2}"),
            domains.len().to_string(),
            format!("{p:.2}"),
            format!("{rec:.2}"),
            format!("{f1:.2}"),
        ]);
        let payload = serde_json::json!({
            "threshold": thr, "precision": p, "recall": rec, "f1": f1,
        });
        record("e11_threshold", &payload);
        threshold_sweep.push(payload);
    }
    print_table(
        "Jaccard-gate sweep at 20% noise",
        &["threshold", "domains found", "precision", "recall", "F1"],
        &rows,
    );
    println!("\nexpected shape: F1 ≈ 1 without noise, degrading with bridges;");
    println!("low thresholds over-merge (precision drops), high ones shatter (recall drops).");
    report
        .field("noise_sweep", &noise_sweep)
        .field("threshold_sweep", &threshold_sweep);
    report.finish();
}
