//! E12 — Keyword/metadata search and its failure mode (tutorial §2.1/2.3;
//! Google Dataset Search's premise and the data-driven methods' motive).
//!
//! Regenerates the tutorial's motivating shape: BM25 over metadata works
//! when metadata exists and degrades linearly as metadata goes missing or
//! inconsistent — while a value-based (data-driven) search on the same
//! queries is unaffected.

use std::collections::HashSet;
use td::core::join::ExactJoinSearch;
use td::core::join::ExactStrategy;
use td::core::{KeywordConfig, KeywordSearch};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::{DataLake, TableId, TableMeta};
use td_bench::{print_table, record, BenchReport};

fn main() {
    let mut report = BenchReport::new("e12_keyword");
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 300,
        rows: (30, 100),
        cols: (2, 4),
        missing_meta_rate: 0.0, // start complete; we corrupt explicitly
        seed: 6,
        ..Default::default()
    });
    println!("E12: metadata keyword search under metadata corruption, 300 tables");

    // Queries: category names; relevant = tables of that category.
    let categories = ["geography", "people", "business", "science", "culture"];
    let relevant_of = |cat: &str| -> HashSet<TableId> {
        gl.table_categories
            .iter()
            .filter(|(_, c)| c == &cat)
            .map(|(t, _)| *t)
            .collect()
    };

    let mut rows = Vec::new();
    let mut missing_sweep = Vec::new();
    for &missing_pct in &[0usize, 20, 40, 60, 80, 100] {
        // Corrupt: drop metadata of the first missing_pct% of tables.
        let mut lake = DataLake::new();
        for (i, (_, t)) in gl.lake.iter().enumerate() {
            let mut t = t.clone();
            if (i * 100) < missing_pct * gl.lake.len() {
                t.meta = TableMeta::default();
            }
            lake.add(t);
        }
        let ks = KeywordSearch::build(
            &lake,
            &KeywordConfig {
                index_schema: false,
                ..Default::default()
            },
        );
        let mut recall_sum = 0.0;
        for cat in categories {
            let relevant = relevant_of(cat);
            let k = relevant.len();
            let hits: Vec<TableId> = ks.search(cat, k).into_iter().map(|(t, _)| t).collect();
            let found = hits.iter().filter(|t| relevant.contains(t)).count();
            recall_sum += found as f64 / relevant.len().max(1) as f64;
        }
        let recall = recall_sum / categories.len() as f64;
        rows.push(vec![format!("{missing_pct}%"), format!("{recall:.2}")]);
        let payload = serde_json::json!({
            "missing_pct": missing_pct, "recall_at_nrel": recall,
        });
        record("e12_keyword", &payload);
        missing_sweep.push(payload);
    }
    print_table(
        "metadata keyword search: recall@|relevant| vs missing metadata",
        &["metadata missing", "mean recall"],
        &rows,
    );

    // Data-driven contrast: value-overlap search is metadata-oblivious,
    // schema-based joins (the InfoGather-era baseline) break with headers.
    use td::core::join::{SchemaJoinConfig, SchemaJoinSearch};
    let mut lake_nometa = DataLake::new();
    for (_, t) in gl.lake.iter() {
        let mut t = t.clone();
        t.meta = TableMeta::default();
        // Also corrupt every header.
        for (i, c) in t.columns.iter_mut().enumerate() {
            c.name = format!("col_{i}");
        }
        lake_nometa.add(t);
    }
    let join = ExactJoinSearch::build(&lake_nometa);
    let schema = SchemaJoinSearch::build(&lake_nometa, SchemaJoinConfig::default());
    let (qid, qt) = gl.lake.iter().next().unwrap();
    if let Some(qcol) = qt.columns.iter().find(|c| !c.is_numeric()) {
        let value_hit = join
            .search_tables(qcol, 5, ExactStrategy::Adaptive)
            .first()
            .map(|(t, _)| *t == qid)
            .unwrap_or(false);
        let schema_hits = schema.search_tables(qcol, 5).len();
        println!(
            "\nzero metadata + corrupted headers: value-based self-join ranks #1: \
             {value_hit}; schema-based join finds {schema_hits} tables"
        );
        let payload = serde_json::json!({
            "value_self_join_rank1": value_hit,
            "schema_join_hits": schema_hits,
        });
        record("e12_data_driven", &payload);
        report.field("data_driven", &payload);
    }
    println!("\nexpected shape: keyword recall falls roughly linearly to 0 as");
    println!("metadata disappears; schema-based joins find nothing on corrupted");
    println!("headers; value-based search is entirely unaffected.");
    report.field("missing_sweep", &missing_sweep);
    report.finish();
}
