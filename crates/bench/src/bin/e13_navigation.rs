//! E13 — Data-lake organization and online exploration (Nargesian et al.
//! SIGMOD 2020/TKDE 2023; RONIN, VLDB 2021).
//!
//! Regenerates the organization paper's shape: navigating a learned
//! hierarchy gives a far higher expected probability of discovering a
//! target table than uniform descent, with branching factor trading depth
//! against per-node confusion; plus RONIN-style online grouping purity.

use td::embed::{ContextualEncoder, DomainEmbedder};
use td::nav::{group_results, Organization, OrganizeConfig, RoninConfig};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::TableId;
use td_bench::{ms, print_table, record, time, BenchReport};

fn main() {
    let mut report = BenchReport::new("e13_navigation");
    let gl = LakeGenerator::standard().generate(&LakeGenConfig {
        num_tables: 2_000,
        rows: (20, 80),
        cols: (2, 5),
        topical_fraction: 0.85,
        seed: 7,
        ..Default::default()
    });
    let emb = DomainEmbedder::from_registry(&gl.registry, 2_048, 64, 0.4, 5);
    let enc = ContextualEncoder::default();
    let (items, t_embed) = time(|| {
        gl.lake
            .iter()
            .map(|(id, t)| (id, enc.encode_table_vector(&emb, t)))
            .collect::<Vec<(TableId, Vec<f32>)>>()
    });
    println!(
        "E13: organization over {} tables (embedded in {} ms)",
        items.len(),
        ms(t_embed)
    );

    report.stage("embed", t_embed);

    // --- Part 1: branching-factor sweep -------------------------------------
    let mut rows = Vec::new();
    let mut branching_sweep = Vec::new();
    for &branching in &[2usize, 4, 8, 16] {
        let (org, t_build) = time(|| {
            Organization::build(
                &items,
                &OrganizeConfig {
                    branching,
                    leaf_size: 8,
                    ..Default::default()
                },
            )
        });
        let sample: Vec<&(TableId, Vec<f32>)> = items.iter().step_by(10).collect();
        let avg = |beta: f32| {
            sample
                .iter()
                .map(|(t, v)| org.discovery_probability(*t, v, beta))
                .sum::<f64>()
                / sample.len() as f64
        };
        let informed = avg(8.0);
        let uniform = avg(0.0);
        rows.push(vec![
            branching.to_string(),
            org.num_nodes().to_string(),
            format!("{informed:.3}"),
            format!("{uniform:.3}"),
            format!("{:.1}x", informed / uniform.max(1e-9)),
            ms(t_build),
        ]);
        let payload = serde_json::json!({
            "branching": branching, "nodes": org.num_nodes(),
            "informed": informed, "uniform": uniform,
        });
        record("e13_branching", &payload);
        branching_sweep.push(payload);
    }
    print_table(
        "expected discovery probability by branching factor (200-table sample)",
        &[
            "branching",
            "nodes",
            "informed",
            "uniform descent",
            "gain",
            "build (ms)",
        ],
        &rows,
    );

    // --- Part 1b: local-search refinement ablation ---------------------------
    let mut org = Organization::build(
        &items,
        &OrganizeConfig {
            branching: 4,
            leaf_size: 8,
            kmeans_iters: 1,
            ..Default::default()
        },
    );
    let sample: Vec<&(TableId, Vec<f32>)> = items.iter().step_by(10).collect();
    let avg = |o: &Organization| {
        sample
            .iter()
            .map(|(t, v)| o.discovery_probability(*t, v, 8.0))
            .sum::<f64>()
            / sample.len() as f64
    };
    let before = avg(&org);
    let (moves, t_refine) = time(|| org.refine(&items, 5));
    let after = avg(&org);
    println!(
        "\nlocal-search refinement (1-iteration build): discovery probability \
         {before:.3} -> {after:.3} after {moves} moves ({} ms)",
        ms(t_refine)
    );
    println!(
        "(a near-null delta means the k-means construction already sits at a \
         local optimum of the navigation objective — refinement is the safety \
         net for degenerate builds, not a free win)"
    );
    report.stage("refine", t_refine);
    let refine_payload = serde_json::json!({
        "before": before, "after": after, "moves": moves,
    });
    record("e13_refine", &refine_payload);
    report.field("refine", &refine_payload);

    // --- Part 2: RONIN online grouping purity --------------------------------
    // Result set: the first 40 tables from four ground-truth categories.
    let mut result_set: Vec<(TableId, Vec<f32>)> = Vec::new();
    for cat in ["geography", "science", "business", "culture"] {
        let mut n = 0;
        for (id, v) in &items {
            if gl.table_categories.get(id).map(String::as_str) == Some(cat) && n < 10 {
                result_set.push((*id, v.clone()));
                n += 1;
            }
        }
    }
    let groups = group_results(
        &gl.lake,
        &result_set,
        &RoninConfig {
            groups: 4,
            ..Default::default()
        },
    );
    let mut rows = Vec::new();
    let mut purity_sum = 0.0;
    for g in &groups {
        // Majority category fraction.
        let mut counts: std::collections::HashMap<&str, usize> = Default::default();
        for t in &g.tables {
            *counts
                .entry(
                    gl.table_categories
                        .get(t)
                        .map(String::as_str)
                        .unwrap_or("?"),
                )
                .or_insert(0) += 1;
        }
        let (maj, n) = counts.iter().max_by_key(|(_, n)| **n).unwrap();
        let purity = *n as f64 / g.tables.len() as f64;
        purity_sum += purity * g.tables.len() as f64;
        rows.push(vec![
            g.label.clone(),
            g.tables.len().to_string(),
            (*maj).to_string(),
            format!("{purity:.2}"),
        ]);
    }
    let weighted_purity = purity_sum / result_set.len() as f64;
    print_table(
        "RONIN online groups over a 40-table result set",
        &["group label", "size", "majority category", "purity"],
        &rows,
    );
    println!("\nweighted purity: {weighted_purity:.2}");
    let ronin_payload = serde_json::json!({ "weighted_purity": weighted_purity });
    record("e13_ronin", &ronin_payload);
    report.field("ronin", &ronin_payload);
    println!("expected shape: informed navigation many times better than uniform;");
    println!("online groups align with ground-truth topical categories.");
    report.field("branching_sweep", &branching_sweep);
    report.finish();
}
