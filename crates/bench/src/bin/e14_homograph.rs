//! E14 — Homograph detection via centrality (DomainNet; Leventidis et al.,
//! EDBT 2021; tutorial §3's graph-mining direction).
//!
//! Regenerates the paper's shape: planted homographs dominate the
//! betweenness ranking of the value–column graph (precision@|planted|
//! near 1), degree alone is a much weaker signal, and source-sampled
//! Brandes approximates the full computation at a fraction of the cost.

use std::collections::HashSet;
use td::nav::{rank_homographs, HomographConfig};
use td::table::gen::domains::DomainRegistry;
use td::table::{Column, DataLake, Table};
use td_bench::{ms, print_table, record, time, BenchReport};

fn build_lake(num_homographs: u64, cols_per_domain: u64) -> (DataLake, HashSet<String>) {
    let mut r = DomainRegistry::standard();
    let city = r.id("city").unwrap();
    let animal = r.id("animal").unwrap();
    let gene = r.id("gene").unwrap();
    r.add_homograph_pair(city, animal, num_homographs);
    let mut lake = DataLake::new();
    for w in 0..cols_per_domain {
        for (name, d) in [("city", city), ("animal", animal), ("gene", gene)] {
            let col = Column::new(
                name,
                (w * 20..w * 20 + 50)
                    .map(|i| r.value(d, i))
                    .collect::<Vec<_>>(),
            );
            lake.add(Table::new(format!("{name}_{w}"), vec![col]).unwrap());
        }
    }
    let homographs: HashSet<String> = (0..num_homographs)
        .map(|i| r.value(city, i).to_string().to_lowercase())
        .collect();
    (lake, homographs)
}

fn main() {
    let mut report = BenchReport::new("e14_homograph");
    let (lake, homographs) = build_lake(10, 6);
    println!(
        "E14: homograph detection, {} planted homographs across {} columns",
        homographs.len(),
        lake.num_columns()
    );

    // --- Part 1: full Brandes, centrality vs degree ranking ------------------
    let (ranked, t_full) = time(|| {
        rank_homographs(
            &lake,
            &HomographConfig {
                sample_sources: 0,
                ..Default::default()
            },
        )
    });
    let k = homographs.len();
    let p_centrality = ranked
        .iter()
        .take(k)
        .filter(|v| homographs.contains(&v.value))
        .count() as f64
        / k as f64;
    let mut by_degree = ranked.clone();
    by_degree.sort_by(|a, b| b.degree.cmp(&a.degree).then(a.value.cmp(&b.value)));
    let p_degree = by_degree
        .iter()
        .take(k)
        .filter(|v| homographs.contains(&v.value))
        .count() as f64
        / k as f64;
    print_table(
        "precision@10 of homograph rankings",
        &["signal", "P@10", "time (ms)"],
        &[
            vec![
                "betweenness centrality".into(),
                format!("{p_centrality:.2}"),
                ms(t_full),
            ],
            vec![
                "degree (baseline)".into(),
                format!("{p_degree:.2}"),
                "-".into(),
            ],
        ],
    );
    report.stage("brandes_full", t_full);
    let ranking_payload = serde_json::json!({
        "p_centrality": p_centrality, "p_degree": p_degree,
    });
    record("e14_ranking", &ranking_payload);
    report.field("ranking", &ranking_payload);

    // --- Part 2: source sampling --------------------------------------------
    let mut rows = Vec::new();
    let mut sampling_sweep = Vec::new();
    for &sources in &[16usize, 64, 256, 0] {
        let (ranked_s, t) = time(|| {
            rank_homographs(
                &lake,
                &HomographConfig {
                    sample_sources: sources,
                    ..Default::default()
                },
            )
        });
        let p = ranked_s
            .iter()
            .take(k)
            .filter(|v| homographs.contains(&v.value))
            .count() as f64
            / k as f64;
        let label = if sources == 0 {
            "all".to_string()
        } else {
            sources.to_string()
        };
        rows.push(vec![label, format!("{p:.2}"), ms(t)]);
        let payload = serde_json::json!({
            "sources": sources, "p_at_10": p, "ms": t.as_secs_f64() * 1e3,
        });
        record("e14_sampling", &payload);
        sampling_sweep.push(payload);
    }
    print_table(
        "Brandes source sampling",
        &["BFS sources", "P@10", "time (ms)"],
        &rows,
    );
    println!("\nexpected shape: centrality P@10 ≈ 1 and >> degree baseline;");
    println!("sampling reaches full-Brandes quality well before using all sources.");
    report.field("sampling_sweep", &sampling_sweep);
    report.finish();
}
