//! E15 — ARDA (Chepurko et al., VLDB 2020): join-based feature
//! augmentation for ML.
//!
//! Regenerates the paper's two shapes: (1) augmentation lifts the
//! downstream model far above base-only; (2) noise-injection feature
//! selection matches or beats join-all while discarding junk features,
//! with the gap widening as more noise tables join.

use td::apps::{augment_regression, AugmentConfig};
use td::table::gen::domains::DomainRegistry;
use td::table::{Column, DataLake, Table, Value};
use td_bench::{print_table, record, BenchReport};

/// Deterministic pseudo-uniform in [-1, 1).
fn det(i: usize, salt: u64) -> f64 {
    (td::sketch::hash_u64(i as u64, salt) % 1000) as f64 / 500.0 - 1.0
}

/// Base table + lake: y = 2 f1 − f2 + 0.5 f3 + ε; f1..f3 live in three
/// separate joinable tables; `noise_tables` joinable junk tables.
fn build(n: usize, noise_tables: usize) -> (DataLake, Table) {
    let r = DomainRegistry::standard();
    let city = r.id("city").unwrap();
    let keys: Vec<Value> = (0..n as u64).map(|i| r.value(city, i)).collect();
    let f: Vec<Vec<f64>> = (0..3)
        .map(|s| (0..n).map(|i| det(i, s as u64 + 1)).collect())
        .collect();
    let y: Vec<f64> = (0..n)
        .map(|i| 2.0 * f[0][i] - f[1][i] + 0.5 * f[2][i] + det(i, 44) * 0.05)
        .collect();
    let base = Table::new(
        "base",
        vec![
            Column::new("city", keys.clone()),
            Column::new("y", y.iter().map(|&v| Value::Float(v)).collect()),
        ],
    )
    .unwrap();
    let mut lake = DataLake::new();
    for (fi, fv) in f.iter().enumerate() {
        lake.add(
            Table::new(
                format!("signal_{fi}"),
                vec![
                    Column::new("city", keys.clone()),
                    Column::new(
                        format!("f{fi}"),
                        fv.iter().map(|&v| Value::Float(v)).collect(),
                    ),
                ],
            )
            .unwrap(),
        );
    }
    for nz in 0..noise_tables {
        lake.add(
            Table::new(
                format!("noise_{nz}"),
                vec![
                    Column::new("city", keys.clone()),
                    Column::new(
                        "n1",
                        (0..n)
                            .map(|i| Value::Float(det(i, 100 + nz as u64)))
                            .collect(),
                    ),
                    Column::new(
                        "n2",
                        (0..n)
                            .map(|i| Value::Float(det(i, 200 + nz as u64)))
                            .collect(),
                    ),
                ],
            )
            .unwrap(),
        );
    }
    (lake, base)
}

fn main() {
    let mut report = BenchReport::new("e15_arda");
    println!("E15: ARDA-style feature augmentation (regression)");
    let mut rows = Vec::new();
    let mut noise_sweep = Vec::new();
    for &noise_tables in &[0usize, 5, 15, 30, 60, 120] {
        let (lake, base) = build(280, noise_tables);
        let out = augment_regression(&lake, &base, 0, 1, &AugmentConfig::default());
        let kept: usize = out.candidates.iter().filter(|c| c.selected).count();
        let junk_kept = out
            .candidates
            .iter()
            .filter(|c| c.selected && lake.table(c.column.table).name.starts_with("noise"))
            .count();
        rows.push(vec![
            noise_tables.to_string(),
            format!("{:.3}", out.base_r2),
            format!("{:.3}", out.join_all_r2),
            format!("{:.3}", out.selected_r2),
            format!("{kept} ({junk_kept} junk)"),
            out.candidates.len().to_string(),
        ]);
        let payload = serde_json::json!({
            "noise_tables": noise_tables,
            "base_r2": out.base_r2,
            "join_all_r2": out.join_all_r2,
            "selected_r2": out.selected_r2,
            "features_kept": kept,
            "junk_kept": junk_kept,
            "candidates": out.candidates.len(),
        });
        record("e15_arda", &payload);
        noise_sweep.push(payload);
    }
    print_table(
        "test R² by noise-table count (3 signal features planted)",
        &[
            "noise tables",
            "base only",
            "join all",
            "selected",
            "features kept",
            "candidates",
        ],
        &rows,
    );
    println!("\nexpected shape: base ≈ 0 (no features), selected ≈ join-all ≈ 1 with");
    println!("few noise tables; as junk grows, join-all degrades while selection");
    println!("keeps the 3 signals and stays high.");
    report.field("noise_sweep", &noise_sweep);
    report.finish();
}
