//! E16 — Table stitching for KB completion (Lehmberg & Bizer, VLDB 2017;
//! tutorial §2.7).
//!
//! Regenerates the paper's shape: web-table fragments are individually too
//! small for reliable relation identification, so the facts they carry are
//! lost; stitching fragments with equivalent schemas into union tables
//! restores annotation and multiplies the completed facts. The effect
//! grows as fragments shrink and as the KB's prior coverage drops.

use td::apps::kb_completion;
use td::table::gen::bench_union::RelationSpec;
use td::table::gen::domains::DomainRegistry;
use td::table::{Column, DataLake, Table};
use td::understand::annotate::AnnotateConfig;
use td::understand::kb::{KbConfig, KnowledgeBase};
use td_bench::{print_table, record, BenchReport};

fn build(r: &DomainRegistry, spec: &RelationSpec, fragment_rows: u64, total_rows: u64) -> DataLake {
    let mut lake = DataLake::new();
    let mut f = 0u64;
    let mut lo = 0u64;
    while lo < total_rows {
        let hi = (lo + fragment_rows).min(total_rows);
        lake.add(
            Table::new(
                format!("frag_{f:03}.csv"),
                vec![
                    Column::new("city", (lo..hi).map(|i| r.value(spec.key_dom, i)).collect()),
                    Column::new(
                        "country",
                        (lo..hi)
                            .map(|i| r.value(spec.attr_dom, spec.attr_index(i)))
                            .collect(),
                    ),
                ],
            )
            .unwrap(),
        );
        lo = hi;
        f += 1;
    }
    lake
}

fn main() {
    let mut bench_report = BenchReport::new("e16_stitching");
    let r = DomainRegistry::standard();
    let spec = RelationSpec {
        key_dom: r.id("city").unwrap(),
        attr_dom: r.id("country").unwrap(),
        rel_id: 6,
    };
    println!("E16: KB completion via table stitching (city → country relation)");
    // Support threshold safely below the lowest swept KB coverage (including
    // its binomial sampling noise), so the *stitched*
    // table always clears it and the contrast isolates fragment size.
    let cfg = AnnotateConfig {
        min_relation_support: 0.10,
        ..Default::default()
    };

    // --- Part 1: fragment-size sweep at fixed KB coverage --------------------
    let mut rows = Vec::new();
    let mut fragment_sweep = Vec::new();
    for &frag in &[3u64, 5, 10, 25, 100] {
        let kb = KnowledgeBase::build(
            &r,
            &[spec],
            &KbConfig {
                vocab_per_domain: 2_048,
                facts_per_relation: 2_048,
                type_coverage: 1.0,
                relation_coverage: 0.35,
                ..Default::default()
            },
        );
        let lake = build(&r, &spec, frag, 100);
        let report = kb_completion(&lake, &kb, &cfg);
        rows.push(vec![
            frag.to_string(),
            format!("{}/{}", report.fragments_annotated, report.fragments_total),
            report.facts_from_fragments.to_string(),
            report.facts_from_stitched.to_string(),
        ]);
        let payload = serde_json::json!({
            "fragment_rows": frag,
            "fragments_annotated": report.fragments_annotated,
            "fragments_total": report.fragments_total,
            "facts_fragments": report.facts_from_fragments,
            "facts_stitched": report.facts_from_stitched,
        });
        record("e16_fragment_size", &payload);
        fragment_sweep.push(payload);
    }
    print_table(
        "fragment-size sweep (100 rows total, KB relation coverage 35%)",
        &[
            "rows/fragment",
            "fragments annotated",
            "facts w/o stitching",
            "facts w/ stitching",
        ],
        &rows,
    );

    // --- Part 2: KB coverage sweep at tiny fragments --------------------------
    let mut rows = Vec::new();
    let mut coverage_sweep = Vec::new();
    for &coverage in &[0.2f64, 0.35, 0.5, 0.7, 0.9] {
        let kb = KnowledgeBase::build(
            &r,
            &[spec],
            &KbConfig {
                vocab_per_domain: 2_048,
                facts_per_relation: 2_048,
                type_coverage: 1.0,
                relation_coverage: coverage,
                ..Default::default()
            },
        );
        let lake = build(&r, &spec, 4, 100);
        let report = kb_completion(&lake, &kb, &cfg);
        rows.push(vec![
            format!("{:.0}%", coverage * 100.0),
            format!("{}/{}", report.fragments_annotated, report.fragments_total),
            report.facts_from_fragments.to_string(),
            report.facts_from_stitched.to_string(),
        ]);
        let payload = serde_json::json!({
            "kb_coverage": coverage,
            "facts_fragments": report.facts_from_fragments,
            "facts_stitched": report.facts_from_stitched,
        });
        record("e16_coverage", &payload);
        coverage_sweep.push(payload);
    }
    print_table(
        "KB-coverage sweep (4-row fragments)",
        &[
            "KB coverage",
            "fragments annotated",
            "facts w/o stitching",
            "facts w/ stitching",
        ],
        &rows,
    );
    println!("\nexpected shape: stitched facts ≈ all uncovered pairs regardless of");
    println!("fragment size; unstitched facts collapse as fragments shrink or");
    println!("coverage drops (fragments stop clearing the annotation threshold).");
    bench_report
        .field("fragment_sweep", &fragment_sweep)
        .field("coverage_sweep", &coverage_sweep);
    bench_report.finish();
}
