//! E17 — Index scaling (tutorial §3): build time and query latency of the
//! four index families as the lake grows.
//!
//! Regenerates the survey's Section-3 discussion as measurements: inverted
//! lists and LSH build linearly; HNSW queries stay near-flat while the
//! exact flat scan grows linearly — the reason graph indices matter for
//! million-table lakes.

use td::embed::seeded_unit_vector;
use td::index::{FlatIndex, Hnsw, HnswParams, InvertedSetIndexBuilder, LshEnsemble, MinHashLsh};
use td::sketch::MinHasher;
use td_bench::{print_table, record, time, BenchReport};

fn main() {
    let mut report = BenchReport::new("e17_index_scaling");
    println!("E17: index scaling (columns = indexed sets/vectors)");
    let dim = 64;
    let hasher = MinHasher::new(128, 1);
    let mut rows = Vec::new();
    let mut scaling = Vec::new();
    for &n in &[1_000usize, 5_000, 20_000, 100_000] {
        // Shared synthetic columns: token sets + embedding vectors.
        let sets: Vec<Vec<String>> = (0..n)
            .map(|s| {
                (0..40)
                    .map(|i| {
                        format!(
                            "v{}",
                            td::sketch::hash_u64((s * 40 + i) as u64, 3) % 200_000
                        )
                    })
                    .collect()
            })
            .collect();
        let vectors: Vec<Vec<f32>> = (0..n as u64).map(|i| seeded_unit_vector(i, dim)).collect();
        let sigs: Vec<_> = sets
            .iter()
            .map(|s| hasher.sign(s.iter().map(String::as_str)))
            .collect();

        // Builds.
        let (inv, t_inv) = time(|| {
            let mut b = InvertedSetIndexBuilder::new();
            for s in &sets {
                b.add_set(s.iter().map(String::as_str));
            }
            b.build()
        });
        let (lsh, t_lsh) = time(|| {
            let mut l = MinHashLsh::with_threshold(128, 0.5);
            for (i, s) in sigs.iter().enumerate() {
                l.insert(i as u32, s);
            }
            l
        });
        let (ens, t_ens) = time(|| {
            LshEnsemble::build(
                sigs.iter()
                    .enumerate()
                    .map(|(i, s)| (i as u32, s.clone()))
                    .collect(),
                8,
            )
        });
        let (hnsw, t_hnsw) = time(|| {
            let mut h = Hnsw::new(dim, HnswParams::default());
            for v in &vectors {
                h.insert(v.clone());
            }
            h
        });
        let (flat, t_flat) = time(|| {
            let mut f = FlatIndex::new(dim);
            for v in &vectors {
                f.insert(v.clone());
            }
            f
        });

        // Queries (averaged over a few).
        let reps = 20;
        let q_set = &sets[7];
        let (_, t_qinv) = time(|| {
            for _ in 0..reps {
                let _ = inv.top_k_adaptive(q_set.iter().map(String::as_str), 10);
            }
        });
        let q_sig = &sigs[7];
        let (_, t_qlsh) = time(|| {
            for _ in 0..reps {
                let _ = lsh.query(q_sig);
            }
        });
        let (_, t_qens) = time(|| {
            for _ in 0..reps {
                let _ = ens.query_containment(q_sig, 0.5);
            }
        });
        let qv = seeded_unit_vector(424_242, dim);
        let (_, t_qhnsw) = time(|| {
            for _ in 0..reps {
                let _ = hnsw.search(&qv, 10, 64);
            }
        });
        let (_, t_qflat) = time(|| {
            for _ in 0..reps {
                let _ = flat.search(&qv, 10);
            }
        });
        let per = |d: std::time::Duration| format!("{:.3}", d.as_secs_f64() * 1e3 / reps as f64);
        rows.push(vec![
            n.to_string(),
            format!("{:.0}", t_inv.as_secs_f64() * 1e3),
            per(t_qinv),
            format!("{:.0}", t_lsh.as_secs_f64() * 1e3),
            per(t_qlsh),
            format!("{:.0}", t_ens.as_secs_f64() * 1e3),
            per(t_qens),
            format!("{:.0}", t_hnsw.as_secs_f64() * 1e3),
            per(t_qhnsw),
            format!("{:.0}", t_flat.as_secs_f64() * 1e3),
            per(t_qflat),
        ]);
        let payload = serde_json::json!({
            "n": n,
            "inverted_build_ms": t_inv.as_secs_f64() * 1e3,
            "inverted_query_ms": t_qinv.as_secs_f64() * 1e3 / reps as f64,
            "lsh_build_ms": t_lsh.as_secs_f64() * 1e3,
            "lsh_query_ms": t_qlsh.as_secs_f64() * 1e3 / reps as f64,
            "ensemble_build_ms": t_ens.as_secs_f64() * 1e3,
            "ensemble_query_ms": t_qens.as_secs_f64() * 1e3 / reps as f64,
            "hnsw_build_ms": t_hnsw.as_secs_f64() * 1e3,
            "hnsw_query_ms": t_qhnsw.as_secs_f64() * 1e3 / reps as f64,
            "flat_build_ms": t_flat.as_secs_f64() * 1e3,
            "flat_query_ms": t_qflat.as_secs_f64() * 1e3 / reps as f64,
        });
        record("e17_scaling", &payload);
        scaling.push(payload);
    }
    print_table(
        "build (ms) and per-query (ms) by corpus size",
        &[
            "n",
            "inv build",
            "inv q",
            "LSH build",
            "LSH q",
            "ens build",
            "ens q",
            "HNSW build",
            "HNSW q",
            "flat build",
            "flat q",
        ],
        &rows,
    );
    println!("\nexpected shape: all builds roughly linear (HNSW superlinear-ish);");
    println!("flat query grows linearly with n while HNSW stays near-constant —");
    println!("the crossover that motivates graph indices for lake-scale search.");
    report.field("scaling", &scaling);
    report.finish();
}
