//! E18 — The KB ↔ embedding precision/recall trade-off (tutorial §3;
//! Weikum's "KBs: precision, low coverage; LMs: recall, some precision").
//!
//! Regenerates the shape the tutorial challenges the community to study:
//! as KB coverage falls, KB-based (SANTOS-style) union search loses recall
//! while keeping precision; embedding-based (Starmie-style) search keeps
//! recall regardless but admits semantic false positives; and a hybrid
//! (KB score where available, embeddings as fallback) dominates both ends.

use std::collections::HashSet;
use td::core::union::{SantosConfig, SantosSearch, StarmieConfig, StarmieSearch, VectorBackend};
use td::embed::{ContextualEncoder, DomainEmbedder};
use td::table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};
use td::table::TableId;
use td::understand::kb::{KbConfig, KnowledgeBase};
use td_bench::{print_table, record, BenchReport};

fn f1(p: f64, r: f64) -> f64 {
    if p + r == 0.0 {
        0.0
    } else {
        2.0 * p * r / (p + r)
    }
}

fn main() {
    let mut bench_report = BenchReport::new("e18_kb_vs_embedding");
    // Benchmark with BOTH decoy kinds: relation decoys punish embeddings'
    // column-level semantics; missing KB facts punish the KB path.
    let bench = UnionBenchmark::generate(&UnionBenchConfig {
        num_queries: 4,
        positives: 6,
        partials: 0,
        relation_decoys: 6,
        homograph_decoys: 0,
        noise: 30,
        rows: 100,
        key_slice: 200,
        homograph_range: 1,
        ..Default::default()
    });
    println!(
        "E18: KB vs embeddings vs hybrid, {} queries, relation decoys planted",
        bench.queries.len()
    );

    let starmie = bench_report.measure("starmie_build", || {
        StarmieSearch::build(
            &bench.lake,
            DomainEmbedder::from_registry(&bench.registry, 4_096, 64, 0.4, 3),
            StarmieConfig {
                encoder: ContextualEncoder {
                    alpha: 0.4,
                    sample: 48,
                },
                backend: VectorBackend::Flat,
                ..Default::default()
            },
        )
    });

    let eval = |ranked_per_q: Vec<Vec<TableId>>| -> (f64, f64) {
        // Precision@6 and recall@6 against the 6 positives.
        let mut p_sum = 0.0;
        let mut r_sum = 0.0;
        for (q, ranked) in ranked_per_q.iter().enumerate() {
            let rel: HashSet<TableId> = bench.tables_with_grade(q, 2).into_iter().collect();
            let hits = ranked.iter().take(6).filter(|t| rel.contains(t)).count();
            p_sum += hits as f64 / 6.0;
            r_sum += hits as f64 / rel.len() as f64;
        }
        let n = ranked_per_q.len() as f64;
        (p_sum / n, r_sum / n)
    };

    let mut rows = Vec::new();
    let mut tradeoff = Vec::new();
    for &coverage in &[0.1f64, 0.3, 0.5, 0.7, 0.9] {
        let kb = KnowledgeBase::build(
            &bench.registry,
            &bench.relations,
            &KbConfig {
                vocab_per_domain: 4_096,
                facts_per_relation: 4_096,
                type_coverage: coverage,
                relation_coverage: coverage,
                ..Default::default()
            },
        );
        let santos = SantosSearch::build(&bench.lake, kb, SantosConfig::default());

        // KB path: rank by SANTOS score, drop zero-scored tables (the KB
        // abstains where it has no evidence — that is its recall loss).
        let kb_ranked: Vec<Vec<TableId>> = (0..bench.queries.len())
            .map(|q| {
                santos
                    .search(&bench.queries[q], 12)
                    .into_iter()
                    .filter(|(_, s)| *s > 0.05)
                    .map(|(t, _)| t)
                    .collect()
            })
            .collect();
        // Embedding path: Starmie ranking (never abstains).
        let emb_ranked: Vec<Vec<TableId>> = (0..bench.queries.len())
            .map(|q| {
                starmie
                    .search(&bench.queries[q], 12)
                    .into_iter()
                    .map(|(t, _)| t)
                    .collect()
            })
            .collect();
        // Hybrid: KB-scored tables first (high precision), embedding
        // ranking fills the remainder (recall).
        let hybrid_ranked: Vec<Vec<TableId>> = (0..bench.queries.len())
            .map(|q| {
                let mut out = kb_ranked[q].clone();
                for t in &emb_ranked[q] {
                    if !out.contains(t) {
                        out.push(*t);
                    }
                }
                out
            })
            .collect();

        let (kp, kr) = eval(kb_ranked);
        let (ep, er) = eval(emb_ranked);
        let (hp, hr) = eval(hybrid_ranked);
        rows.push(vec![
            format!("{:.0}%", coverage * 100.0),
            format!("{kp:.2}/{kr:.2}/{:.2}", f1(kp, kr)),
            format!("{ep:.2}/{er:.2}/{:.2}", f1(ep, er)),
            format!("{hp:.2}/{hr:.2}/{:.2}", f1(hp, hr)),
        ]);
        let payload = serde_json::json!({
            "coverage": coverage,
            "kb": {"p": kp, "r": kr},
            "embedding": {"p": ep, "r": er},
            "hybrid": {"p": hp, "r": hr},
        });
        record("e18_tradeoff", &payload);
        tradeoff.push(payload);
    }
    print_table(
        "P@6 / R@6 / F1 by KB coverage",
        &[
            "KB coverage",
            "KB only (SANTOS)",
            "embeddings only (Starmie)",
            "hybrid",
        ],
        &rows,
    );

    // --- Part 2: augmenting a sparse KB from the lake itself (§3) -----------
    // SANTOS's synthesized-KG direction: mine recurring value pairs from
    // the lake, absorb them into the curated KB, re-run the KB path.
    use td::understand::synthesize::{synthesize_kb, SynthesizeConfig};
    let mut rows = Vec::new();
    let mut synthesized = Vec::new();
    for &coverage in &[0.1f64, 0.3] {
        let build_kb = || {
            KnowledgeBase::build(
                &bench.registry,
                &bench.relations,
                &KbConfig {
                    vocab_per_domain: 4_096,
                    facts_per_relation: 4_096,
                    type_coverage: 1.0, // types from the curated side
                    relation_coverage: coverage,
                    ..Default::default()
                },
            )
        };
        let sparse = SantosSearch::build(&bench.lake, build_kb(), SantosConfig::default());
        let (synth, report) = synthesize_kb(&bench.lake, &SynthesizeConfig::default());
        let mut augmented_kb = build_kb();
        augmented_kb.absorb(&synth);
        let augmented = SantosSearch::build(&bench.lake, augmented_kb, SantosConfig::default());
        let ranked = |s: &SantosSearch| -> Vec<Vec<TableId>> {
            (0..bench.queries.len())
                .map(|q| {
                    s.search(&bench.queries[q], 12)
                        .into_iter()
                        .filter(|(_, sc)| *sc > 0.05)
                        .map(|(t, _)| t)
                        .collect()
                })
                .collect()
        };
        let (sp, sr) = eval(ranked(&sparse));
        let (ap, ar) = eval(ranked(&augmented));
        rows.push(vec![
            format!("{:.0}%", coverage * 100.0),
            format!("{sp:.2}/{sr:.2}"),
            format!("{ap:.2}/{ar:.2}"),
            report.facts_asserted.to_string(),
            report.relations_created.to_string(),
        ]);
        let payload = serde_json::json!({
            "coverage": coverage,
            "sparse": {"p": sp, "r": sr},
            "augmented": {"p": ap, "r": ar},
            "facts_synthesized": report.facts_asserted,
        });
        record("e18_synthesized", &payload);
        synthesized.push(payload);
    }
    print_table(
        "sparse KB vs lake-augmented KB (P@6 / R@6)",
        &[
            "curated coverage",
            "sparse KB",
            "after lake synthesis",
            "facts mined",
            "relations mined",
        ],
        &rows,
    );
    println!("\nexpected shape: KB column tracks coverage (recall rises with it,");
    println!("precision stays high); embeddings are flat but decoy-limited;");
    println!("hybrid ≈ max of both; lake-synthesized facts restore a sparse KB's");
    println!("recall without importing the decoys (they mine *actual* relations).");
    bench_report
        .field("tradeoff", &tradeoff)
        .field("synthesized", &synthesized);
    bench_report.finish();
}
