//! ingest_report — incremental-maintenance telemetry for the segmented
//! pipeline, emitting `BENCH_ingest.json`.
//!
//! Four measurements over one synthetic lake:
//!
//! 1. **full rebuild baseline** — one-shot `DiscoveryPipeline::build`
//!    wall time, and its per-table amortization.
//! 2. **delta ingest** — per-table `SegmentedPipeline::ingest_table`
//!    latency (artifact extraction only; the shared context is built
//!    once). The report asserts a single-table delta ingest is at least
//!    10× cheaper than a full rebuild — the point of the segmented
//!    architecture.
//! 3. **compaction** — cost of flattening a many-segment stack (pure
//!    artifact concatenation, no re-extraction).
//! 4. **segment-count knee** — cold-snapshot (merge) latency and a fixed
//!    query mix as the same tables are spread over 1, 2, 4, 8 segments:
//!    where stacking segments without compacting starts to hurt.
//!
//! Flags (all optional): `--seed N`, `--tables N`.

use std::sync::Arc;

use td::core::{DiscoveryPipeline, PipelineConfig, PipelineContext, SegmentedPipeline};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::{Table, TableId};
use td_bench::{ms, print_table, time, BenchReport};

struct Args {
    seed: u64,
    tables: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        tables: 48,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--seed" => args.seed = val.parse().unwrap_or(args.seed),
            "--tables" => args.tables = val.parse().unwrap_or(args.tables),
            _ => {}
        }
        i += 2;
    }
    args
}

/// Build a segmented pipeline over `tables`, sealing so the stack ends up
/// with `segments` sealed segments.
fn stacked(
    ctx: &PipelineContext,
    tables: &[(TableId, Table)],
    segments: usize,
) -> SegmentedPipeline {
    let per = tables.len().div_ceil(segments.max(1));
    let mut sp = SegmentedPipeline::with_context(ctx.clone());
    for (i, (id, t)) in tables.iter().enumerate() {
        sp.ingest_table(*id, t);
        if (i + 1) % per == 0 {
            sp.seal();
        }
    }
    sp.seal();
    sp
}

/// A fixed query mix against a snapshot; returns total wall time in ms.
fn query_mix(p: &Arc<DiscoveryPipeline>, queries: &[(TableId, Table)]) -> f64 {
    let (_, d) = time(|| {
        let mut sink = 0usize;
        for (_, q) in queries {
            sink += p.search_unionable(q, 5).len();
            sink += p.search_joinable(&q.columns[0], 5).len();
        }
        sink += p.search_keyword("dataset", 5).len();
        sink
    });
    d.as_secs_f64() * 1e3
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("ingest");

    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: args.tables,
            rows: (10, 60),
            cols: (2, 5),
            seed: args.seed,
            ..LakeGenConfig::default()
        })
    });
    let cfg = PipelineConfig::default();
    let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
    let queries: Vec<(TableId, Table)> = tables[..tables.len().min(3)].to_vec();

    // 1. Full rebuild baseline: what every table addition costs without
    // incremental maintenance.
    let (batch, t_full) = time(|| DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg));
    let full_ms = t_full.as_secs_f64() * 1e3;
    let amortized_ms = full_ms / tables.len() as f64;
    println!(
        "ingest_report: lake of {} tables (gen {} ms, full build {} ms), seed {}",
        tables.len(),
        ms(t_gen),
        ms(t_full),
        args.seed
    );

    // 2. Delta ingest: shared context once, then per-table extraction.
    let (ctx, t_ctx) = time(|| PipelineContext::new(&gl.registry, &[], &cfg));
    let mut sp = SegmentedPipeline::with_context(ctx.clone());
    let mut ingest_ms: Vec<f64> = Vec::with_capacity(tables.len());
    for (id, t) in &tables {
        let (_, d) = time(|| sp.ingest_table(*id, t));
        ingest_ms.push(d.as_secs_f64() * 1e3);
    }
    let total_ingest: f64 = ingest_ms.iter().sum();
    let mean_ingest = total_ingest / ingest_ms.len() as f64;
    let mut sorted = ingest_ms.clone();
    sorted.sort_by(f64::total_cmp);
    let p50_ingest = sorted[sorted.len() / 2];
    let max_ingest = sorted[sorted.len() - 1];
    let speedup = full_ms / mean_ingest;

    // First queryability after a delta: one snapshot merge over the
    // single-segment stack (artifact concatenation, no re-extraction).
    let (snap, t_snap) = time(|| sp.snapshot());
    let snapshot_ms = t_snap.as_secs_f64() * 1e3;

    // Sanity: incremental must agree with the batch build exactly.
    for (_, q) in &queries {
        assert_eq!(
            format!("{:?}", batch.search_unionable(q, 5)),
            format!("{:?}", snap.search_unionable(q, 5)),
            "segmented snapshot diverged from the batch build"
        );
    }

    // 3. Compaction cost over a deliberately fragmented stack.
    let mut frag = stacked(&ctx, &tables, 8);
    let segments_before = frag.num_segments();
    let (_, t_compact) = time(|| frag.compact());
    let compact_ms = t_compact.as_secs_f64() * 1e3;
    assert_eq!(frag.len(), tables.len(), "compaction must not lose tables");
    assert_eq!(frag.num_segments(), 1);

    // 4. Segment-count knee: cold merge + query mix per stack shape.
    let mut knee_rows = Vec::new();
    let mut knee_json = Vec::new();
    for segments in [1usize, 2, 4, 8] {
        // Two fresh stacks per shape; keep the faster run so one-off
        // allocator warm-up does not masquerade as a knee.
        let mut actual = 0;
        let mut merge_ms = f64::INFINITY;
        let mut q_ms = f64::INFINITY;
        for _ in 0..2 {
            let sp = stacked(&ctx, &tables, segments);
            actual = sp.num_segments();
            let (p, t_merge) = time(|| sp.snapshot());
            merge_ms = merge_ms.min(t_merge.as_secs_f64() * 1e3);
            q_ms = q_ms.min(query_mix(&p, &queries));
        }
        knee_rows.push(vec![
            actual.to_string(),
            format!("{merge_ms:.2}"),
            format!("{q_ms:.2}"),
        ]);
        knee_json.push(serde_json::json!({
            "segments": actual,
            "snapshot_ms": merge_ms,
            "query_mix_ms": q_ms,
        }));
    }

    print_table(
        "delta ingest vs full rebuild",
        &["metric", "value"],
        &[
            vec!["tables".into(), tables.len().to_string()],
            vec!["full rebuild (ms)".into(), format!("{full_ms:.2}")],
            vec![
                "amortized per table (ms)".into(),
                format!("{amortized_ms:.2}"),
            ],
            vec!["context build (ms)".into(), ms(t_ctx)],
            vec!["ingest mean (ms)".into(), format!("{mean_ingest:.3}")],
            vec!["ingest p50 (ms)".into(), format!("{p50_ingest:.3}")],
            vec!["ingest max (ms)".into(), format!("{max_ingest:.3}")],
            vec!["snapshot merge (ms)".into(), format!("{snapshot_ms:.2}")],
            vec![
                "speedup (full / mean ingest)".into(),
                format!("{speedup:.1}x"),
            ],
            vec![
                "compaction of 8 segments (ms)".into(),
                format!("{compact_ms:.2}"),
            ],
        ],
    );
    print_table(
        "segment-count knee",
        &["segments", "snapshot (ms)", "query mix (ms)"],
        &knee_rows,
    );

    report
        .stage("generate", t_gen)
        .stage("full_build", t_full)
        .stage("context_build", t_ctx)
        .field("seed", &args.seed)
        .field("tables", &tables.len())
        .field("segment_knee", &serde_json::Value::Seq(knee_json))
        .merge(&serde_json::json!({
            "full_rebuild_ms": full_ms,
            "amortized_per_table_ms": amortized_ms,
            "ingest": {
                "mean_ms": mean_ingest,
                "p50_ms": p50_ingest,
                "max_ms": max_ingest,
                "total_ms": total_ingest,
            },
            "snapshot_merge_ms": snapshot_ms,
            "speedup_vs_full_rebuild": speedup,
            "compaction": {
                "segments_before": segments_before,
                "ms": compact_ms,
            },
        }));
    report.finish();

    assert!(
        speedup >= 10.0,
        "single-table delta ingest must be >= 10x cheaper than a full rebuild (got {speedup:.1}x)"
    );
}
