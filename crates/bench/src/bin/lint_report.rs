//! Lint telemetry — runs the td-lint workspace scan and emits
//! `BENCH_lint.json` through the standard bench-report machinery:
//! files scanned, per-code unwaived/waived counts, symbol-graph sizes
//! (items, call edges, lock/atomic sites), per-rule wall time, and
//! total scan latency.
//!
//! Exits non-zero if any unwaived diagnostic remains, so it doubles as
//! the gate: `cargo run -p td-bench --bin lint_report`. In release mode
//! it additionally asserts the full-workspace analysis stays under the
//! 5 s budget promised in EXPERIMENTS.md.

use std::path::Path;
use std::process::ExitCode;
use std::time::Instant;
use td_bench::{print_table, BenchReport};
use td_lint::{scan_workspace_timed, ALL_CODES};

/// Wall-time ceiling for the full-workspace v2 analysis (release mode).
const BUDGET_NS: u64 = 5_000_000_000;

fn main() -> ExitCode {
    let mut report = BenchReport::new("lint");
    // Prefer the cwd when it is a workspace root (so the gate also works on
    // a checkout this binary wasn't built from), else fall back to the
    // workspace this binary was compiled in — like the other bench bins,
    // it must run correctly from any directory.
    let compiled_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = if Path::new("crates").is_dir() {
        Path::new(".").to_path_buf()
    } else {
        compiled_root
    };
    // The lint crate is deliberately clock-free (its own TD002); the
    // harness injects the monotonic clock rule timings are measured with.
    // td-lint: allow(TD002) this IS the injected clock the clock-free lint crate measures with
    let epoch = Instant::now();
    let clock = move || u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
    let scan = report.measure("scan", || scan_workspace_timed(&root, &clock));
    let scan = match scan {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut rows = Vec::new();
    for code in ALL_CODES {
        let (unwaived, waived) = scan.count(code);
        rows.push(vec![
            code.as_str().to_string(),
            unwaived.to_string(),
            waived.to_string(),
            code.summary().to_string(),
        ]);
        report.field(&format!("{}_unwaived", code.as_str()), &(unwaived as u64));
        report.field(&format!("{}_waived", code.as_str()), &(waived as u64));
    }
    print_table(
        "lint summary",
        &["code", "unwaived", "waived", "rule"],
        &rows,
    );

    let stats = &scan.stats;
    let mut graph_rows = vec![
        vec!["library files".to_string(), stats.files.to_string()],
        vec!["items".to_string(), stats.items.to_string()],
        vec!["call sites".to_string(), stats.call_sites.to_string()],
        vec![
            "resolved edges".to_string(),
            stats.resolved_edges.to_string(),
        ],
        vec!["lock sites".to_string(), stats.lock_sites.to_string()],
        vec!["atomic sites".to_string(), stats.atomic_sites.to_string()],
        vec![
            "mutation sites".to_string(),
            stats.mutation_sites.to_string(),
        ],
    ];
    for (name, ns) in &stats.rule_ns {
        graph_rows.push(vec![
            format!("{name} ms"),
            format!("{:.3}", *ns as f64 / 1e6),
        ]);
    }
    graph_rows.push(vec![
        "total analysis ms".to_string(),
        format!("{:.3}", stats.total_ns as f64 / 1e6),
    ]);
    print_table("symbol graph", &["metric", "value"], &graph_rows);

    report
        .field("files_scanned", &(scan.files_scanned as u64))
        .field("waived_total", &(scan.waived_total() as u64))
        .field("unwaived_total", &(scan.unwaived_total() as u64))
        .field("graph_files", &(stats.files as u64))
        .field("graph_items", &(stats.items as u64))
        .field("graph_call_sites", &(stats.call_sites as u64))
        .field("graph_resolved_edges", &(stats.resolved_edges as u64))
        .field("graph_lock_sites", &(stats.lock_sites as u64))
        .field("graph_atomic_sites", &(stats.atomic_sites as u64))
        .field("graph_mutation_sites", &(stats.mutation_sites as u64))
        .field("analysis_total_ns", &stats.total_ns);
    for (name, ns) in &stats.rule_ns {
        report.field(&format!("rule_ns_{name}"), ns);
    }
    report.finish();

    if scan.unwaived_total() > 0 {
        for d in scan.unwaived() {
            eprintln!("{}", d.render_text());
        }
        return ExitCode::FAILURE;
    }

    // Perf self-check: the v2 analysis must stay interactive. Debug
    // builds are ~10x slower and noisy, so only release builds gate.
    if !cfg!(debug_assertions) && stats.total_ns > BUDGET_NS {
        eprintln!(
            "lint analysis exceeded its {}s budget: {:.3}s",
            BUDGET_NS / 1_000_000_000,
            stats.total_ns as f64 / 1e9
        );
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
