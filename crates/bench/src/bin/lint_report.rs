//! Lint telemetry — runs the td-lint workspace scan and emits
//! `BENCH_lint.json` through the standard bench-report machinery:
//! files scanned, per-code unwaived/waived counts, and scan latency.
//!
//! Exits non-zero if any unwaived diagnostic remains, so it doubles as
//! the gate: `cargo run -p td-bench --bin lint_report`.

use std::path::Path;
use std::process::ExitCode;
use td_bench::{print_table, BenchReport};
use td_lint::{scan_workspace, ALL_CODES};

fn main() -> ExitCode {
    let mut report = BenchReport::new("lint");
    // Prefer the cwd when it is a workspace root (so the gate also works on
    // a checkout this binary wasn't built from), else fall back to the
    // workspace this binary was compiled in — like the other bench bins,
    // it must run correctly from any directory.
    let compiled_root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let root = if Path::new("crates").is_dir() {
        Path::new(".").to_path_buf()
    } else {
        compiled_root
    };
    let scan = report.measure("scan", || scan_workspace(&root));
    let scan = match scan {
        Ok(s) => s,
        Err(e) => {
            eprintln!("lint scan failed: {e}");
            return ExitCode::FAILURE;
        }
    };

    let mut rows = Vec::new();
    for code in ALL_CODES {
        let (unwaived, waived) = scan.count(code);
        rows.push(vec![
            code.as_str().to_string(),
            unwaived.to_string(),
            waived.to_string(),
            code.summary().to_string(),
        ]);
        report.field(&format!("{}_unwaived", code.as_str()), &(unwaived as u64));
        report.field(&format!("{}_waived", code.as_str()), &(waived as u64));
    }
    print_table(
        "lint summary",
        &["code", "unwaived", "waived", "rule"],
        &rows,
    );

    report
        .field("files_scanned", &(scan.files_scanned as u64))
        .field("waived_total", &(scan.waived_total() as u64))
        .field("unwaived_total", &(scan.unwaived_total() as u64));
    report.finish();

    if scan.unwaived_total() > 0 {
        for d in scan.unwaived() {
            eprintln!("{}", d.render_text());
        }
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
