//! serve_report — closed-loop load generation against the td-serve
//! layer, emitting `BENCH_serve.json`.
//!
//! Two phases over one synthetic lake:
//!
//! 1. **load** — a provisioned server (≥4 workers, roomy queue) under a
//!    seeded repeated-query mix from N concurrent closed-loop clients:
//!    throughput, per-endpoint p50/p95/p99 service latency, cache hit
//!    rate, and (expected zero) shed rate.
//! 2. **saturation** — the same workload against a deliberately starved
//!    server (1 worker, queue bound 1): shows admission control
//!    shedding promptly instead of building unbounded backlog.
//!
//! Flags (all optional): `--seed N` (workload reproducibility),
//! `--tables N`, `--clients N`, `--workers N`, `--requests N` (per
//! client), `--queue N`, `--pool N` (distinct-query pool; smaller =
//! more cache hits).

use std::sync::Arc;

use td::core::{DiscoveryPipeline, PipelineConfig};
use td::serve::{Client, Server, ServerConfig, Status, Workload, WorkloadConfig};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::DataLake;
use td_bench::{ms, print_table, time, BenchReport, Timer};

struct Args {
    seed: u64,
    tables: usize,
    clients: usize,
    workers: usize,
    requests: u64,
    queue: usize,
    pool: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        tables: 64,
        clients: 8,
        workers: 4,
        requests: 50,
        queue: 64,
        pool: 24,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--seed" => args.seed = val.parse().unwrap_or(args.seed),
            "--tables" => args.tables = val.parse().unwrap_or(args.tables),
            "--clients" => args.clients = val.parse().unwrap_or(args.clients),
            "--workers" => args.workers = val.parse().unwrap_or(args.workers),
            "--requests" => args.requests = val.parse().unwrap_or(args.requests),
            "--queue" => args.queue = val.parse().unwrap_or(args.queue),
            "--pool" => args.pool = val.parse().unwrap_or(args.pool),
            _ => {}
        }
        i += 2;
    }
    args
}

#[derive(Default, Clone, Copy)]
struct Outcome {
    ok: u64,
    overloaded: u64,
    deadline: u64,
    other: u64,
    protocol_errors: u64,
}

impl Outcome {
    fn total(&self) -> u64 {
        self.ok + self.overloaded + self.deadline + self.other + self.protocol_errors
    }
}

/// Drive `clients` closed-loop client threads against `server`, each
/// with its own seed-derived workload, and fold their outcomes.
fn drive(
    server: &Server,
    lake: &DataLake,
    args: &Args,
    seed_salt: u64,
    requests_per_client: u64,
) -> Outcome {
    let addr = server.local_addr();
    let handles: Vec<_> = (0..args.clients)
        .map(|t| {
            let mut workload = Workload::new(
                lake,
                &WorkloadConfig {
                    // Distinct per-client stream, reproducible per seed.
                    seed: args.seed ^ seed_salt ^ ((t as u64) << 32),
                    pool_size: args.pool,
                    k: 5,
                    deadline_ms: 0,
                },
            );
            let mut envelopes = Vec::new();
            for i in 0..requests_per_client {
                if let Some(env) = workload.next_envelope(((t as u64) << 24) | i) {
                    envelopes.push(env);
                }
            }
            std::thread::spawn(move || {
                let mut out = Outcome::default();
                let Ok(mut client) = Client::connect(addr) else {
                    out.protocol_errors += envelopes.len() as u64;
                    return out;
                };
                for env in &envelopes {
                    match client.call(env) {
                        Ok(resp) => match resp.status {
                            Status::Ok => out.ok += 1,
                            Status::Overloaded => out.overloaded += 1,
                            Status::DeadlineExceeded => out.deadline += 1,
                            _ => out.other += 1,
                        },
                        Err(_) => out.protocol_errors += 1,
                    }
                }
                out
            })
        })
        .collect();
    let mut folded = Outcome::default();
    for h in handles {
        if let Ok(out) = h.join() {
            folded.ok += out.ok;
            folded.overloaded += out.overloaded;
            folded.deadline += out.deadline;
            folded.other += out.other;
            folded.protocol_errors += out.protocol_errors;
        }
    }
    folded
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("serve");

    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: args.tables,
            rows: (10, 60),
            cols: (2, 5),
            seed: args.seed,
            ..LakeGenConfig::default()
        })
    });
    let (pipeline, t_build) =
        time(|| DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default()));
    let pipeline = Arc::new(pipeline);
    println!(
        "serve_report: lake of {} tables (gen {} ms, build {} ms), seed {}",
        gl.lake.len(),
        ms(t_gen),
        ms(t_build),
        args.seed
    );

    // Phase 1: provisioned load.
    let mut server = Server::start(
        Arc::clone(&pipeline),
        ServerConfig {
            workers: args.workers,
            queue_capacity: args.queue,
            ..ServerConfig::default()
        },
    )
    .expect("bind load server");
    let wall = Timer::start();
    let load = drive(&server, &gl.lake, &args, 0, args.requests);
    let load_secs = wall.elapsed().as_secs_f64();
    let load_stats = server.stats();
    server.shutdown();

    let issued = load.total();
    let throughput = if load_secs > 0.0 {
        load.ok as f64 / load_secs
    } else {
        0.0
    };
    let shed_rate = if issued > 0 {
        load.overloaded as f64 / issued as f64
    } else {
        0.0
    };

    // Per-endpoint service latency comes from the server's own
    // histograms (recorded worker-side, so queue wait is excluded).
    let reg = td_obs::global();
    let mut endpoint_rows = Vec::new();
    let mut endpoint_json = Vec::new();
    for ep in td::serve::Request::search_endpoints() {
        let hist = reg.histogram(&format!("serve.{ep}.latency_ns"));
        if hist.count() == 0 {
            continue;
        }
        let (p50, p95, p99) = (
            hist.quantile(0.50),
            hist.quantile(0.95),
            hist.quantile(0.99),
        );
        endpoint_rows.push(vec![
            ep.to_string(),
            hist.count().to_string(),
            format!("{:.3}", p50 / 1e6),
            format!("{:.3}", p95 / 1e6),
            format!("{:.3}", p99 / 1e6),
        ]);
        endpoint_json.push(serde_json::json!({
            "endpoint": ep,
            "count": hist.count(),
            "p50_ns": p50,
            "p95_ns": p95,
            "p99_ns": p99,
        }));
    }
    print_table(
        "per-endpoint service latency (load phase)",
        &["endpoint", "count", "p50 (ms)", "p95 (ms)", "p99 (ms)"],
        &endpoint_rows,
    );
    print_table(
        "load phase",
        &["metric", "value"],
        &[
            vec!["clients".into(), args.clients.to_string()],
            vec!["workers".into(), args.workers.to_string()],
            vec!["requests issued".into(), issued.to_string()],
            vec!["ok".into(), load.ok.to_string()],
            vec!["throughput (req/s)".into(), format!("{throughput:.1}")],
            vec!["shed rate".into(), format!("{shed_rate:.4}")],
            vec![
                "cache hit rate".into(),
                format!("{:.4}", load_stats.cache.hit_rate()),
            ],
            vec!["protocol errors".into(), load.protocol_errors.to_string()],
        ],
    );

    // Phase 2: saturation — 1 worker, queue bound 1 — must shed.
    let mut starved = Server::start(
        Arc::clone(&pipeline),
        ServerConfig {
            workers: 1,
            queue_capacity: 1,
            cache: td::serve::CacheConfig {
                // A tiny cache keeps the starved server from answering
                // the repeated mix from memory instead of shedding.
                capacity_bytes: 1,
                ..td::serve::CacheConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind saturation server");
    let sat_wall = Timer::start();
    let sat = drive(&starved, &gl.lake, &args, 0x5A7, args.requests.min(25));
    let sat_secs = sat_wall.elapsed().as_secs_f64();
    starved.shutdown();
    let sat_issued = sat.total();
    let sat_shed_rate = if sat_issued > 0 {
        sat.overloaded as f64 / sat_issued as f64
    } else {
        0.0
    };
    print_table(
        "saturation phase (1 worker, queue bound 1)",
        &["metric", "value"],
        &[
            vec!["requests issued".into(), sat_issued.to_string()],
            vec!["ok".into(), sat.ok.to_string()],
            vec!["shed".into(), sat.overloaded.to_string()],
            vec!["shed rate".into(), format!("{sat_shed_rate:.4}")],
            vec!["protocol errors".into(), sat.protocol_errors.to_string()],
        ],
    );

    report
        .stage("generate", t_gen)
        .stage("pipeline_build", t_build)
        .field("seed", &args.seed)
        .field("tables", &gl.lake.len())
        .field("clients", &args.clients)
        .field("workers", &args.workers)
        .field("endpoints", &serde_json::Value::Seq(endpoint_json))
        .merge(&serde_json::json!({
            "load": {
                "requests": issued,
                "ok": load.ok,
                "overloaded": load.overloaded,
                "deadline_exceeded": load.deadline,
                "protocol_errors": load.protocol_errors,
                "seconds": load_secs,
                "throughput_rps": throughput,
                "shed_rate": shed_rate,
                "cache_hits": load_stats.cache.hits,
                "cache_misses": load_stats.cache.misses,
                "cache_hit_rate": load_stats.cache.hit_rate(),
                "cache_evictions": load_stats.cache.evictions,
            },
            "saturation": {
                "requests": sat_issued,
                "ok": sat.ok,
                "shed": sat.overloaded,
                "shed_rate": sat_shed_rate,
                "protocol_errors": sat.protocol_errors,
                "seconds": sat_secs,
            },
        }));
    report.finish();

    assert_eq!(
        load.protocol_errors + sat.protocol_errors,
        0,
        "load generation must complete with zero protocol errors"
    );
    assert!(
        load_stats.cache.hits > 0,
        "the repeated-query mix must produce cache hits"
    );
    assert!(
        sat.overloaded > 0,
        "the starved server must shed under saturation"
    );
}
