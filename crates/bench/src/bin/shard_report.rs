//! shard_report — the sharded scatter-gather sweep, emitting
//! `BENCH_shard.json`.
//!
//! One synthetic lake is served three ways — behind 1, 2, and 4 shard
//! servers (real sockets, hash-partitioned, one scatter-gather
//! coordinator in front) — and the same deterministic query mix (all
//! eight search families) is driven through the coordinator at each
//! shard count. The report records per-shard-count throughput and
//! p50/p95 latency, and *asserts* the merge-equivalence invariant on
//! every single reply: whatever the shard count, the coordinator's
//! answer must equal the whole-lake single-pipeline answer.
//!
//! Sharding buys latency only when shards actually run in parallel, so
//! the report records the machine's core count and arms the ≥1.5×
//! 4-shard speedup assertion only when ≥4 cores are available; on a
//! 1-core box the sweep degenerates to measuring pure scatter-gather
//! overhead (which is itself worth pinning).
//!
//! Flags (all optional): `--seed N`, `--tables N` (default 10000),
//! `--queries N` (query tables sampled per family), `--k N`,
//! `--workers N` (per shard server).

use td::core::segment::PipelineContext;
use td::core::{DiscoveryPipeline, PipelineConfig};
use td::serve::{execute, Reply, Request, RequestEnvelope, ServerConfig, ShardFleet, Status};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::{Table, TableId};
use td_bench::{ms, print_table, time, BenchReport, Timer};

struct Args {
    seed: u64,
    tables: usize,
    queries: usize,
    k: usize,
    workers: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        tables: 10_000,
        queries: 8,
        k: 10,
        workers: 2,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--seed" => args.seed = val.parse().unwrap_or(args.seed),
            "--tables" => args.tables = val.parse().unwrap_or(args.tables),
            "--queries" => args.queries = val.parse().unwrap_or(args.queries),
            "--k" => args.k = val.parse().unwrap_or(args.k),
            "--workers" => args.workers = val.parse().unwrap_or(args.workers),
            _ => {}
        }
        i += 2;
    }
    args
}

/// The deterministic query mix: `queries` tables sampled at a fixed
/// stride, each probed with every applicable search family.
fn build_mix(tables: &[(TableId, Table)], args: &Args) -> Vec<Request> {
    let step = (tables.len() / args.queries.max(1)).max(1);
    let k = args.k;
    let mut mix = Vec::new();
    for (qi, (_, qt)) in tables.iter().step_by(step).take(args.queries).enumerate() {
        mix.push(Request::Keyword {
            query: ["dataset", "census", "city", "total"][qi % 4].to_string(),
            k,
        });
        mix.push(Request::Unionable {
            table: qt.clone(),
            k,
        });
        mix.push(Request::UnionableSemantic {
            table: qt.clone(),
            k,
        });
        mix.push(Request::UnionableRelationship {
            table: qt.clone(),
            k,
        });
        mix.push(Request::MultiJoinable {
            table: qt.clone(),
            key_cols: vec![0, 1],
            k,
        });
        if let Some(c) = qt.columns.first() {
            mix.push(Request::Joinable {
                column: c.clone(),
                k,
            });
            mix.push(Request::FuzzyJoinable {
                column: c.clone(),
                tau: 0.8,
                k,
            });
        }
        let key = qt.columns.iter().find(|c| !c.is_numeric());
        let num = qt.columns.iter().find(|c| c.is_numeric());
        if let (Some(key), Some(num)) = (key, num) {
            mix.push(Request::Correlated {
                key: key.clone(),
                numeric: num.clone(),
                k,
            });
        }
    }
    mix
}

struct SweepPoint {
    shards: usize,
    build_secs: f64,
    run_secs: f64,
    throughput_rps: f64,
    p50_ms: f64,
    p95_ms: f64,
}

fn quantile_ms(sorted_ns: &[u128], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx] as f64 / 1e6
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("shard");
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);

    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: args.tables,
            rows: (8, 24),
            cols: (2, 4),
            seed: args.seed,
            ..LakeGenConfig::default()
        })
    });
    let mut cfg = PipelineConfig::default();
    // The exactness invariant is stated for exact retrieval: HNSW is
    // approximate, and at 10k-table scale per-shard graphs explore
    // differently than one whole-lake graph, so the semantic family is
    // swept on the flat (exhaustive) vector backend — the same choice
    // the Flat fixture in crates/shard/tests/equivalence.rs pins.
    cfg.starmie.backend = td::core::union::starmie::VectorBackend::Flat;
    let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
    let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
    // The whole-lake single pipeline: the equivalence oracle every
    // coordinator reply is checked against.
    let (oracle, t_oracle) = time(|| DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg));
    println!(
        "shard_report: lake of {} tables (gen {} ms, oracle build {} ms), seed {}, {} cores",
        tables.len(),
        ms(t_gen),
        ms(t_oracle),
        args.seed,
        cores
    );

    let mix = build_mix(&tables, &args);
    let expected: Vec<Reply> = mix.iter().map(|req| execute(&oracle, req)).collect();

    let server_cfg = ServerConfig {
        workers: args.workers,
        ..ServerConfig::default()
    };
    let mut sweep = Vec::new();
    for shards in [1usize, 2, 4] {
        let build = Timer::start();
        let mut fleet = ShardFleet::start_partitioned(shards, &ctx, &tables, &server_cfg)
            .expect("start shard fleet");
        let build_secs = build.elapsed().as_secs_f64();
        let coord = fleet.coordinator();

        // Warm the shard connections so the sweep measures serving, not
        // first-dial latency.
        let warm = coord.handle(&RequestEnvelope {
            id: 0,
            deadline_ms: 0,
            req: Request::Health,
        });
        assert_eq!(warm.status, Status::Ok, "fleet must come up healthy");

        let mut lat_ns: Vec<u128> = Vec::with_capacity(mix.len());
        let wall = Timer::start();
        for (i, (req, want)) in mix.iter().zip(&expected).enumerate() {
            let t = Timer::start();
            let resp = coord.handle(&RequestEnvelope {
                id: 1 + i as u64,
                deadline_ms: 0,
                req: req.clone(),
            });
            lat_ns.push(t.elapsed().as_nanos());
            assert_eq!(resp.status, Status::Ok, "{shards}-shard {}", req.endpoint());
            assert!(resp.degraded.is_empty());
            assert_eq!(
                resp.reply.as_ref(),
                Some(want),
                "merge-equivalence violated: {shards}-shard coordinator diverged \
                 from the single-pipeline oracle on {}",
                req.endpoint()
            );
        }
        let run_secs = wall.elapsed().as_secs_f64();
        fleet.shutdown();

        lat_ns.sort_unstable();
        sweep.push(SweepPoint {
            shards,
            build_secs,
            run_secs,
            throughput_rps: if run_secs > 0.0 {
                mix.len() as f64 / run_secs
            } else {
                0.0
            },
            p50_ms: quantile_ms(&lat_ns, 0.50),
            p95_ms: quantile_ms(&lat_ns, 0.95),
        });
    }

    let rows: Vec<Vec<String>> = sweep
        .iter()
        .map(|p| {
            vec![
                p.shards.to_string(),
                format!("{:.0}", p.build_secs * 1e3),
                mix.len().to_string(),
                format!("{:.1}", p.throughput_rps),
                format!("{:.3}", p.p50_ms),
                format!("{:.3}", p.p95_ms),
            ]
        })
        .collect();
    print_table(
        "scatter-gather sweep (every reply checked against the 1-pipeline oracle)",
        &[
            "shards",
            "build (ms)",
            "requests",
            "throughput (req/s)",
            "p50 (ms)",
            "p95 (ms)",
        ],
        &rows,
    );

    let thr_1 = sweep[0].throughput_rps;
    let thr_4 = sweep[2].throughput_rps;
    let speedup = if thr_1 > 0.0 { thr_4 / thr_1 } else { 0.0 };
    println!("4-shard vs 1-shard throughput: {speedup:.2}x ({cores} cores)");
    if cores >= 4 {
        assert!(
            speedup >= 1.5,
            "4-shard fleet must reach >= 1.5x 1-shard throughput on a \
             {cores}-core machine (got {speedup:.2}x)"
        );
    } else {
        println!(
            "note: only {cores} core(s) available — shards cannot run in \
             parallel, so the >= 1.5x speedup assertion is skipped and the \
             sweep measures scatter-gather overhead instead"
        );
    }

    let sweep_json: Vec<serde_json::Value> = sweep
        .iter()
        .map(|p| {
            serde_json::json!({
                "shards": p.shards,
                "build_seconds": p.build_secs,
                "run_seconds": p.run_secs,
                "requests": mix.len(),
                "throughput_rps": p.throughput_rps,
                "p50_ms": p.p50_ms,
                "p95_ms": p.p95_ms,
            })
        })
        .collect();
    report
        .stage("generate", t_gen)
        .stage("oracle_build", t_oracle)
        .field("seed", &args.seed)
        .field("tables", &tables.len())
        .field("queries", &args.queries)
        .field("k", &args.k)
        .field("workers", &args.workers)
        .field("cores", &cores)
        .field("requests_per_sweep", &mix.len())
        .field("speedup_4shard_vs_1shard", &speedup)
        .field("speedup_assertion_armed", &(cores >= 4))
        .field(
            "merge_equivalence",
            &"every reply byte-equal to the 1-pipeline oracle",
        )
        .field("sweep", &serde_json::Value::Seq(sweep_json));
    report.finish();
}
