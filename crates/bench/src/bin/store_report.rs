//! store_report — persistence telemetry for td-store, emitting
//! `BENCH_store.json`.
//!
//! Four measurements over one synthetic lake:
//!
//! 1. **rebuild baseline** — one-shot `DiscoveryPipeline::build` wall
//!    time over the whole lake: what every restart costs without
//!    persistence.
//! 2. **checkpoint + restore** — populate a [`td::store::DurablePipeline`],
//!    checkpoint, drop every handle, and time the restore (snapshot
//!    decode + `from_state`, no WAL replay). The report asserts restore
//!    is **≥ 4× cheaper than the rebuild** — the point of the subsystem.
//! 3. **WAL replay throughput** — a log of `--wal-records` (default
//!    5000) ingest/seal records replays on a fresh open; replay is pure
//!    deserialize + upsert (the logged record carries the extracted
//!    artifact bundle). The first open pays a one-time cold disk read of
//!    the log (reported separately); the report asserts the best of
//!    three steady-state replays stays under `--replay-budget-ms`
//!    (default 250 ms).
//! 4. **corruption drill** — flip a byte in the newest snapshot and tear
//!    the WAL tail mid-record; recovery must fall back to the older
//!    snapshot, truncate the torn tail, and come up with the surviving
//!    state — asserted, not just reported.
//!
//! Flags (all optional): `--seed N`, `--tables N`, `--wal-records N`,
//! `--replay-budget-ms N`.

use std::path::PathBuf;

use td::core::{DiscoveryPipeline, PipelineConfig, PipelineContext, TableArtifacts};
use td::store::{DurablePipeline, Store, Wal, WalRecord};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::{Table, TableId};
use td_bench::{ms, print_table, time, BenchReport};

struct Args {
    seed: u64,
    tables: usize,
    wal_records: usize,
    replay_budget_ms: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        tables: 1000,
        wal_records: 5000,
        replay_budget_ms: 250.0,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--seed" => args.seed = val.parse().unwrap_or(args.seed),
            "--tables" => args.tables = val.parse().unwrap_or(args.tables),
            "--wal-records" => args.wal_records = val.parse().unwrap_or(args.wal_records),
            "--replay-budget-ms" => {
                args.replay_budget_ms = val.parse().unwrap_or(args.replay_budget_ms);
            }
            _ => {}
        }
        i += 2;
    }
    args
}

fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("td-store-report-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn flip_byte(path: &std::path::Path, offset_from_end: u64) {
    use std::io::{Read as _, Seek as _, SeekFrom, Write as _};
    let mut f = std::fs::OpenOptions::new()
        .read(true)
        .write(true)
        .open(path)
        .expect("open for corruption");
    let len = f.metadata().expect("metadata").len();
    let pos = len.saturating_sub(offset_from_end);
    f.seek(SeekFrom::Start(pos)).expect("seek");
    let mut b = [0u8; 1];
    f.read_exact(&mut b).expect("read");
    f.seek(SeekFrom::Start(pos)).expect("seek back");
    f.write_all(&[b[0] ^ 0xff]).expect("write flip");
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("store");

    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: args.tables,
            rows: (10, 30),
            cols: (2, 4),
            seed: args.seed,
            ..LakeGenConfig::default()
        })
    });
    let cfg = PipelineConfig::default();
    let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
    println!(
        "store_report: lake of {} tables (gen {} ms), seed {}",
        tables.len(),
        ms(t_gen),
        args.seed
    );

    // 1. Rebuild baseline: the restart cost persistence removes.
    let (batch, t_rebuild) = time(|| DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg));
    let rebuild_ms = t_rebuild.as_secs_f64() * 1e3;

    // 2. Populate a durable pipeline, checkpoint, and restore.
    let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
    let dir = scratch("main");
    let (mut dp, _) =
        DurablePipeline::open(Store::open(dir.clone()).expect("open store"), ctx.clone())
            .expect("fresh open");
    let (_, t_populate) = time(|| {
        for (step, (id, t)) in tables.iter().enumerate() {
            dp.ingest_table(*id, t).expect("ingest");
            if (step + 1) % 256 == 0 {
                dp.seal().expect("seal");
            }
        }
    });
    let (cp, t_checkpoint) = time(|| dp.checkpoint().expect("checkpoint"));
    drop(dp);

    let ((dp, restore_stats), t_restore) = time(|| {
        DurablePipeline::open(Store::open(dir.clone()).expect("open store"), ctx.clone())
            .expect("restore")
    });
    let restore_ms = t_restore.as_secs_f64() * 1e3;
    assert_eq!(restore_stats.snapshot_seq, Some(1));
    assert_eq!(restore_stats.wal_records_replayed, 0);
    assert_eq!(dp.pipeline().len(), tables.len());

    // Restored state must answer exactly like the batch build.
    let restored = dp.pipeline().snapshot();
    for (_, q) in &tables[..tables.len().min(3)] {
        assert_eq!(
            format!("{:?}", batch.search_unionable(q, 5)),
            format!("{:?}", restored.search_unionable(q, 5)),
            "restored pipeline diverged from the batch build"
        );
    }
    let speedup = rebuild_ms / restore_ms.max(1e-9);

    // 3. WAL replay throughput: a log of `wal_records` pre-extracted
    // ingests (cycling the lake, plus a seal every 256) replayed on open.
    let replay_dir = scratch("replay");
    let replay_store = Store::open(replay_dir.clone()).expect("open replay store");
    let artifacts: Vec<(TableId, TableArtifacts)> = tables
        .iter()
        .take(512)
        .map(|(id, t)| (*id, TableArtifacts::extract(t, &ctx)))
        .collect();
    let mut wal = Wal::create(&replay_dir.join("pipeline.wal"), 1).expect("create wal");
    let (_, t_append) = time(|| {
        for i in 0..args.wal_records {
            if (i + 1) % 256 == 0 {
                wal.append(&WalRecord::Seal).expect("append seal");
            } else {
                let (id, a) = &artifacts[i % artifacts.len()];
                wal.append(&WalRecord::Ingest {
                    id: *id,
                    artifacts: Box::new(a.clone()),
                })
                .expect("append ingest");
            }
        }
        wal.sync().expect("sync");
    });
    let wal_bytes = std::fs::metadata(replay_dir.join("pipeline.wal"))
        .expect("wal metadata")
        .len();
    drop(wal);
    // The first restore pays a one-time cold read of the log from disk;
    // replay cost proper (checksum + decode + apply) is the steady-state
    // number, so report the cold open separately and assert on the best
    // of three warm replays — single-shot wall timing on a shared 1-vCPU
    // box otherwise measures the disk, not the subsystem.
    let ((_, cold_wal, _), t_cold) = time(|| {
        replay_store
            .restore(ctx.clone())
            .expect("cold replay restore")
    });
    drop(cold_wal);
    let replay_cold_ms = t_cold.as_secs_f64() * 1e3;
    let mut replay_runs_ms: Vec<f64> = Vec::new();
    let mut replay_stats = None;
    for _ in 0..3 {
        let ((_, warm_wal, stats), t) =
            time(|| replay_store.restore(ctx.clone()).expect("replay restore"));
        drop(warm_wal);
        replay_runs_ms.push(t.as_secs_f64() * 1e3);
        replay_stats = Some(stats);
    }
    let replay_stats = replay_stats.expect("three warm replays ran");
    let replay_ms = replay_runs_ms.iter().copied().fold(f64::INFINITY, f64::min);
    assert_eq!(
        replay_stats.wal_records_replayed, args.wal_records as u64,
        "every appended record must replay"
    );

    // 4. Corruption drill: write a second checkpoint, log a few more
    // records, then flip a byte in the newest snapshot *and* tear the
    // WAL tail mid-record. Recovery must skip the corrupt snapshot, fall
    // back to the older one, truncate the torn tail, and replay the
    // surviving records — full state, no panic.
    let mut dp = dp;
    dp.checkpoint().expect("second checkpoint");
    let post_checkpoint = 9usize;
    for (id, t) in &tables[..post_checkpoint.min(tables.len())] {
        dp.ingest_table(*id, t).expect("post-checkpoint ingest");
    }
    dp.sync().expect("sync");
    drop(dp);
    flip_byte(&dir.join("snapshot-00000002.tds"), 64);
    let wal_path = dir.join("pipeline.wal");
    let wal_len = std::fs::metadata(&wal_path).expect("wal metadata").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(&wal_path)
        .expect("open wal");
    f.set_len(wal_len - 5).expect("tear tail");
    drop(f);
    let ((dp, drill_stats), t_drill) = time(|| {
        DurablePipeline::open(Store::open(dir.clone()).expect("open store"), ctx.clone())
            .expect("corruption drill must recover, not panic")
    });
    assert_eq!(
        drill_stats.corrupt_snapshots_skipped, 1,
        "the flipped snapshot must be detected and skipped"
    );
    assert_eq!(drill_stats.snapshot_seq, Some(1), "older snapshot wins");
    assert!(
        drill_stats.wal_bytes_truncated > 0,
        "the torn tail must be truncated"
    );
    assert_eq!(
        drill_stats.wal_records_replayed,
        post_checkpoint as u64 - 1,
        "all but the torn record replay"
    );
    let drill_tables = dp.pipeline().len();
    assert_eq!(
        drill_tables,
        tables.len(),
        "recovered state must cover the whole lake (replays are re-ingests)"
    );
    drop(dp);

    print_table(
        "restore vs rebuild",
        &["metric", "value"],
        &[
            vec!["tables".into(), tables.len().to_string()],
            vec!["rebuild (ms)".into(), format!("{rebuild_ms:.2}")],
            vec!["populate durable (ms)".into(), ms(t_populate)],
            vec!["checkpoint (ms)".into(), ms(t_checkpoint)],
            vec![
                "snapshot size (bytes)".into(),
                cp.snapshot_bytes.to_string(),
            ],
            vec!["restore (ms)".into(), format!("{restore_ms:.2}")],
            vec![
                "speedup (rebuild / restore)".into(),
                format!("{speedup:.1}x"),
            ],
        ],
    );
    print_table(
        "wal replay",
        &["metric", "value"],
        &[
            vec!["records".into(), args.wal_records.to_string()],
            vec!["wal size (bytes)".into(), wal_bytes.to_string()],
            vec!["append+sync (ms)".into(), ms(t_append)],
            vec![
                "cold open incl. disk read (ms)".into(),
                format!("{replay_cold_ms:.2}"),
            ],
            vec!["replay, best of 3 (ms)".into(), format!("{replay_ms:.2}")],
            vec![
                "torn tail truncated (bytes)".into(),
                replay_stats.wal_bytes_truncated.to_string(),
            ],
        ],
    );
    print_table(
        "corruption drill",
        &["metric", "value"],
        &[
            vec![
                "corrupt snapshots skipped".into(),
                drill_stats.corrupt_snapshots_skipped.to_string(),
            ],
            vec![
                "wal bytes truncated".into(),
                drill_stats.wal_bytes_truncated.to_string(),
            ],
            vec![
                "records replayed".into(),
                drill_stats.wal_records_replayed.to_string(),
            ],
            vec!["tables recovered".into(), drill_tables.to_string()],
            vec!["recovery (ms)".into(), ms(t_drill)],
        ],
    );

    report
        .stage("generate", t_gen)
        .stage("rebuild", t_rebuild)
        .stage("populate", t_populate)
        .stage("checkpoint", t_checkpoint)
        .stage("restore", t_restore)
        .stage("wal_append", t_append)
        .stage("wal_open_cold", t_cold)
        .stage(
            "wal_replay",
            std::time::Duration::from_secs_f64(replay_ms / 1e3),
        )
        .stage("corruption_drill", t_drill)
        .field("seed", &args.seed)
        .field("tables", &tables.len())
        .merge(&serde_json::json!({
            "rebuild_ms": rebuild_ms,
            "restore_ms": restore_ms,
            "speedup_vs_rebuild": speedup,
            "snapshot_bytes": cp.snapshot_bytes,
            "wal": {
                "records": args.wal_records,
                "bytes": wal_bytes,
                "replay_cold_ms": replay_cold_ms,
                "replay_runs_ms": replay_runs_ms,
                "replay_ms": replay_ms,
                "replay_budget_ms": args.replay_budget_ms,
            },
            "corruption_drill": {
                "corrupt_snapshots_skipped": drill_stats.corrupt_snapshots_skipped,
                "wal_bytes_truncated": drill_stats.wal_bytes_truncated,
                "tables_recovered": drill_tables,
                "recovered": true,
            },
        }));
    report.finish();

    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&replay_dir);

    assert!(
        speedup >= 4.0,
        "restore must be >= 4x cheaper than a full rebuild (got {speedup:.1}x)"
    );
    assert!(
        replay_ms <= args.replay_budget_ms,
        "WAL replay of {} records must stay under {} ms (got {replay_ms:.1} ms)",
        args.wal_records,
        args.replay_budget_ms
    );
}
