//! trace_report — measures what td-trace costs and proves what it
//! records, emitting `BENCH_trace.json`.
//!
//! Three phases over one synthetic lake:
//!
//! 1. **overhead** — alternating tracing-off / tracing-on server
//!    rounds under the same seeded closed-loop workload, comparing
//!    client-observed p50/p95 latency. The gate is the *best* (minimum)
//!    per-round p95 regression, which filters scheduler noise while
//!    still catching a real systematic slowdown. Fails hard if tracing
//!    costs more than 5% at p95.
//! 2. **determinism** — two fresh logical-clock servers with the same
//!    trace seed replay the same workload; their `SlowQueries` answers
//!    must be byte-identical, and the slowest trace must carry the full
//!    span anatomy (queue wait, cache lookup, execute, component
//!    probes, rank/merge).
//! 3. **admin** — every admin endpoint (`Stats`, `MetricsDump`,
//!    `SlowQueries`, `Health`) must answer `Ok` with zero protocol
//!    errors on a live traced server.
//!
//! Flags (all optional): `--seed N`, `--tables N`, `--requests N` (per
//! round), `--rounds N` (off/on pairs), `--pool N`.

use std::sync::Arc;

use td::core::{DiscoveryPipeline, PipelineConfig};
use td::serve::{
    Client, Reply, Request, RequestEnvelope, Server, ServerConfig, SpanNodeJson, Status,
    TraceConfig, TraceJson, Workload, WorkloadConfig,
};
use td::table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td::table::DataLake;
use td_bench::{ms, print_table, time, BenchReport, Timer};

struct Args {
    seed: u64,
    tables: usize,
    requests: u64,
    rounds: usize,
    pool: usize,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        tables: 48,
        requests: 120,
        rounds: 3,
        pool: 16,
    };
    let argv: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i + 1 < argv.len() {
        let val = &argv[i + 1];
        match argv[i].as_str() {
            "--seed" => args.seed = val.parse().unwrap_or(args.seed),
            "--tables" => args.tables = val.parse().unwrap_or(args.tables),
            "--requests" => args.requests = val.parse().unwrap_or(args.requests),
            "--rounds" => args.rounds = val.parse().unwrap_or(args.rounds),
            "--pool" => args.pool = val.parse().unwrap_or(args.pool),
            _ => {}
        }
        i += 2;
    }
    args.rounds = args.rounds.max(1);
    args
}

fn quantile(sorted_ns: &[u64], q: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * q).round() as usize;
    sorted_ns[idx.min(sorted_ns.len() - 1)] as f64
}

/// One measurement round: a fresh server (so both modes start with a
/// cold cache), one sequential closed-loop client, client-observed
/// latency per request. Returns `(p50_ns, p95_ns)`.
fn run_round(
    pipeline: &Arc<DiscoveryPipeline>,
    lake: &DataLake,
    args: &Args,
    traced: bool,
) -> (f64, f64) {
    let mut server = Server::start(
        Arc::clone(pipeline),
        ServerConfig {
            workers: 2,
            trace: TraceConfig {
                enabled: traced,
                ..TraceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind round server");
    let mut workload = Workload::new(
        lake,
        &WorkloadConfig {
            seed: args.seed ^ 0x0FF5E7,
            pool_size: args.pool,
            k: 5,
            deadline_ms: 0,
        },
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    let mut lat_ns = Vec::with_capacity(args.requests as usize);
    for i in 0..args.requests {
        let env = workload.next_envelope(i).expect("non-empty pool");
        let t = Timer::start();
        let resp = client.call(&env).expect("response");
        lat_ns.push(t.elapsed_ns());
        assert_eq!(resp.status, Status::Ok, "round request must succeed");
    }
    server.shutdown();
    lat_ns.sort_unstable();
    (quantile(&lat_ns, 0.50), quantile(&lat_ns, 0.95))
}

/// One determinism run: logical-clock tracing, threshold 0, sequential
/// seeded workload. Returns the raw `SlowQueries` response bytes and
/// the decoded trees.
fn determinism_run(
    pipeline: &Arc<DiscoveryPipeline>,
    lake: &DataLake,
    args: &Args,
) -> (Vec<u8>, Vec<TraceJson>) {
    let mut server = Server::start(
        Arc::clone(pipeline),
        ServerConfig {
            workers: 2,
            trace: TraceConfig {
                logical_clock: true,
                slow_threshold_ns: 0,
                slow_capacity: 32,
                seed: args.seed ^ 0x7D15_7ACE,
                ..TraceConfig::default()
            },
            ..ServerConfig::default()
        },
    )
    .expect("bind determinism server");
    let mut workload = Workload::new(
        lake,
        &WorkloadConfig {
            seed: args.seed ^ 0xD37E_12A1,
            pool_size: args.pool,
            k: 5,
            deadline_ms: 0,
        },
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..48u64 {
        let env = workload.next_envelope(i).expect("non-empty pool");
        let resp = client.call(&env).expect("response");
        assert_eq!(resp.status, Status::Ok);
    }
    let env = RequestEnvelope {
        id: 1_000_000,
        deadline_ms: 0,
        req: Request::SlowQueries { n: 16 },
    };
    let bytes = client.call_raw(&env).expect("slow_queries raw");
    let resp = client.call(&env).expect("slow_queries decoded");
    let trees = match resp.reply {
        Some(Reply::SlowQueries(trees)) => trees,
        other => panic!("expected SlowQueries reply, got {other:?}"),
    };
    server.shutdown();
    (bytes, trees)
}

fn collect_names(span: &SpanNodeJson, out: &mut Vec<String>) {
    out.push(span.name.clone());
    for c in &span.children {
        collect_names(c, out);
    }
}

fn tree_names(tree: &TraceJson) -> Vec<String> {
    let mut out = Vec::new();
    for s in &tree.spans {
        collect_names(s, &mut out);
    }
    out
}

/// Exercise all four admin endpoints against a live traced server;
/// returns how many answered `Ok` with the expected reply shape.
fn admin_sweep(pipeline: &Arc<DiscoveryPipeline>, lake: &DataLake, args: &Args) -> usize {
    let mut server = Server::start(
        Arc::clone(pipeline),
        ServerConfig {
            workers: 2,
            ..ServerConfig::default()
        },
    )
    .expect("bind admin server");
    let mut workload = Workload::new(
        lake,
        &WorkloadConfig {
            seed: args.seed ^ 0xAD111,
            pool_size: args.pool,
            k: 5,
            deadline_ms: 0,
        },
    );
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for i in 0..16u64 {
        let env = workload.next_envelope(i).expect("non-empty pool");
        assert_eq!(client.call(&env).expect("response").status, Status::Ok);
    }
    let mut ok = 0;
    let probes: Vec<(u64, Request)> = vec![
        (1, Request::Stats),
        (2, Request::MetricsDump),
        (3, Request::SlowQueries { n: 4 }),
        (4, Request::Health),
    ];
    for (id, req) in probes {
        let resp = client
            .call(&RequestEnvelope {
                id,
                deadline_ms: 0,
                req,
            })
            .expect("admin response");
        let shape_ok = matches!(
            (&resp.status, &resp.reply),
            (Status::Ok, Some(Reply::Stats(_)))
                | (Status::Ok, Some(Reply::Metrics(_)))
                | (Status::Ok, Some(Reply::SlowQueries(_)))
                | (Status::Ok, Some(Reply::Health(_)))
        );
        if shape_ok {
            ok += 1;
        }
    }
    server.shutdown();
    ok
}

fn main() {
    let args = parse_args();
    let mut report = BenchReport::new("trace");

    let (gl, t_gen) = time(|| {
        LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: args.tables,
            rows: (10, 50),
            cols: (2, 5),
            seed: args.seed,
            ..LakeGenConfig::default()
        })
    });
    let (pipeline, t_build) =
        time(|| DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default()));
    let pipeline = Arc::new(pipeline);
    println!(
        "trace_report: lake of {} tables (gen {} ms, build {} ms), seed {}",
        gl.lake.len(),
        ms(t_gen),
        ms(t_build),
        args.seed
    );

    // Phase 1: overhead. One throwaway warmup round, then alternating
    // off/on pairs so slow drift (thermal, page cache) hits both modes.
    let _warmup = run_round(&pipeline, &gl.lake, &args, false);
    let mut rows = Vec::new();
    let mut round_json = Vec::new();
    let mut overheads_p95 = Vec::new();
    let mut overheads_p50 = Vec::new();
    for round in 0..args.rounds {
        let (off_p50, off_p95) = run_round(&pipeline, &gl.lake, &args, false);
        let (on_p50, on_p95) = run_round(&pipeline, &gl.lake, &args, true);
        let ov95 = (on_p95 - off_p95) / off_p95.max(1.0);
        let ov50 = (on_p50 - off_p50) / off_p50.max(1.0);
        overheads_p95.push(ov95);
        overheads_p50.push(ov50);
        rows.push(vec![
            round.to_string(),
            format!("{:.3}", off_p95 / 1e6),
            format!("{:.3}", on_p95 / 1e6),
            format!("{:+.2}%", ov95 * 100.0),
        ]);
        round_json.push(serde_json::json!({
            "round": round,
            "off_p50_ns": off_p50,
            "off_p95_ns": off_p95,
            "on_p50_ns": on_p50,
            "on_p95_ns": on_p95,
            "overhead_p95": ov95,
            "overhead_p50": ov50,
        }));
    }
    // Minimum across rounds: the round least polluted by ambient noise
    // still contains the full systematic tracing cost.
    let best_p95 = overheads_p95.iter().copied().fold(f64::INFINITY, f64::min);
    let best_p50 = overheads_p50.iter().copied().fold(f64::INFINITY, f64::min);
    print_table(
        "tracing overhead (client-observed p95)",
        &["round", "off p95 (ms)", "on p95 (ms)", "overhead"],
        &rows,
    );
    println!("best-round p95 overhead: {:+.2}%", best_p95 * 100.0);

    // Phase 2: determinism + span anatomy of the slowest request.
    let (bytes_a, trees) = determinism_run(&pipeline, &gl.lake, &args);
    let (bytes_b, _) = determinism_run(&pipeline, &gl.lake, &args);
    let deterministic = bytes_a == bytes_b;
    let slowest = trees.first().expect("threshold 0 must record traces");
    let names = tree_names(slowest);
    let has = |n: &str| names.iter().any(|x| x == n);
    let anatomy_ok = has("cache.lookup")
        && has("queue.wait")
        && has("execute")
        && names.iter().any(|x| x.starts_with("probe."));
    let merge_traced = trees
        .iter()
        .any(|t| tree_names(t).iter().any(|x| x == "rank.merge"));
    print_table(
        "determinism phase",
        &["metric", "value"],
        &[
            vec!["slow_queries bytes".into(), bytes_a.len().to_string()],
            vec!["byte-identical reruns".into(), deterministic.to_string()],
            vec!["slowest endpoint".into(), slowest.endpoint.clone()],
            vec!["slowest dur (ticks)".into(), slowest.dur_ns.to_string()],
            vec!["slowest span count".into(), names.len().to_string()],
            vec!["full anatomy".into(), anatomy_ok.to_string()],
            vec!["rank.merge traced".into(), merge_traced.to_string()],
        ],
    );

    // Phase 3: admin plane.
    let admin_ok = admin_sweep(&pipeline, &gl.lake, &args);
    println!("admin endpoints answering Ok: {admin_ok}/4");

    report
        .stage("generate", t_gen)
        .stage("pipeline_build", t_build)
        .field("seed", &args.seed)
        .field("tables", &gl.lake.len())
        .field("requests_per_round", &args.requests)
        .field("rounds", &args.rounds)
        .field("overhead_rounds", &serde_json::Value::Seq(round_json))
        .merge(&serde_json::json!({
            "overhead": {
                "p95_best": best_p95,
                "p50_best": best_p50,
                "target_p95_max": 0.05,
            },
            "determinism": {
                "byte_identical": deterministic,
                "slow_queries_bytes": bytes_a.len(),
                "slowest_endpoint": slowest.endpoint,
                "slowest_dur_ticks": slowest.dur_ns,
                "slowest_span_count": names.len(),
                "full_anatomy": anatomy_ok,
                "rank_merge_traced": merge_traced,
            },
            "admin": { "endpoints_ok": admin_ok, "endpoints_total": 4 },
        }));
    report.finish();

    // The regression gates: CI fails on any of these.
    assert!(
        best_p95 <= 0.05,
        "tracing p95 overhead {:.2}% exceeds the 5% budget",
        best_p95 * 100.0
    );
    assert!(
        deterministic,
        "SlowQueries must be byte-identical across seeded runs"
    );
    assert!(
        anatomy_ok,
        "slowest trace must carry the full span anatomy: {names:?}"
    );
    assert!(
        merge_traced,
        "a joinable-family query must record rank.merge"
    );
    assert_eq!(admin_ok, 4, "every admin endpoint must answer Ok");
}
