//! Harness support for the experiment binaries: aligned-table printing,
//! wall-clock timing, and JSON result records (consumed by EXPERIMENTS.md).

#![warn(missing_docs)]

use serde::Serialize;
use std::time::{Duration, Instant};

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("  ");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!("{:<w$}  ", c, w = widths.get(i).copied().unwrap_or(8)));
        }
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Time a closure.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

/// Milliseconds with two decimals.
#[must_use]
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Append a JSON result record to `target/experiments.jsonl` (best-effort;
/// printing remains the primary output).
pub fn record<T: Serialize>(experiment: &str, payload: &T) {
    #[derive(Serialize)]
    struct Record<'a, T> {
        experiment: &'a str,
        payload: &'a T,
    }
    let rec = Record { experiment, payload };
    if let Ok(json) = serde_json::to_string(&rec) {
        let path = std::path::Path::new("target");
        let _ = std::fs::create_dir_all(path);
        use std::io::Write;
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.join("experiments.jsonl"))
        {
            let _ = writeln!(f, "{json}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }

    #[test]
    fn time_returns_value() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0);
    }
}
