//! Harness support for the experiment binaries: aligned-table printing,
//! timing (re-exported from `td-obs`), JSONL result records, and the
//! [`BenchReport`] emitter that writes machine-readable `BENCH_<exp>.json`
//! telemetry alongside each experiment's stdout table.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]

use std::io::Write as _;
use std::path::PathBuf;
use std::time::Duration;

pub use td_obs::{time, ScopedTimer, Timer};

use serde_json::Value;

/// Print an aligned text table.
pub fn print_table(title: &str, headers: &[&str], rows: &[Vec<String>]) {
    // td-lint: allow(TD004) the harness's job is printing human-readable tables
    println!("\n{title}");
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let line = |cells: &[String]| {
        let mut s = String::from("  ");
        for (i, c) in cells.iter().enumerate() {
            s.push_str(&format!(
                "{:<w$}  ",
                c,
                w = widths.get(i).copied().unwrap_or(8)
            ));
        }
        // td-lint: allow(TD004) the harness's job is printing human-readable tables
        println!("{}", s.trim_end());
    };
    line(&headers.iter().map(|h| (*h).to_string()).collect::<Vec<_>>());
    line(&widths.iter().map(|w| "-".repeat(*w)).collect::<Vec<_>>());
    for row in rows {
        line(row);
    }
}

/// Milliseconds with two decimals.
#[must_use]
pub fn ms(d: Duration) -> String {
    format!("{:.2}", d.as_secs_f64() * 1e3)
}

/// Append a JSON result record to `target/experiments.jsonl` (best-effort;
/// printing remains the primary output).
pub fn record(experiment: &str, payload: &Value) {
    let rec = serde_json::json!({ "experiment": experiment, "payload": payload });
    if let Ok(json) = serde_json::to_string(&rec) {
        let path = std::path::Path::new("target");
        // td-lint: allow(TD011) best-effort: if the dir cannot be made the OpenOptions below reports the real error
        let _ = std::fs::create_dir_all(path);
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path.join("experiments.jsonl"))
        {
            let _ = writeln!(f, "{json}");
        }
    }
}

/// Accumulates one experiment's telemetry — wall time, named stage
/// timings, scalar result fields, and the `td-obs` global metrics
/// snapshot (span histograms, query counters) — and writes it as
/// `BENCH_<experiment>.json` in the working directory.
///
/// ```no_run
/// let mut report = td_bench::BenchReport::new("e99_demo");
/// let sum = report.measure("build", || (0..1000u64).sum::<u64>());
/// report.field("sum", &sum);
/// report.finish();
/// ```
pub struct BenchReport {
    experiment: String,
    wall: Timer,
    stages: Vec<(String, f64)>,
    fields: Vec<(String, Value)>,
}

impl BenchReport {
    /// Start a report; wall-clock measurement begins now.
    #[must_use]
    pub fn new(experiment: &str) -> Self {
        BenchReport {
            experiment: experiment.to_string(),
            wall: Timer::start(),
            stages: Vec::new(),
            fields: Vec::new(),
        }
    }

    /// Record a named stage duration (milliseconds in the report).
    pub fn stage(&mut self, name: &str, d: Duration) -> &mut Self {
        self.stages.push((name.to_string(), d.as_secs_f64() * 1e3));
        self
    }

    /// Run `f`, record its duration as a stage, and return its result.
    pub fn measure<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let (out, d) = time(f);
        self.stage(name, d);
        out
    }

    /// Attach a scalar or structured result field (P@k, MAP, sizes, …).
    pub fn field<T: serde::Serialize + ?Sized>(&mut self, key: &str, value: &T) -> &mut Self {
        self.fields
            .push((key.to_string(), serde_json::to_value(value)));
        self
    }

    /// Merge every key of a `json!({...})` object into the result fields.
    pub fn merge(&mut self, payload: &Value) -> &mut Self {
        if let Some(map) = payload.as_map() {
            for (k, v) in map {
                if let Some(key) = k.as_str() {
                    self.fields.push((key.to_string(), v.clone()));
                }
            }
        }
        self
    }

    /// The report as a JSON value: `experiment`, `wall_ms`, `stages`,
    /// `fields`, and the `td-obs` global registry snapshot under
    /// `metrics`.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let stages = Value::Map(
            self.stages
                .iter()
                .map(|(k, v)| (Value::Str(k.clone()), serde_json::to_value(v)))
                .collect(),
        );
        let fields = Value::Map(
            self.fields
                .iter()
                .map(|(k, v)| (Value::Str(k.clone()), v.clone()))
                .collect(),
        );
        let metrics = serde_json::from_str(&td_obs::global().export_json()).unwrap_or(Value::Null);
        serde_json::json!({
            "experiment": self.experiment,
            "wall_ms": self.wall.elapsed_ms(),
            "stages": stages,
            "fields": fields,
            "metrics": metrics,
        })
    }

    /// Write `BENCH_<experiment>.json` (pretty-printed) in the working
    /// directory, returning the path.
    pub fn write(&self) -> std::io::Result<PathBuf> {
        let path = PathBuf::from(format!("BENCH_{}.json", self.experiment));
        let json = serde_json::to_string_pretty(&self.to_json())
            .map_err(|e| std::io::Error::other(format!("{e:?}")))?;
        std::fs::write(&path, json + "\n")?;
        Ok(path)
    }

    /// Write the report, logging the path (or the error) to stdout.
    pub fn finish(&self) {
        match self.write() {
            // td-lint: allow(TD004) finish() reports to the experiment's stdout by contract
            Ok(path) => println!("\nwrote {}", path.display()),
            // td-lint: allow(TD004) finish() reports to the experiment's stdout by contract
            Err(e) => eprintln!("\nfailed to write bench report: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ms_formats() {
        assert_eq!(ms(Duration::from_millis(1500)), "1500.00");
    }

    #[test]
    fn time_returns_value() {
        let (v, d) = time(|| 41 + 1);
        assert_eq!(v, 42);
        assert!(d.as_nanos() < u128::from(u64::MAX));
    }

    #[test]
    fn report_round_trips_through_serde_json() {
        let mut report = BenchReport::new("unit_test");
        report.stage("build", Duration::from_millis(12));
        report.field("tables", &30u64);
        report.merge(&serde_json::json!({ "p_at_10": 0.75 }));
        let text = serde_json::to_string_pretty(&report.to_json()).unwrap();
        let back: Value = serde_json::from_str(&text).unwrap();
        let map = back.as_map().expect("report is an object");
        let get = |key: &str| {
            map.iter()
                .find(|(k, _)| k.as_str() == Some(key))
                .map(|(_, v)| v.clone())
        };
        assert!(get("experiment").is_some());
        assert!(get("wall_ms").is_some());
        assert!(get("stages").is_some());
        let fields = get("fields").unwrap();
        let fields = fields.as_map().unwrap();
        assert!(fields.iter().any(|(k, _)| k.as_str() == Some("p_at_10")));
        assert!(fields.iter().any(|(k, _)| k.as_str() == Some("tables")));
    }
}
