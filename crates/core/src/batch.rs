//! Deterministic batched query execution.
//!
//! Discovery workloads arrive in bursts (LakeBench-style benchmark sweeps,
//! a coordinator fanning one client batch across shards), and per-request
//! overhead — thread-local scratch warm-up, index-root cache misses,
//! per-call bookkeeping — dominates when queries are issued one at a time.
//! [`run_batch`] amortizes it: a batch of independent read-only queries is
//! chunked across the machine's cores with `std::thread::scope`, each
//! worker answering its contiguous slice sequentially.
//!
//! Determinism contract: every query is answered by the *same* per-query
//! code path the sequential API uses, against the same immutable index
//! state, and results are returned in input order — so a batched answer is
//! byte-identical to the sequential one regardless of core count or
//! scheduling. The equivalence tests in `crates/core/tests/batch.rs` pin
//! this for all eight search families.

/// Answer every query in `queries` with `f`, in parallel, returning
/// results in input order.
///
/// `f` must be a pure function of the query and shared immutable state
/// (all pipeline `search_*` methods qualify: they take `&self`). Batches
/// of one — and machines reporting a single core — run inline without
/// spawning.
pub fn run_batch<Q, R, F>(queries: &[Q], f: F) -> Vec<R>
where
    Q: Sync,
    R: Send,
    F: Fn(&Q) -> R + Sync,
{
    let n = queries.len();
    let threads = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
        .min(n);
    if threads <= 1 {
        return queries.iter().map(&f).collect();
    }
    let chunk = n.div_ceil(threads);
    let mut out: Vec<Option<R>> = Vec::with_capacity(n);
    out.resize_with(n, || None);
    std::thread::scope(|scope| {
        let mut rest = out.as_mut_slice();
        for qchunk in queries.chunks(chunk) {
            let (slot, tail) = rest.split_at_mut(qchunk.len());
            rest = tail;
            let f = &f;
            // One worker per contiguous chunk; workers only touch their
            // own output slots, and the scope joins them all before `out`
            // is read.
            scope.spawn(move || {
                for (s, q) in slot.iter_mut().zip(qchunk) {
                    *s = Some(f(q));
                }
            });
        }
    });
    let results: Vec<R> = out.into_iter().flatten().collect();
    debug_assert_eq!(results.len(), n, "every slot is filled before join");
    results
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_are_in_input_order() {
        let queries: Vec<u64> = (0..100).collect();
        let got = run_batch(&queries, |&q| q * q);
        let want: Vec<u64> = queries.iter().map(|&q| q * q).collect();
        assert_eq!(got, want);
    }

    #[test]
    fn empty_and_single_batches_work() {
        let none: Vec<u32> = Vec::new();
        assert!(run_batch(&none, |&q| q).is_empty());
        assert_eq!(run_batch(&[41u32], |&q| q + 1), vec![42]);
    }

    #[test]
    fn uneven_chunks_cover_every_query() {
        // Sizes around core-count boundaries exercise the chunk math.
        for n in [2usize, 3, 5, 7, 8, 13, 16, 17, 31] {
            let queries: Vec<usize> = (0..n).collect();
            assert_eq!(run_batch(&queries, |&q| q), queries, "n={n}");
        }
    }

    #[test]
    fn borrows_shared_state() {
        let corpus: Vec<String> = (0..10).map(|i| format!("doc{i}")).collect();
        let queries = [3usize, 7, 0];
        let got = run_batch(&queries, |&q| corpus[q].clone());
        assert_eq!(got, vec!["doc3", "doc7", "doc0"]);
    }
}
