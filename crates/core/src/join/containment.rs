//! Containment (domain) search via LSH Ensemble (tutorial §2.4).

use crate::join::jaccard::JaccardJoinSearch;
use crate::segment::{live_entries, ComponentSegment, IndexComponent, PipelineContext};
use std::collections::BTreeSet;
use td_index::ensemble::LshEnsemble;
use td_sketch::minhash::MinHashSignature;
use td_table::{Column, ColumnRef, DataLake, Table, TableId};

/// Containment-threshold joinable search over all textual columns.
#[derive(Debug, Clone)]
pub struct ContainmentJoinSearch {
    base: JaccardJoinSearch,
    ensemble: LshEnsemble,
}

impl ContainmentJoinSearch {
    /// Build with `k_hashes`-function signatures and `partitions`
    /// cardinality partitions.
    ///
    /// # Panics
    /// Panics if the lake has no indexable textual columns.
    #[must_use]
    pub fn build(lake: &DataLake, k_hashes: usize, partitions: usize) -> Self {
        Self::assemble(JaccardJoinSearch::build(lake, k_hashes), partitions)
    }

    /// Derive the LSH Ensemble over an already-signed base index — shared
    /// by [`Self::build`] and the segment merge path. An empty base
    /// yields an empty (query-nothing) ensemble, so a durable pipeline
    /// can snapshot before its first ingest.
    fn assemble(base: JaccardJoinSearch, partitions: usize) -> Self {
        let ensemble = LshEnsemble::build(base.signatures(), partitions);
        ContainmentJoinSearch { base, ensemble }
    }

    /// Number of indexed columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.base.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.base.is_empty()
    }

    /// Number of cardinality partitions.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.ensemble.num_partitions()
    }

    /// Columns whose estimated containment of the query reaches `t`.
    #[must_use]
    pub fn query_threshold(&self, query: &Column, t: f64) -> Vec<(ColumnRef, f64)> {
        self.query_threshold_with_stats(query, t).0
    }

    /// Like [`Self::query_threshold`], also returning the raw candidate
    /// count fetched before verification (the partitioning ablation's
    /// cost metric).
    #[must_use]
    pub fn query_threshold_with_stats(
        &self,
        query: &Column,
        t: f64,
    ) -> (Vec<(ColumnRef, f64)>, usize) {
        let q = self.base.sign(query);
        let (hits, raw) = self.ensemble.query_containment_with_stats(&q, t);
        (
            hits.into_iter()
                .map(|(id, est)| (self.base.column_ref(id), est))
                .collect(),
            raw,
        )
    }

    /// Top-k columns by estimated containment.
    #[must_use]
    pub fn top_k(&self, query: &Column, k: usize) -> Vec<(ColumnRef, f64)> {
        let _probe = td_obs::trace::probe("probe.containment");
        let q = self.base.sign(query);
        self.ensemble
            .top_k_containment(&q, k)
            .into_iter()
            .map(|(id, est)| (self.base.column_ref(id), est))
            .collect()
    }

    /// Top-k *tables* by best-column containment.
    #[must_use]
    pub fn top_k_tables(&self, query: &Column, k: usize) -> Vec<(TableId, f64)> {
        let hits = self.top_k(query, k * 4 + 8);
        let _rank = td_obs::trace::probe("rank.merge");
        let mut best: Vec<(TableId, f64)> = Vec::new();
        for (c, est) in hits {
            match best.iter_mut().find(|(t, _)| *t == c.table) {
                Some((_, e)) => *e = e.max(est),
                None => best.push((c.table, est)),
            }
        }
        best.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        best.truncate(k);
        best
    }
}

impl IndexComponent for ContainmentJoinSearch {
    /// Per column: `(column index, MinHash signature)` — signatures are
    /// order-insensitive over the token set, so extract-then-merge equals
    /// the batch signing pass bit-for-bit.
    type Artifact = Vec<(u32, MinHashSignature)>;
    type Query<'q> = &'q Column;
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        JaccardJoinSearch::sign_columns(table, ctx.cfg.minhash_k)
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        let items = live_entries(segments, tombstones)
            .into_iter()
            .flat_map(|(id, cols)| {
                cols.into_iter()
                    .map(move |(ci, sig)| (ColumnRef::new(id, ci as usize), sig))
            })
            .collect();
        Self::assemble(
            JaccardJoinSearch::from_parts(ctx.cfg.minhash_k, items),
            ctx.cfg.partitions,
        )
    }

    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits {
        self.top_k_tables(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use td_table::gen::bench_join::{JoinBenchConfig, JoinBenchmark};

    fn bench() -> JoinBenchmark {
        JoinBenchmark::generate(&JoinBenchConfig {
            query_size: 200,
            num_relevant: 30,
            num_noise: 15,
            card_range: (40, 10_000),
            seed: 9,
            ..JoinBenchConfig::default()
        })
    }

    #[test]
    fn finds_high_containment_tables_at_threshold() {
        let b = bench();
        let s = ContainmentJoinSearch::build(&b.lake, 256, 8);
        let hits = s.query_threshold(&b.query.columns[0], 0.7);
        let got: HashSet<TableId> = hits.iter().map(|(c, _)| c.table).collect();
        let should: Vec<TableId> = b
            .truth
            .iter()
            .filter(|t| t.containment >= 0.8)
            .map(|t| t.table)
            .collect();
        assert!(!should.is_empty());
        let found = should.iter().filter(|t| got.contains(t)).count();
        let recall = found as f64 / should.len() as f64;
        assert!(
            recall >= 0.8,
            "recall {recall} over {} targets",
            should.len()
        );
    }

    #[test]
    fn low_containment_tables_are_filtered() {
        let b = bench();
        let s = ContainmentJoinSearch::build(&b.lake, 256, 8);
        let hits = s.query_threshold(&b.query.columns[0], 0.7);
        let low: HashSet<TableId> = b
            .truth
            .iter()
            .filter(|t| t.containment < 0.4)
            .map(|t| t.table)
            .collect();
        let leaked = hits.iter().filter(|(c, _)| low.contains(&c.table)).count();
        // Estimation noise may leak a couple of borderline sets, not many.
        assert!(
            leaked <= low.len() / 4 + 1,
            "{leaked} low-containment leaks"
        );
    }

    #[test]
    fn top_k_tables_are_ranked() {
        let b = bench();
        let s = ContainmentJoinSearch::build(&b.lake, 256, 8);
        let top = s.top_k_tables(&b.query.columns[0], 5);
        assert!(top.len() <= 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Best hit is truly high-containment.
        let t0 = b.truth.iter().find(|t| t.table == top[0].0).unwrap();
        assert!(
            t0.containment > 0.7,
            "top hit containment {}",
            t0.containment
        );
    }

    #[test]
    fn partition_count_is_respected() {
        let b = bench();
        let s = ContainmentJoinSearch::build(&b.lake, 128, 4);
        assert_eq!(s.num_partitions(), 4);
    }
}
