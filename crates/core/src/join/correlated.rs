//! Correlated dataset search — QCR-sketch index (Santos et al., ICDE 2022;
//! tutorial §2.4).
//!
//! Finds tables that are joinable with the query on a key column **and**
//! whose numeric column correlates with a query numeric column, without
//! executing any joins at query time: every (key column, numeric column)
//! pair in the lake is summarized offline by a [`QcrSketch`], and query
//! sketches are intersected with them.

use crate::segment::{live_entries, ArtifactOf, ComponentSegment, IndexComponent, PipelineContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use td_index::topk::TopK;
use td_sketch::qcr::QcrSketch;
use td_table::gen::bench_join::pearson;
use td_table::{Column, ColumnRef, DataLake, Table, TableId};

/// A correlated-column hit.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelatedHit {
    /// The key column joined on.
    pub key_column: ColumnRef,
    /// The correlated numeric column.
    pub numeric_column: ColumnRef,
    /// Estimated Pearson correlation (via the QCR → Pearson transform).
    pub estimated_correlation: f64,
    /// Join-sample size behind the estimate.
    pub shared_keys: usize,
}

/// QCR-sketch index over all (key, numeric) column pairs of a lake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorrelatedSearch {
    sketches: Vec<(ColumnRef, ColumnRef, QcrSketch)>,
    sketch_k: usize,
}

const QCR_SEED: u64 = 0xC0_44;

/// Extract `(key token, numeric value)` row pairs from two columns.
fn key_value_pairs(key: &Column, num: &Column) -> Vec<(String, f64)> {
    key.values
        .iter()
        .zip(&num.values)
        .filter_map(|(k, v)| Some((k.join_token()?, v.as_f64()?)))
        .collect()
}

impl CorrelatedSearch {
    /// Sketch every (textual key, numeric) column pair with budget
    /// `sketch_k`.
    #[must_use]
    pub fn build(lake: &DataLake, sketch_k: usize) -> Self {
        Self::assemble(
            sketch_k,
            lake.iter()
                .map(|(id, t)| (id, Self::sketch_table(t, sketch_k)))
                .collect(),
        )
    }

    /// Sketch every (textual key, numeric) column pair of one table —
    /// `(key index, numeric index, sketch)` triples, the per-table
    /// artifact of the segmented index.
    fn sketch_table(table: &Table, sketch_k: usize) -> Vec<(u32, u32, QcrSketch)> {
        let mut out = Vec::new();
        for (ki, key) in table.columns.iter().enumerate() {
            if key.is_numeric() || key.token_set().is_empty() {
                continue;
            }
            for (ni, num) in table.columns.iter().enumerate() {
                if ki == ni || !num.is_numeric() {
                    continue;
                }
                let pairs = key_value_pairs(key, num);
                if pairs.len() < 2 {
                    continue;
                }
                out.push((
                    ki as u32,
                    ni as u32,
                    QcrSketch::build(sketch_k, QCR_SEED, &pairs),
                ));
            }
        }
        out
    }

    /// Assemble from per-table sketch artifacts in ascending id order.
    fn assemble(sketch_k: usize, items: Vec<(TableId, ArtifactOf<Self>)>) -> Self {
        let sketches = items
            .into_iter()
            .flat_map(|(id, pairs)| {
                pairs.into_iter().map(move |(ki, ni, sketch)| {
                    (
                        ColumnRef::new(id, ki as usize),
                        ColumnRef::new(id, ni as usize),
                        sketch,
                    )
                })
            })
            .collect();
        CorrelatedSearch { sketches, sketch_k }
    }

    /// Number of sketched column pairs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sketches.len()
    }

    /// True if nothing was sketched.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sketches.is_empty()
    }

    /// Top-k column pairs by `|estimated correlation|` (both signs are
    /// interesting), requiring at least `min_shared` shared sampled keys.
    #[must_use]
    pub fn search(
        &self,
        query_key: &Column,
        query_num: &Column,
        k: usize,
        min_shared: usize,
    ) -> Vec<CorrelatedHit> {
        let _probe = td_obs::trace::probe("probe.correlated");
        let pairs = key_value_pairs(query_key, query_num);
        let qs = QcrSketch::build(self.sketch_k, QCR_SEED, &pairs);
        let mut topk = TopK::new(k.max(1));
        for (i, (_, _, sketch)) in self.sketches.iter().enumerate() {
            let shared = qs.shared_keys(sketch);
            if shared < min_shared {
                continue;
            }
            let est = qs.estimate_pearson(sketch);
            topk.push(est.abs(), i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(_, i)| {
                let (key, num, sketch) = &self.sketches[i as usize];
                CorrelatedHit {
                    key_column: *key,
                    numeric_column: *num,
                    estimated_correlation: qs.estimate_pearson(sketch),
                    shared_keys: qs.shared_keys(sketch),
                }
            })
            .collect()
    }
}

impl IndexComponent for CorrelatedSearch {
    /// Per (key, numeric) column pair: `(key index, numeric index, QCR
    /// sketch)`.
    type Artifact = Vec<(u32, u32, QcrSketch)>;
    type Query<'q> = (&'q Column, &'q Column);
    type Hits = Vec<CorrelatedHit>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        Self::sketch_table(table, ctx.cfg.qcr_k)
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        Self::assemble(ctx.cfg.qcr_k, live_entries(segments, tombstones))
    }

    fn search_merged(&self, (query_key, query_num): Self::Query<'_>, k: usize) -> Self::Hits {
        // min_shared mirrors DiscoveryPipeline::search_correlated.
        self.search(query_key, query_num, k, 8)
    }
}

/// Exact correlation of the query pair with a candidate pair via a hash
/// join on key tokens — the ground truth the sketch estimates.
#[must_use]
pub fn exact_join_correlation(
    query_key: &Column,
    query_num: &Column,
    cand_key: &Column,
    cand_num: &Column,
) -> Option<f64> {
    let mut qmap = std::collections::HashMap::new();
    for (k, v) in key_value_pairs(query_key, query_num) {
        qmap.entry(k).or_insert(v);
    }
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for (k, v) in key_value_pairs(cand_key, cand_num) {
        if let Some(&x) = qmap.get(&k) {
            xs.push(x);
            ys.push(v);
        }
    }
    if xs.len() < 2 {
        None
    } else {
        Some(pearson(&xs, &ys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::bench_join::{CorrelationBenchmark, CorrelationConfig};

    fn bench() -> CorrelationBenchmark {
        CorrelationBenchmark::generate(&CorrelationConfig::default())
    }

    #[test]
    fn ranks_by_absolute_correlation() {
        let b = bench();
        let s = CorrelatedSearch::build(&b.lake, 512);
        let hits = s.search(&b.query.columns[0], &b.query.columns[1], 4, 20);
        assert!(!hits.is_empty());
        // Top hits should be the extreme-rho plants (|rho| 0.95).
        let top_truth = b
            .truth
            .iter()
            .find(|t| t.table == hits[0].numeric_column.table)
            .unwrap();
        assert!(
            top_truth.rho.abs() >= 0.8,
            "top hit planted rho {}",
            top_truth.rho
        );
    }

    #[test]
    fn estimates_track_realized_correlation() {
        let b = bench();
        let s = CorrelatedSearch::build(&b.lake, 1024);
        let hits = s.search(&b.query.columns[0], &b.query.columns[1], 10, 20);
        for h in &hits {
            let t = b
                .truth
                .iter()
                .find(|t| t.table == h.numeric_column.table)
                .unwrap();
            assert!(
                (h.estimated_correlation - t.realized_rho).abs() < 0.3,
                "est {} vs realized {}",
                h.estimated_correlation,
                t.realized_rho
            );
        }
    }

    #[test]
    fn sign_is_preserved() {
        let b = bench();
        let s = CorrelatedSearch::build(&b.lake, 1024);
        let hits = s.search(&b.query.columns[0], &b.query.columns[1], 10, 20);
        let mut checked = 0;
        for h in &hits {
            let t = b
                .truth
                .iter()
                .find(|t| t.table == h.numeric_column.table)
                .unwrap();
            if t.realized_rho.abs() > 0.4 {
                assert_eq!(
                    h.estimated_correlation.signum(),
                    t.realized_rho.signum(),
                    "sign flip for rho {}",
                    t.realized_rho
                );
                checked += 1;
            }
        }
        assert!(checked >= 3);
    }

    #[test]
    fn exact_join_correlation_matches_truth() {
        let b = bench();
        for t in &b.truth {
            let cand = b.lake.table(t.table);
            let rho = exact_join_correlation(
                &b.query.columns[0],
                &b.query.columns[1],
                &cand.columns[0],
                &cand.columns[1],
            )
            .unwrap();
            assert!((rho - t.realized_rho).abs() < 1e-9);
        }
    }

    #[test]
    fn min_shared_filters_thin_joins() {
        let b = bench();
        let s = CorrelatedSearch::build(&b.lake, 256);
        let all = s.search(&b.query.columns[0], &b.query.columns[1], 20, 1);
        let strict = s.search(&b.query.columns[0], &b.query.columns[1], 20, 10_000);
        assert!(strict.is_empty());
        assert!(!all.is_empty());
    }

    #[test]
    fn larger_sketches_estimate_better() {
        let b = bench();
        let err = |k: usize| {
            let s = CorrelatedSearch::build(&b.lake, k);
            let hits = s.search(&b.query.columns[0], &b.query.columns[1], 10, 5);
            let mut e = 0.0;
            let mut n = 0;
            for h in hits {
                let t = b
                    .truth
                    .iter()
                    .find(|t| t.table == h.numeric_column.table)
                    .unwrap();
                e += (h.estimated_correlation - t.realized_rho).abs();
                n += 1;
            }
            e / n.max(1) as f64
        };
        let small = err(32);
        let large = err(2048);
        assert!(
            large <= small + 0.05,
            "k=2048 err {large} vs k=32 err {small}"
        );
    }
}
