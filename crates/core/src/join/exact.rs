//! Exact top-k joinable-column search by overlap (JOSIE; tutorial §2.4).

use crate::segment::{live_entries, ArtifactOf, ComponentSegment, IndexComponent, PipelineContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use td_index::inverted::{InvertedSetIndex, InvertedSetIndexBuilder, SearchStats};
use td_table::{Column, ColumnRef, DataLake, Table, TableId};

/// Posting-list processing strategy (the E03 ablation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ExactStrategy {
    /// Merge every posting list.
    Merge,
    /// Rare-first probing with exact verification and early exit.
    Probe,
    /// JOSIE-style cost-adaptive switching between the two.
    Adaptive,
}

/// A joinable-column hit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverlapHit {
    /// The matching lake column.
    pub column: ColumnRef,
    /// Exact overlap `|Q ∩ X|`.
    pub overlap: usize,
}

/// Exact top-k overlap search over all textual columns of a lake.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExactJoinSearch {
    index: InvertedSetIndex,
    refs: Vec<ColumnRef>,
}

impl ExactJoinSearch {
    /// Index every non-numeric, non-empty column of the lake.
    #[must_use]
    pub fn build(lake: &DataLake) -> Self {
        let mut b = InvertedSetIndexBuilder::new();
        let mut refs = Vec::new();
        for (r, col) in lake.columns() {
            if col.is_numeric() {
                continue;
            }
            let tokens = col.token_set();
            if tokens.is_empty() {
                continue;
            }
            b.add_set(tokens.iter().map(String::as_str));
            refs.push(r);
        }
        ExactJoinSearch {
            index: b.build(),
            refs,
        }
    }

    /// Number of indexed columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// Top-k columns by exact overlap with the query column's value set.
    #[must_use]
    pub fn search(
        &self,
        query: &Column,
        k: usize,
        strategy: ExactStrategy,
    ) -> (Vec<OverlapHit>, SearchStats) {
        let _probe = td_obs::trace::probe("probe.exact_join");
        let tokens = query.token_set();
        let toks: Vec<&str> = tokens.iter().map(String::as_str).collect();
        let (hits, stats) = match strategy {
            ExactStrategy::Merge => self.index.top_k_merge(toks.iter().copied(), k),
            ExactStrategy::Probe => self.index.top_k_probe(toks.iter().copied(), k),
            ExactStrategy::Adaptive => self.index.top_k_adaptive(toks.iter().copied(), k),
        };
        (
            hits.into_iter()
                .map(|(sid, overlap)| OverlapHit {
                    column: self.refs[sid as usize],
                    overlap,
                })
                .collect(),
            stats,
        )
    }

    /// Assemble from per-table `(column index, sorted tokens)` artifacts
    /// in ascending table-id order.
    fn assemble(items: Vec<(TableId, ArtifactOf<Self>)>) -> Self {
        let mut b = InvertedSetIndexBuilder::new();
        let mut refs = Vec::new();
        for (id, cols) in &items {
            for (ci, tokens) in cols {
                b.add_set(tokens.iter().map(String::as_str));
                refs.push(ColumnRef::new(*id, *ci as usize));
            }
        }
        ExactJoinSearch {
            index: b.build(),
            refs,
        }
    }

    /// Top-k *tables* by their best column overlap.
    #[must_use]
    pub fn search_tables(
        &self,
        query: &Column,
        k: usize,
        strategy: ExactStrategy,
    ) -> Vec<(TableId, usize)> {
        let (hits, _) = self.search(query, column_fetch_width(k), strategy);
        aggregate_tables(hits, k)
    }
}

/// How many *columns* a top-k *table* search fetches: over-fetch so a
/// table hiding several strong columns cannot crowd others out. Shared
/// by the table aggregations here and in `fuzzy`, and by the td-shard
/// coordinator, which must fetch exactly this many columns per shard to
/// reproduce the single-process column window.
#[must_use]
pub fn column_fetch_width(k: usize) -> usize {
    k * 4 + 8
}

/// Fold a column-level hit list (already in ranked order) into top-k
/// tables by best column overlap. Split out of [`ExactJoinSearch::search_tables`]
/// so a scatter-gather coordinator can merge per-shard *column* windows
/// and then aggregate with byte-identical semantics.
#[must_use]
pub fn aggregate_tables(hits: Vec<OverlapHit>, k: usize) -> Vec<(TableId, usize)> {
    let _rank = td_obs::trace::probe("rank.merge");
    let mut best: Vec<(TableId, usize)> = Vec::new();
    for h in hits {
        match best.iter_mut().find(|(t, _)| *t == h.column.table) {
            Some((_, ov)) => *ov = (*ov).max(h.overlap),
            None => best.push((h.column.table, h.overlap)),
        }
    }
    best.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    best.truncate(k);
    best
}

impl IndexComponent for ExactJoinSearch {
    /// Per column: `(column index, sorted distinct tokens)` for each
    /// indexable (non-numeric, non-empty) column. Tokens are sorted so the
    /// artifact — unlike a `HashSet` drain — is deterministic.
    type Artifact = Vec<(u32, Vec<String>)>;
    type Query<'q> = &'q Column;
    type Hits = Vec<(TableId, usize)>;

    fn extract(table: &Table, _ctx: &PipelineContext) -> Self::Artifact {
        let mut cols = Vec::new();
        for (ci, col) in table.columns.iter().enumerate() {
            if col.is_numeric() {
                continue;
            }
            let tokens = col.token_set();
            if tokens.is_empty() {
                continue;
            }
            let mut tokens: Vec<String> = tokens.into_iter().collect();
            tokens.sort_unstable();
            cols.push((ci as u32, tokens));
        }
        cols
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        _ctx: &PipelineContext,
    ) -> Self {
        Self::assemble(live_entries(segments, tombstones))
    }

    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits {
        self.search_tables(query, k, ExactStrategy::Adaptive)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::bench_join::{JoinBenchConfig, JoinBenchmark};

    fn bench() -> JoinBenchmark {
        JoinBenchmark::generate(&JoinBenchConfig {
            query_size: 150,
            num_relevant: 20,
            num_noise: 10,
            card_range: (30, 2_000),
            ..JoinBenchConfig::default()
        })
    }

    #[test]
    fn recovers_ground_truth_overlap_ranking() {
        let b = bench();
        let s = ExactJoinSearch::build(&b.lake);
        let truth = b.by_overlap();
        let (hits, _) = s.search(&b.query.columns[b.query_key], 5, ExactStrategy::Merge);
        assert_eq!(hits.len(), 5);
        for (h, t) in hits.iter().zip(&truth) {
            assert_eq!(h.overlap, t.overlap);
            assert_eq!(h.column.table, t.table);
        }
    }

    #[test]
    fn all_strategies_return_identical_overlaps() {
        let b = bench();
        let s = ExactJoinSearch::build(&b.lake);
        let q = &b.query.columns[b.query_key];
        let ov = |st| {
            let (h, _) = s.search(q, 10, st);
            h.into_iter().map(|x| x.overlap).collect::<Vec<_>>()
        };
        let m = ov(ExactStrategy::Merge);
        assert_eq!(m, ov(ExactStrategy::Probe));
        assert_eq!(m, ov(ExactStrategy::Adaptive));
    }

    #[test]
    fn table_aggregation_dedups_tables() {
        let b = bench();
        let s = ExactJoinSearch::build(&b.lake);
        let tables = s.search_tables(&b.query.columns[0], 8, ExactStrategy::Adaptive);
        let mut seen = std::collections::HashSet::new();
        for (t, _) in &tables {
            assert!(seen.insert(*t), "duplicate table {t}");
        }
        assert_eq!(tables[0].1, b.by_overlap()[0].overlap);
    }

    #[test]
    fn numeric_columns_are_not_indexed() {
        let b = bench();
        let s = ExactJoinSearch::build(&b.lake);
        // relevant tables have 1 text key + extra text cols; query pop col
        // is numeric and skipped on the query side token set... here just
        // check the index size is bounded by total textual columns.
        let textual = b
            .lake
            .columns()
            .filter(|(_, c)| !c.is_numeric() && !c.token_set().is_empty())
            .count();
        assert_eq!(s.len(), textual);
    }
}
