//! Fuzzy (embedding-based) joinable search — PEXESO (Dong et al., ICDE
//! 2021; tutorial §2.4).
//!
//! Equi-join search misses joins hidden behind typos, alias spellings, and
//! formatting noise. PEXESO embeds column values into vectors and declares
//! a value pair matched when their similarity clears a predicate threshold
//! `τ`; a column is fuzzily joinable to the query in proportion to the
//! query values that find at least one match. The quadratic value-pair cost
//! is tamed with *pivot-based* filtering: precomputed angles to a few pivot
//! vectors yield an upper bound on any pair's cosine (spherical triangle
//! inequality), and pairs whose bound misses `τ` are pruned unverified.

use crate::segment::{live_entries, ComponentSegment, IndexComponent, PipelineContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use td_embed::model::{seeded_unit_vector, Embedder, NGramEmbedder};
use td_embed::vector::dot;
use td_index::topk::TopK;
use td_table::{Column, ColumnRef, DataLake, Table, TableId};

/// Filtering statistics (experiment E07's pruning ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FuzzyStats {
    /// Value pairs whose cosine was actually computed.
    pub pairs_verified: usize,
    /// Value pairs pruned by the pivot bound.
    pub pairs_pruned: usize,
}

/// A stored column: its distinct-value vectors and pivot angles.
#[derive(Debug, Clone)]
struct FuzzyColumn {
    r: ColumnRef,
    vectors: Vec<Vec<f32>>,
    /// `angles[v][p]` = angle between value `v` and pivot `p` (radians).
    angles: Vec<Vec<f32>>,
}

/// PEXESO-style fuzzy join search.
pub struct FuzzyJoinSearch<E: Embedder> {
    embedder: E,
    pivots: Vec<Vec<f32>>,
    columns: Vec<FuzzyColumn>,
    /// Distinct values sampled per column.
    sample: usize,
}

/// Angle between two unit vectors.
fn angle(a: &[f32], b: &[f32]) -> f32 {
    dot(a, b).clamp(-1.0, 1.0).acos()
}

impl<E: Embedder> FuzzyJoinSearch<E> {
    /// Index every textual column of a lake, embedding up to `sample`
    /// distinct values per column, with `num_pivots` pivot vectors.
    ///
    /// Pivots are chosen from the *data* by farthest-first traversal (one
    /// pivot lands near each value cluster), which is what makes the
    /// triangle-inequality bound tight enough to prune; random pivots in
    /// high dimension see every vector at ~90° and prune nothing.
    #[must_use]
    pub fn build(lake: &DataLake, embedder: E, num_pivots: usize, sample: usize) -> Self {
        let cols = lake
            .columns()
            .filter(|(_, col)| !col.is_numeric())
            .map(|(r, col)| (r, embed_distinct(&embedder, col, sample)))
            .filter(|(_, v)| !v.is_empty())
            .collect();
        Self::assemble(embedder, num_pivots, sample, cols)
    }

    /// Assemble from already-embedded columns in lake order: pivot
    /// selection and angle precomputation — the single constructor both
    /// batch build and segment merge go through.
    fn assemble(
        embedder: E,
        num_pivots: usize,
        sample: usize,
        cols: Vec<(ColumnRef, Vec<Vec<f32>>)>,
    ) -> Self {
        let mut columns: Vec<FuzzyColumn> = cols
            .into_iter()
            .map(|(r, vectors)| FuzzyColumn {
                r,
                vectors,
                angles: Vec::new(),
            })
            .collect();
        // Farthest-first pivot selection over a subsample of all vectors.
        let pool: Vec<&Vec<f32>> = columns
            .iter()
            .flat_map(|c| c.vectors.iter())
            .take(1024)
            .collect();
        let mut pivots: Vec<Vec<f32>> = Vec::with_capacity(num_pivots);
        if num_pivots > 0 {
            if let Some(first) = pool.first() {
                pivots.push((*first).clone());
                while pivots.len() < num_pivots {
                    let far = pool
                        .iter()
                        .max_by(|a, b| {
                            let da = pivots
                                .iter()
                                .map(|p| angle(a, p))
                                .fold(f32::INFINITY, f32::min);
                            let db = pivots
                                .iter()
                                .map(|p| angle(b, p))
                                .fold(f32::INFINITY, f32::min);
                            da.total_cmp(&db)
                        })
                        .copied();
                    match far {
                        Some(v) => pivots.push(v.clone()),
                        None => break,
                    }
                }
            } else {
                // Empty lake: seed-derived pivots keep the struct usable.
                pivots = (0..num_pivots as u64)
                    .map(|i| seeded_unit_vector(0xFA20 + i, embedder.dim()))
                    .collect();
            }
        }
        for c in &mut columns {
            c.angles = c
                .vectors
                .iter()
                .map(|v| pivots.iter().map(|p| angle(v, p)).collect())
                .collect();
        }
        FuzzyJoinSearch {
            embedder,
            pivots,
            columns,
            sample,
        }
    }

    /// Number of indexed columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Fuzzy containment of the query column in every indexed column:
    /// fraction of query values with at least one candidate value at
    /// cosine ≥ `tau`. Returns top-k `(column, fuzzy containment)`.
    #[must_use]
    pub fn search(
        &self,
        query: &Column,
        tau: f32,
        k: usize,
    ) -> (Vec<(ColumnRef, f64)>, FuzzyStats) {
        let _probe = td_obs::trace::probe("probe.fuzzy_join");
        let qvecs = embed_distinct(&self.embedder, query, self.sample);
        let qangles: Vec<Vec<f32>> = qvecs
            .iter()
            .map(|v| self.pivots.iter().map(|p| angle(v, p)).collect())
            .collect();
        let tau_angle = (tau.clamp(-1.0, 1.0)).acos();
        let mut stats = FuzzyStats::default();
        let mut topk = TopK::new(k.max(1));
        for (ci, col) in self.columns.iter().enumerate() {
            let mut matched = 0usize;
            for (qi, qv) in qvecs.iter().enumerate() {
                let mut hit = false;
                for (vi, vv) in col.vectors.iter().enumerate() {
                    // Pivot lower bound on the pair angle: the pair's angle
                    // is at least |θ(q,p) − θ(v,p)| for every pivot p. If
                    // that exceeds the τ angle, cosine < τ — prune.
                    let mut prunable = false;
                    for (p, qa) in qangles[qi].iter().enumerate() {
                        if (qa - col.angles[vi][p]).abs() > tau_angle {
                            prunable = true;
                            break;
                        }
                    }
                    if prunable {
                        stats.pairs_pruned += 1;
                        continue;
                    }
                    stats.pairs_verified += 1;
                    if dot(qv, vv) >= tau {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    matched += 1;
                }
            }
            if !qvecs.is_empty() {
                topk.push(matched as f64 / qvecs.len() as f64, ci as u32);
            }
        }
        (
            topk.into_sorted()
                .into_iter()
                .map(|(s, ci)| (self.columns[ci as usize].r, s))
                .collect(),
            stats,
        )
    }

    /// Top-k tables by best-column fuzzy containment.
    #[must_use]
    pub fn search_tables(&self, query: &Column, tau: f32, k: usize) -> Vec<(TableId, f64)> {
        let (hits, _) = self.search(query, tau, crate::join::exact::column_fetch_width(k));
        aggregate_tables(hits, k)
    }
}

/// Fold a column-level fuzzy hit list (already in ranked order) into
/// top-k tables by best-column containment. Split out of
/// [`FuzzyJoinSearch::search_tables`] so a scatter-gather coordinator
/// can merge per-shard *column* windows and then aggregate with
/// byte-identical semantics.
#[must_use]
pub fn aggregate_tables(hits: Vec<(ColumnRef, f64)>, k: usize) -> Vec<(TableId, f64)> {
    let _rank = td_obs::trace::probe("rank.merge");
    let mut best: Vec<(TableId, f64)> = Vec::new();
    for (c, s) in hits {
        match best.iter_mut().find(|(t, _)| *t == c.table) {
            Some((_, e)) => *e = e.max(s),
            None => best.push((c.table, s)),
        }
    }
    best.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    best.truncate(k);
    best
}

impl IndexComponent for FuzzyJoinSearch<NGramEmbedder> {
    /// Per column: `(column index, embedded distinct-value vectors)`.
    /// Pivot selection is deferred to merge time because pivots are a
    /// global (whole-lake) property.
    type Artifact = Vec<(u32, Vec<Vec<f32>>)>;
    type Query<'q> = (&'q Column, f32);
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        let mut cols = Vec::new();
        for (ci, col) in table.columns.iter().enumerate() {
            if col.is_numeric() {
                continue;
            }
            let vectors = embed_distinct(&ctx.ngram_emb, col, ctx.cfg.sample);
            if vectors.is_empty() {
                continue;
            }
            cols.push((ci as u32, vectors));
        }
        cols
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        let cols = live_entries(segments, tombstones)
            .into_iter()
            .flat_map(|(id, cols)| {
                cols.into_iter()
                    .map(move |(ci, vectors)| (ColumnRef::new(id, ci as usize), vectors))
            })
            .collect();
        Self::assemble(ctx.ngram_emb.clone(), ctx.cfg.pivots, ctx.cfg.sample, cols)
    }

    fn search_merged(&self, (query, tau): Self::Query<'_>, k: usize) -> Self::Hits {
        self.search_tables(query, tau, k)
    }
}

/// Embed up to `sample` distinct non-null values of a column (unit vectors).
fn embed_distinct(embedder: &dyn Embedder, col: &Column, sample: usize) -> Vec<Vec<f32>> {
    let mut seen = std::collections::HashSet::new();
    let mut out = Vec::new();
    for v in &col.values {
        if out.len() >= sample {
            break;
        }
        let Some(t) = v.join_token() else { continue };
        if seen.insert(t.clone()) {
            let mut e = embedder.embed(&t);
            td_embed::vector::normalize(&mut e);
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_embed::model::NGramEmbedder;
    use td_table::{Column, Table};

    /// Introduce a deterministic typo into a word (swap one interior char).
    fn typo(s: &str) -> String {
        let mut c: Vec<char> = s.chars().collect();
        if c.len() >= 4 {
            let i = c.len() / 2;
            c.swap(i, i - 1);
        }
        c.into_iter().collect()
    }

    fn word(i: u32) -> String {
        td_table::gen::words::vocab_word(0xF0, i as u64, 3)
    }

    /// Lake: table 0 = typo'd copies of query values; table 1 = unrelated.
    fn lake() -> (DataLake, Column) {
        let originals: Vec<String> = (0..30).map(word).collect();
        let dirty: Vec<String> = originals.iter().map(|s| typo(s)).collect();
        let unrelated: Vec<String> = (1000..1030).map(word).collect();
        let mut lake = DataLake::new();
        lake.add(Table::new("dirty.csv", vec![Column::from_strings("w", &dirty)]).unwrap());
        lake.add(Table::new("other.csv", vec![Column::from_strings("w", &unrelated)]).unwrap());
        (lake, Column::from_strings("q", &originals))
    }

    fn search() -> (FuzzyJoinSearch<NGramEmbedder>, Column) {
        let (lake, q) = lake();
        (
            FuzzyJoinSearch::build(&lake, NGramEmbedder::new(64, 3, 7), 8, 64),
            q,
        )
    }

    #[test]
    fn finds_typo_joins_that_exact_match_misses() {
        let (s, q) = search();
        let (hits, _) = s.search(&q, 0.55, 2);
        assert_eq!(hits[0].0.table, td_table::TableId(0));
        assert!(hits[0].1 > 0.6, "fuzzy containment {}", hits[0].1);
        // Exact match would find zero overlap:
        let dirty_tokens = {
            let (lake, _) = lake();
            lake.table(td_table::TableId(0)).columns[0].token_set()
        };
        let q_tokens = q.token_set();
        assert_eq!(q_tokens.intersection(&dirty_tokens).count(), 0);
    }

    #[test]
    fn unrelated_columns_score_low() {
        let (s, q) = search();
        let (hits, _) = s.search(&q, 0.55, 2);
        let unrelated = hits.iter().find(|(c, _)| c.table == td_table::TableId(1));
        if let Some((_, score)) = unrelated {
            assert!(*score < 0.3, "unrelated score {score}");
        }
    }

    #[test]
    fn pivot_pruning_skips_pairs_without_changing_results() {
        // Clustered embeddings (domain anchors) are where pivot pruning
        // bites: pivots land near cluster centers, and cross-cluster pairs
        // are bounded away from the threshold.
        use td_embed::model::DomainEmbedder;
        use td_table::gen::domains::DomainRegistry;
        use td_table::Table;
        let r = DomainRegistry::standard();
        let city = r.id("city").unwrap();
        let gene = r.id("gene").unwrap();
        let mut lake = DataLake::new();
        for (name, d) in [("cities", city), ("genes", gene)] {
            let col = Column::new(name, (0..40u64).map(|i| r.value(d, i)).collect::<Vec<_>>());
            lake.add(Table::new(format!("{name}.csv"), vec![col]).unwrap());
        }
        let q = Column::new(
            "q",
            (20..60u64).map(|i| r.value(city, i)).collect::<Vec<_>>(),
        );
        let emb = || DomainEmbedder::from_registry(&r, 200, 64, 0.3, 11);
        let with_pivots = FuzzyJoinSearch::build(&lake, emb(), 6, 64);
        let without = FuzzyJoinSearch::build(&lake, emb(), 0, 64);
        let (h1, s1) = with_pivots.search(&q, 0.6, 2);
        let (h2, s2) = without.search(&q, 0.6, 2);
        let scores = |h: &[(ColumnRef, f64)]| h.iter().map(|x| x.1).collect::<Vec<_>>();
        assert_eq!(scores(&h1), scores(&h2), "pruning changed scores");
        assert!(s1.pairs_pruned > 0, "no pruning happened");
        assert!(s1.pairs_verified < s2.pairs_verified);
        assert_eq!(s2.pairs_pruned, 0);
    }

    #[test]
    fn higher_tau_is_stricter() {
        let (s, q) = search();
        let (loose, _) = s.search(&q, 0.4, 1);
        let (strict, _) = s.search(&q, 0.9, 1);
        assert!(loose[0].1 >= strict[0].1);
    }

    #[test]
    fn table_aggregation() {
        let (s, q) = search();
        let tables = s.search_tables(&q, 0.55, 2);
        assert_eq!(tables[0].0, td_table::TableId(0));
    }
}
