//! Jaccard-based joinable search — the classic (and, under cardinality
//! skew, biased) baseline the tutorial contrasts with containment search
//! (§2.4; Agrawal et al.'s bias observation, LSH Ensemble's motivation).

use td_index::lsh::MinHashLsh;
use td_index::topk::TopK;
use td_sketch::minhash::{MinHashSignature, MinHasher};
use td_table::{Column, ColumnRef, DataLake, Table};

/// MinHash-signature store with Jaccard top-k and Jaccard-LSH retrieval.
#[derive(Debug, Clone)]
pub struct JaccardJoinSearch {
    hasher: MinHasher,
    signatures: Vec<MinHashSignature>,
    refs: Vec<ColumnRef>,
    k_hashes: usize,
}

const SIG_SEED: u64 = 0x1ACC;

impl JaccardJoinSearch {
    /// Index every textual column with `k_hashes`-function signatures.
    #[must_use]
    pub fn build(lake: &DataLake, k_hashes: usize) -> Self {
        let hasher = MinHasher::new(k_hashes, SIG_SEED);
        let mut signatures = Vec::new();
        let mut refs = Vec::new();
        for (r, col) in lake.columns() {
            if col.is_numeric() {
                continue;
            }
            let tokens = col.token_set();
            if tokens.is_empty() {
                continue;
            }
            signatures.push(hasher.sign(tokens.iter().map(String::as_str)));
            refs.push(r);
        }
        JaccardJoinSearch {
            hasher,
            signatures,
            refs,
            k_hashes,
        }
    }

    /// Sign every indexable (non-numeric, non-empty) column of one table:
    /// `(column index, signature)` pairs, the per-table artifact of the
    /// segmented containment index.
    pub(crate) fn sign_columns(table: &Table, k_hashes: usize) -> Vec<(u32, MinHashSignature)> {
        let hasher = MinHasher::new(k_hashes, SIG_SEED);
        let mut out = Vec::new();
        for (ci, col) in table.columns.iter().enumerate() {
            if col.is_numeric() {
                continue;
            }
            let tokens = col.token_set();
            if tokens.is_empty() {
                continue;
            }
            out.push((ci as u32, hasher.sign(tokens.iter().map(String::as_str))));
        }
        out
    }

    /// Reassemble from `(column, signature)` pairs in ascending column
    /// order — the merge-side constructor matching [`Self::build`].
    pub(crate) fn from_parts(k_hashes: usize, items: Vec<(ColumnRef, MinHashSignature)>) -> Self {
        let hasher = MinHasher::new(k_hashes, SIG_SEED);
        let mut signatures = Vec::with_capacity(items.len());
        let mut refs = Vec::with_capacity(items.len());
        for (r, sig) in items {
            refs.push(r);
            signatures.push(sig);
        }
        JaccardJoinSearch {
            hasher,
            signatures,
            refs,
            k_hashes,
        }
    }

    /// Signature of a query column, comparable with the stored ones.
    #[must_use]
    pub fn sign(&self, query: &Column) -> MinHashSignature {
        let tokens = query.token_set();
        self.hasher.sign(tokens.iter().map(String::as_str))
    }

    /// Number of indexed columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// All stored `(id, signature)` pairs (for building derived indices
    /// such as an LSH Ensemble over the same corpus).
    #[must_use]
    pub fn signatures(&self) -> Vec<(u32, MinHashSignature)> {
        self.signatures
            .iter()
            .enumerate()
            .map(|(i, s)| (i as u32, s.clone()))
            .collect()
    }

    /// Resolve an internal id to its column.
    #[must_use]
    pub fn column_ref(&self, id: u32) -> ColumnRef {
        self.refs[id as usize]
    }

    /// Top-k columns by estimated Jaccard (linear scan over signatures).
    #[must_use]
    pub fn top_k_jaccard(&self, query: &Column, k: usize) -> Vec<(ColumnRef, f64)> {
        let q = self.sign(query);
        let mut topk = TopK::new(k.max(1));
        for (i, sig) in self.signatures.iter().enumerate() {
            topk.push(q.jaccard(sig), i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, i)| (self.refs[i as usize], s))
            .collect()
    }

    /// Top-k columns by estimated *containment* of the query (linear scan)
    /// — the unbiased ranking the Jaccard one is compared against.
    #[must_use]
    pub fn top_k_containment(&self, query: &Column, k: usize) -> Vec<(ColumnRef, f64)> {
        let q = self.sign(query);
        let mut topk = TopK::new(k.max(1));
        for (i, sig) in self.signatures.iter().enumerate() {
            topk.push(q.containment_in(sig), i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, i)| (self.refs[i as usize], s))
            .collect()
    }

    /// Columns passing a Jaccard threshold, retrieved through a banding
    /// LSH tuned for that threshold (built on the fly — the baseline
    /// configuration E02 measures against LSH Ensemble).
    #[must_use]
    pub fn lsh_threshold_query(&self, query: &Column, threshold: f64) -> Vec<(ColumnRef, f64)> {
        let mut lsh = MinHashLsh::with_threshold(self.k_hashes, threshold);
        for (i, sig) in self.signatures.iter().enumerate() {
            lsh.insert(i as u32, sig);
        }
        let q = self.sign(query);
        let mut out: Vec<(ColumnRef, f64)> = lsh
            .query(&q)
            .into_iter()
            .map(|i| {
                (
                    self.refs[i as usize],
                    q.jaccard(&self.signatures[i as usize]),
                )
            })
            .filter(|&(_, j)| j >= threshold)
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use td_table::gen::bench_join::{JoinBenchConfig, JoinBenchmark};
    use td_table::TableId;

    fn bench() -> JoinBenchmark {
        JoinBenchmark::generate(&JoinBenchConfig {
            query_size: 200,
            num_relevant: 30,
            num_noise: 10,
            card_range: (40, 8_000),
            seed: 5,
            ..JoinBenchConfig::default()
        })
    }

    #[test]
    fn jaccard_ranking_tracks_true_jaccard() {
        let b = bench();
        let s = JaccardJoinSearch::build(&b.lake, 256);
        let hits = s.top_k_jaccard(&b.query.columns[0], 5);
        let truth: Vec<TableId> = {
            let mut t = b.truth.clone();
            t.sort_by(|x, y| y.jaccard.total_cmp(&x.jaccard));
            t.into_iter().take(5).map(|x| x.table).collect()
        };
        let got: HashSet<TableId> = hits.iter().map(|(c, _)| c.table).collect();
        let agree = truth.iter().filter(|t| got.contains(t)).count();
        assert!(agree >= 3, "only {agree}/5 of the true top-5 retrieved");
    }

    #[test]
    fn jaccard_is_biased_against_large_supersets() {
        // The headline bias: a high-containment large set ranks lower by
        // Jaccard than a small set with mediocre containment.
        let b = bench();
        let s = JaccardJoinSearch::build(&b.lake, 256);
        let jacc_rank: Vec<TableId> = s
            .top_k_jaccard(&b.query.columns[0], b.truth.len())
            .into_iter()
            .map(|(c, _)| c.table)
            .collect();
        // Find a truth entry with high containment but large cardinality.
        let victim = b
            .truth
            .iter()
            .filter(|t| t.containment > 0.8)
            .max_by(|x, y| {
                let ca = b_card(&b, x.table);
                let cb = b_card(&b, y.table);
                ca.cmp(&cb)
            })
            .copied();
        if let Some(v) = victim {
            let cont_rank: Vec<TableId> = s
                .top_k_containment(&b.query.columns[0], b.truth.len())
                .into_iter()
                .map(|(c, _)| c.table)
                .collect();
            let pos_j = jacc_rank.iter().position(|&t| t == v.table);
            let pos_c = cont_rank.iter().position(|&t| t == v.table);
            if let (Some(pj), Some(pc)) = (pos_j, pos_c) {
                assert!(
                    pc <= pj,
                    "containment rank {pc} should be no worse than jaccard rank {pj}"
                );
            }
        }
        fn b_card(b: &JoinBenchmark, t: TableId) -> usize {
            b.lake.table(t).columns[0].num_distinct()
        }
    }

    #[test]
    fn lsh_threshold_query_filters() {
        let b = bench();
        let s = JaccardJoinSearch::build(&b.lake, 256);
        let strict = s.lsh_threshold_query(&b.query.columns[0], 0.7);
        let loose = s.lsh_threshold_query(&b.query.columns[0], 0.1);
        assert!(loose.len() >= strict.len());
        for (_, j) in &strict {
            assert!(*j >= 0.7);
        }
    }

    #[test]
    fn containment_finds_high_containment_tables() {
        let b = bench();
        let s = JaccardJoinSearch::build(&b.lake, 256);
        let hits = s.top_k_containment(&b.query.columns[0], 5);
        let best_truth = b.by_containment();
        // The top containment hit should be among the truly best few.
        let top_tables: HashSet<TableId> = best_truth.iter().take(5).map(|t| t.table).collect();
        assert!(top_tables.contains(&hits[0].0.table));
    }
}
