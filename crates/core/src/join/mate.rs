//! Multi-attribute (composite-key) joinable search — MATE (Esmailoghli et
//! al., VLDB 2022; tutorial §2.4).
//!
//! Single-attribute indices cannot tell whether a table joins on the
//! *combination* (person, city): every value may match while no row does.
//! MATE indexes rows, not values: each row carries a hash-aggregated
//! *super key* over its cells; a candidate row survives only if the super
//! key contains all query attributes' bits, and survivors are verified
//! exactly. We reproduce that design: a posting list on one probe
//! attribute, a 64-bit XASH-style row fingerprint filter, then exact
//! verification.

use crate::segment::{live_entries, ArtifactOf, ComponentSegment, IndexComponent, PipelineContext};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use td_index::topk::TopK;
use td_sketch::hash::hash_str;
use td_table::{DataLake, Table, TableId};

const CELL_SEED: u64 = 0x3A7E;

/// Filter-effectiveness statistics (experiment E08).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MateStats {
    /// Candidate rows fetched from the probe posting list.
    pub rows_fetched: usize,
    /// Rows surviving the super-key filter.
    pub rows_after_superkey: usize,
    /// Rows that verified exactly.
    pub rows_verified: usize,
}

/// One indexed row: its table, row number, cell hashes, and super key.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct RowEntry {
    table: u32,
    cells: Vec<u64>,
    super_key: u64,
}

/// Row-level index for multi-attribute joins.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MateSearch {
    /// cell-value hash → row entry indices.
    postings: HashMap<u64, Vec<u32>>,
    rows: Vec<RowEntry>,
    tables: Vec<TableId>,
}

/// The super key of a row: one bit per cell hash (XASH-style OR-fold).
fn super_key(cells: &[u64]) -> u64 {
    cells.iter().fold(0u64, |acc, &h| acc | (1 << (h % 64)))
}

impl MateSearch {
    /// Index every row of every table (textual cells only).
    #[must_use]
    pub fn build(lake: &DataLake) -> Self {
        Self::assemble(
            lake.iter()
                .map(|(id, t)| (id, Self::row_artifacts(t)))
                .collect(),
        )
    }

    /// Hash one table's rows: `(cell hashes, super key)` per indexable
    /// (non-empty) row — the per-table artifact of the segmented index.
    fn row_artifacts(table: &Table) -> Vec<(Vec<u64>, u64)> {
        let mut out = Vec::new();
        for r in 0..table.num_rows() {
            let cells: Vec<u64> = table
                .columns
                .iter()
                .filter_map(|c| c.values[r].join_token())
                .map(|t| hash_str(&t, CELL_SEED))
                .collect();
            if cells.is_empty() {
                continue;
            }
            let sk = super_key(&cells);
            out.push((cells, sk));
        }
        out
    }

    /// Assemble from per-table row artifacts in ascending id order.
    /// Every table — even a rowless one — keeps a `tables` slot, matching
    /// the batch pass.
    fn assemble(items: Vec<(TableId, ArtifactOf<Self>)>) -> Self {
        let mut postings: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut rows = Vec::new();
        let mut tables = Vec::with_capacity(items.len());
        for (ti, (id, table_rows)) in items.into_iter().enumerate() {
            tables.push(id);
            for (cells, sk) in table_rows {
                let entry_id = rows.len() as u32;
                for &h in &cells {
                    postings.entry(h).or_default().push(entry_id);
                }
                rows.push(RowEntry {
                    table: ti as u32,
                    cells,
                    super_key: sk,
                });
            }
        }
        MateSearch {
            postings,
            rows,
            tables,
        }
    }

    /// Number of indexed rows.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Top-k tables by the fraction of query rows whose *composite* key
    /// (the given query columns) appears together in some row.
    ///
    /// `key_cols` indexes columns of `query`. Returns `(table, fraction)`
    /// descending plus filter statistics.
    #[must_use]
    pub fn search(
        &self,
        query: &Table,
        key_cols: &[usize],
        k: usize,
    ) -> (Vec<(TableId, f64)>, MateStats) {
        let _probe = td_obs::trace::probe("probe.mate");
        assert!(!key_cols.is_empty(), "need at least one key column");
        let mut stats = MateStats::default();
        let nrows = query.num_rows();
        // matched[table] = number of query rows with a full composite match.
        let mut matched: HashMap<u32, usize> = HashMap::new();
        for r in 0..nrows {
            let key_hashes: Option<Vec<u64>> = key_cols
                .iter()
                .map(|&c| {
                    query.columns[c].values[r]
                        .join_token()
                        .map(|t| hash_str(&t, CELL_SEED))
                })
                .collect();
            let Some(key_hashes) = key_hashes else {
                continue;
            };
            // Probe on the rarest attribute's posting list. (`key_hashes`
            // mirrors `key_cols`, which the entry assert keeps non-empty.)
            let Some(probe) = key_hashes
                .iter()
                .min_by_key(|h| self.postings.get(h).map_or(0, Vec::len))
            else {
                continue;
            };
            let Some(candidates) = self.postings.get(probe) else {
                continue;
            };
            let needed_sk = super_key(&key_hashes);
            let mut hit_tables: Vec<u32> = Vec::new();
            for &entry_id in candidates {
                let row = &self.rows[entry_id as usize];
                if hit_tables.contains(&row.table) {
                    continue; // this query row already matched that table
                }
                stats.rows_fetched += 1;
                // Super-key filter: all needed bits must be present.
                if row.super_key & needed_sk != needed_sk {
                    continue;
                }
                stats.rows_after_superkey += 1;
                // Exact verification: every key hash among the row's cells.
                if key_hashes.iter().all(|h| row.cells.contains(h)) {
                    stats.rows_verified += 1;
                    hit_tables.push(row.table);
                }
            }
            for t in hit_tables {
                *matched.entry(t).or_insert(0) += 1;
            }
        }
        // Drain in table order: HashMap iteration order is random per
        // process, and TopK breaks score ties by insertion order, so an
        // unsorted drain makes tied candidates rank nondeterministically.
        let mut matched: Vec<(u32, usize)> = matched.into_iter().collect();
        matched.sort_unstable_by_key(|&(t, _)| t);
        let mut topk = TopK::new(k.max(1));
        for (t, m) in matched {
            topk.push(m as f64 / nrows.max(1) as f64, t);
        }
        (
            topk.into_sorted()
                .into_iter()
                .map(|(s, t)| (self.tables[t as usize], s))
                .collect(),
            stats,
        )
    }

    /// Baseline: score tables by the *minimum single-attribute* value
    /// containment over the key columns — the composition of
    /// single-attribute searches that MATE's row-wise design replaces.
    /// Cannot distinguish aligned tuples from coincidental value overlap.
    #[must_use]
    pub fn search_single_attribute(
        &self,
        query: &Table,
        key_cols: &[usize],
        lake: &DataLake,
        k: usize,
    ) -> Vec<(TableId, f64)> {
        let mut topk = TopK::new(k.max(1));
        for (id, table) in lake.iter() {
            // For each key column, best value containment into any column.
            let mut min_cont = f64::INFINITY;
            for &qc in key_cols {
                let qset = query.columns[qc].token_set();
                if qset.is_empty() {
                    min_cont = 0.0;
                    break;
                }
                let best = table
                    .columns
                    .iter()
                    .map(|c| {
                        let cset = c.token_set();
                        qset.intersection(&cset).count() as f64 / qset.len() as f64
                    })
                    .fold(0.0f64, f64::max);
                min_cont = min_cont.min(best);
            }
            if min_cont.is_finite() {
                topk.push(min_cont, id.0);
            }
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, t)| (TableId(t), s))
            .collect()
    }
}

impl IndexComponent for MateSearch {
    /// Per row: `(cell hashes, super key)`. An empty vec still claims a
    /// table slot, mirroring the batch build.
    type Artifact = Vec<(Vec<u64>, u64)>;
    type Query<'q> = (&'q Table, &'q [usize]);
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, _ctx: &PipelineContext) -> Self::Artifact {
        Self::row_artifacts(table)
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        _ctx: &PipelineContext,
    ) -> Self {
        Self::assemble(live_entries(segments, tombstones))
    }

    fn search_merged(&self, (query, key_cols): Self::Query<'_>, k: usize) -> Self::Hits {
        self.search(query, key_cols, k).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use td_table::gen::bench_join::{MultiJoinBenchmark, MultiJoinConfig};

    fn bench() -> MultiJoinBenchmark {
        MultiJoinBenchmark::generate(&MultiJoinConfig {
            query_rows: 80,
            key_arity: 2,
            num_relevant: 8,
            num_single_attr: 8,
            ..MultiJoinConfig::default()
        })
    }

    #[test]
    fn composite_search_rejects_single_attribute_decoys() {
        let b = bench();
        let s = MateSearch::build(&b.lake);
        let (hits, _) = s.search(&b.query, &[0, 1], 16);
        let decoys: HashSet<TableId> = b
            .truth
            .iter()
            .filter(|t| t.single_attr_only)
            .map(|t| t.table)
            .collect();
        for (t, score) in &hits {
            if decoys.contains(t) {
                assert_eq!(*score, 0.0, "decoy {t} scored {score}");
            }
        }
        // All hits with positive scores are true composites.
        assert!(hits.iter().all(|(t, s)| *s == 0.0 || !decoys.contains(t)));
    }

    #[test]
    fn composite_scores_match_ground_truth() {
        let b = bench();
        let s = MateSearch::build(&b.lake);
        let (hits, _) = s.search(&b.query, &[0, 1], 8);
        for (t, score) in &hits {
            let truth = b.truth.iter().find(|x| x.table == *t).unwrap();
            assert!(
                (score - truth.row_containment).abs() < 1e-9,
                "table {t}: got {score}, truth {}",
                truth.row_containment
            );
        }
    }

    #[test]
    fn single_attribute_baseline_is_fooled_by_decoys() {
        let b = bench();
        let s = MateSearch::build(&b.lake);
        let single = s.search_single_attribute(&b.query, &[0, 1], &b.lake, 16);
        let decoys: HashSet<TableId> = b
            .truth
            .iter()
            .filter(|t| t.single_attr_only)
            .map(|t| t.table)
            .collect();
        // Decoys have 100% per-attribute containment: they score 1.0.
        let fooled = single
            .iter()
            .filter(|(t, s)| decoys.contains(t) && *s > 0.9)
            .count();
        assert!(fooled > 0, "baseline unexpectedly resisted the decoys");
    }

    #[test]
    fn super_key_filter_prunes() {
        let b = bench();
        let s = MateSearch::build(&b.lake);
        let (_, stats) = s.search(&b.query, &[0, 1], 8);
        assert!(stats.rows_fetched > 0);
        assert!(stats.rows_after_superkey <= stats.rows_fetched);
        assert!(stats.rows_verified <= stats.rows_after_superkey);
    }

    #[test]
    fn triple_key_search_works() {
        let b = MultiJoinBenchmark::generate(&MultiJoinConfig {
            query_rows: 50,
            key_arity: 3,
            num_relevant: 4,
            num_single_attr: 4,
            ..MultiJoinConfig::default()
        });
        let s = MateSearch::build(&b.lake);
        let (hits, _) = s.search(&b.query, &[0, 1, 2], 8);
        let positives: HashSet<TableId> = b
            .truth
            .iter()
            .filter(|t| !t.single_attr_only)
            .map(|t| t.table)
            .collect();
        let found = hits
            .iter()
            .filter(|(t, s)| positives.contains(t) && *s > 0.0)
            .count();
        assert_eq!(found, positives.len());
    }

    #[test]
    #[should_panic(expected = "at least one key column")]
    fn rejects_empty_key() {
        let b = bench();
        let s = MateSearch::build(&b.lake);
        let _ = s.search(&b.query, &[], 5);
    }
}
