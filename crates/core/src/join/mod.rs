//! Joinable table search (tutorial §2.4): six approaches spanning the
//! design space the survey covers.
//!
//! | Module | System | Idea |
//! |---|---|---|
//! | [`exact`] | JOSIE | exact top-k by overlap on posting lists |
//! | [`jaccard`] | early work | MinHash Jaccard top-k + threshold LSH |
//! | [`containment`] | LSH Ensemble | cardinality-partitioned containment |
//! | [`fuzzy`] | PEXESO | embedding similarity predicates + pivots |
//! | [`mate`] | MATE | composite keys via row super-key filters |
//! | [`correlated`] | QCR index | join-and-correlate without joining |
//! | [`schema`] | InfoGather-era | attribute-name matching (the baseline) |

pub mod containment;
pub mod correlated;
pub mod exact;
pub mod fuzzy;
pub mod jaccard;
pub mod mate;
pub mod schema;

pub use containment::ContainmentJoinSearch;
pub use correlated::{exact_join_correlation, CorrelatedHit, CorrelatedSearch};
pub use exact::{ExactJoinSearch, ExactStrategy, OverlapHit};
pub use fuzzy::{FuzzyJoinSearch, FuzzyStats};
pub use jaccard::JaccardJoinSearch;
pub use mate::{MateSearch, MateStats};
pub use schema::{SchemaJoinConfig, SchemaJoinSearch};
