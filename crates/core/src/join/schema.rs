//! Schema-based joinable search — the metadata-driven early generation
//! (InfoGather, SIGMOD 2012; Das Sarma et al., SIGMOD 2012; tutorial §2.4).
//!
//! Before value-based search, joinability was inferred from *schemas*:
//! attribute names are matched (here by character-trigram Jaccard over
//! normalized headers) gated by primitive-type compatibility. This is the
//! baseline whose failure on lake-quality headers — missing, renamed,
//! abbreviated — motivates every data-driven method in this crate; the
//! contrast is part of experiment E12's story.

use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use td_index::topk::TopK;
use td_table::{Column, ColumnRef, DataLake, PrimitiveType, TableId};

/// Configuration for [`SchemaJoinSearch`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SchemaJoinConfig {
    /// Minimum header-similarity for a hit.
    pub min_similarity: f64,
    /// Require primitive-type compatibility (numeric↔numeric,
    /// text↔text).
    pub require_type_match: bool,
}

impl Default for SchemaJoinConfig {
    fn default() -> Self {
        SchemaJoinConfig {
            min_similarity: 0.3,
            require_type_match: true,
        }
    }
}

/// An indexed column's schema profile.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct SchemaEntry {
    r: ColumnRef,
    trigrams: HashSet<u32>,
    ty: PrimitiveType,
}

/// Header-driven joinable-column search.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SchemaJoinSearch {
    entries: Vec<SchemaEntry>,
    cfg: SchemaJoinConfig,
}

/// Normalize a header: lowercase, alphanumeric only.
fn normalize(h: &str) -> String {
    h.chars()
        .filter(|c| c.is_alphanumeric())
        .flat_map(char::to_lowercase)
        .collect()
}

/// Character trigrams (with boundary padding) hashed to u32.
fn trigrams(h: &str) -> HashSet<u32> {
    let n = normalize(h);
    if n.is_empty() {
        return HashSet::new();
    }
    let padded: Vec<char> = std::iter::once('^')
        .chain(n.chars())
        .chain(std::iter::once('$'))
        .collect();
    if padded.len() < 3 {
        return std::iter::once(td_sketch::hash_str(&n, 0x5c) as u32).collect();
    }
    padded
        .windows(3)
        .map(|w| {
            let s: String = w.iter().collect();
            td_sketch::hash_str(&s, 0x5c) as u32
        })
        .collect()
}

/// Jaccard of two trigram sets.
fn trigram_jaccard(a: &HashSet<u32>, b: &HashSet<u32>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    inter as f64 / (a.len() + b.len() - inter) as f64
}

/// Coarse type bucket for compatibility gating.
fn type_bucket(ty: PrimitiveType) -> u8 {
    if ty.is_numeric() {
        0
    } else {
        1
    }
}

impl SchemaJoinSearch {
    /// Index every column's header and primitive type.
    #[must_use]
    pub fn build(lake: &DataLake, cfg: SchemaJoinConfig) -> Self {
        let entries = lake
            .columns()
            .map(|(r, c)| SchemaEntry {
                r,
                trigrams: trigrams(&c.name),
                ty: c.primitive_type(),
            })
            .collect();
        SchemaJoinSearch { entries, cfg }
    }

    /// Number of indexed columns.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Top-k columns whose headers match the query column's header.
    #[must_use]
    pub fn search(&self, query: &Column, k: usize) -> Vec<(ColumnRef, f64)> {
        let qtri = trigrams(&query.name);
        let qty = type_bucket(query.primitive_type());
        let mut topk = TopK::new(k.max(1));
        for (i, e) in self.entries.iter().enumerate() {
            if self.cfg.require_type_match && type_bucket(e.ty) != qty {
                continue;
            }
            let sim = trigram_jaccard(&qtri, &e.trigrams);
            if sim >= self.cfg.min_similarity {
                topk.push(sim, i as u32);
            }
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, i)| (self.entries[i as usize].r, s))
            .collect()
    }

    /// Top-k tables by best header match.
    #[must_use]
    pub fn search_tables(&self, query: &Column, k: usize) -> Vec<(TableId, f64)> {
        let mut best: Vec<(TableId, f64)> = Vec::new();
        for (c, s) in self.search(query, k * 4 + 8) {
            match best.iter_mut().find(|(t, _)| *t == c.table) {
                Some((_, e)) => *e = e.max(s),
                None => best.push((c.table, s)),
            }
        }
        best.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        best.truncate(k);
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::{Column, Table};

    fn lake() -> DataLake {
        let mut lake = DataLake::new();
        lake.add(
            Table::new(
                "a",
                vec![
                    Column::from_strings("city_name", &["boston", "lyon"]),
                    Column::from_strings("population", &["1", "2"]),
                ],
            )
            .unwrap(),
        );
        lake.add(
            Table::new(
                "b",
                vec![Column::from_strings("CityName", &["austin"])], // variant casing
            )
            .unwrap(),
        );
        lake.add(
            Table::new(
                "c",
                vec![Column::from_strings("col_17", &["boston"])], // corrupted header
            )
            .unwrap(),
        );
        lake
    }

    #[test]
    fn matches_header_variants() {
        let s = SchemaJoinSearch::build(&lake(), SchemaJoinConfig::default());
        let q = Column::from_strings("city name", &["nantes"]);
        let hits = s.search(&q, 5);
        let tables: Vec<TableId> = hits.iter().map(|(c, _)| c.table).collect();
        assert!(tables.contains(&TableId(0)), "city_name missed");
        assert!(tables.contains(&TableId(1)), "CityName missed");
    }

    #[test]
    fn corrupted_headers_are_unfindable() {
        // The value overlap with table c is perfect, but schema search
        // cannot see it — the motivating failure of metadata-driven joins.
        let s = SchemaJoinSearch::build(&lake(), SchemaJoinConfig::default());
        let q = Column::from_strings("city name", &["boston"]);
        let hits = s.search(&q, 10);
        assert!(hits.iter().all(|(c, _)| c.table != TableId(2)));
    }

    #[test]
    fn type_gate_excludes_numeric_columns() {
        let s = SchemaJoinSearch::build(&lake(), SchemaJoinConfig::default());
        // "population" header-matches itself, but a *numeric* query named
        // "population" must not match textual columns, and vice versa.
        let qnum = Column::from_strings("population", &["3", "4"]);
        let hits = s.search(&qnum, 5);
        for (c, _) in &hits {
            assert_eq!(*c, td_table::ColumnRef::new(TableId(0), 1));
        }
        let no_gate = SchemaJoinSearch::build(
            &lake(),
            SchemaJoinConfig {
                require_type_match: false,
                ..Default::default()
            },
        );
        assert!(no_gate.search(&qnum, 5).len() >= hits.len());
    }

    #[test]
    fn similarity_threshold_filters_weak_matches() {
        let strict = SchemaJoinSearch::build(
            &lake(),
            SchemaJoinConfig {
                min_similarity: 0.95,
                ..Default::default()
            },
        );
        let q = Column::from_strings("city", &["x"]); // prefix only
        assert!(strict.search(&q, 5).is_empty());
    }

    #[test]
    fn empty_headers_never_match() {
        let mut l = lake();
        l.add(Table::new("d", vec![Column::from_strings("", &["boston"])]).unwrap());
        let s = SchemaJoinSearch::build(&l, SchemaJoinConfig::default());
        let q = Column::from_strings("", &["boston"]);
        assert!(s.search(&q, 5).is_empty());
    }

    #[test]
    fn table_aggregation_ranks_by_best_column() {
        let s = SchemaJoinSearch::build(&lake(), SchemaJoinConfig::default());
        let q = Column::from_strings("city_name", &["z"]);
        let tables = s.search_tables(&q, 3);
        assert_eq!(tables[0].0, TableId(0));
        assert!(
            (tables[0].1 - 1.0).abs() < 1e-9,
            "exact header match scores 1"
        );
    }
}
