//! Keyword / metadata search over a lake (tutorial §2.3).
//!
//! Indexes each table's metadata (title, description, tags, source) plus
//! its schema (header names) with BM25 — the Google-Dataset-Search-style
//! path that works exactly as well as the metadata is good, which is the
//! tutorial's motivation for the data-driven methods in §2.4–2.5
//! (experiment E12 sweeps metadata corruption).

use crate::segment::{live_entries, ComponentSegment, IndexComponent, PipelineContext};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use td_index::bm25::{Bm25Index, Bm25Params, Bm25Stats};
use td_table::{DataLake, Table, TableId};

/// What goes into the keyword index.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct KeywordConfig {
    /// Include metadata text.
    pub index_metadata: bool,
    /// Include column headers.
    pub index_schema: bool,
    /// BM25 parameters.
    pub bm25: Bm25Params,
}

impl Default for KeywordConfig {
    fn default() -> Self {
        KeywordConfig {
            index_metadata: true,
            index_schema: true,
            bm25: Bm25Params::default(),
        }
    }
}

/// BM25 keyword search over table metadata and schema.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KeywordSearch {
    index: Bm25Index,
    tables: Vec<TableId>,
}

impl KeywordSearch {
    /// Index every table of a lake.
    #[must_use]
    pub fn build(lake: &DataLake, cfg: &KeywordConfig) -> Self {
        Self::assemble(
            cfg,
            lake.iter()
                .map(|(id, t)| (id, Self::doc_of(t, cfg)))
                .collect(),
        )
    }

    /// The BM25 document text for one table under a config.
    fn doc_of(table: &Table, cfg: &KeywordConfig) -> String {
        let mut doc = String::new();
        if cfg.index_metadata {
            doc.push_str(&table.meta.full_text());
        }
        if cfg.index_schema {
            for h in table.headers() {
                doc.push(' ');
                doc.push_str(h);
            }
        }
        doc
    }

    /// Assemble the index from per-table documents in ascending id order —
    /// the single constructor both batch build and segment merge go
    /// through.
    fn assemble(cfg: &KeywordConfig, docs: Vec<(TableId, String)>) -> Self {
        let mut index = Bm25Index::new(cfg.bm25);
        let mut tables = Vec::with_capacity(docs.len());
        for (id, doc) in docs {
            index.add_document(&doc);
            tables.push(id);
        }
        KeywordSearch { index, tables }
    }

    /// Top-k tables for a keyword query, `(table, score)` descending.
    #[must_use]
    pub fn search(&self, query: &str, k: usize) -> Vec<(TableId, f64)> {
        let _probe = td_obs::trace::probe("probe.keyword");
        self.index
            .search(query, k)
            .into_iter()
            .map(|(doc, s)| (self.tables[doc as usize], s))
            .collect()
    }

    /// This index's own corpus statistics for `query` — phase one of
    /// distributed keyword search (see [`Bm25Stats`]).
    #[must_use]
    pub fn term_stats(&self, query: &str) -> Bm25Stats {
        self.index.term_stats(query)
    }

    /// [`Self::search`] scored with pinned corpus statistics — phase two
    /// of distributed keyword search. With `stats == self.term_stats(query)`
    /// this is bit-identical to `search`.
    #[must_use]
    pub fn search_with_stats(
        &self,
        query: &str,
        k: usize,
        stats: &Bm25Stats,
    ) -> Vec<(TableId, f64)> {
        let _probe = td_obs::trace::probe("probe.keyword");
        self.index
            .search_with_stats(query, k, stats)
            .into_iter()
            .map(|(doc, s)| (self.tables[doc as usize], s))
            .collect()
    }

    /// Number of indexed tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }
}

impl IndexComponent for KeywordSearch {
    type Artifact = String;
    type Query<'q> = &'q str;
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        Self::doc_of(table, &ctx.cfg.keyword)
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        Self::assemble(&ctx.cfg.keyword, live_entries(segments, tombstones))
    }

    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits {
        self.search(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::{Column, TableMeta};

    fn lake() -> DataLake {
        let mut lake = DataLake::new();
        let mut t1 = Table::new(
            "budget.csv",
            vec![Column::from_strings("department", &["fire", "police"])],
        )
        .unwrap();
        t1.meta = TableMeta {
            title: "City budget 2023".into(),
            description: "annual municipal finance".into(),
            tags: vec!["finance".into()],
            source: "portal".into(),
        };
        lake.add(t1);
        let mut t2 = Table::new(
            "wildlife.csv",
            vec![Column::from_strings("species", &["wolf", "lynx"])],
        )
        .unwrap();
        t2.meta = TableMeta {
            title: "Wildlife sightings".into(),
            description: "animal observations".into(),
            tags: vec!["nature".into()],
            source: "portal".into(),
        };
        lake.add(t2);
        lake
    }

    #[test]
    fn finds_by_metadata_topic() {
        let ks = KeywordSearch::build(&lake(), &KeywordConfig::default());
        let r = ks.search("municipal finance budget", 2);
        assert_eq!(r[0].0, TableId(0));
    }

    #[test]
    fn finds_by_schema_header() {
        let ks = KeywordSearch::build(&lake(), &KeywordConfig::default());
        let r = ks.search("species", 2);
        assert_eq!(r[0].0, TableId(1));
    }

    #[test]
    fn metadata_only_config_ignores_schema() {
        let ks = KeywordSearch::build(
            &lake(),
            &KeywordConfig {
                index_schema: false,
                ..Default::default()
            },
        );
        assert!(ks.search("species", 2).is_empty());
        assert!(!ks.search("wildlife", 2).is_empty());
    }

    #[test]
    fn missing_metadata_makes_tables_unfindable() {
        // The tutorial's point: metadata search fails exactly where
        // metadata is missing.
        let mut lake = DataLake::new();
        lake.add(
            Table::new(
                "anon.csv",
                vec![Column::from_strings("c1", &["fire", "police"])],
            )
            .unwrap(),
        );
        let ks = KeywordSearch::build(
            &lake,
            &KeywordConfig {
                index_schema: false,
                ..Default::default()
            },
        );
        assert!(ks.search("fire", 1).is_empty());
    }
}
