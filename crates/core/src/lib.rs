//! # td-core — the table-discovery engine
//!
//! The center of the tutorial's Figure 1: query-driven discovery over a
//! [`td_table::DataLake`] — keyword search over metadata ([`keyword`]),
//! joinable table search ([`join`]), unionable table search ([`union`]) —
//! plus the retrieval metrics every experiment scores with ([`metrics`])
//! and an end-to-end pipeline ([`pipeline`]) wiring understanding,
//! indexing, and search together.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod batch;
pub mod join;
pub mod keyword;
pub mod metrics;
pub mod pipeline;
pub mod segment;
pub mod segmented;
pub mod union;

pub use batch::run_batch;
pub use keyword::{KeywordConfig, KeywordSearch};
pub use pipeline::{DiscoveryPipeline, PipelineConfig};
pub use segment::{
    ComponentSegment, IndexComponent, PipelineContext, PipelineSegment, SegmentView, TableArtifacts,
};
pub use segmented::SegmentedPipeline;
