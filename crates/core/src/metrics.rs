//! Retrieval-quality metrics used by every experiment: P@k, R@k, AP/MAP,
//! and graded NDCG@k.

use std::collections::{HashMap, HashSet};
use std::hash::Hash;

/// Precision at `k`: fraction of the first `k` results that are relevant.
/// If fewer than `k` results were returned, the denominator is still `k`
/// (missing results count as misses).
#[must_use]
pub fn precision_at_k<T: Eq + Hash>(results: &[T], relevant: &HashSet<T>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let hits = results
        .iter()
        .take(k)
        .filter(|r| relevant.contains(r))
        .count();
    hits as f64 / k as f64
}

/// Recall at `k`: fraction of all relevant items found in the first `k`.
#[must_use]
pub fn recall_at_k<T: Eq + Hash>(results: &[T], relevant: &HashSet<T>, k: usize) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let hits = results
        .iter()
        .take(k)
        .filter(|r| relevant.contains(r))
        .count();
    hits as f64 / relevant.len() as f64
}

/// Average precision over the full ranking (AP), the per-query summand of
/// MAP. Normalized by `min(|relevant|, results.len())`.
#[must_use]
pub fn average_precision<T: Eq + Hash>(results: &[T], relevant: &HashSet<T>) -> f64 {
    if relevant.is_empty() {
        return 0.0;
    }
    let mut hits = 0usize;
    let mut sum = 0.0;
    for (i, r) in results.iter().enumerate() {
        if relevant.contains(r) {
            hits += 1;
            sum += hits as f64 / (i + 1) as f64;
        }
    }
    let denom = relevant.len().min(results.len().max(1));
    sum / denom as f64
}

/// Mean average precision across queries.
#[must_use]
pub fn mean_average_precision<T: Eq + Hash>(runs: &[(Vec<T>, HashSet<T>)]) -> f64 {
    if runs.is_empty() {
        return 0.0;
    }
    runs.iter()
        .map(|(res, rel)| average_precision(res, rel))
        .sum::<f64>()
        / runs.len() as f64
}

/// NDCG@k with graded relevance (gain `2^grade - 1`, log2 discount).
#[must_use]
pub fn ndcg_at_k<T: Eq + Hash>(results: &[T], grades: &HashMap<T, u8>, k: usize) -> f64 {
    if k == 0 || grades.is_empty() {
        return 0.0;
    }
    let gain = |g: u8| (1u64 << g) as f64 - 1.0;
    let dcg: f64 = results
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, r)| {
            grades
                .get(r)
                .map_or(0.0, |&g| gain(g) / ((i + 2) as f64).log2())
        })
        .sum();
    let mut ideal: Vec<f64> = grades.values().map(|&g| gain(g)).collect();
    ideal.sort_by(|a, b| b.total_cmp(a));
    let idcg: f64 = ideal
        .into_iter()
        .take(k)
        .enumerate()
        .map(|(i, g)| g / ((i + 2) as f64).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(items: &[u32]) -> HashSet<u32> {
        items.iter().copied().collect()
    }

    #[test]
    fn precision_basics() {
        let results = vec![1u32, 2, 3, 4];
        let relevant = rel(&[1, 3, 9]);
        assert_eq!(precision_at_k(&results, &relevant, 2), 0.5);
        assert_eq!(precision_at_k(&results, &relevant, 4), 0.5);
        assert_eq!(precision_at_k(&results, &relevant, 0), 0.0);
    }

    #[test]
    fn short_result_lists_penalize_precision() {
        let results = vec![1u32];
        let relevant = rel(&[1, 2]);
        assert_eq!(precision_at_k(&results, &relevant, 4), 0.25);
    }

    #[test]
    fn recall_basics() {
        let results = vec![1u32, 2, 3];
        let relevant = rel(&[1, 3, 9, 10]);
        assert_eq!(recall_at_k(&results, &relevant, 3), 0.5);
        assert_eq!(recall_at_k(&results, &rel(&[]), 3), 0.0);
    }

    #[test]
    fn ap_perfect_ranking_is_one() {
        let results = vec![1u32, 2, 3];
        let relevant = rel(&[1, 2, 3]);
        assert!((average_precision(&results, &relevant) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ap_rewards_early_hits() {
        let early = vec![1u32, 9, 9, 9];
        let late = vec![9u32, 9, 9, 1];
        let relevant = rel(&[1]);
        assert!(average_precision(&early, &relevant) > average_precision(&late, &relevant));
    }

    #[test]
    fn map_averages_queries() {
        let runs = vec![(vec![1u32], rel(&[1])), (vec![2u32], rel(&[3]))];
        assert!((mean_average_precision(&runs) - 0.5).abs() < 1e-12);
        assert_eq!(mean_average_precision::<u32>(&[]), 0.0);
    }

    #[test]
    fn ndcg_perfect_is_one() {
        let mut grades = HashMap::new();
        grades.insert(1u32, 2u8);
        grades.insert(2, 1);
        let results = vec![1u32, 2, 3];
        assert!((ndcg_at_k(&results, &grades, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ndcg_prefers_high_grades_first() {
        let mut grades = HashMap::new();
        grades.insert(1u32, 2u8);
        grades.insert(2, 1);
        let good = vec![1u32, 2];
        let bad = vec![2u32, 1];
        assert!(ndcg_at_k(&good, &grades, 2) > ndcg_at_k(&bad, &grades, 2));
    }

    #[test]
    fn ndcg_handles_unknown_results() {
        let mut grades = HashMap::new();
        grades.insert(1u32, 1u8);
        let results = vec![99u32, 1];
        let v = ndcg_at_k(&results, &grades, 2);
        assert!(v > 0.0 && v < 1.0);
    }
}
