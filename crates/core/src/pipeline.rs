//! The end-to-end discovery pipeline: Figure 1 of the tutorial as one
//! object.
//!
//! `DiscoveryPipeline::build` runs the offline passes a data-lake
//! management system performs — profiling, understanding (annotation),
//! indexing for every search family — and then serves the online
//! operations: keyword search, joinable search (exact / containment /
//! fuzzy / multi-attribute / correlated), and unionable search
//! (TUS / SANTOS / Starmie).

use crate::join::{
    ContainmentJoinSearch, CorrelatedSearch, ExactJoinSearch, ExactStrategy, FuzzyJoinSearch,
    MateSearch,
};
use crate::keyword::{KeywordConfig, KeywordSearch};
use crate::segment::{
    ArtifactOf, ComponentSegment, IndexComponent, PipelineContext, PipelineSegment, SegmentView,
};
use crate::union::{SantosSearch, StarmieConfig, StarmieSearch, TusSearch, UnionMeasure};
use std::collections::BTreeSet;
use td_embed::model::{DomainEmbedder, NGramEmbedder};
use td_table::gen::domains::DomainRegistry;
use td_table::{Column, DataLake, LakeProfile, Table, TableId};
use td_understand::kb::KbConfig;

/// Pipeline construction parameters.
#[derive(Debug, Clone)]
pub struct PipelineConfig {
    /// MinHash functions per signature.
    pub minhash_k: usize,
    /// LSH Ensemble partitions.
    pub partitions: usize,
    /// Embedding dimension.
    pub dim: usize,
    /// Values sampled per column when embedding.
    pub sample: usize,
    /// QCR sketch budget.
    pub qcr_k: usize,
    /// Fuzzy-join pivot count.
    pub pivots: usize,
    /// Starmie configuration.
    pub starmie: StarmieConfig,
    /// KB construction (coverage etc.).
    pub kb: KbConfig,
    /// Keyword index configuration.
    pub keyword: KeywordConfig,
    /// Seed for the embedding models.
    pub seed: u64,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            minhash_k: 128,
            partitions: 8,
            dim: 64,
            sample: 48,
            qcr_k: 256,
            pivots: 8,
            starmie: StarmieConfig::default(),
            kb: KbConfig::default(),
            keyword: KeywordConfig::default(),
            seed: 7,
        }
    }
}

impl PipelineConfig {
    /// The shared n-gram embedder (fuzzy join and the TUS natural-language
    /// signal use the same model; constructing it in one place keeps the
    /// two from drifting).
    #[must_use]
    pub fn ngram_embedder(&self) -> NGramEmbedder {
        NGramEmbedder::new(self.dim, 3, self.seed ^ 0xF0)
    }
}

/// All offline state of a discovery system over one lake.
pub struct DiscoveryPipeline {
    /// Column/table statistics.
    pub profile: LakeProfile,
    /// Metadata keyword search.
    pub keyword: KeywordSearch,
    /// Exact top-k overlap (JOSIE).
    pub exact_join: ExactJoinSearch,
    /// Containment search (LSH Ensemble).
    pub containment_join: ContainmentJoinSearch,
    /// Fuzzy embedding join (PEXESO).
    pub fuzzy_join: FuzzyJoinSearch<NGramEmbedder>,
    /// Multi-attribute join (MATE).
    pub mate: MateSearch,
    /// Correlated search (QCR sketches).
    pub correlated: CorrelatedSearch,
    /// TUS union search.
    pub tus: TusSearch,
    /// SANTOS union search.
    pub santos: SantosSearch,
    /// Starmie union search.
    pub starmie: StarmieSearch<DomainEmbedder>,
}

impl DiscoveryPipeline {
    /// Run every offline pass over the lake.
    ///
    /// `registry` supplies the ontology/embedding world (for generated
    /// lakes, pass the generator's registry so embeddings and the KB align
    /// with the data); `relations` are the KB's known relation specs.
    #[must_use]
    pub fn build(
        lake: &DataLake,
        registry: &DomainRegistry,
        relations: &[td_table::gen::bench_union::RelationSpec],
        cfg: &PipelineConfig,
    ) -> Self {
        let _build = td_obs::span!("pipeline.build");
        td_obs::global()
            .gauge("pipeline.lake.tables")
            .set(lake.len() as f64);
        td_obs::global()
            .gauge("pipeline.lake.columns")
            .set(lake.num_columns() as f64);
        let ctx = PipelineContext::new(registry, relations, cfg);
        let segment = PipelineSegment::build(&SegmentView::of_lake(lake), &ctx);
        Self::from_segments(&ctx, &[&segment], &BTreeSet::new())
    }

    /// Assemble the searchable pipeline from a stack of segments (oldest
    /// first) minus tombstones.
    ///
    /// This is the **only** construction path: [`Self::build`] calls it
    /// with one whole-lake segment, and [`crate::SegmentedPipeline`] calls
    /// it with however many segments its ingest history produced — so the
    /// two cannot return different rankings for the same live tables.
    #[must_use]
    pub fn from_segments(
        ctx: &PipelineContext,
        segments: &[&PipelineSegment],
        tombstones: &BTreeSet<TableId>,
    ) -> Self {
        fn project<'s, A>(
            segments: &[&'s PipelineSegment],
            f: impl Fn(&'s PipelineSegment) -> &'s ComponentSegment<A>,
        ) -> Vec<&'s ComponentSegment<A>> {
            segments.iter().map(|s| f(s)).collect()
        }
        fn merged<C: IndexComponent>(
            span: &str,
            segs: Vec<&ComponentSegment<ArtifactOf<C>>>,
            tombstones: &BTreeSet<TableId>,
            ctx: &PipelineContext,
        ) -> C {
            let _s = td_obs::global().span(span);
            C::merge(&segs, tombstones, ctx)
        }
        DiscoveryPipeline {
            profile: merged(
                "pipeline.profile",
                project(segments, |s| &s.profile),
                tombstones,
                ctx,
            ),
            keyword: merged(
                "pipeline.keyword.build",
                project(segments, |s| &s.keyword),
                tombstones,
                ctx,
            ),
            exact_join: merged(
                "pipeline.exact_join.build",
                project(segments, |s| &s.exact_join),
                tombstones,
                ctx,
            ),
            containment_join: merged(
                "pipeline.containment.build",
                project(segments, |s| &s.containment_join),
                tombstones,
                ctx,
            ),
            fuzzy_join: merged(
                "pipeline.fuzzy.build",
                project(segments, |s| &s.fuzzy_join),
                tombstones,
                ctx,
            ),
            mate: merged(
                "pipeline.mate.build",
                project(segments, |s| &s.mate),
                tombstones,
                ctx,
            ),
            correlated: merged(
                "pipeline.correlated.build",
                project(segments, |s| &s.correlated),
                tombstones,
                ctx,
            ),
            tus: merged(
                "pipeline.tus.build",
                project(segments, |s| &s.tus),
                tombstones,
                ctx,
            ),
            santos: merged(
                "pipeline.santos.build",
                project(segments, |s| &s.santos),
                tombstones,
                ctx,
            ),
            starmie: merged(
                "pipeline.starmie.build",
                project(segments, |s| &s.starmie),
                tombstones,
                ctx,
            ),
        }
    }

    /// Keyword search over metadata/schema.
    #[must_use]
    pub fn search_keyword(&self, query: &str, k: usize) -> Vec<(TableId, f64)> {
        observe_query("keyword", || self.keyword.search(query, k))
    }

    /// Exact top-k joinable tables on a query column.
    #[must_use]
    pub fn search_joinable(&self, query: &Column, k: usize) -> Vec<(TableId, usize)> {
        observe_query("joinable", || {
            self.exact_join
                .search_tables(query, k, ExactStrategy::Adaptive)
        })
    }

    /// Unionable tables by the ensemble TUS measure.
    #[must_use]
    pub fn search_unionable(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        observe_query("unionable", || {
            self.tus.search(query, k, UnionMeasure::Ensemble)
        })
    }

    /// Unionable tables by Starmie's contextual-embedding ranking.
    #[must_use]
    pub fn search_unionable_semantic(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        observe_query("unionable_semantic", || self.starmie.search(query, k))
    }

    /// Unionable tables by SANTOS's relationship-aware ranking.
    #[must_use]
    pub fn search_unionable_relationship(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        observe_query("unionable_relationship", || self.santos.search(query, k))
    }

    /// Fuzzily joinable tables (embedding similarity predicate `tau`).
    #[must_use]
    pub fn search_fuzzy_joinable(&self, query: &Column, tau: f32, k: usize) -> Vec<(TableId, f64)> {
        observe_query("fuzzy_joinable", || {
            self.fuzzy_join.search_tables(query, tau, k)
        })
    }

    /// Tables joinable on a composite key (MATE-style row matching).
    #[must_use]
    pub fn search_multi_joinable(
        &self,
        query: &Table,
        key_cols: &[usize],
        k: usize,
    ) -> Vec<(TableId, f64)> {
        observe_query("multi_joinable", || self.mate.search(query, key_cols, k).0)
    }

    /// Tables whose numeric column correlates with the query's, reachable
    /// through a key join (QCR sketches).
    #[must_use]
    pub fn search_correlated(
        &self,
        query_key: &Column,
        query_num: &Column,
        k: usize,
    ) -> Vec<crate::join::CorrelatedHit> {
        observe_query("correlated", || {
            self.correlated.search(query_key, query_num, k, 8)
        })
    }

    // --- batched execution -----------------------------------------------
    //
    // One entry point per search family answering many queries in a
    // single call. Each query still runs the exact per-query code path
    // above (same counters, same probes), so batched rankings are
    // byte-identical to sequential ones — `crates/core/tests/batch.rs`
    // pins that per family. The win is amortization: queries are spread
    // across cores by [`crate::batch::run_batch`] and each worker's
    // thread-local index scratch stays warm across its slice.

    /// Batched [`Self::search_keyword`]; results in input order.
    #[must_use]
    pub fn search_keyword_batch(&self, queries: &[(&str, usize)]) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, k)| self.search_keyword(q, k))
    }

    /// Batched [`Self::search_joinable`]; results in input order.
    #[must_use]
    pub fn search_joinable_batch(
        &self,
        queries: &[(&Column, usize)],
    ) -> Vec<Vec<(TableId, usize)>> {
        crate::batch::run_batch(queries, |&(q, k)| self.search_joinable(q, k))
    }

    /// Batched [`Self::search_unionable`]; results in input order.
    #[must_use]
    pub fn search_unionable_batch(&self, queries: &[(&Table, usize)]) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, k)| self.search_unionable(q, k))
    }

    /// Batched [`Self::search_unionable_semantic`]; results in input order.
    #[must_use]
    pub fn search_unionable_semantic_batch(
        &self,
        queries: &[(&Table, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, k)| self.search_unionable_semantic(q, k))
    }

    /// Batched [`Self::search_unionable_relationship`]; results in input
    /// order.
    #[must_use]
    pub fn search_unionable_relationship_batch(
        &self,
        queries: &[(&Table, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, k)| self.search_unionable_relationship(q, k))
    }

    /// Batched [`Self::search_fuzzy_joinable`]; results in input order.
    #[must_use]
    pub fn search_fuzzy_joinable_batch(
        &self,
        queries: &[(&Column, f32, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, tau, k)| {
            self.search_fuzzy_joinable(q, tau, k)
        })
    }

    /// Batched [`Self::search_multi_joinable`]; results in input order.
    #[must_use]
    pub fn search_multi_joinable_batch(
        &self,
        queries: &[(&Table, &[usize], usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, key_cols, k)| {
            self.search_multi_joinable(q, key_cols, k)
        })
    }

    /// Batched [`Self::search_correlated`]; results in input order.
    #[must_use]
    pub fn search_correlated_batch(
        &self,
        queries: &[(&Column, &Column, usize)],
    ) -> Vec<Vec<crate::join::CorrelatedHit>> {
        crate::batch::run_batch(queries, |&(qk, qn, k)| self.search_correlated(qk, qn, k))
    }

    // --- shard plane -----------------------------------------------------
    //
    // Entry points a scatter-gather coordinator (td-shard) uses to make a
    // K-shard answer byte-identical to this pipeline's own answer. Three
    // families need more than per-shard top-k merging: BM25 scores depend
    // on whole-corpus statistics (two-phase: stats, then pinned-stats
    // scoring), and the two column-aggregating join families must merge
    // *column* windows before table aggregation.

    /// This corpus's BM25 statistics for `query` — phase one of
    /// distributed keyword search.
    #[must_use]
    pub fn keyword_term_stats(&self, query: &str) -> td_index::Bm25Stats {
        self.keyword.term_stats(query)
    }

    /// Keyword search scored with pinned (merged) corpus statistics —
    /// phase two of distributed keyword search.
    #[must_use]
    pub fn search_keyword_with_stats(
        &self,
        query: &str,
        k: usize,
        stats: &td_index::Bm25Stats,
    ) -> Vec<(TableId, f64)> {
        observe_query("keyword", || {
            self.keyword.search_with_stats(query, k, stats)
        })
    }

    /// Column-level exact-overlap window (before table aggregation).
    /// `width` is normally [`crate::join::exact::column_fetch_width`] of
    /// the final table `k`.
    #[must_use]
    pub fn search_joinable_columns(
        &self,
        query: &Column,
        width: usize,
    ) -> Vec<crate::join::OverlapHit> {
        observe_query("joinable", || {
            self.exact_join
                .search(query, width, ExactStrategy::Adaptive)
                .0
        })
    }

    /// Column-level fuzzy-containment window (before table aggregation).
    #[must_use]
    pub fn search_fuzzy_columns(
        &self,
        query: &Column,
        tau: f32,
        width: usize,
    ) -> Vec<(td_table::ColumnRef, f64)> {
        observe_query("fuzzy_joinable", || {
            self.fuzzy_join.search(query, tau, width).0
        })
    }

    /// Per-query-column semantic candidate window — phase one of
    /// distributed Starmie search.
    #[must_use]
    pub fn semantic_candidates(&self, query: &Table) -> Vec<Vec<(td_table::ColumnRef, f32)>> {
        observe_query("unionable_semantic", || {
            self.starmie.candidate_columns(query)
        })
    }

    /// Starmie scoring restricted to a pinned candidate-table set —
    /// phase two of distributed Starmie search.
    #[must_use]
    pub fn search_semantic_with_candidates(
        &self,
        query: &Table,
        k: usize,
        tables: &BTreeSet<TableId>,
    ) -> Vec<(TableId, f64)> {
        observe_query("unionable_semantic", || {
            self.starmie.search_with_candidates(query, k, tables)
        })
    }

    // --- shard plane, batched --------------------------------------------
    //
    // Batched forms of the hooks above so a coordinator can answer a
    // client batch with one scatter round-trip per phase instead of one
    // per query. Same per-query code paths; results in input order.

    /// Batched [`Self::keyword_term_stats`].
    #[must_use]
    pub fn keyword_term_stats_batch(&self, queries: &[&str]) -> Vec<td_index::Bm25Stats> {
        crate::batch::run_batch(queries, |q| self.keyword_term_stats(q))
    }

    /// Batched [`Self::search_keyword_with_stats`] — each query scored
    /// with its own pinned statistics.
    #[must_use]
    pub fn search_keyword_with_stats_batch(
        &self,
        queries: &[(&str, usize, &td_index::Bm25Stats)],
    ) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, k, stats)| {
            self.search_keyword_with_stats(q, k, stats)
        })
    }

    /// Batched [`Self::search_joinable_columns`].
    #[must_use]
    pub fn search_joinable_columns_batch(
        &self,
        queries: &[(&Column, usize)],
    ) -> Vec<Vec<crate::join::OverlapHit>> {
        crate::batch::run_batch(queries, |&(q, width)| {
            self.search_joinable_columns(q, width)
        })
    }

    /// Batched [`Self::search_fuzzy_columns`].
    #[must_use]
    pub fn search_fuzzy_columns_batch(
        &self,
        queries: &[(&Column, f32, usize)],
    ) -> Vec<Vec<(td_table::ColumnRef, f64)>> {
        crate::batch::run_batch(queries, |&(q, tau, width)| {
            self.search_fuzzy_columns(q, tau, width)
        })
    }

    /// Batched [`Self::semantic_candidates`].
    #[must_use]
    pub fn semantic_candidates_batch(
        &self,
        queries: &[&Table],
    ) -> Vec<Vec<Vec<(td_table::ColumnRef, f32)>>> {
        crate::batch::run_batch(queries, |q| self.semantic_candidates(q))
    }

    /// Batched [`Self::search_semantic_with_candidates`] — each query
    /// scored against its own pinned candidate set.
    #[must_use]
    pub fn search_semantic_with_candidates_batch(
        &self,
        queries: &[(&Table, usize, &BTreeSet<TableId>)],
    ) -> Vec<Vec<(TableId, f64)>> {
        crate::batch::run_batch(queries, |&(q, k, tables)| {
            self.search_semantic_with_candidates(q, k, tables)
        })
    }
}

/// Record one online query against the global registry: a
/// `query.<family>.count` counter and a `query.<family>.latency_ns`
/// histogram.
fn observe_query<T>(family: &str, f: impl FnOnce() -> T) -> T {
    let reg = td_obs::global();
    reg.counter(&format!("query.{family}.count")).inc();
    let _t = td_obs::ScopedTimer::new(reg.histogram(&format!("query.{family}.latency_ns")));
    // Request-scoped view of the same event: when td-serve attached a
    // trace to this worker thread, the family span becomes the parent of
    // the component probe/rank spans recorded further down.
    let _q = td_obs::trace::probe(&format!("query.{family}"));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};

    /// Compile-time proof that the pipeline can be shared across server
    /// worker threads behind an `Arc` (td-serve depends on this). If any
    /// component regresses to interior mutability that is not
    /// thread-safe, this test stops compiling.
    #[test]
    fn pipeline_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DiscoveryPipeline>();
        assert_send_sync::<td_index::AdaptiveVectorIndex>();
    }

    #[test]
    fn pipeline_builds_and_serves_all_families() {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 30,
            rows: (20, 60),
            cols: (2, 4),
            seed: 3,
            ..LakeGenConfig::default()
        });
        let p = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &PipelineConfig::default());
        assert_eq!(p.profile.len(), gl.lake.num_columns());
        assert_eq!(p.keyword.len(), 30);
        assert!(!p.exact_join.is_empty());
        assert!(!p.containment_join.is_empty());
        assert!(!p.mate.is_empty());
        // Serve a query derived from a lake table.
        let (qid, qt) = gl.lake.iter().next().map(|(i, t)| (i, t.clone())).unwrap();
        let joinable = p.search_joinable(&qt.columns[0], 5);
        if !qt.columns[0].is_numeric() {
            assert_eq!(joinable[0].0, qid, "self-join should rank first");
        }
        let unionable = p.search_unionable(&qt, 5);
        assert_eq!(unionable[0].0, qid, "self-union should rank first");
        let kw = p.search_keyword("dataset", 5);
        assert!(kw.len() <= 5);
    }
}
