//! Segmented offline layer: per-table artifacts, immutable segments, and
//! the [`IndexComponent`] contract every search family implements.
//!
//! The batch [`crate::DiscoveryPipeline::build`] and the incremental
//! [`crate::SegmentedPipeline`] both assemble their indices from the same
//! per-table **artifacts** through the same `merge` code path, which is
//! what makes "incremental == batch" hold byte-for-byte rather than
//! approximately: there is no second implementation to drift.
//!
//! The shape is LSM-like. A [`PipelineSegment`] is an immutable bundle of
//! per-table artifacts for all ten components; a lake is any stack of
//! segments plus a tombstone set, flattened last-write-wins by
//! [`live_entries`] before each component's `merge` rebuilds its
//! searchable form.

use std::collections::{BTreeMap, BTreeSet};

use td_embed::model::{DomainEmbedder, NGramEmbedder};
use td_table::gen::bench_union::RelationSpec;
use td_table::gen::domains::DomainRegistry;
use td_table::{ColumnProfile, ColumnRef, DataLake, LakeProfile, Table, TableId};
use td_understand::kb::KnowledgeBase;

use crate::join::{
    ContainmentJoinSearch, CorrelatedSearch, ExactJoinSearch, FuzzyJoinSearch, MateSearch,
};
use crate::keyword::KeywordSearch;
use crate::pipeline::PipelineConfig;
use crate::union::{SantosConfig, SantosSearch, StarmieSearch, TusSearch};

/// Shared expensive assets every component build draws from: the embedding
/// models and the knowledge base. Built once per lake lifetime; table
/// ingest and segment merges reuse it, which is most of what makes a
/// single-table delta ingest cheap relative to a full rebuild.
#[derive(Clone)]
pub struct PipelineContext {
    /// Construction parameters.
    pub cfg: PipelineConfig,
    /// Ontology-like embedder (TUS semantic signal, Starmie encoder).
    pub domain_emb: DomainEmbedder,
    /// Distributional n-gram embedder (fuzzy join, TUS NL signal).
    pub ngram_emb: NGramEmbedder,
    /// Knowledge base backing SANTOS annotation.
    pub kb: KnowledgeBase,
    /// SANTOS scoring/annotation configuration.
    pub santos: SantosConfig,
}

impl PipelineContext {
    /// Build the shared assets for a lake world. Same inputs as
    /// [`crate::DiscoveryPipeline::build`]: the registry supplies the
    /// embedding/ontology world, `relations` the KB relation specs.
    #[must_use]
    pub fn new(
        registry: &DomainRegistry,
        relations: &[RelationSpec],
        cfg: &PipelineConfig,
    ) -> Self {
        let kb = {
            let _s = td_obs::span!("pipeline.kb.build");
            KnowledgeBase::build(registry, relations, &cfg.kb)
        };
        PipelineContext {
            cfg: cfg.clone(),
            domain_emb: DomainEmbedder::from_registry(registry, 2_048, cfg.dim, 0.4, cfg.seed),
            ngram_emb: cfg.ngram_embedder(),
            kb,
            santos: SantosConfig::default(),
        }
    }
}

/// A borrowed, id-ordered slice of a lake: the unit a segment is built
/// from. Ids are caller-assigned so an incremental ingest can mirror the
/// ids a one-shot lake would have handed out.
pub struct SegmentView<'a> {
    entries: Vec<(TableId, &'a Table)>,
}

impl<'a> SegmentView<'a> {
    /// View over explicit `(id, table)` pairs (sorted by id internally).
    #[must_use]
    pub fn new(mut entries: Vec<(TableId, &'a Table)>) -> Self {
        entries.sort_by_key(|(id, _)| *id);
        SegmentView { entries }
    }

    /// View over a whole lake.
    #[must_use]
    pub fn of_lake(lake: &'a DataLake) -> Self {
        SegmentView {
            entries: lake.iter().collect(),
        }
    }

    /// Iterate the `(id, table)` pairs in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (TableId, &'a Table)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of tables in the view.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the view holds no tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// One component's per-table artifacts for one segment, kept sorted by
/// table id with at most one entry per table.
#[derive(Debug, Clone, Default)]
pub struct ComponentSegment<A> {
    entries: Vec<(TableId, A)>,
}

impl<A> ComponentSegment<A> {
    /// Empty segment.
    #[must_use]
    pub fn new() -> Self {
        ComponentSegment {
            entries: Vec::new(),
        }
    }

    /// Segment from `(id, artifact)` pairs (sorted by id internally; a
    /// duplicated id keeps the later pair).
    #[must_use]
    pub fn from_entries(mut entries: Vec<(TableId, A)>) -> Self {
        entries.sort_by_key(|(id, _)| *id);
        entries.reverse();
        let mut seen = BTreeSet::new();
        entries.retain(|(id, _)| seen.insert(*id));
        entries.reverse();
        ComponentSegment { entries }
    }

    /// Insert or replace the artifact for one table.
    pub fn upsert(&mut self, id: TableId, artifact: A) {
        match self.entries.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => self.entries[pos].1 = artifact,
            Err(pos) => self.entries.insert(pos, (id, artifact)),
        }
    }

    /// Remove a table's artifact; true if one was present.
    pub fn remove(&mut self, id: TableId) -> bool {
        match self.entries.binary_search_by_key(&id, |(i, _)| *i) {
            Ok(pos) => {
                self.entries.remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// The `(id, artifact)` pairs, ascending by id.
    #[must_use]
    pub fn entries(&self) -> &[(TableId, A)] {
        &self.entries
    }

    /// Number of tables with an artifact.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the segment holds no artifacts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Flatten a stack of segments (oldest first) into the live `(id,
/// artifact)` list: for each table the **newest** segment's artifact wins,
/// tombstoned tables are dropped, and the result is ascending by id —
/// exactly the order a one-shot batch build would visit the lake in.
#[must_use]
pub fn live_entries<A: Clone>(
    segments: &[&ComponentSegment<A>],
    tombstones: &BTreeSet<TableId>,
) -> Vec<(TableId, A)> {
    let mut live: BTreeMap<TableId, &A> = BTreeMap::new();
    for seg in segments {
        for (id, artifact) in &seg.entries {
            live.insert(*id, artifact);
        }
    }
    live.into_iter()
        .filter(|(id, _)| !tombstones.contains(id))
        .map(|(id, artifact)| (id, artifact.clone()))
        .collect()
}

/// The contract every search family implements to participate in the
/// segmented pipeline: extract an immutable per-table artifact, bundle
/// artifacts into segments, and merge any stack of segments back into the
/// searchable form.
///
/// `merge` over a single whole-lake segment **is** the batch build — the
/// pipeline has no other construction path — so incremental and one-shot
/// results cannot drift apart.
pub trait IndexComponent: Sized {
    /// Immutable per-table artifact this component stores in a segment.
    type Artifact: Clone + Send + Sync + 'static;
    /// Borrowed query input for [`Self::search_merged`].
    type Query<'q>;
    /// Ranked hits returned by [`Self::search_merged`].
    type Hits;

    /// Extract one table's artifact. Pure per-table work — this is the
    /// only part of the pipeline that touches raw table values.
    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact;

    /// Build a sealed segment over a view (default: map [`Self::extract`]
    /// over the view's tables).
    fn build_segment(
        view: &SegmentView<'_>,
        ctx: &PipelineContext,
    ) -> ComponentSegment<Self::Artifact> {
        ComponentSegment::from_entries(
            view.iter()
                .map(|(id, t)| (id, Self::extract(t, ctx)))
                .collect(),
        )
    }

    /// Merge a stack of segments (oldest first, minus tombstones) into the
    /// searchable component.
    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self;

    /// Query the merged component.
    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits;
}

/// Convenient alias for a component's artifact type.
pub type ArtifactOf<C> = <C as IndexComponent>::Artifact;

impl IndexComponent for LakeProfile {
    /// Per table: one [`ColumnProfile`] per column, in column order.
    type Artifact = Vec<ColumnProfile>;
    type Query<'q> = ColumnRef;
    type Hits = Option<ColumnProfile>;

    fn extract(table: &Table, _ctx: &PipelineContext) -> Self::Artifact {
        table.columns.iter().map(ColumnProfile::of).collect()
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        _ctx: &PipelineContext,
    ) -> Self {
        let pairs: Vec<(ColumnRef, ColumnProfile)> = live_entries(segments, tombstones)
            .into_iter()
            .flat_map(|(id, cols)| {
                cols.into_iter()
                    .enumerate()
                    .map(move |(ci, p)| (ColumnRef::new(id, ci), p))
            })
            .collect();
        LakeProfile::from(pairs)
    }

    fn search_merged(&self, query: Self::Query<'_>, _k: usize) -> Self::Hits {
        let _probe = td_obs::trace::probe("probe.profile");
        self.get(query).cloned()
    }
}

/// One table's artifacts across all ten components — the unit a
/// write-ahead log records and [`PipelineSegment::insert_artifacts`]
/// replays. Extracting this bundle and upserting it is *the* ingest code
/// path ([`PipelineSegment::insert`] goes through it), so an ingest
/// replayed from a log carries value-identical artifacts by construction.
#[derive(Clone)]
pub struct TableArtifacts {
    /// Per-column statistics ([`LakeProfile`] artifact).
    pub profile: ArtifactOf<LakeProfile>,
    /// Metadata/schema document ([`KeywordSearch`] artifact).
    pub keyword: ArtifactOf<KeywordSearch>,
    /// Sorted distinct tokens per column ([`ExactJoinSearch`] artifact).
    pub exact_join: ArtifactOf<ExactJoinSearch>,
    /// MinHash signatures per column ([`ContainmentJoinSearch`] artifact).
    pub containment_join: ArtifactOf<ContainmentJoinSearch>,
    /// Embedded value vectors per column ([`FuzzyJoinSearch`] artifact).
    pub fuzzy_join: ArtifactOf<FuzzyJoinSearch<NGramEmbedder>>,
    /// Row-hash postings ([`MateSearch`] artifact).
    pub mate: ArtifactOf<MateSearch>,
    /// QCR sketches per key/numeric column pair ([`CorrelatedSearch`]
    /// artifact).
    pub correlated: ArtifactOf<CorrelatedSearch>,
    /// Per-column unionability evidence ([`TusSearch`] artifact).
    pub tus: ArtifactOf<TusSearch>,
    /// Annotated type/relationship signature ([`SantosSearch`] artifact).
    pub santos: ArtifactOf<SantosSearch>,
    /// Contextual column embeddings ([`StarmieSearch`] artifact).
    pub starmie: ArtifactOf<StarmieSearch<DomainEmbedder>>,
}

impl TableArtifacts {
    /// Extract every component's artifact for one table.
    #[must_use]
    pub fn extract(table: &Table, ctx: &PipelineContext) -> Self {
        TableArtifacts {
            profile: LakeProfile::extract(table, ctx),
            keyword: KeywordSearch::extract(table, ctx),
            exact_join: ExactJoinSearch::extract(table, ctx),
            containment_join: ContainmentJoinSearch::extract(table, ctx),
            fuzzy_join: FuzzyJoinSearch::<NGramEmbedder>::extract(table, ctx),
            mate: MateSearch::extract(table, ctx),
            correlated: CorrelatedSearch::extract(table, ctx),
            tus: TusSearch::extract(table, ctx),
            santos: SantosSearch::extract(table, ctx),
            starmie: StarmieSearch::<DomainEmbedder>::extract(table, ctx),
        }
    }
}

/// All ten components' artifacts for one set of tables — the unit the
/// [`crate::SegmentedPipeline`] seals, stacks, and compacts.
#[derive(Clone, Default)]
pub struct PipelineSegment {
    pub(crate) profile: ComponentSegment<ArtifactOf<LakeProfile>>,
    pub(crate) keyword: ComponentSegment<ArtifactOf<KeywordSearch>>,
    pub(crate) exact_join: ComponentSegment<ArtifactOf<ExactJoinSearch>>,
    pub(crate) containment_join: ComponentSegment<ArtifactOf<ContainmentJoinSearch>>,
    pub(crate) fuzzy_join: ComponentSegment<ArtifactOf<FuzzyJoinSearch<NGramEmbedder>>>,
    pub(crate) mate: ComponentSegment<ArtifactOf<MateSearch>>,
    pub(crate) correlated: ComponentSegment<ArtifactOf<CorrelatedSearch>>,
    pub(crate) tus: ComponentSegment<ArtifactOf<TusSearch>>,
    pub(crate) santos: ComponentSegment<ArtifactOf<SantosSearch>>,
    pub(crate) starmie: ComponentSegment<ArtifactOf<StarmieSearch<DomainEmbedder>>>,
}

impl PipelineSegment {
    /// Extract every component's artifacts for every table in the view.
    #[must_use]
    pub fn build(view: &SegmentView<'_>, ctx: &PipelineContext) -> Self {
        let _s = td_obs::span!("pipeline.extract");
        PipelineSegment {
            profile: LakeProfile::build_segment(view, ctx),
            keyword: KeywordSearch::build_segment(view, ctx),
            exact_join: ExactJoinSearch::build_segment(view, ctx),
            containment_join: ContainmentJoinSearch::build_segment(view, ctx),
            fuzzy_join: FuzzyJoinSearch::<NGramEmbedder>::build_segment(view, ctx),
            mate: MateSearch::build_segment(view, ctx),
            correlated: CorrelatedSearch::build_segment(view, ctx),
            tus: TusSearch::build_segment(view, ctx),
            santos: SantosSearch::build_segment(view, ctx),
            starmie: StarmieSearch::<DomainEmbedder>::build_segment(view, ctx),
        }
    }

    /// Extract and upsert one table's artifacts into this segment.
    pub fn insert(&mut self, id: TableId, table: &Table, ctx: &PipelineContext) {
        let _s = td_obs::span!("pipeline.extract");
        self.insert_artifacts(id, TableArtifacts::extract(table, ctx));
    }

    /// Upsert one table's already-extracted artifact bundle — the replay
    /// half of the ingest path: a persisted [`TableArtifacts`] inserted
    /// here lands exactly where [`Self::insert`] would have put it.
    pub fn insert_artifacts(&mut self, id: TableId, a: TableArtifacts) {
        self.profile.upsert(id, a.profile);
        self.keyword.upsert(id, a.keyword);
        self.exact_join.upsert(id, a.exact_join);
        self.containment_join.upsert(id, a.containment_join);
        self.fuzzy_join.upsert(id, a.fuzzy_join);
        self.mate.upsert(id, a.mate);
        self.correlated.upsert(id, a.correlated);
        self.tus.upsert(id, a.tus);
        self.santos.upsert(id, a.santos);
        self.starmie.upsert(id, a.starmie);
    }

    /// Remove one table's artifacts; true if the table was present.
    pub fn remove(&mut self, id: TableId) -> bool {
        let present = self.keyword.remove(id);
        self.profile.remove(id);
        self.exact_join.remove(id);
        self.containment_join.remove(id);
        self.fuzzy_join.remove(id);
        self.mate.remove(id);
        self.correlated.remove(id);
        self.tus.remove(id);
        self.santos.remove(id);
        self.starmie.remove(id);
        present
    }

    /// Flatten a stack of segments into one (last write wins, tombstones
    /// dropped) — pure artifact concatenation, no re-extraction.
    #[must_use]
    pub fn from_live(segments: &[&PipelineSegment], tombstones: &BTreeSet<TableId>) -> Self {
        PipelineSegment {
            profile: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.profile).collect::<Vec<_>>(),
                tombstones,
            )),
            keyword: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.keyword).collect::<Vec<_>>(),
                tombstones,
            )),
            exact_join: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.exact_join).collect::<Vec<_>>(),
                tombstones,
            )),
            containment_join: ComponentSegment::from_entries(live_entries(
                &segments
                    .iter()
                    .map(|s| &s.containment_join)
                    .collect::<Vec<_>>(),
                tombstones,
            )),
            fuzzy_join: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.fuzzy_join).collect::<Vec<_>>(),
                tombstones,
            )),
            mate: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.mate).collect::<Vec<_>>(),
                tombstones,
            )),
            correlated: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.correlated).collect::<Vec<_>>(),
                tombstones,
            )),
            tus: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.tus).collect::<Vec<_>>(),
                tombstones,
            )),
            santos: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.santos).collect::<Vec<_>>(),
                tombstones,
            )),
            starmie: ComponentSegment::from_entries(live_entries(
                &segments.iter().map(|s| &s.starmie).collect::<Vec<_>>(),
                tombstones,
            )),
        }
    }

    /// Assemble a segment directly from its ten component segments — the
    /// deserialization hook for `td-store`'s snapshot reader. Every
    /// component is expected to cover the same table ids (the invariant
    /// [`Self::insert_artifacts`] maintains); a mismatched set merges
    /// last-write-wins like any other stack.
    #[allow(clippy::too_many_arguments)]
    #[must_use]
    pub fn from_components(
        profile: ComponentSegment<ArtifactOf<LakeProfile>>,
        keyword: ComponentSegment<ArtifactOf<KeywordSearch>>,
        exact_join: ComponentSegment<ArtifactOf<ExactJoinSearch>>,
        containment_join: ComponentSegment<ArtifactOf<ContainmentJoinSearch>>,
        fuzzy_join: ComponentSegment<ArtifactOf<FuzzyJoinSearch<NGramEmbedder>>>,
        mate: ComponentSegment<ArtifactOf<MateSearch>>,
        correlated: ComponentSegment<ArtifactOf<CorrelatedSearch>>,
        tus: ComponentSegment<ArtifactOf<TusSearch>>,
        santos: ComponentSegment<ArtifactOf<SantosSearch>>,
        starmie: ComponentSegment<ArtifactOf<StarmieSearch<DomainEmbedder>>>,
    ) -> Self {
        PipelineSegment {
            profile,
            keyword,
            exact_join,
            containment_join,
            fuzzy_join,
            mate,
            correlated,
            tus,
            santos,
            starmie,
        }
    }

    /// The profile component ([`LakeProfile`] artifacts), ascending by id.
    #[must_use]
    pub fn profile(&self) -> &ComponentSegment<ArtifactOf<LakeProfile>> {
        &self.profile
    }

    /// The keyword component ([`KeywordSearch`] artifacts).
    #[must_use]
    pub fn keyword(&self) -> &ComponentSegment<ArtifactOf<KeywordSearch>> {
        &self.keyword
    }

    /// The exact-join component ([`ExactJoinSearch`] artifacts).
    #[must_use]
    pub fn exact_join(&self) -> &ComponentSegment<ArtifactOf<ExactJoinSearch>> {
        &self.exact_join
    }

    /// The containment-join component ([`ContainmentJoinSearch`]
    /// artifacts).
    #[must_use]
    pub fn containment_join(&self) -> &ComponentSegment<ArtifactOf<ContainmentJoinSearch>> {
        &self.containment_join
    }

    /// The fuzzy-join component ([`FuzzyJoinSearch`] artifacts).
    #[must_use]
    pub fn fuzzy_join(&self) -> &ComponentSegment<ArtifactOf<FuzzyJoinSearch<NGramEmbedder>>> {
        &self.fuzzy_join
    }

    /// The MATE component ([`MateSearch`] artifacts).
    #[must_use]
    pub fn mate(&self) -> &ComponentSegment<ArtifactOf<MateSearch>> {
        &self.mate
    }

    /// The correlated-search component ([`CorrelatedSearch`] artifacts).
    #[must_use]
    pub fn correlated(&self) -> &ComponentSegment<ArtifactOf<CorrelatedSearch>> {
        &self.correlated
    }

    /// The TUS component ([`TusSearch`] artifacts).
    #[must_use]
    pub fn tus(&self) -> &ComponentSegment<ArtifactOf<TusSearch>> {
        &self.tus
    }

    /// The SANTOS component ([`SantosSearch`] artifacts).
    #[must_use]
    pub fn santos(&self) -> &ComponentSegment<ArtifactOf<SantosSearch>> {
        &self.santos
    }

    /// The Starmie component ([`StarmieSearch`] artifacts).
    #[must_use]
    pub fn starmie(&self) -> &ComponentSegment<ArtifactOf<StarmieSearch<DomainEmbedder>>> {
        &self.starmie
    }

    /// Ids of tables carried by this segment (every component covers every
    /// table, so the keyword component is representative).
    #[must_use]
    pub fn table_ids(&self) -> Vec<TableId> {
        self.keyword.entries().iter().map(|(id, _)| *id).collect()
    }

    /// Number of tables in this segment.
    #[must_use]
    pub fn len(&self) -> usize {
        self.keyword.len()
    }

    /// True if the segment carries no tables.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.keyword.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::Column;

    fn table(n: &str, vals: &[&str]) -> Table {
        Table::new(n, vec![Column::from_strings("c", vals)]).expect("valid table")
    }

    #[test]
    fn component_segment_upsert_remove_keeps_sorted_unique() {
        let mut seg: ComponentSegment<u32> = ComponentSegment::new();
        seg.upsert(TableId(3), 30);
        seg.upsert(TableId(1), 10);
        seg.upsert(TableId(3), 31);
        assert_eq!(seg.entries(), &[(TableId(1), 10), (TableId(3), 31)]);
        assert!(seg.remove(TableId(1)));
        assert!(!seg.remove(TableId(1)));
        assert_eq!(seg.len(), 1);
    }

    #[test]
    fn from_entries_keeps_last_duplicate() {
        let seg = ComponentSegment::from_entries(vec![
            (TableId(2), 'a'),
            (TableId(1), 'b'),
            (TableId(2), 'c'),
        ]);
        assert_eq!(seg.entries(), &[(TableId(1), 'b'), (TableId(2), 'c')]);
    }

    #[test]
    fn live_entries_last_write_wins_and_tombstones_drop() {
        let old = ComponentSegment::from_entries(vec![(TableId(0), 1u8), (TableId(1), 1)]);
        let new = ComponentSegment::from_entries(vec![(TableId(1), 2u8), (TableId(2), 2)]);
        let mut tombs = BTreeSet::new();
        tombs.insert(TableId(0));
        let live = live_entries(&[&old, &new], &tombs);
        assert_eq!(live, vec![(TableId(1), 2), (TableId(2), 2)]);
    }

    #[test]
    fn segment_view_sorts_by_id() {
        let a = table("a.csv", &["x"]);
        let b = table("b.csv", &["y"]);
        let v = SegmentView::new(vec![(TableId(5), &b), (TableId(2), &a)]);
        let ids: Vec<TableId> = v.iter().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![TableId(2), TableId(5)]);
        assert_eq!(v.len(), 2);
        assert!(!v.is_empty());
    }
}
