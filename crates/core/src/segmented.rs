//! Incremental discovery pipeline: ingest and drop tables without a full
//! rebuild.
//!
//! [`SegmentedPipeline`] keeps the offline state as a stack of sealed,
//! immutable [`PipelineSegment`]s plus one mutable *delta* segment and a
//! tombstone set — the LSM shape. Ingesting a table extracts that table's
//! per-component artifacts into the delta (no other table is touched);
//! dropping a table writes a tombstone. Queries run against a lazily
//! assembled [`DiscoveryPipeline`] snapshot produced by
//! [`DiscoveryPipeline::from_segments`] — the *same* construction path the
//! batch [`DiscoveryPipeline::build`] uses — so an incremental history and
//! a one-shot build over the same live tables return **byte-identical**
//! rankings. `crates/core/tests/segmented.rs` enforces that invariant with
//! a fixed-seed regression and a property test over random ingest orders.
//!
//! [`Self::compact`]-style maintenance is pure artifact concatenation
//! ([`PipelineSegment::from_live`]): no table is re-profiled, re-embedded,
//! or re-annotated.

use std::collections::BTreeSet;
use std::sync::{Arc, Mutex, PoisonError};

use td_table::gen::bench_union::RelationSpec;
use td_table::gen::domains::DomainRegistry;
use td_table::{Column, Table, TableId};

use crate::join::CorrelatedHit;
use crate::pipeline::{DiscoveryPipeline, PipelineConfig};
use crate::segment::{PipelineContext, PipelineSegment, SegmentView};

/// An incrementally maintained discovery pipeline.
///
/// The write path (`ingest_table` / `drop_table` / `seal` / `compact`)
/// mutates segments; the read path (`snapshot` and the `search_*`
/// helpers) serves a cached [`DiscoveryPipeline`] assembled from the
/// current segment stack, rebuilt only after a write invalidated it.
pub struct SegmentedPipeline {
    ctx: PipelineContext,
    sealed: Vec<PipelineSegment>,
    delta: PipelineSegment,
    tombstones: BTreeSet<TableId>,
    snapshot: Mutex<Option<Arc<DiscoveryPipeline>>>,
}

impl SegmentedPipeline {
    /// Empty pipeline over a lake world (same inputs as
    /// [`DiscoveryPipeline::build`]; the registry and relation specs feed
    /// the shared embedders and knowledge base).
    #[must_use]
    pub fn new(
        registry: &DomainRegistry,
        relations: &[RelationSpec],
        cfg: &PipelineConfig,
    ) -> Self {
        Self::with_context(PipelineContext::new(registry, relations, cfg))
    }

    /// Empty pipeline reusing an already-built context (lets callers share
    /// one KB/embedder set between a batch build and an incremental one).
    #[must_use]
    pub fn with_context(ctx: PipelineContext) -> Self {
        SegmentedPipeline {
            ctx,
            sealed: Vec::new(),
            delta: PipelineSegment::default(),
            tombstones: BTreeSet::new(),
            snapshot: Mutex::new(None),
        }
    }

    /// Reassemble a pipeline from externally held state — the restore
    /// hook for `td-store`: a snapshot file decodes into exactly these
    /// four pieces, and queries over the result go through the same
    /// [`DiscoveryPipeline::from_segments`] merge as a live pipeline.
    #[must_use]
    pub fn from_state(
        ctx: PipelineContext,
        sealed: Vec<PipelineSegment>,
        delta: PipelineSegment,
        tombstones: BTreeSet<TableId>,
    ) -> Self {
        let sp = SegmentedPipeline {
            ctx,
            sealed,
            delta,
            tombstones,
            snapshot: Mutex::new(None),
        };
        sp.update_gauges();
        sp
    }

    /// The shared context (config, embedders, KB) this pipeline extracts
    /// with.
    #[must_use]
    pub fn context(&self) -> &PipelineContext {
        &self.ctx
    }

    /// The sealed, immutable segments (oldest first) — the persistence
    /// hook a snapshot writer serializes.
    #[must_use]
    pub fn sealed_segments(&self) -> &[PipelineSegment] {
        &self.sealed
    }

    /// The mutable delta segment (artifacts ingested since the last
    /// [`Self::seal`]).
    #[must_use]
    pub fn delta_segment(&self) -> &PipelineSegment {
        &self.delta
    }

    /// The outstanding tombstones (dropped tables still carried by a
    /// sealed segment).
    #[must_use]
    pub fn tombstones(&self) -> &BTreeSet<TableId> {
        &self.tombstones
    }

    /// Ingest (or replace) one table under a caller-assigned id.
    ///
    /// Only this table's artifacts are extracted; every other table's
    /// offline state is untouched. Ids are caller-assigned so an
    /// incremental history can mirror the dense ids a one-shot
    /// [`td_table::DataLake`] would hand out.
    pub fn ingest_table(&mut self, id: TableId, table: &Table) {
        self.tombstones.remove(&id);
        self.delta.insert(id, table, &self.ctx);
        self.invalidate();
        self.update_gauges();
    }

    /// Ingest one table from an already-extracted artifact bundle — the
    /// WAL-replay half of [`Self::ingest_table`]: no extraction runs, the
    /// bundle lands in the delta exactly as the original ingest's did.
    pub fn ingest_artifacts(&mut self, id: TableId, artifacts: crate::segment::TableArtifacts) {
        self.tombstones.remove(&id);
        self.delta.insert_artifacts(id, artifacts);
        self.invalidate();
        self.update_gauges();
    }

    /// Ingest every table of a view into the delta in one pass. The view's
    /// artifacts shadow any the delta already held for the same ids.
    pub fn ingest_view(&mut self, view: &SegmentView<'_>) {
        for (id, _) in view.iter() {
            self.tombstones.remove(&id);
        }
        let built = PipelineSegment::build(view, &self.ctx);
        self.delta = PipelineSegment::from_live(&[&self.delta, &built], &BTreeSet::new());
        self.invalidate();
        self.update_gauges();
    }

    /// Drop a table: removed from the delta immediately, tombstoned if any
    /// sealed segment still carries it. Returns true if the table was live.
    pub fn drop_table(&mut self, id: TableId) -> bool {
        let was_live = self.is_live(id);
        self.delta.remove(id);
        if self.sealed.iter().any(|s| s.table_ids().contains(&id)) {
            self.tombstones.insert(id);
        }
        self.invalidate();
        self.update_gauges();
        was_live
    }

    /// Seal the delta: it becomes an immutable segment and a fresh empty
    /// delta starts. A no-op on an empty delta.
    pub fn seal(&mut self) {
        if !self.delta.is_empty() {
            self.sealed.push(std::mem::take(&mut self.delta));
        }
        self.update_gauges();
    }

    /// Compact the whole stack into a single sealed segment: tombstoned
    /// tables are dropped for good, shadowed artifacts discarded. Pure
    /// artifact concatenation — no table is re-extracted.
    pub fn compact(&mut self) {
        let _s = td_obs::span!("pipeline.compact");
        self.seal();
        let refs: Vec<&PipelineSegment> = self.sealed.iter().collect();
        let merged = PipelineSegment::from_live(&refs, &self.tombstones);
        self.sealed = vec![merged];
        self.tombstones.clear();
        self.invalidate();
        self.update_gauges();
    }

    /// The searchable pipeline for the current live tables, cached until
    /// the next write.
    ///
    /// # Panics
    ///
    /// Panics if no live table has a textual column (the containment
    /// index's LSH ensemble needs at least one set), mirroring
    /// [`DiscoveryPipeline::build`] on such a lake.
    #[must_use]
    pub fn snapshot(&self) -> Arc<DiscoveryPipeline> {
        let mut slot = self.snapshot.lock().unwrap_or_else(PoisonError::into_inner);
        if let Some(p) = slot.as_ref() {
            return Arc::clone(p);
        }
        let mut refs: Vec<&PipelineSegment> = self.sealed.iter().collect();
        if !self.delta.is_empty() {
            refs.push(&self.delta);
        }
        let built = Arc::new(DiscoveryPipeline::from_segments(
            &self.ctx,
            &refs,
            &self.tombstones,
        ));
        *slot = Some(Arc::clone(&built));
        built
    }

    /// Ids of the live tables, ascending.
    #[must_use]
    pub fn table_ids(&self) -> Vec<TableId> {
        let mut ids: BTreeSet<TableId> = self.delta.table_ids().into_iter().collect();
        for seg in &self.sealed {
            ids.extend(seg.table_ids());
        }
        ids.into_iter()
            .filter(|id| !self.tombstones.contains(id))
            .collect()
    }

    /// Number of live tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.table_ids().len()
    }

    /// True if no table is live.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.table_ids().is_empty()
    }

    /// True if `id` resolves to a live (non-tombstoned) table.
    #[must_use]
    pub fn is_live(&self, id: TableId) -> bool {
        !self.tombstones.contains(&id)
            && (self.delta.table_ids().contains(&id)
                || self.sealed.iter().any(|s| s.table_ids().contains(&id)))
    }

    /// Number of sealed segments plus the delta if non-empty.
    #[must_use]
    pub fn num_segments(&self) -> usize {
        self.sealed.len() + usize::from(!self.delta.is_empty())
    }

    /// Number of outstanding tombstones.
    #[must_use]
    pub fn num_tombstones(&self) -> usize {
        self.tombstones.len()
    }

    /// Keyword search over metadata/schema (see
    /// [`DiscoveryPipeline::search_keyword`]).
    #[must_use]
    pub fn search_keyword(&self, query: &str, k: usize) -> Vec<(TableId, f64)> {
        self.snapshot().search_keyword(query, k)
    }

    /// Exact top-k joinable tables (see
    /// [`DiscoveryPipeline::search_joinable`]).
    #[must_use]
    pub fn search_joinable(&self, query: &Column, k: usize) -> Vec<(TableId, usize)> {
        self.snapshot().search_joinable(query, k)
    }

    /// Ensemble-TUS unionable tables (see
    /// [`DiscoveryPipeline::search_unionable`]).
    #[must_use]
    pub fn search_unionable(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        self.snapshot().search_unionable(query, k)
    }

    /// Starmie unionable tables (see
    /// [`DiscoveryPipeline::search_unionable_semantic`]).
    #[must_use]
    pub fn search_unionable_semantic(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        self.snapshot().search_unionable_semantic(query, k)
    }

    /// SANTOS unionable tables (see
    /// [`DiscoveryPipeline::search_unionable_relationship`]).
    #[must_use]
    pub fn search_unionable_relationship(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        self.snapshot().search_unionable_relationship(query, k)
    }

    /// Fuzzily joinable tables (see
    /// [`DiscoveryPipeline::search_fuzzy_joinable`]).
    #[must_use]
    pub fn search_fuzzy_joinable(&self, query: &Column, tau: f32, k: usize) -> Vec<(TableId, f64)> {
        self.snapshot().search_fuzzy_joinable(query, tau, k)
    }

    /// Composite-key joinable tables (see
    /// [`DiscoveryPipeline::search_multi_joinable`]).
    #[must_use]
    pub fn search_multi_joinable(
        &self,
        query: &Table,
        key_cols: &[usize],
        k: usize,
    ) -> Vec<(TableId, f64)> {
        self.snapshot().search_multi_joinable(query, key_cols, k)
    }

    /// Correlated-column search (see
    /// [`DiscoveryPipeline::search_correlated`]).
    #[must_use]
    pub fn search_correlated(
        &self,
        query_key: &Column,
        query_num: &Column,
        k: usize,
    ) -> Vec<CorrelatedHit> {
        self.snapshot().search_correlated(query_key, query_num, k)
    }

    /// Batched [`DiscoveryPipeline::search_keyword_batch`] over one
    /// snapshot: the segment stack is assembled (or fetched from cache)
    /// once for the whole batch, not once per query.
    #[must_use]
    pub fn search_keyword_batch(&self, queries: &[(&str, usize)]) -> Vec<Vec<(TableId, f64)>> {
        self.snapshot().search_keyword_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_joinable_batch`] over one
    /// snapshot.
    #[must_use]
    pub fn search_joinable_batch(
        &self,
        queries: &[(&Column, usize)],
    ) -> Vec<Vec<(TableId, usize)>> {
        self.snapshot().search_joinable_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_unionable_batch`] over one
    /// snapshot.
    #[must_use]
    pub fn search_unionable_batch(&self, queries: &[(&Table, usize)]) -> Vec<Vec<(TableId, f64)>> {
        self.snapshot().search_unionable_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_unionable_semantic_batch`] over
    /// one snapshot.
    #[must_use]
    pub fn search_unionable_semantic_batch(
        &self,
        queries: &[(&Table, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        self.snapshot().search_unionable_semantic_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_unionable_relationship_batch`]
    /// over one snapshot.
    #[must_use]
    pub fn search_unionable_relationship_batch(
        &self,
        queries: &[(&Table, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        self.snapshot().search_unionable_relationship_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_fuzzy_joinable_batch`] over one
    /// snapshot.
    #[must_use]
    pub fn search_fuzzy_joinable_batch(
        &self,
        queries: &[(&Column, f32, usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        self.snapshot().search_fuzzy_joinable_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_multi_joinable_batch`] over one
    /// snapshot.
    #[must_use]
    pub fn search_multi_joinable_batch(
        &self,
        queries: &[(&Table, &[usize], usize)],
    ) -> Vec<Vec<(TableId, f64)>> {
        self.snapshot().search_multi_joinable_batch(queries)
    }

    /// Batched [`DiscoveryPipeline::search_correlated_batch`] over one
    /// snapshot.
    #[must_use]
    pub fn search_correlated_batch(
        &self,
        queries: &[(&Column, &Column, usize)],
    ) -> Vec<Vec<CorrelatedHit>> {
        self.snapshot().search_correlated_batch(queries)
    }

    fn invalidate(&mut self) {
        *self
            .snapshot
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner) = None;
    }

    fn update_gauges(&self) {
        td_obs::global()
            .gauge("pipeline.segments")
            .set(self.num_segments() as f64);
        td_obs::global()
            .gauge("pipeline.tombstones")
            .set(self.tombstones.len() as f64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};

    #[test]
    fn bookkeeping_tracks_segments_and_tombstones() {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 6,
            rows: (10, 20),
            cols: (2, 3),
            seed: 11,
            ..LakeGenConfig::default()
        });
        let mut sp = SegmentedPipeline::new(&gl.registry, &[], &PipelineConfig::default());
        assert!(sp.is_empty());
        let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        for (id, t) in &tables[..3] {
            sp.ingest_table(*id, t);
        }
        assert_eq!(sp.num_segments(), 1, "delta counts as one segment");
        sp.seal();
        for (id, t) in &tables[3..] {
            sp.ingest_table(*id, t);
        }
        assert_eq!(sp.num_segments(), 2);
        assert_eq!(sp.len(), 6);

        // Drop a sealed table → tombstone; drop a delta table → no tombstone.
        assert!(sp.drop_table(tables[0].0));
        assert_eq!(sp.num_tombstones(), 1);
        assert!(sp.drop_table(tables[4].0));
        assert_eq!(sp.num_tombstones(), 1);
        assert!(!sp.is_live(tables[0].0));
        assert!(!sp.drop_table(tables[0].0), "already dropped");
        assert_eq!(sp.len(), 4);

        // Re-ingest clears the tombstone.
        sp.ingest_table(tables[0].0, &tables[0].1);
        assert_eq!(sp.num_tombstones(), 0);
        assert_eq!(sp.len(), 5);

        sp.compact();
        assert_eq!(sp.num_segments(), 1);
        assert_eq!(sp.num_tombstones(), 0);
        assert_eq!(sp.len(), 5);
        let mut expect: Vec<TableId> = tables.iter().map(|(id, _)| *id).collect();
        expect.retain(|id| *id != tables[4].0);
        assert_eq!(sp.table_ids(), expect);
    }

    #[test]
    fn snapshot_is_cached_until_a_write() {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 5,
            rows: (10, 20),
            cols: (2, 3),
            seed: 12,
            ..LakeGenConfig::default()
        });
        let mut sp = SegmentedPipeline::new(&gl.registry, &[], &PipelineConfig::default());
        let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        for (id, t) in &tables {
            sp.ingest_table(*id, t);
        }
        let a = sp.snapshot();
        let b = sp.snapshot();
        assert!(Arc::ptr_eq(&a, &b), "second snapshot should be cached");
        sp.ingest_table(tables[0].0, &tables[0].1);
        let c = sp.snapshot();
        assert!(!Arc::ptr_eq(&a, &c), "write must invalidate the snapshot");
    }
}
