//! Hybrid KB + embedding union search — the tutorial's §3 challenge
//! ("find synergies between knowledge-based and ML-based approaches").
//!
//! Knowledge bases answer with high precision but abstain wherever their
//! coverage ends; embeddings never abstain but admit semantic false
//! positives (same-domain/wrong-relationship tables). The hybrid uses the
//! KB verdict wherever the KB has *evidence* and falls back to the
//! embedding ranking elsewhere, so its quality tracks the better of the
//! two at every coverage level (experiment E18).

use crate::union::santos::{SantosSearch, TableSignature};
use crate::union::starmie::StarmieSearch;
use serde::{Deserialize, Serialize};
use td_embed::model::Embedder;
use td_table::{Table, TableId};

/// How a hybrid hit was scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum HybridEvidence {
    /// The KB asserted relationship/type overlap.
    KnowledgeBase,
    /// The KB abstained; the embedding ranking supplied the score.
    Embedding,
}

/// A hybrid search result.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HybridHit {
    /// The candidate table.
    pub table: TableId,
    /// Combined score (KB hits are lifted above every embedding hit).
    pub score: f64,
    /// Which path scored it.
    pub evidence: HybridEvidence,
}

/// Minimum SANTOS score for the KB path to claim a candidate.
const KB_EVIDENCE_FLOOR: f64 = 0.05;

/// Hybrid union search over a SANTOS index and a Starmie index built on
/// the same lake.
pub struct HybridUnionSearch<'a, E: Embedder> {
    santos: &'a SantosSearch,
    starmie: &'a StarmieSearch<E>,
}

impl<'a, E: Embedder> HybridUnionSearch<'a, E> {
    /// Combine two already-built indexes (they share the lake, not state).
    #[must_use]
    pub fn new(santos: &'a SantosSearch, starmie: &'a StarmieSearch<E>) -> Self {
        HybridUnionSearch { santos, starmie }
    }

    /// Top-k unionable tables: KB-scored candidates first (descending
    /// SANTOS score), embedding-ranked candidates fill the remainder.
    #[must_use]
    pub fn search(&self, query: &Table, k: usize) -> Vec<HybridHit> {
        let mut out: Vec<HybridHit> = Vec::with_capacity(k);
        for (t, s) in self.santos.search(query, k) {
            if s > KB_EVIDENCE_FLOOR {
                out.push(HybridHit {
                    table: t,
                    // Lift KB hits above the embedding range [0, 1].
                    score: 1.0 + s,
                    evidence: HybridEvidence::KnowledgeBase,
                });
            }
        }
        if out.len() < k {
            for (t, s) in self.starmie.search(query, k * 2) {
                if out.len() >= k {
                    break;
                }
                if out.iter().any(|h| h.table == t) {
                    continue;
                }
                out.push(HybridHit {
                    table: t,
                    score: s,
                    evidence: HybridEvidence::Embedding,
                });
            }
        }
        out.truncate(k);
        out
    }

    /// The query's KB signature (diagnostics: an empty triple set explains
    /// why everything fell back to embeddings).
    #[must_use]
    pub fn query_signature(&self, query: &Table) -> TableSignature {
        SantosSearch::signature_of(
            query,
            self.santos.kb_ref(),
            &crate::union::santos::SantosConfig::default(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::union::{SantosConfig, StarmieConfig, VectorBackend};
    use std::collections::HashSet;
    use td_embed::column::ContextualEncoder;
    use td_embed::model::DomainEmbedder;
    use td_table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};
    use td_understand::kb::{KbConfig, KnowledgeBase};

    fn setup(coverage: f64) -> (UnionBenchmark, SantosSearch, StarmieSearch<DomainEmbedder>) {
        let b = UnionBenchmark::generate(&UnionBenchConfig {
            num_queries: 2,
            positives: 5,
            partials: 0,
            relation_decoys: 5,
            homograph_decoys: 0,
            noise: 10,
            rows: 80,
            key_slice: 150,
            homograph_range: 1,
            ..Default::default()
        });
        let kb = KnowledgeBase::build(
            &b.registry,
            &b.relations,
            &KbConfig {
                vocab_per_domain: 2_048,
                facts_per_relation: 2_048,
                type_coverage: coverage,
                relation_coverage: coverage,
                ..Default::default()
            },
        );
        let santos = SantosSearch::build(&b.lake, kb, SantosConfig::default());
        let starmie = StarmieSearch::build(
            &b.lake,
            DomainEmbedder::from_registry(&b.registry, 2_048, 64, 0.4, 3),
            StarmieConfig {
                encoder: ContextualEncoder {
                    alpha: 0.4,
                    sample: 48,
                },
                backend: VectorBackend::Flat,
                ..Default::default()
            },
        );
        (b, santos, starmie)
    }

    #[test]
    fn with_good_kb_the_kb_path_dominates() {
        let (b, santos, starmie) = setup(0.9);
        let h = HybridUnionSearch::new(&santos, &starmie);
        let hits = h.search(&b.queries[0], 5);
        assert_eq!(hits.len(), 5);
        let kb_hits = hits
            .iter()
            .filter(|x| x.evidence == HybridEvidence::KnowledgeBase)
            .count();
        assert!(kb_hits >= 4, "only {kb_hits} KB-evidence hits");
        let positives: HashSet<TableId> = b.tables_with_grade(0, 2).into_iter().collect();
        let good = hits.iter().filter(|x| positives.contains(&x.table)).count();
        assert!(good >= 4, "precision {good}/5");
    }

    #[test]
    fn with_empty_kb_the_embedding_path_takes_over() {
        let (b, santos, starmie) = setup(0.0);
        let h = HybridUnionSearch::new(&santos, &starmie);
        let hits = h.search(&b.queries[0], 5);
        assert_eq!(hits.len(), 5);
        assert!(hits.iter().all(|x| x.evidence == HybridEvidence::Embedding));
        // The query signature explains the fallback.
        let sig = h.query_signature(&b.queries[0]);
        assert!(sig.triples.is_empty());
    }

    #[test]
    fn hybrid_is_at_least_as_good_as_either_path() {
        for coverage in [0.0, 0.5, 0.9] {
            let (b, santos, starmie) = setup(coverage);
            let h = HybridUnionSearch::new(&santos, &starmie);
            for q in 0..b.queries.len() {
                let positives: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
                let prec = |ids: Vec<TableId>| {
                    ids.iter().take(5).filter(|t| positives.contains(t)).count()
                };
                let hy = prec(
                    h.search(&b.queries[q], 5)
                        .into_iter()
                        .map(|x| x.table)
                        .collect(),
                );
                let kb = prec(
                    santos
                        .search(&b.queries[q], 5)
                        .into_iter()
                        .filter(|(_, s)| *s > KB_EVIDENCE_FLOOR)
                        .map(|(t, _)| t)
                        .collect(),
                );
                let em = prec(
                    starmie
                        .search(&b.queries[q], 5)
                        .into_iter()
                        .map(|(t, _)| t)
                        .collect(),
                );
                assert!(
                    hy + 1 >= kb.max(em),
                    "coverage {coverage} q{q}: hybrid {hy} vs kb {kb} / emb {em}"
                );
            }
        }
    }

    #[test]
    fn kb_hits_rank_above_embedding_hits() {
        let (b, santos, starmie) = setup(0.5);
        let h = HybridUnionSearch::new(&santos, &starmie);
        let hits = h.search(&b.queries[0], 8);
        let first_emb = hits
            .iter()
            .position(|x| x.evidence == HybridEvidence::Embedding);
        if let Some(i) = first_emb {
            assert!(
                hits[i..]
                    .iter()
                    .all(|x| x.evidence == HybridEvidence::Embedding),
                "KB hit after embedding hit"
            );
        }
    }
}
