//! Maximum-weight bipartite matching (Hungarian algorithm).
//!
//! TUS aggregates attribute-level unionability into a table-level score by
//! solving a bipartite alignment between query and candidate columns; the
//! same machinery serves Starmie's table-score aggregation and the table
//! stitching application. This is the classic O(n³) potentials/shortest-
//! augmenting-path formulation.

/// Solve minimum-cost perfect assignment on a square `n x n` cost matrix.
/// Returns `assignment[row] = col`.
fn hungarian_min(cost: &[Vec<f64>]) -> Vec<usize> {
    let n = cost.len();
    // 1-indexed potentials algorithm (e-maxx formulation).
    let inf = f64::INFINITY;
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; n + 1];
    let mut p = vec![0usize; n + 1]; // p[col] = row matched to col (1-indexed)
    let mut way = vec![0usize; n + 1];
    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![inf; n + 1];
        let mut used = vec![false; n + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = inf;
            let mut j1 = 0usize;
            for j in 1..=n {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            for j in 0..=n {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }
    let mut assignment = vec![0usize; n];
    for j in 1..=n {
        if p[j] != 0 {
            assignment[p[j] - 1] = j - 1;
        }
    }
    assignment
}

/// Maximum-weight bipartite matching on a (possibly rectangular)
/// non-negative weight matrix `weights[row][col]`.
///
/// Returns `(total_weight, assignment)` where `assignment[row]` is the
/// matched column or `None` (rows beyond the column count, or matched to a
/// zero-weight dummy, stay unmatched). Because weights are non-negative,
/// the returned matching is a maximum-weight matching over all matchings.
///
/// # Panics
/// Panics if rows have inconsistent lengths or any weight is negative/NaN.
#[must_use]
pub fn max_weight_matching(weights: &[Vec<f64>]) -> (f64, Vec<Option<usize>>) {
    let n = weights.len();
    if n == 0 {
        return (0.0, Vec::new());
    }
    let m = weights[0].len();
    for row in weights {
        assert_eq!(row.len(), m, "ragged weight matrix");
        for &w in row {
            assert!(
                w >= 0.0 && w.is_finite(),
                "weights must be non-negative finite"
            );
        }
    }
    if m == 0 {
        return (0.0, vec![None; n]);
    }
    let size = n.max(m);
    let maxw = weights
        .iter()
        .flat_map(|r| r.iter().copied())
        .fold(0.0f64, f64::max);
    // Pad to square; dummy cells carry weight 0 (cost = maxw).
    let cost: Vec<Vec<f64>> = (0..size)
        .map(|i| {
            (0..size)
                .map(|j| {
                    let w = if i < n && j < m { weights[i][j] } else { 0.0 };
                    maxw - w
                })
                .collect()
        })
        .collect();
    let assignment = hungarian_min(&cost);
    let mut total = 0.0;
    let mut out = vec![None; n];
    for (i, &j) in assignment.iter().enumerate().take(n) {
        if j < m && weights[i][j] > 0.0 {
            out[i] = Some(j);
            total += weights[i][j];
        }
    }
    (total, out)
}

/// Brute-force optimal matching for tiny instances (test oracle).
#[cfg(test)]
fn brute_force(weights: &[Vec<f64>]) -> f64 {
    let _n = weights.len();
    let m = weights.first().map_or(0, Vec::len);
    fn rec(weights: &[Vec<f64>], row: usize, used: &mut Vec<bool>) -> f64 {
        if row == weights.len() {
            return 0.0;
        }
        // Skip this row entirely, or match it to any free column.
        let mut best = rec(weights, row + 1, used);
        for j in 0..used.len() {
            if !used[j] {
                used[j] = true;
                best = best.max(weights[row][j] + rec(weights, row + 1, used));
                used[j] = false;
            }
        }
        best
    }
    let mut used = vec![false; m];
    rec(weights, 0, &mut used)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_square_case() {
        let w = vec![vec![3.0, 1.0], vec![1.0, 3.0]];
        let (total, a) = max_weight_matching(&w);
        assert_eq!(total, 6.0);
        assert_eq!(a, vec![Some(0), Some(1)]);
    }

    #[test]
    fn anti_greedy_case() {
        // Greedy picks (0,0)=5 then (1,1)=1: total 6; optimal is 4+4=8.
        let w = vec![vec![5.0, 4.0], vec![4.0, 1.0]];
        let (total, a) = max_weight_matching(&w);
        assert_eq!(total, 8.0);
        assert_eq!(a, vec![Some(1), Some(0)]);
    }

    #[test]
    fn rectangular_more_rows() {
        let w = vec![vec![2.0], vec![5.0], vec![3.0]];
        let (total, a) = max_weight_matching(&w);
        assert_eq!(total, 5.0);
        assert_eq!(a, vec![None, Some(0), None]);
    }

    #[test]
    fn rectangular_more_cols() {
        let w = vec![vec![1.0, 9.0, 2.0]];
        let (total, a) = max_weight_matching(&w);
        assert_eq!(total, 9.0);
        assert_eq!(a, vec![Some(1)]);
    }

    #[test]
    fn empty_inputs() {
        assert_eq!(max_weight_matching(&[]).0, 0.0);
        let (t, a) = max_weight_matching(&[vec![], vec![]]);
        assert_eq!(t, 0.0);
        assert_eq!(a, vec![None, None]);
    }

    #[test]
    fn zero_weights_stay_unmatched() {
        let w = vec![vec![0.0, 0.0], vec![0.0, 7.0]];
        let (total, a) = max_weight_matching(&w);
        assert_eq!(total, 7.0);
        assert_eq!(a[0], None);
        assert_eq!(a[1], Some(1));
    }

    #[test]
    fn matches_brute_force_on_random_instances() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(31);
        for trial in 0..50 {
            let n = rng.gen_range(1..6);
            let m = rng.gen_range(1..6);
            let w: Vec<Vec<f64>> = (0..n)
                .map(|_| (0..m).map(|_| (rng.gen::<f64>() * 10.0).round()).collect())
                .collect();
            let (total, assignment) = max_weight_matching(&w);
            let expected = brute_force(&w);
            assert!(
                (total - expected).abs() < 1e-9,
                "trial {trial}: got {total}, optimal {expected}, w={w:?}"
            );
            // Assignment must be consistent with the reported total.
            let mut sum = 0.0;
            let mut used = std::collections::HashSet::new();
            for (i, a) in assignment.iter().enumerate() {
                if let Some(j) = a {
                    assert!(used.insert(*j), "column {j} used twice");
                    sum += w[i][*j];
                }
            }
            assert!((sum - total).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_weights() {
        let _ = max_weight_matching(&[vec![-1.0]]);
    }
}
