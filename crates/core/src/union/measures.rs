//! Attribute-unionability measures (TUS; Nargesian et al., VLDB 2018).
//!
//! TUS scores how likely two attributes draw from the same domain with
//! three signals — set overlap, ontology classes, and word embeddings —
//! and takes the best-evidence ensemble. We mirror that trio:
//!
//! * **Syntactic**: Jaccard of the value token sets.
//! * **Semantic**: cosine of [`DomainEmbedder`] column vectors (the
//!   ontology-class signal; our registry plays the ontology).
//! * **Natural language**: cosine of [`NGramEmbedder`] column vectors
//!   (the distributional word-vector signal).
//! * **Ensemble**: the maximum of the three (TUS's goodness takes the
//!   strongest evidence).

use serde::{Deserialize, Serialize};
use td_embed::column::embed_column;
use td_embed::model::{DomainEmbedder, NGramEmbedder};
use td_embed::vector::cosine;
use td_table::Column;

/// Which unionability measure to use (the E04 ablation axis).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnionMeasure {
    /// Set-overlap (Jaccard) only.
    Syntactic,
    /// Domain-embedding cosine only.
    Semantic,
    /// N-gram-embedding cosine only.
    NaturalLanguage,
    /// Max of the three.
    Ensemble,
}

/// Precomputed per-column evidence for unionability scoring.
#[derive(Debug, Clone)]
pub struct ColumnEvidence {
    /// Distinct value tokens.
    pub tokens: std::collections::HashSet<String>,
    /// Domain-embedding column vector.
    pub semantic: Vec<f32>,
    /// N-gram-embedding column vector.
    pub nl: Vec<f32>,
}

/// Shared measure context: the two embedding models plus sampling budget.
#[derive(Clone)]
pub struct MeasureContext {
    /// Ontology-like embedder.
    pub domain_emb: DomainEmbedder,
    /// Distributional embedder.
    pub ngram_emb: NGramEmbedder,
    /// Distinct values sampled per column for the embeddings.
    pub sample: usize,
}

impl MeasureContext {
    /// Build the evidence for one column.
    #[must_use]
    pub fn evidence(&self, column: &Column) -> ColumnEvidence {
        evidence_with(&self.domain_emb, &self.ngram_emb, self.sample, column)
    }
}

/// Build the evidence for one column from borrowed embedders (lets
/// callers that only hold shared models avoid cloning them per table).
pub(crate) fn evidence_with(
    domain_emb: &DomainEmbedder,
    ngram_emb: &NGramEmbedder,
    sample: usize,
    column: &Column,
) -> ColumnEvidence {
    ColumnEvidence {
        tokens: column.token_set(),
        semantic: embed_column(domain_emb, column, sample),
        nl: embed_column(ngram_emb, column, sample),
    }
}

/// Jaccard of two token sets.
#[must_use]
pub fn token_jaccard(
    a: &std::collections::HashSet<String>,
    b: &std::collections::HashSet<String>,
) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 0.0;
    }
    let inter = a.intersection(b).count();
    let union = a.len() + b.len() - inter;
    inter as f64 / union.max(1) as f64
}

/// Attribute unionability of two columns under a measure, in `[0, 1]`.
#[must_use]
pub fn attribute_unionability(
    a: &ColumnEvidence,
    b: &ColumnEvidence,
    measure: UnionMeasure,
) -> f64 {
    let syn = || token_jaccard(&a.tokens, &b.tokens);
    let sem = || f64::from(cosine(&a.semantic, &b.semantic)).max(0.0);
    let nl = || f64::from(cosine(&a.nl, &b.nl)).max(0.0);
    match measure {
        UnionMeasure::Syntactic => syn(),
        UnionMeasure::Semantic => sem(),
        UnionMeasure::NaturalLanguage => nl(),
        UnionMeasure::Ensemble => syn().max(sem()).max(nl()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::domains::DomainRegistry;

    fn ctx(r: &DomainRegistry) -> MeasureContext {
        MeasureContext {
            domain_emb: DomainEmbedder::from_registry(r, 2_000, 64, 0.4, 3),
            ngram_emb: NGramEmbedder::new(64, 3, 3),
            sample: 64,
        }
    }

    fn col(r: &DomainRegistry, name: &str, range: std::ops::Range<u64>) -> Column {
        let d = r.id(name).unwrap();
        Column::new(name, range.map(|i| r.value(d, i)).collect())
    }

    #[test]
    fn syntactic_needs_overlap() {
        let r = DomainRegistry::standard();
        let c = ctx(&r);
        let a = c.evidence(&col(&r, "city", 0..50));
        let b = c.evidence(&col(&r, "city", 25..75)); // 50% overlap
        let d = c.evidence(&col(&r, "city", 1000..1050)); // disjoint
        let sab = attribute_unionability(&a, &b, UnionMeasure::Syntactic);
        let sad = attribute_unionability(&a, &d, UnionMeasure::Syntactic);
        assert!((sab - 1.0 / 3.0).abs() < 1e-9, "jaccard {sab}");
        assert_eq!(sad, 0.0);
    }

    #[test]
    fn semantic_survives_disjoint_slices_of_one_domain() {
        // The TUS motivation: same domain, zero overlap — syntactic fails,
        // semantic succeeds.
        let r = DomainRegistry::standard();
        let c = ctx(&r);
        let a = c.evidence(&col(&r, "city", 0..50));
        let d = c.evidence(&col(&r, "city", 1000..1050));
        let sem = attribute_unionability(&a, &d, UnionMeasure::Semantic);
        assert!(sem > 0.8, "semantic {sem}");
        let syn = attribute_unionability(&a, &d, UnionMeasure::Syntactic);
        assert_eq!(syn, 0.0);
    }

    #[test]
    fn semantic_separates_domains() {
        let r = DomainRegistry::standard();
        let c = ctx(&r);
        let a = c.evidence(&col(&r, "city", 0..50));
        let g = c.evidence(&col(&r, "gene", 0..50));
        let sem = attribute_unionability(&a, &g, UnionMeasure::Semantic);
        assert!(sem < 0.4, "semantic across domains {sem}");
    }

    #[test]
    fn ensemble_takes_best_evidence() {
        let r = DomainRegistry::standard();
        let c = ctx(&r);
        let a = c.evidence(&col(&r, "city", 0..50));
        let d = c.evidence(&col(&r, "city", 1000..1050));
        let e = attribute_unionability(&a, &d, UnionMeasure::Ensemble);
        let best = [
            attribute_unionability(&a, &d, UnionMeasure::Syntactic),
            attribute_unionability(&a, &d, UnionMeasure::Semantic),
            attribute_unionability(&a, &d, UnionMeasure::NaturalLanguage),
        ]
        .into_iter()
        .fold(0.0f64, f64::max);
        assert_eq!(e, best);
    }

    #[test]
    fn measures_are_symmetric() {
        let r = DomainRegistry::standard();
        let c = ctx(&r);
        let a = c.evidence(&col(&r, "city", 0..40));
        let b = c.evidence(&col(&r, "country", 0..40));
        for m in [
            UnionMeasure::Syntactic,
            UnionMeasure::Semantic,
            UnionMeasure::NaturalLanguage,
            UnionMeasure::Ensemble,
        ] {
            let ab = attribute_unionability(&a, &b, m);
            let ba = attribute_unionability(&b, &a, m);
            assert!((ab - ba).abs() < 1e-6, "{m:?} asymmetric");
        }
    }

    #[test]
    fn empty_columns_score_zero() {
        let r = DomainRegistry::standard();
        let c = ctx(&r);
        let e = c.evidence(&Column::new("e", vec![]));
        let a = c.evidence(&col(&r, "city", 0..10));
        for m in [
            UnionMeasure::Syntactic,
            UnionMeasure::Semantic,
            UnionMeasure::NaturalLanguage,
            UnionMeasure::Ensemble,
        ] {
            assert_eq!(attribute_unionability(&e, &a, m), 0.0, "{m:?}");
        }
    }
}
