//! Unionable table search (tutorial §2.5): the TUS → SANTOS → Starmie
//! progression.
//!
//! | Module | System | Idea |
//! |---|---|---|
//! | [`measures`] | TUS | attribute unionability (syntactic/semantic/NL) |
//! | [`matching`] | — | Hungarian aggregation of column scores |
//! | [`tus`] | TUS | ensemble measures + bipartite alignment |
//! | [`santos`] | SANTOS | KB relationship triples kill same-domain decoys |
//! | [`starmie`] | Starmie | contextual column embeddings + vector index |
//! | [`hybrid`] | §3 challenge | KB evidence first, embeddings as fallback |

pub mod hybrid;
pub mod matching;
pub mod measures;
pub mod santos;
pub mod starmie;
pub mod tus;

pub use hybrid::{HybridEvidence, HybridHit, HybridUnionSearch};
pub use matching::max_weight_matching;
pub use measures::{attribute_unionability, ColumnEvidence, MeasureContext, UnionMeasure};
pub use santos::{SantosConfig, SantosSearch, TableSignature};
pub use starmie::{StarmieConfig, StarmieSearch, VectorBackend};
pub use tus::TusSearch;
