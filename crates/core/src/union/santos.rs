//! Relationship-based semantic union search (SANTOS; Khatiwada et al.,
//! SIGMOD 2023; tutorial §2.5).
//!
//! Column-level unionability accepts tables whose columns merely share
//! domains — even when the *relationship between the columns* differs
//! (born-in vs died-in). SANTOS annotates each table's column pairs with
//! KB relations and scores candidates by shared `(subject type, relation,
//! object type)` triples, cutting exactly those false positives. The
//! column-only score is kept as the baseline the experiment (E05)
//! contrasts against.

use crate::segment::{live_entries, ComponentSegment, IndexComponent, PipelineContext};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashSet};
use td_index::topk::TopK;
use td_table::gen::domains::DomainId;
use td_table::{DataLake, Table, TableId};
use td_understand::annotate::{annotate_table, AnnotateConfig};
use td_understand::kb::KnowledgeBase;

/// The semantic signature SANTOS compares: column types and relationship
/// triples.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TableSignature {
    /// Annotated column types (deduplicated).
    pub types: HashSet<DomainId>,
    /// `(subject type, relation, object type)` triples.
    pub triples: HashSet<(DomainId, u32, DomainId)>,
}

/// How the candidate score mixes triple and type evidence.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct SantosConfig {
    /// Weight of the relationship-triple containment (the SANTOS signal).
    pub triple_weight: f64,
    /// Weight of the column-type containment (the column-only signal).
    pub type_weight: f64,
    /// Annotation thresholds.
    pub annotate: AnnotateConfig,
}

impl Default for SantosConfig {
    fn default() -> Self {
        SantosConfig {
            triple_weight: 0.7,
            type_weight: 0.3,
            annotate: AnnotateConfig::default(),
        }
    }
}

/// SANTOS-style union search over KB-annotated tables.
pub struct SantosSearch {
    kb: KnowledgeBase,
    cfg: SantosConfig,
    signatures: Vec<(TableId, TableSignature)>,
}

/// Containment of set `a` in set `b` (`|a ∩ b| / |a|`, 0 for empty `a`).
fn containment<T: Eq + std::hash::Hash>(a: &HashSet<T>, b: &HashSet<T>) -> f64 {
    if a.is_empty() {
        return 0.0;
    }
    a.iter().filter(|x| b.contains(x)).count() as f64 / a.len() as f64
}

impl SantosSearch {
    /// Annotate every lake table offline.
    #[must_use]
    pub fn build(lake: &DataLake, kb: KnowledgeBase, cfg: SantosConfig) -> Self {
        let signatures = lake
            .iter()
            .map(|(id, t)| (id, Self::signature_of(t, &kb, &cfg)))
            .collect();
        SantosSearch {
            kb,
            cfg,
            signatures,
        }
    }

    /// The semantic signature of one table.
    ///
    /// Ambiguous columns carry several candidate types (homographs); the
    /// signature keeps them all and expands relation triples over every
    /// candidate combination, so two tables annotated with different
    /// tie-breaks still share their true triples.
    #[must_use]
    pub fn signature_of(table: &Table, kb: &KnowledgeBase, cfg: &SantosConfig) -> TableSignature {
        let ann = annotate_table(table, kb, &cfg.annotate);
        let types: HashSet<DomainId> = ann
            .column_types
            .iter()
            .flat_map(|cands| cands.iter().map(|a| a.ty))
            .collect();
        let mut triples = HashSet::new();
        for rel in &ann.relations {
            for st in &ann.column_types[rel.subject] {
                for ot in &ann.column_types[rel.object] {
                    triples.insert((st.ty, rel.relation, ot.ty));
                }
            }
        }
        TableSignature { types, triples }
    }

    /// Number of annotated tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.signatures.len()
    }

    /// Assemble from per-table signatures in ascending id order.
    fn assemble(
        kb: KnowledgeBase,
        cfg: SantosConfig,
        signatures: Vec<(TableId, TableSignature)>,
    ) -> Self {
        SantosSearch {
            kb,
            cfg,
            signatures,
        }
    }

    /// The knowledge base this search annotates against.
    #[must_use]
    pub fn kb_ref(&self) -> &KnowledgeBase {
        &self.kb
    }

    /// The precomputed signature of an annotated lake table.
    #[must_use]
    pub fn signature(&self, table: TableId) -> Option<&TableSignature> {
        self.signatures
            .iter()
            .find(|(id, _)| *id == table)
            .map(|(_, s)| s)
    }

    /// True if no tables were annotated.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.signatures.is_empty()
    }

    /// SANTOS score: weighted containment of query triples and types in
    /// the candidate.
    #[must_use]
    pub fn score(&self, query: &TableSignature, candidate: &TableSignature) -> f64 {
        self.cfg.triple_weight * containment(&query.triples, &candidate.triples)
            + self.cfg.type_weight * containment(&query.types, &candidate.types)
    }

    /// Column-only baseline score (types, ignoring relationships).
    #[must_use]
    pub fn score_column_only(&self, query: &TableSignature, candidate: &TableSignature) -> f64 {
        containment(&query.types, &candidate.types)
    }

    /// Top-k by the SANTOS (relationship-aware) score.
    #[must_use]
    pub fn search(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        self.search_impl(query, k, false)
    }

    /// Top-k by the column-only baseline.
    #[must_use]
    pub fn search_column_only(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        self.search_impl(query, k, true)
    }

    fn search_impl(&self, query: &Table, k: usize, column_only: bool) -> Vec<(TableId, f64)> {
        let _probe = td_obs::trace::probe("probe.santos");
        let qsig = Self::signature_of(query, &self.kb, &self.cfg);
        let mut topk = TopK::new(k.max(1));
        for (i, (_, sig)) in self.signatures.iter().enumerate() {
            let s = if column_only {
                self.score_column_only(&qsig, sig)
            } else {
                self.score(&qsig, sig)
            };
            topk.push(s, i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, i)| (self.signatures[i as usize].0, s))
            .collect()
    }
}

impl IndexComponent for SantosSearch {
    /// Per table: the KB-annotated semantic signature.
    type Artifact = TableSignature;
    type Query<'q> = &'q Table;
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        Self::signature_of(table, &ctx.kb, &ctx.santos)
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        Self::assemble(
            ctx.kb.clone(),
            ctx.santos,
            live_entries(segments, tombstones),
        )
    }

    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits {
        self.search(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::precision_at_k;
    use td_table::gen::bench_union::{CandidateKind, UnionBenchConfig, UnionBenchmark};
    use td_understand::kb::KbConfig;

    fn setup() -> (UnionBenchmark, SantosSearch) {
        let b = UnionBenchmark::generate(&UnionBenchConfig {
            num_queries: 3,
            positives: 5,
            partials: 0,
            relation_decoys: 5,
            homograph_decoys: 0,
            noise: 10,
            rows: 80,
            key_slice: 150,
            homograph_range: 1,
            ..UnionBenchConfig::default()
        });
        let kb = KnowledgeBase::build(
            &b.registry,
            &b.relations,
            &KbConfig {
                vocab_per_domain: 2_048,
                facts_per_relation: 2_048,
                type_coverage: 0.95,
                relation_coverage: 0.9,
                ..Default::default()
            },
        );
        let s = SantosSearch::build(&b.lake, kb, SantosConfig::default());
        (b, s)
    }

    #[test]
    fn relationship_score_rejects_relation_decoys() {
        let (b, s) = setup();
        for q in 0..b.queries.len() {
            let results: Vec<TableId> = s
                .search(&b.queries[q], 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            let relevant: std::collections::HashSet<TableId> =
                b.tables_with_grade(q, 2).into_iter().collect();
            let p = precision_at_k(&results, &relevant, 5);
            assert!(p >= 0.8, "query {q}: SANTOS P@5 = {p}");
        }
    }

    #[test]
    fn column_only_baseline_is_fooled_by_relation_decoys() {
        let (b, s) = setup();
        // Decoys share all column types with the query: the column-only
        // score cannot separate them from true positives.
        let q = 0;
        let qsig = SantosSearch::signature_of(&b.queries[q], &s.kb, &s.cfg);
        let decoys: Vec<TableId> = b
            .truth_for(q)
            .into_iter()
            .filter(|t| t.kind == CandidateKind::RelationDecoy)
            .map(|t| t.table)
            .collect();
        let mut fooled = 0;
        for d in &decoys {
            let dsig = s
                .signatures
                .iter()
                .find(|(id, _)| id == d)
                .map(|(_, sig)| sig)
                .unwrap();
            let col_score = s.score_column_only(&qsig, dsig);
            let rel_score = s.score(&qsig, dsig);
            if col_score > 0.8 {
                fooled += 1;
            }
            // The relationship-aware score must punish the decoy.
            assert!(
                rel_score < col_score,
                "decoy {d}: rel {rel_score} !< col {col_score}"
            );
        }
        assert!(fooled > 0, "decoys failed to fool the column-only score");
    }

    #[test]
    fn positives_carry_query_triples() {
        let (b, s) = setup();
        let qsig = SantosSearch::signature_of(&b.queries[0], &s.kb, &s.cfg);
        assert!(!qsig.triples.is_empty(), "query has no annotated triples");
        let pos = b.tables_with_grade(0, 2);
        let mut with_shared = 0;
        for p in &pos {
            let sig = s
                .signatures
                .iter()
                .find(|(id, _)| id == p)
                .map(|(_, sig)| sig)
                .unwrap();
            if qsig.triples.intersection(&sig.triples).count() > 0 {
                with_shared += 1;
            }
        }
        assert!(
            with_shared * 2 >= pos.len(),
            "only {with_shared}/{} positives share triples",
            pos.len()
        );
    }

    #[test]
    fn scores_are_bounded() {
        let (b, s) = setup();
        for (_, score) in s.search(&b.queries[0], 10) {
            assert!((0.0..=1.0 + 1e-9).contains(&score));
        }
    }
}
