//! Contextualized-embedding union search (Starmie; Fan et al., 2022;
//! tutorial §2.5).
//!
//! Starmie encodes each column *in the context of its table* and retrieves
//! unionable tables through a vector index over column embeddings, then
//! aggregates column similarities into table scores. Context is the
//! point: a homograph-heavy column is ambiguous on its own, but the rest
//! of its table pins down its sense, suppressing the false positives a
//! context-free encoder admits (experiment E06). The vector-index backend
//! is pluggable (exact flat scan vs HNSW) to expose the recall/latency
//! trade-off (experiments E06/E17).

use crate::segment::{live_entries, ComponentSegment, IndexComponent, PipelineContext};
use crate::union::matching::max_weight_matching;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use td_embed::column::ContextualEncoder;
use td_embed::model::{DomainEmbedder, Embedder};
use td_embed::vector::{cosine, dot, normalize};
use td_index::flat::FlatIndex;
use td_index::hnsw::{Hnsw, HnswParams};
use td_index::topk::TopK;
use td_table::{ColumnRef, DataLake, Table, TableId};

/// Vector-index backend for column retrieval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VectorBackend {
    /// Exact brute-force scan.
    Flat,
    /// Approximate HNSW graph.
    Hnsw,
}

/// Starmie configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct StarmieConfig {
    /// Column encoder (set `alpha = 0` for the context-free ablation).
    pub encoder: ContextualEncoder,
    /// Index backend.
    pub backend: VectorBackend,
    /// Columns retrieved per query column before table aggregation.
    pub fanout: usize,
    /// HNSW beam width at query time.
    pub ef_search: usize,
}

impl Default for StarmieConfig {
    fn default() -> Self {
        StarmieConfig {
            encoder: ContextualEncoder::default(),
            backend: VectorBackend::Hnsw,
            fanout: 32,
            ef_search: 64,
        }
    }
}

enum Backend {
    Flat(FlatIndex),
    Hnsw(Box<Hnsw>),
}

/// Starmie-style union search.
pub struct StarmieSearch<E: Embedder> {
    embedder: E,
    cfg: StarmieConfig,
    refs: Vec<ColumnRef>,
    vectors: Vec<Vec<f32>>,
    /// Per table: the range of `refs` indices belonging to it.
    table_cols: Vec<(TableId, std::ops::Range<usize>)>,
    backend: Backend,
}

impl<E: Embedder> StarmieSearch<E> {
    /// Encode every table's columns (contextually) and index them.
    #[must_use]
    pub fn build(lake: &DataLake, embedder: E, cfg: StarmieConfig) -> Self {
        let items = lake
            .iter()
            .map(|(id, t)| {
                (
                    id,
                    cfg.encoder
                        .encode_table(&embedder, t)
                        .into_iter()
                        .map(|mut v| {
                            normalize(&mut v);
                            v
                        })
                        .collect(),
                )
            })
            .collect();
        Self::assemble(embedder, cfg, items)
    }

    /// Assemble from per-table normalized column vectors in ascending id
    /// order. The backend inserts vectors in exactly this order (HNSW is
    /// insertion-order sensitive), so batch and merge paths index
    /// identically.
    fn assemble(embedder: E, cfg: StarmieConfig, items: Vec<(TableId, Vec<Vec<f32>>)>) -> Self {
        let mut refs = Vec::new();
        let mut vectors: Vec<Vec<f32>> = Vec::new();
        let mut table_cols = Vec::with_capacity(items.len());
        for (id, encoded) in items {
            let start = refs.len();
            for (ci, v) in encoded.into_iter().enumerate() {
                refs.push(ColumnRef::new(id, ci));
                vectors.push(v);
            }
            table_cols.push((id, start..refs.len()));
        }
        let backend = match cfg.backend {
            VectorBackend::Flat => {
                let mut f = FlatIndex::new(embedder.dim());
                for v in &vectors {
                    f.insert(v.clone());
                }
                Backend::Flat(f)
            }
            VectorBackend::Hnsw => {
                let mut h = Hnsw::new(embedder.dim(), HnswParams::default());
                for v in &vectors {
                    h.insert(v.clone());
                }
                Backend::Hnsw(Box::new(h))
            }
        };
        StarmieSearch {
            embedder,
            cfg,
            refs,
            vectors,
            table_cols,
            backend,
        }
    }

    /// Number of indexed columns.
    #[must_use]
    pub fn num_columns(&self) -> usize {
        self.refs.len()
    }

    /// Encode a query table's columns the same way the lake was encoded.
    #[must_use]
    pub fn encode_query(&self, query: &Table) -> Vec<Vec<f32>> {
        self.cfg
            .encoder
            .encode_table(&self.embedder, query)
            .into_iter()
            .map(|mut v| {
                normalize(&mut v);
                v
            })
            .collect()
    }

    fn retrieve_scored(&self, v: &[f32], k: usize) -> Vec<(u32, f32)> {
        match &self.backend {
            Backend::Flat(f) => f.search(v, k),
            Backend::Hnsw(h) => h.search(v, k, self.cfg.ef_search.max(k)),
        }
    }

    fn retrieve(&self, v: &[f32], k: usize) -> Vec<u32> {
        self.retrieve_scored(v, k)
            .into_iter()
            .map(|(i, _)| i)
            .collect()
    }

    /// Per-query-column backend retrieval with similarity scores — phase
    /// one of distributed semantic union search. Each inner list is this
    /// index's top-`fanout` columns for one query column, in backend
    /// rank order. A coordinator merges per-shard lists under (similarity
    /// descending, column ascending) and truncates to `fanout` to
    /// reproduce the whole-lake candidate window; with the `Flat`
    /// backend that reproduction is exact, with `Hnsw` the merged window
    /// is at least as complete as any single shard's.
    #[must_use]
    pub fn candidate_columns(&self, query: &Table) -> Vec<Vec<(ColumnRef, f32)>> {
        let qvecs = self.encode_query(query);
        qvecs
            .iter()
            .map(|qv| {
                self.retrieve_scored(qv, self.cfg.fanout)
                    .into_iter()
                    .map(|(cid, sim)| (self.refs[cid as usize], sim))
                    .collect()
            })
            .collect()
    }

    /// Score and rank exactly the given candidate tables — phase two of
    /// distributed semantic union search. Tables not indexed here are
    /// ignored, so a coordinator can broadcast the merged candidate set
    /// to every shard. With `tables` equal to the candidate tables
    /// [`Self::search`] derives from its own retrieval, this is
    /// bit-identical to `search` (the per-table score depends only on
    /// the query and that table's own vectors).
    #[must_use]
    pub fn search_with_candidates(
        &self,
        query: &Table,
        k: usize,
        tables: &BTreeSet<TableId>,
    ) -> Vec<(TableId, f64)> {
        let qvecs = self.encode_query(query);
        if qvecs.is_empty() {
            return Vec::new();
        }
        let slots = self
            .table_cols
            .iter()
            .enumerate()
            .filter(|(_, (id, _))| tables.contains(id))
            .map(|(slot, _)| slot)
            .collect();
        self.score_slots(&qvecs, slots, k)
    }

    /// Rank the given table slots by bipartite-matching similarity.
    /// `slots` must be ascending for deterministic tie-breaking.
    fn score_slots(&self, qvecs: &[Vec<f32>], slots: Vec<usize>, k: usize) -> Vec<(TableId, f64)> {
        let mut topk = TopK::new(k.max(1));
        for slot in slots {
            let (_, range) = &self.table_cols[slot];
            let weights: Vec<Vec<f64>> = qvecs
                .iter()
                .map(|q| {
                    range
                        .clone()
                        .map(|ci| f64::from(cosine(q, &self.vectors[ci])).max(0.0))
                        .collect()
                })
                .collect();
            let (total, _) = max_weight_matching(&weights);
            topk.push(total / qvecs.len() as f64, slot as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, slot)| (self.table_cols[slot as usize].0, s))
            .collect()
    }

    /// Top-k unionable tables: per-query-column retrieval, then bipartite
    /// aggregation of cosine similarities over candidate tables.
    #[must_use]
    pub fn search(&self, query: &Table, k: usize) -> Vec<(TableId, f64)> {
        let _probe = td_obs::trace::probe("probe.starmie");
        let qvecs = self.encode_query(query);
        if qvecs.is_empty() {
            return Vec::new();
        }
        // Gather candidate tables from per-column retrieval.
        let mut candidates: std::collections::HashSet<usize> = std::collections::HashSet::new();
        for qv in &qvecs {
            for cid in self.retrieve(qv, self.cfg.fanout) {
                let col = self.refs[cid as usize];
                // Find the table slot (table_cols is in table order; a
                // retrieved column always belongs to an indexed table, so
                // the lookup cannot miss — but stay panic-free).
                let Ok(slot) = self
                    .table_cols
                    .binary_search_by(|(id, _)| id.cmp(&col.table))
                else {
                    continue;
                };
                candidates.insert(slot);
            }
        }
        // Sorted drain: candidate sets come out of a HashSet — sort for
        // deterministic scoring order.
        let mut candidates: Vec<usize> = candidates.into_iter().collect();
        candidates.sort_unstable();
        self.score_slots(&qvecs, candidates, k)
    }

    /// Column-centric search: unionable candidates for *one column* of the
    /// query table, encoded in the query table's context. This is where
    /// contextualization earns its keep: an ambiguous (homograph) query
    /// column retrieves its own spelling-twins under a context-free
    /// encoder, while the table context pins down the intended sense.
    #[must_use]
    pub fn search_column(&self, query: &Table, col: usize, k: usize) -> Vec<(ColumnRef, f32)> {
        let qvecs = self.encode_query(query);
        let Some(qv) = qvecs.get(col) else {
            return Vec::new();
        };
        self.retrieve(qv, k)
            .into_iter()
            .map(|cid| {
                let r = self.refs[cid as usize];
                (r, cosine(qv, &self.vectors[cid as usize]))
            })
            .collect()
    }

    /// Exact best-cosine neighbors of one column vector (diagnostics).
    #[must_use]
    pub fn nearest_columns(&self, v: &[f32], k: usize) -> Vec<(ColumnRef, f32)> {
        let mut topk = TopK::new(k.max(1));
        for (i, cv) in self.vectors.iter().enumerate() {
            topk.push(f64::from(dot(cv, v)), i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, i)| (self.refs[i as usize], s as f32))
            .collect()
    }
}

impl IndexComponent for StarmieSearch<DomainEmbedder> {
    /// Per table: the contextually-encoded, normalized column vectors.
    /// Encoding is the expensive part; the merge only re-indexes vectors.
    type Artifact = Vec<Vec<f32>>;
    type Query<'q> = &'q Table;
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        ctx.cfg
            .starmie
            .encoder
            .encode_table(&ctx.domain_emb, table)
            .into_iter()
            .map(|mut v| {
                normalize(&mut v);
                v
            })
            .collect()
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        Self::assemble(
            ctx.domain_emb.clone(),
            ctx.cfg.starmie,
            live_entries(segments, tombstones),
        )
    }

    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits {
        self.search(query, k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mean_average_precision, precision_at_k};
    use std::collections::HashSet;
    use td_embed::model::DomainEmbedder;
    use td_table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};

    fn bench() -> UnionBenchmark {
        UnionBenchmark::generate(&UnionBenchConfig {
            num_queries: 3,
            positives: 5,
            partials: 0,
            relation_decoys: 0,
            homograph_decoys: 5,
            noise: 15,
            rows: 80,
            key_slice: 150,
            homograph_range: 400,
            ..UnionBenchConfig::default()
        })
    }

    fn search(
        b: &UnionBenchmark,
        alpha: f32,
        backend: VectorBackend,
    ) -> StarmieSearch<DomainEmbedder> {
        let emb = DomainEmbedder::from_registry(&b.registry, 2_048, 64, 0.4, 3);
        StarmieSearch::build(
            &b.lake,
            emb,
            StarmieConfig {
                encoder: ContextualEncoder { alpha, sample: 48 },
                backend,
                ..Default::default()
            },
        )
    }

    fn runs(
        b: &UnionBenchmark,
        s: &StarmieSearch<DomainEmbedder>,
        k: usize,
    ) -> Vec<(Vec<TableId>, HashSet<TableId>)> {
        (0..b.queries.len())
            .map(|q| {
                let res: Vec<TableId> = s
                    .search(&b.queries[q], k)
                    .into_iter()
                    .map(|(t, _)| t)
                    .collect();
                let rel: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
                (res, rel)
            })
            .collect()
    }

    /// Column-level precision of retrieving positive-table columns over
    /// homograph-decoy columns for the (ambiguous) query key column.
    fn column_precision(
        s: &StarmieSearch<DomainEmbedder>,
        b: &UnionBenchmark,
        q: usize,
        k: usize,
    ) -> f64 {
        use td_table::gen::bench_union::CandidateKind;
        let pos: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
        let decoys: HashSet<TableId> = b
            .truth_for(q)
            .into_iter()
            .filter(|t| t.kind == CandidateKind::HomographDecoy)
            .map(|t| t.table)
            .collect();
        let _ = decoys; // decoys occupy top ranks iff context fails
                        // Query column 0 is the key column (queries are unshuffled).
        let hits = s.search_column(&b.queries[q], 0, k);
        let good = hits
            .iter()
            .take(k)
            .filter(|(c, _)| pos.contains(&c.table))
            .count();
        good as f64 / k as f64
    }

    #[test]
    fn contextual_encoding_beats_context_free_on_homographs() {
        // The query key column's spellings are shared with another domain
        // (homographs), so a context-free encoder cannot tell positive key
        // columns from decoy columns; the table context can.
        let b = bench();
        let ctx = search(&b, 0.5, VectorBackend::Flat);
        let cf = search(&b, 0.0, VectorBackend::Flat);
        let avg = |s: &StarmieSearch<DomainEmbedder>| {
            (0..b.queries.len())
                .map(|q| column_precision(s, &b, q, 5))
                .sum::<f64>()
                / b.queries.len() as f64
        };
        let p_ctx = avg(&ctx);
        let p_cf = avg(&cf);
        assert!(
            p_ctx > p_cf + 0.1,
            "contextual precision {p_ctx} should clearly beat context-free {p_cf}"
        );
        assert!(p_ctx > 0.75, "contextual precision {p_ctx}");
        assert!(p_cf < 0.85, "context-free unexpectedly strong: {p_cf}");
    }

    #[test]
    fn finds_positives_with_high_precision() {
        let b = bench();
        let s = search(&b, 0.5, VectorBackend::Flat);
        for q in 0..b.queries.len() {
            let res: Vec<TableId> = s
                .search(&b.queries[q], 5)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            let rel: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
            let p = precision_at_k(&res, &rel, 5);
            assert!(p >= 0.6, "query {q}: P@5 = {p}");
        }
    }

    #[test]
    fn hnsw_backend_approximates_flat() {
        let b = bench();
        let flat = search(&b, 0.5, VectorBackend::Flat);
        let hnsw = search(&b, 0.5, VectorBackend::Hnsw);
        let map_flat = mean_average_precision(&runs(&b, &flat, 10));
        let map_hnsw = mean_average_precision(&runs(&b, &hnsw, 10));
        assert!(
            map_hnsw >= map_flat - 0.15,
            "HNSW MAP {map_hnsw} far below flat {map_flat}"
        );
    }

    #[test]
    fn empty_query_returns_nothing() {
        let b = bench();
        let s = search(&b, 0.5, VectorBackend::Flat);
        let empty = Table::new("empty", vec![]).unwrap();
        assert!(s.search(&empty, 5).is_empty());
    }

    #[test]
    fn scores_are_sorted_and_bounded() {
        let b = bench();
        let s = search(&b, 0.5, VectorBackend::Flat);
        let res = s.search(&b.queries[0], 10);
        for w in res.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        for (_, score) in &res {
            assert!((0.0..=1.0 + 1e-6).contains(score));
        }
    }
}
