//! Table union search (TUS; Nargesian et al., VLDB 2018; tutorial §2.5).
//!
//! Attribute-level unionability scores are aggregated to a table score by
//! maximum-weight bipartite matching between the query's and candidate's
//! columns, normalized by the query column count — precisely the
//! "alignment then aggregate" recipe of the original system.

use crate::segment::{live_entries, ComponentSegment, IndexComponent, PipelineContext};
use crate::union::matching::max_weight_matching;
use crate::union::measures::{
    attribute_unionability, evidence_with, ColumnEvidence, MeasureContext, UnionMeasure,
};
use std::collections::BTreeSet;
use td_index::topk::TopK;
use td_table::{DataLake, Table, TableId};

/// Table-union search with precomputed per-column evidence.
pub struct TusSearch {
    ctx: MeasureContext,
    tables: Vec<(TableId, Vec<ColumnEvidence>)>,
}

impl TusSearch {
    /// Precompute evidence for every column of the lake.
    #[must_use]
    pub fn build(lake: &DataLake, ctx: MeasureContext) -> Self {
        let tables = lake
            .iter()
            .map(|(id, t)| (id, t.columns.iter().map(|c| ctx.evidence(c)).collect()))
            .collect();
        TusSearch { ctx, tables }
    }

    /// Number of indexed tables.
    #[must_use]
    pub fn len(&self) -> usize {
        self.tables.len()
    }

    /// True if no tables are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.tables.is_empty()
    }

    /// Table-level unionability of a query table against one candidate.
    #[must_use]
    pub fn table_score(
        &self,
        query_ev: &[ColumnEvidence],
        candidate_ev: &[ColumnEvidence],
        measure: UnionMeasure,
    ) -> f64 {
        if query_ev.is_empty() || candidate_ev.is_empty() {
            return 0.0;
        }
        let weights: Vec<Vec<f64>> = query_ev
            .iter()
            .map(|q| {
                candidate_ev
                    .iter()
                    .map(|c| attribute_unionability(q, c, measure))
                    .collect()
            })
            .collect();
        let (total, _) = max_weight_matching(&weights);
        total / query_ev.len() as f64
    }

    /// Evidence for a query table's columns.
    #[must_use]
    pub fn query_evidence(&self, query: &Table) -> Vec<ColumnEvidence> {
        query.columns.iter().map(|c| self.ctx.evidence(c)).collect()
    }

    /// Top-k unionable tables, `(table, score)` descending.
    #[must_use]
    pub fn search(&self, query: &Table, k: usize, measure: UnionMeasure) -> Vec<(TableId, f64)> {
        let _probe = td_obs::trace::probe("probe.tus");
        let qev = self.query_evidence(query);
        let mut topk = TopK::new(k.max(1));
        for (i, (_, ev)) in self.tables.iter().enumerate() {
            topk.push(self.table_score(&qev, ev, measure), i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, i)| (self.tables[i as usize].0, s))
            .collect()
    }
}

impl IndexComponent for TusSearch {
    /// Per column: the precomputed unionability evidence (token set plus
    /// the two embedding vectors).
    type Artifact = Vec<ColumnEvidence>;
    type Query<'q> = &'q Table;
    type Hits = Vec<(TableId, f64)>;

    fn extract(table: &Table, ctx: &PipelineContext) -> Self::Artifact {
        table
            .columns
            .iter()
            .map(|c| evidence_with(&ctx.domain_emb, &ctx.ngram_emb, ctx.cfg.sample, c))
            .collect()
    }

    fn merge(
        segments: &[&ComponentSegment<Self::Artifact>],
        tombstones: &BTreeSet<TableId>,
        ctx: &PipelineContext,
    ) -> Self {
        TusSearch {
            ctx: MeasureContext {
                domain_emb: ctx.domain_emb.clone(),
                ngram_emb: ctx.ngram_emb.clone(),
                sample: ctx.cfg.sample,
            },
            tables: live_entries(segments, tombstones),
        }
    }

    fn search_merged(&self, query: Self::Query<'_>, k: usize) -> Self::Hits {
        self.search(query, k, UnionMeasure::Ensemble)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{mean_average_precision, precision_at_k};
    use std::collections::HashSet;
    use td_embed::model::{DomainEmbedder, NGramEmbedder};
    use td_table::gen::bench_union::{UnionBenchConfig, UnionBenchmark};

    fn bench() -> UnionBenchmark {
        // No relation/homograph decoys: by TUS's column-level definition a
        // same-domains table IS unionable — those decoys are the SANTOS and
        // Starmie experiments respectively (E05, E06).
        UnionBenchmark::generate(&UnionBenchConfig {
            num_queries: 3,
            positives: 5,
            partials: 3,
            relation_decoys: 0,
            homograph_decoys: 0,
            noise: 20,
            rows: 80,
            key_slice: 150,
            homograph_range: 1,
            ..UnionBenchConfig::default()
        })
    }

    fn search(b: &UnionBenchmark) -> TusSearch {
        let ctx = MeasureContext {
            domain_emb: DomainEmbedder::from_registry(&b.registry, 2_048, 64, 0.4, 3),
            ngram_emb: NGramEmbedder::new(64, 3, 3),
            sample: 48,
        };
        TusSearch::build(&b.lake, ctx)
    }

    #[test]
    fn ensemble_finds_the_positives() {
        let b = bench();
        let s = search(&b);
        for q in 0..b.queries.len() {
            let results: Vec<TableId> = s
                .search(&b.queries[q], 5, UnionMeasure::Ensemble)
                .into_iter()
                .map(|(t, _)| t)
                .collect();
            let relevant: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
            let p = precision_at_k(&results, &relevant, 5);
            assert!(p >= 0.8, "query {q}: P@5 = {p}, results {results:?}");
        }
    }

    #[test]
    fn ensemble_beats_syntactic_alone() {
        // Candidates share only ~30% of key values with the query and have
        // shuffled/renamed columns: the syntactic measure underrates them,
        // the ensemble (with the semantic signal) recovers them.
        let b = bench();
        let s = search(&b);
        let runs = |m: UnionMeasure| {
            (0..b.queries.len())
                .map(|q| {
                    let res: Vec<TableId> = s
                        .search(&b.queries[q], 10, m)
                        .into_iter()
                        .map(|(t, _)| t)
                        .collect();
                    let rel: HashSet<TableId> = b.tables_with_grade(q, 2).into_iter().collect();
                    (res, rel)
                })
                .collect::<Vec<_>>()
        };
        let map_ens = mean_average_precision(&runs(UnionMeasure::Ensemble));
        let map_syn = mean_average_precision(&runs(UnionMeasure::Syntactic));
        assert!(
            map_ens >= map_syn,
            "ensemble MAP {map_ens} < syntactic MAP {map_syn}"
        );
        assert!(map_ens > 0.7, "ensemble MAP {map_ens}");
    }

    #[test]
    fn partials_rank_between_positives_and_noise() {
        let b = bench();
        let s = search(&b);
        let results = s.search(&b.queries[0], b.lake.len(), UnionMeasure::Ensemble);
        let rank_of = |t: TableId| results.iter().position(|&(x, _)| x == t).unwrap();
        let positives = b.tables_with_grade(0, 2);
        let partials = b.tables_with_grade(0, 1);
        let avg =
            |ts: &[TableId]| ts.iter().map(|&t| rank_of(t)).sum::<usize>() as f64 / ts.len() as f64;
        let noise_avg = (0..results.len()).sum::<usize>() as f64 / results.len() as f64;
        assert!(
            avg(&positives) < avg(&partials),
            "positives should outrank partials"
        );
        assert!(
            avg(&partials) < noise_avg,
            "partials should outrank average"
        );
    }

    #[test]
    fn scores_are_normalized_by_query_width() {
        let b = bench();
        let s = search(&b);
        for (_, score) in s.search(&b.queries[0], 5, UnionMeasure::Ensemble) {
            assert!((0.0..=1.0 + 1e-9).contains(&score), "score {score}");
        }
    }

    #[test]
    fn self_similarity_is_high() {
        let b = bench();
        let s = search(&b);
        let qev = s.query_evidence(&b.queries[0]);
        let score = s.table_score(&qev, &qev, UnionMeasure::Ensemble);
        assert!(score > 0.95, "self score {score}");
    }
}
