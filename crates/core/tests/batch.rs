//! The batched entry points' core invariant: `search_*_batch` over any
//! workload returns rankings **byte-identical** to calling the
//! one-at-a-time path on each query in order, for all eight search
//! families, on both `DiscoveryPipeline` and `SegmentedPipeline`.
//!
//! The batch layer farms queries out to scoped threads, so this suite is
//! also the proof that per-query probe state (epoch scratch, TopK heaps)
//! never leaks across concurrently-running queries.
//!
//! Comparisons render full outputs (ids and scores) via `Debug`; `Debug`
//! on `f64` prints the shortest round-trip representation, so string
//! equality is bit equality of every score.

use proptest::prelude::*;
use std::sync::OnceLock;
use td_core::{DiscoveryPipeline, PipelineConfig, SegmentedPipeline};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

struct Fixture {
    pipeline: DiscoveryPipeline,
    segmented: SegmentedPipeline,
    queries: Vec<(TableId, Table)>,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (12, 30),
            cols: (2, 4),
            seed: 20260808,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let pipeline = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg);
        let ctx = td_core::segment::PipelineContext::new(&gl.registry, &[], &cfg);
        let mut segmented = SegmentedPipeline::with_context(ctx);
        for (step, (id, t)) in gl.lake.iter().enumerate() {
            segmented.ingest_table(id, t);
            if step % 5 == 4 {
                segmented.seal();
            }
        }
        let queries: Vec<(TableId, Table)> = gl
            .lake
            .iter()
            .take(4)
            .map(|(id, t)| (id, t.clone()))
            .collect();
        Fixture {
            pipeline,
            segmented,
            queries,
        }
    })
}

/// Compare one family's batched answers against the sequential loop on
/// the same pipeline. The `Debug` rendering of the whole `Vec<Vec<..>>`
/// carries every id and every score bit.
macro_rules! assert_batch_matches {
    ($family:literal, $batch:expr, $sequential:expr) => {
        assert_eq!(
            format!("{:?}", $batch),
            format!("{:?}", $sequential),
            "{} batch diverged from sequential",
            $family
        );
    };
}

/// Run every family over `workload` (pairs of query-table index and k)
/// and assert batched == sequential on the given pipeline.
fn check_all_families(
    p: &DiscoveryPipeline,
    queries: &[(TableId, Table)],
    workload: &[(usize, usize)],
) {
    // Keyword: cycle through terms drawn from generated metadata.
    let terms = ["dataset", "sensor", "city", "record"];
    let kw: Vec<(&str, usize)> = workload
        .iter()
        .map(|&(qi, k)| (terms[qi % terms.len()], k))
        .collect();
    assert_batch_matches!(
        "keyword",
        p.search_keyword_batch(&kw),
        kw.iter()
            .map(|&(q, k)| p.search_keyword(q, k))
            .collect::<Vec<_>>()
    );

    // Column families: first column of the selected query table.
    let cols: Vec<(&td_table::Column, usize)> = workload
        .iter()
        .map(|&(qi, k)| (&queries[qi % queries.len()].1.columns[0], k))
        .collect();
    assert_batch_matches!(
        "joinable",
        p.search_joinable_batch(&cols),
        cols.iter()
            .map(|&(c, k)| p.search_joinable(c, k))
            .collect::<Vec<_>>()
    );
    let fuzzy: Vec<(&td_table::Column, f32, usize)> =
        cols.iter().map(|&(c, k)| (c, 0.8, k)).collect();
    assert_batch_matches!(
        "fuzzy",
        p.search_fuzzy_joinable_batch(&fuzzy),
        fuzzy
            .iter()
            .map(|&(c, tau, k)| p.search_fuzzy_joinable(c, tau, k))
            .collect::<Vec<_>>()
    );

    // Table families.
    let tabs: Vec<(&Table, usize)> = workload
        .iter()
        .map(|&(qi, k)| (&queries[qi % queries.len()].1, k))
        .collect();
    assert_batch_matches!(
        "unionable",
        p.search_unionable_batch(&tabs),
        tabs.iter()
            .map(|&(t, k)| p.search_unionable(t, k))
            .collect::<Vec<_>>()
    );
    assert_batch_matches!(
        "starmie",
        p.search_unionable_semantic_batch(&tabs),
        tabs.iter()
            .map(|&(t, k)| p.search_unionable_semantic(t, k))
            .collect::<Vec<_>>()
    );
    assert_batch_matches!(
        "santos",
        p.search_unionable_relationship_batch(&tabs),
        tabs.iter()
            .map(|&(t, k)| p.search_unionable_relationship(t, k))
            .collect::<Vec<_>>()
    );
    let multi: Vec<(&Table, &[usize], usize)> = tabs
        .iter()
        .map(|&(t, k)| (t, &[0usize, 1][..], k))
        .collect();
    assert_batch_matches!(
        "mate",
        p.search_multi_joinable_batch(&multi),
        multi
            .iter()
            .map(|&(t, key_cols, k)| p.search_multi_joinable(t, key_cols, k))
            .collect::<Vec<_>>()
    );

    // Correlated: needs a categorical key and a numeric column.
    let corr: Vec<(&td_table::Column, &td_table::Column, usize)> = workload
        .iter()
        .filter_map(|&(qi, k)| {
            let t = &queries[qi % queries.len()].1;
            let key = t.columns.iter().find(|c| !c.is_numeric())?;
            let num = t.columns.iter().find(|c| c.is_numeric())?;
            Some((key, num, k))
        })
        .collect();
    assert_batch_matches!(
        "correlated",
        p.search_correlated_batch(&corr),
        corr.iter()
            .map(|&(key, num, k)| p.search_correlated(key, num, k))
            .collect::<Vec<_>>()
    );
}

/// Fixed workload spanning batch sizes around the probe-sweep width,
/// duplicate queries, and k values from 1 up past the lake size.
#[test]
fn all_families_batch_matches_sequential() {
    let f = fixture();
    let workload: Vec<(usize, usize)> = (0..9).map(|i| (i % 4, [1, 4, 8, 20][i % 4])).collect();
    check_all_families(&f.pipeline, &f.queries, &workload);
}

/// The segmented pipeline batches against one snapshot; its answers must
/// still equal the one-at-a-time segmented path.
#[test]
fn segmented_batch_matches_sequential() {
    let f = fixture();
    let tabs: Vec<(&Table, usize)> = f.queries.iter().map(|(_, t)| (t, 8)).collect();
    assert_batch_matches!(
        "segmented unionable",
        f.segmented.search_unionable_batch(&tabs),
        tabs.iter()
            .map(|&(t, k)| f.segmented.search_unionable(t, k))
            .collect::<Vec<_>>()
    );
    assert_batch_matches!(
        "segmented starmie",
        f.segmented.search_unionable_semantic_batch(&tabs),
        tabs.iter()
            .map(|&(t, k)| f.segmented.search_unionable_semantic(t, k))
            .collect::<Vec<_>>()
    );
    let kw: Vec<(&str, usize)> = vec![("dataset", 3), ("sensor", 8), ("dataset", 1)];
    assert_batch_matches!(
        "segmented keyword",
        f.segmented.search_keyword_batch(&kw),
        kw.iter()
            .map(|&(q, k)| f.segmented.search_keyword(q, k))
            .collect::<Vec<_>>()
    );
    let cols: Vec<(&td_table::Column, usize)> =
        f.queries.iter().map(|(_, t)| (&t.columns[0], 5)).collect();
    assert_batch_matches!(
        "segmented joinable",
        f.segmented.search_joinable_batch(&cols),
        cols.iter()
            .map(|&(c, k)| f.segmented.search_joinable(c, k))
            .collect::<Vec<_>>()
    );
    let fuzzy: Vec<(&td_table::Column, f32, usize)> =
        cols.iter().map(|&(c, k)| (c, 0.8, k)).collect();
    assert_batch_matches!(
        "segmented fuzzy",
        f.segmented.search_fuzzy_joinable_batch(&fuzzy),
        fuzzy
            .iter()
            .map(|&(c, tau, k)| f.segmented.search_fuzzy_joinable(c, tau, k))
            .collect::<Vec<_>>()
    );
    assert_batch_matches!(
        "segmented santos",
        f.segmented.search_unionable_relationship_batch(&tabs),
        tabs.iter()
            .map(|&(t, k)| f.segmented.search_unionable_relationship(t, k))
            .collect::<Vec<_>>()
    );
    let multi: Vec<(&Table, &[usize], usize)> = tabs
        .iter()
        .map(|&(t, k)| (t, &[0usize, 1][..], k))
        .collect();
    assert_batch_matches!(
        "segmented mate",
        f.segmented.search_multi_joinable_batch(&multi),
        multi
            .iter()
            .map(|&(t, key_cols, k)| f.segmented.search_multi_joinable(t, key_cols, k))
            .collect::<Vec<_>>()
    );
}

/// The shard-plane batch entries (two-phase keyword and semantic, column
/// windows) must also match their sequential counterparts — the
/// distributed coordinator leans on these for its one-fanout batches.
#[test]
fn shard_plane_batch_matches_sequential() {
    let f = fixture();
    let p = &f.pipeline;
    let terms = ["dataset", "sensor", "city"];
    assert_batch_matches!(
        "term stats",
        p.keyword_term_stats_batch(&terms),
        terms
            .iter()
            .map(|q| p.keyword_term_stats(q))
            .collect::<Vec<_>>()
    );
    let stats: Vec<td_index::Bm25Stats> = terms.iter().map(|q| p.keyword_term_stats(q)).collect();
    let scored: Vec<(&str, usize, &td_index::Bm25Stats)> =
        terms.iter().zip(&stats).map(|(&q, s)| (q, 6, s)).collect();
    assert_batch_matches!(
        "keyword scored",
        p.search_keyword_with_stats_batch(&scored),
        scored
            .iter()
            .map(|&(q, k, s)| p.search_keyword_with_stats(q, k, s))
            .collect::<Vec<_>>()
    );
    let cols: Vec<(&td_table::Column, usize)> =
        f.queries.iter().map(|(_, t)| (&t.columns[0], 12)).collect();
    assert_batch_matches!(
        "joinable columns",
        p.search_joinable_columns_batch(&cols),
        cols.iter()
            .map(|&(c, w)| p.search_joinable_columns(c, w))
            .collect::<Vec<_>>()
    );
    let fuzzy: Vec<(&td_table::Column, f32, usize)> =
        cols.iter().map(|&(c, w)| (c, 0.8, w)).collect();
    assert_batch_matches!(
        "fuzzy columns",
        p.search_fuzzy_columns_batch(&fuzzy),
        fuzzy
            .iter()
            .map(|&(c, tau, w)| p.search_fuzzy_columns(c, tau, w))
            .collect::<Vec<_>>()
    );
    let qtabs: Vec<&Table> = f.queries.iter().map(|(_, t)| t).collect();
    assert_batch_matches!(
        "semantic candidates",
        p.semantic_candidates_batch(&qtabs),
        qtabs
            .iter()
            .map(|t| p.semantic_candidates(t))
            .collect::<Vec<_>>()
    );
    let sets: Vec<std::collections::BTreeSet<TableId>> = qtabs
        .iter()
        .map(|t| td_shard_free_candidates(p, t))
        .collect();
    let semscored: Vec<(&Table, usize, &std::collections::BTreeSet<TableId>)> =
        qtabs.iter().zip(&sets).map(|(&t, s)| (t, 7, s)).collect();
    assert_batch_matches!(
        "semantic scored",
        p.search_semantic_with_candidates_batch(&semscored),
        semscored
            .iter()
            .map(|&(t, k, s)| p.search_semantic_with_candidates(t, k, s))
            .collect::<Vec<_>>()
    );
}

/// Candidate table set for a query, derived from the pipeline's own
/// candidate windows (what a one-shard coordinator would pin).
fn td_shard_free_candidates(
    p: &DiscoveryPipeline,
    t: &Table,
) -> std::collections::BTreeSet<TableId> {
    p.semantic_candidates(t)
        .into_iter()
        .flatten()
        .map(|(cref, _)| cref.table)
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random workloads — any mix of query tables, duplicate queries,
    /// k values, and batch sizes — stay byte-identical on both the
    /// one-shot and the segmented pipeline.
    #[test]
    fn random_workload_matches_sequential(
        workload in proptest::collection::vec((0usize..4, 1usize..16), 1..12),
    ) {
        let f = fixture();
        check_all_families(&f.pipeline, &f.queries, &workload);
        let snap = f.segmented.snapshot();
        check_all_families(&snap, &f.queries, &workload);
    }
}
