//! Regression test for run-to-run determinism of MATE composite-join
//! rankings (TD005): the per-query-row match counts are accumulated in
//! a `HashMap`, and before the sorted drain landed, tables tied on
//! row-containment ranked in hash-iteration order — different on every
//! index build.

use td_core::join::mate::MateSearch;
use td_table::{csv, DataLake};

/// A lake where several tables contain exactly the query's (city,
/// person) pairs — all tie at row-containment 1.0.
fn tied_lake() -> (DataLake, td_table::Table) {
    let rows = "city,person\nboston,alice\nseattle,bob\nportland,carol\n";
    let mut lake = DataLake::new();
    for i in 0..8 {
        let t = csv::read_table(format!("dup_{i}.csv"), rows).expect("valid csv");
        lake.add(t);
    }
    // One decoy that can never match the composite key.
    let decoy = csv::read_table("decoy.csv", "city,person\nboston,zed\n").expect("valid csv");
    lake.add(decoy);
    let query = csv::read_table("query.csv", rows).expect("valid csv");
    (lake, query)
}

#[test]
fn mate_rankings_are_byte_identical_across_builds() {
    let render = || {
        let (lake, query) = tied_lake();
        let s = MateSearch::build(&lake);
        let (hits, _) = s.search(&query, &[0, 1], 8);
        let mut out = String::new();
        for (t, score) in hits {
            out.push_str(&format!("{t}={score:.6};"));
        }
        out
    };
    let first = render();
    assert!(
        first.contains("=1.000000"),
        "expected full-containment ties"
    );
    for _ in 0..4 {
        assert_eq!(first, render(), "tied rankings drifted between builds");
    }
}
