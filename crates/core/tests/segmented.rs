//! The segmented pipeline's core invariant: any ingest history — any
//! order, any segment boundaries, with or without interleaved `seal` /
//! `compact` / `drop_table`+re-ingest — yields rankings **byte-identical**
//! to a one-shot batch build over the same live tables, for all eight
//! search families.
//!
//! The comparison renders every family's full output (ids and scores) via
//! `Debug` formatting into one string; `Debug` on `f64` prints the
//! shortest round-trip representation, so string equality is bit equality
//! of every score.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::BTreeSet;
use std::fmt::Write as _;
use std::sync::OnceLock;
use td_core::segment::{PipelineContext, PipelineSegment, SegmentView};
use td_core::{DiscoveryPipeline, PipelineConfig, SegmentedPipeline};
use td_table::gen::lakegen::{LakeGenConfig, LakeGenerator};
use td_table::{Table, TableId};

const K: usize = 8;

/// Render every search family's complete response for a set of query
/// tables. Byte-identical strings ⇔ byte-identical rankings.
fn render(p: &DiscoveryPipeline, queries: &[(TableId, Table)]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "keyword {:?}", p.search_keyword("dataset", K));
    for (qid, qt) in queries {
        let _ = writeln!(out, "== query {qid:?}");
        for (ci, c) in qt.columns.iter().enumerate() {
            let _ = writeln!(out, "joinable[{ci}] {:?}", p.search_joinable(c, K));
            let _ = writeln!(out, "fuzzy[{ci}] {:?}", p.search_fuzzy_joinable(c, 0.8, K));
        }
        let _ = writeln!(out, "tus {:?}", p.search_unionable(qt, K));
        let _ = writeln!(out, "starmie {:?}", p.search_unionable_semantic(qt, K));
        let _ = writeln!(out, "santos {:?}", p.search_unionable_relationship(qt, K));
        let _ = writeln!(out, "mate {:?}", p.search_multi_joinable(qt, &[0, 1], K));
        let key = qt.columns.iter().find(|c| !c.is_numeric());
        let num = qt.columns.iter().find(|c| c.is_numeric());
        if let (Some(key), Some(num)) = (key, num) {
            let _ = writeln!(out, "correlated {:?}", p.search_correlated(key, num, K));
        }
    }
    out
}

struct Fixture {
    tables: Vec<(TableId, Table)>,
    queries: Vec<(TableId, Table)>,
    ctx: PipelineContext,
    /// Rendering of the one-shot `DiscoveryPipeline::build` over the lake.
    expected: String,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let gl = LakeGenerator::standard().generate(&LakeGenConfig {
            num_tables: 12,
            rows: (12, 30),
            cols: (2, 4),
            seed: 20260806,
            ..LakeGenConfig::default()
        });
        let cfg = PipelineConfig::default();
        let tables: Vec<(TableId, Table)> = gl.lake.iter().map(|(id, t)| (id, t.clone())).collect();
        let queries: Vec<(TableId, Table)> = tables[..3].to_vec();
        let batch = DiscoveryPipeline::build(&gl.lake, &gl.registry, &[], &cfg);
        let expected = render(&batch, &queries);
        let ctx = PipelineContext::new(&gl.registry, &[], &cfg);
        Fixture {
            tables,
            queries,
            ctx,
            expected,
        }
    })
}

/// Fixed-seed regression: a deliberately ugly history — shuffled ingest
/// order, a stale-content ingest that a later ingest shadows, seals every
/// third step, a drop/re-ingest cycle, and a mid-history compaction.
#[test]
fn weird_history_matches_batch_build() {
    let f = fixture();
    let mut sp = SegmentedPipeline::with_context(f.ctx.clone());

    let mut order: Vec<usize> = (0..f.tables.len()).collect();
    let mut rng = StdRng::seed_from_u64(42);
    order.shuffle(&mut rng);

    // Stale content first: table order[0]'s id ingested with order[1]'s
    // rows. The correct ingest below must shadow it (last write wins).
    sp.ingest_table(f.tables[order[0]].0, &f.tables[order[1]].1);
    sp.seal();

    for (step, &i) in order.iter().enumerate() {
        sp.ingest_table(f.tables[i].0, &f.tables[i].1);
        if step % 3 == 2 {
            sp.seal();
        }
        if step == f.tables.len() / 2 {
            let victim = order[0];
            sp.drop_table(f.tables[victim].0);
            sp.ingest_table(f.tables[victim].0, &f.tables[victim].1);
            sp.compact();
        }
    }

    assert!(sp.num_segments() >= 2, "history should span segments");
    let got = render(&sp.snapshot(), &f.queries);
    assert_eq!(got, f.expected, "incremental history diverged from batch");
}

/// Dropping a table without re-ingesting must equal a single-segment build
/// over the remaining tables (same ids) — i.e. tombstones really remove a
/// table from every family's ranking.
#[test]
fn drop_without_reingest_matches_rebuild_over_remaining() {
    let f = fixture();
    let victim = f.tables.len() - 1; // not a query table
    let victim_id = f.tables[victim].0;

    let mut sp = SegmentedPipeline::with_context(f.ctx.clone());
    for (step, (id, t)) in f.tables.iter().enumerate() {
        sp.ingest_table(*id, t);
        if step % 4 == 3 {
            sp.seal();
        }
    }
    sp.seal();
    assert!(sp.drop_table(victim_id));
    assert_eq!(sp.num_tombstones(), 1);

    let remaining: Vec<(TableId, &Table)> = f
        .tables
        .iter()
        .filter(|(id, _)| *id != victim_id)
        .map(|(id, t)| (*id, t))
        .collect();
    let seg = PipelineSegment::build(&SegmentView::new(remaining), &f.ctx);
    let oneshot = DiscoveryPipeline::from_segments(&f.ctx, &[&seg], &BTreeSet::new());

    let got = render(&sp.snapshot(), &f.queries);
    assert_eq!(got, render(&oneshot, &f.queries));
    assert!(!sp.table_ids().contains(&victim_id));

    // Compaction garbage-collects the tombstone without changing results.
    let mut sp = sp;
    sp.compact();
    assert_eq!(sp.num_tombstones(), 0);
    assert_eq!(
        render(&sp.snapshot(), &f.queries),
        render(&oneshot, &f.queries)
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random ingest order, random segment boundaries, optional compaction
    /// point, and an optional drop/re-ingest cycle: all byte-identical to
    /// the batch build.
    #[test]
    fn random_history_matches_batch_build(
        seed in any::<u64>(),
        seal_mask in any::<u16>(),
        // 12 (the table count) acts as "never" for both events.
        compact_sel in 0usize..13,
        drop_sel in 1usize..13,
    ) {
        let compact_at = (compact_sel < 12).then_some(compact_sel);
        let drop_at = (drop_sel < 12).then_some(drop_sel);
        let f = fixture();
        let mut sp = SegmentedPipeline::with_context(f.ctx.clone());

        let mut order: Vec<usize> = (0..f.tables.len()).collect();
        let mut rng = StdRng::seed_from_u64(seed);
        order.shuffle(&mut rng);

        for (step, &i) in order.iter().enumerate() {
            sp.ingest_table(f.tables[i].0, &f.tables[i].1);
            if seal_mask >> (step % 16) & 1 == 1 {
                sp.seal();
            }
            if drop_at == Some(step) {
                // Drop an already-ingested table, then bring it back.
                let victim = order[step - 1];
                sp.drop_table(f.tables[victim].0);
                sp.ingest_table(f.tables[victim].0, &f.tables[victim].1);
            }
            if compact_at == Some(step) {
                sp.compact();
            }
        }

        let got = render(&sp.snapshot(), &f.queries);
        prop_assert_eq!(&got, &f.expected);
    }
}
