//! Column encoders: from cell embeddings to column (and table) vectors.
//!
//! Two encoders, mirroring the contrast Starmie drew (tutorial §2.5):
//!
//! * [`embed_column`] — *context-free*: the mean of the column's own value
//!   embeddings (what TUS's NL measure and most pre-Starmie systems used).
//! * [`ContextualEncoder`] — *contextualized*: each column's vector is
//!   blended with the aggregate of its table's other columns, the way
//!   Starmie's contrastive table encoder lets surrounding columns
//!   disambiguate a column's meaning. A homograph-heavy column embedded
//!   alone is ambiguous; embedded in context it moves toward the sense its
//!   table actually uses.

use crate::model::Embedder;
use crate::vector::{add_scaled, normalize};
use td_table::{Column, Table};

/// Context-free column embedding: the normalized mean of the embeddings of
/// up to `sample` distinct non-null values (deterministic: first-seen order
/// of distinct values).
#[must_use]
pub fn embed_column(emb: &dyn Embedder, column: &Column, sample: usize) -> Vec<f32> {
    let mut acc = vec![0.0f32; emb.dim()];
    let mut seen = std::collections::HashSet::new();
    let mut n = 0usize;
    for v in &column.values {
        if n >= sample {
            break;
        }
        let Some(text) = v.join_token() else { continue };
        if !seen.insert(text.clone()) {
            continue;
        }
        add_scaled(&mut acc, &emb.embed(&text), 1.0);
        n += 1;
    }
    normalize(&mut acc);
    acc
}

/// Starmie-style contextual column encoder.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct ContextualEncoder {
    /// Context mixing weight in `[0, 1]`: 0 = context-free, 1 = context
    /// only. Starmie's benefit shows around 0.3–0.5.
    pub alpha: f32,
    /// Max distinct values sampled per column.
    pub sample: usize,
}

impl Default for ContextualEncoder {
    fn default() -> Self {
        ContextualEncoder {
            alpha: 0.4,
            sample: 64,
        }
    }
}

impl ContextualEncoder {
    /// Encode every column of a table with table context mixed in.
    ///
    /// Column `i`'s vector is `normalize((1-α)·own_i + α·mean(own_j, j≠i))`.
    /// Single-column tables get their context-free vector.
    #[must_use]
    pub fn encode_table(&self, emb: &dyn Embedder, table: &Table) -> Vec<Vec<f32>> {
        let own: Vec<Vec<f32>> = table
            .columns
            .iter()
            .map(|c| embed_column(emb, c, self.sample))
            .collect();
        if own.len() <= 1 {
            return own;
        }
        let dim = emb.dim();
        // Sum of all column vectors, so context of column i = (sum - own_i) / (n-1).
        let mut sum = vec![0.0f32; dim];
        for v in &own {
            add_scaled(&mut sum, v, 1.0);
        }
        let n1 = (own.len() - 1) as f32;
        own.iter()
            .map(|v| {
                let mut ctx = sum.clone();
                add_scaled(&mut ctx, v, -1.0);
                for x in &mut ctx {
                    *x /= n1;
                }
                let mut out = vec![0.0f32; dim];
                add_scaled(&mut out, v, 1.0 - self.alpha);
                add_scaled(&mut out, &ctx, self.alpha);
                normalize(&mut out);
                out
            })
            .collect()
    }

    /// Encode one table into a single vector (mean of contextual column
    /// vectors) — used for whole-table similarity and navigation.
    #[must_use]
    pub fn encode_table_vector(&self, emb: &dyn Embedder, table: &Table) -> Vec<f32> {
        let cols = self.encode_table(emb, table);
        let mut acc = vec![0.0f32; emb.dim()];
        for v in &cols {
            add_scaled(&mut acc, v, 1.0);
        }
        normalize(&mut acc);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::DomainEmbedder;
    use crate::vector::cosine;
    use td_table::gen::domains::DomainRegistry;
    use td_table::Table;

    fn setup() -> (DomainRegistry, DomainEmbedder) {
        let mut r = DomainRegistry::standard();
        let a = r.id("animal").unwrap();
        let c = r.id("city").unwrap();
        r.add_homograph_pair(a, c, 100);
        let emb = DomainEmbedder::from_registry(&r, 500, 64, 0.4, 3);
        (r, emb)
    }

    fn domain_column(r: &DomainRegistry, name: &str, range: std::ops::Range<u64>) -> Column {
        let d = r.id(name).unwrap();
        Column::new(name, range.map(|i| r.value(d, i)).collect())
    }

    #[test]
    fn same_domain_columns_embed_close() {
        let (r, emb) = setup();
        let a = embed_column(&emb, &domain_column(&r, "country", 0..40), 64);
        let b = embed_column(&emb, &domain_column(&r, "country", 100..140), 64);
        assert!(cosine(&a, &b) > 0.85, "cos {}", cosine(&a, &b));
    }

    #[test]
    fn different_domain_columns_embed_apart() {
        let (r, emb) = setup();
        let a = embed_column(&emb, &domain_column(&r, "country", 0..40), 64);
        let g = embed_column(&emb, &domain_column(&r, "gene", 0..40), 64);
        assert!(cosine(&a, &g) < 0.4, "cos {}", cosine(&a, &g));
    }

    #[test]
    fn sampling_caps_work() {
        let (r, emb) = setup();
        let col = domain_column(&r, "country", 0..500);
        let full = embed_column(&emb, &col, 500);
        let sampled = embed_column(&emb, &col, 16);
        // Sampled mean still points at the domain anchor.
        assert!(cosine(&full, &sampled) > 0.8);
    }

    #[test]
    fn context_disambiguates_homograph_columns() {
        let (r, emb) = setup();
        // Homograph column: indices 0..50 shared between city and animal.
        let homo_as_city = domain_column(&r, "city", 0..50);
        let homo_as_animal = {
            let d = r.id("animal").unwrap();
            Column::new("animal", (0..50).map(|i| r.value(d, i)).collect())
        };
        // Tables: identical ambiguous key column, different worlds around it.
        let city_table = Table::new(
            "cities",
            vec![homo_as_city.clone(), domain_column(&r, "country", 0..50)],
        )
        .unwrap();
        let animal_table = Table::new(
            "animals",
            vec![homo_as_animal, domain_column(&r, "food", 0..50)],
        )
        .unwrap();
        let enc = ContextualEncoder {
            alpha: 0.5,
            sample: 64,
        };
        let ctx_city = enc.encode_table(&emb, &city_table);
        let ctx_animal = enc.encode_table(&emb, &animal_table);
        // Context-free: the two key columns are literally identical strings.
        let cf_city = embed_column(&emb, &city_table.columns[0], 64);
        let cf_animal = embed_column(&emb, &animal_table.columns[0], 64);
        let cf_sim = cosine(&cf_city, &cf_animal);
        let ctx_sim = cosine(&ctx_city[0], &ctx_animal[0]);
        assert!(cf_sim > 0.95, "context-free should confuse: {cf_sim}");
        assert!(
            ctx_sim < cf_sim - 0.1,
            "context failed to separate: ctx {ctx_sim} vs cf {cf_sim}"
        );
    }

    #[test]
    fn single_column_table_is_context_free() {
        let (r, emb) = setup();
        let col = domain_column(&r, "country", 0..20);
        let t = Table::new("t", vec![col.clone()]).unwrap();
        let enc = ContextualEncoder::default();
        let ctx = enc.encode_table(&emb, &t);
        let cf = embed_column(&emb, &col, enc.sample);
        assert_eq!(ctx[0], cf);
    }

    #[test]
    fn alpha_zero_equals_context_free() {
        let (r, emb) = setup();
        let t = Table::new(
            "t",
            vec![
                domain_column(&r, "country", 0..20),
                domain_column(&r, "sport", 0..20),
            ],
        )
        .unwrap();
        let enc = ContextualEncoder {
            alpha: 0.0,
            sample: 64,
        };
        let ctx = enc.encode_table(&emb, &t);
        for (i, c) in t.columns.iter().enumerate() {
            let cf = embed_column(&emb, c, 64);
            assert!(cosine(&ctx[i], &cf) > 0.999);
        }
    }

    #[test]
    fn table_vector_is_unit() {
        let (r, emb) = setup();
        let t = Table::new("t", vec![domain_column(&r, "country", 0..20)]).unwrap();
        let v = ContextualEncoder::default().encode_table_vector(&emb, &t);
        let n: f32 = v.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-4);
    }

    #[test]
    fn empty_column_embeds_to_zero() {
        let (_, emb) = setup();
        let c = Column::new("e", vec![]);
        let v = embed_column(&emb, &c, 10);
        assert!(v.iter().all(|&x| x == 0.0));
    }
}
