//! # td-embed — deterministic embeddings for table discovery
//!
//! Pseudo-embedding models reproducing the *geometry* of the pre-trained
//! models the surveyed systems use (fastText, BERT, fine-tuned PLMs)
//! without model files: [`NGramEmbedder`] for subword/typo proximity,
//! [`DomainEmbedder`] for semantic-domain clustering with honest homograph
//! ambiguity, and [`ContextualEncoder`] for Starmie-style contextualized
//! column vectors. See DESIGN.md "Substitutions" for why this preserves
//! the surveyed systems' behaviour.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod column;
pub mod model;
pub mod vector;

pub use column::{embed_column, ContextualEncoder};
pub use model::{seeded_unit_vector, DomainEmbedder, Embedder, NGramEmbedder};
pub use vector::{add_scaled, cosine, dot, l2_sq, mean, norm, normalize};
