//! Deterministic pseudo-embedding models.
//!
//! The surveyed systems consume pre-trained word/column embeddings
//! (fastText, BERT, fine-tuned PLMs). Downstream search code only depends
//! on the *geometry* those models induce: values of one semantic domain
//! cluster, different domains separate, misspellings land near their
//! originals, and homographs sit between their senses. The two models here
//! construct exactly that geometry, deterministically and without model
//! files (see DESIGN.md, "Substitutions"):
//!
//! * [`NGramEmbedder`] — character-n-gram hash projections (fastText-style
//!   subword bags). Typos share most n-grams with the original, so edit
//!   proximity becomes cosine proximity — the property PEXESO-style fuzzy
//!   join search needs.
//! * [`DomainEmbedder`] — registry-aware: each semantic domain gets a
//!   random unit *anchor*; an in-vocabulary value embeds as its domain
//!   anchor plus a value-specific spread; a homograph (a spelling shared
//!   by two domains) embeds as the normalized *mixture* of both anchors,
//!   exactly the ambiguity real distributional embeddings exhibit. OOV
//!   strings fall back to n-grams (far from every anchor).

use crate::vector::normalize;
use std::collections::HashMap;
use td_sketch::hash::{hash_str, hash_u64};
use td_table::gen::domains::DomainRegistry;

/// Anything that can embed a string into a fixed-dimension vector.
pub trait Embedder: Send + Sync {
    /// Embedding dimension.
    fn dim(&self) -> usize;
    /// Embed one string.
    fn embed(&self, text: &str) -> Vec<f32>;
}

/// Deterministic standard-normal-ish sample from a seed (Box–Muller over
/// two hashed uniforms).
#[must_use]
fn gauss(seed: u64) -> f32 {
    let u1 = (hash_u64(seed, 0xAA) as f64 + 1.0) / (u64::MAX as f64 + 2.0);
    let u2 = (hash_u64(seed, 0xBB) as f64 + 1.0) / (u64::MAX as f64 + 2.0);
    ((-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()) as f32
}

/// A deterministic random unit vector identified by a seed.
#[must_use]
pub fn seeded_unit_vector(seed: u64, dim: usize) -> Vec<f32> {
    let mut v: Vec<f32> = (0..dim as u64)
        .map(|j| gauss(seed.wrapping_mul(0x9E37_79B9).wrapping_add(j)))
        .collect();
    normalize(&mut v);
    v
}

/// Character-n-gram hash embedder (fastText-style subword bag).
#[derive(Debug, Clone)]
pub struct NGramEmbedder {
    dim: usize,
    n: usize,
    seed: u64,
}

impl NGramEmbedder {
    /// Create an embedder with `dim` dimensions over character `n`-grams
    /// (with `<`/`>` boundary markers, lower-cased input).
    ///
    /// # Panics
    /// Panics if `dim == 0` or `n == 0`.
    #[must_use]
    pub fn new(dim: usize, n: usize, seed: u64) -> Self {
        assert!(dim > 0 && n > 0);
        NGramEmbedder { dim, n, seed }
    }

    fn ngrams(&self, text: &str) -> Vec<u64> {
        let padded: Vec<char> = std::iter::once('<')
            .chain(text.to_lowercase().chars())
            .chain(std::iter::once('>'))
            .collect();
        if padded.len() < self.n {
            return vec![hash_str(&padded.iter().collect::<String>(), self.seed)];
        }
        padded
            .windows(self.n)
            .map(|w| hash_str(&w.iter().collect::<String>(), self.seed))
            .collect()
    }
}

impl Embedder for NGramEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        for g in self.ngrams(text) {
            for (j, a) in acc.iter_mut().enumerate() {
                *a += gauss(g.wrapping_add((j as u64) << 32));
            }
        }
        normalize(&mut acc);
        acc
    }
}

/// Registry-aware embedder with per-domain anchors.
#[derive(Debug, Clone)]
pub struct DomainEmbedder {
    dim: usize,
    /// Anchor unit vector per domain (index = `DomainId.0`).
    anchors: Vec<Vec<f32>>,
    /// Value spelling → domains it belongs to (more than one = homograph).
    membership: HashMap<String, Vec<u16>>,
    /// Intra-domain spread: scale of the value-specific noise added to the
    /// anchor (0 = all values of a domain embed identically).
    spread: f32,
    fallback: NGramEmbedder,
    seed: u64,
}

impl DomainEmbedder {
    /// Build from a registry, materializing the first `vocab_per_domain`
    /// values of every *categorical* domain into the membership dictionary.
    ///
    /// `spread` controls how tightly a domain's values cluster around the
    /// anchor (0.4 mimics word-embedding clusters well).
    #[must_use]
    pub fn from_registry(
        registry: &DomainRegistry,
        vocab_per_domain: u64,
        dim: usize,
        spread: f32,
        seed: u64,
    ) -> Self {
        let mut anchors = Vec::with_capacity(registry.len());
        for (id, _) in registry.iter() {
            anchors.push(seeded_unit_vector(
                seed ^ 0xA0C0_0000 ^ (id.0 as u64) << 8,
                dim,
            ));
        }
        let mut membership: HashMap<String, Vec<u16>> = HashMap::new();
        for (id, dom) in registry.iter() {
            if dom.format.is_numeric() {
                continue;
            }
            for i in 0..vocab_per_domain {
                let v = registry.value(id, i).to_string().to_lowercase();
                let entry = membership.entry(v).or_default();
                if !entry.contains(&id.0) {
                    entry.push(id.0);
                }
            }
        }
        DomainEmbedder {
            dim,
            anchors,
            membership,
            spread,
            fallback: NGramEmbedder::new(dim, 3, seed ^ 0xFA11),
            seed,
        }
    }

    /// The anchor vector of a domain.
    #[must_use]
    pub fn anchor(&self, domain: u16) -> &[f32] {
        &self.anchors[domain as usize]
    }

    /// Domains a spelling belongs to (empty = OOV).
    #[must_use]
    pub fn domains_of(&self, text: &str) -> &[u16] {
        self.membership
            .get(&text.to_lowercase())
            .map_or(&[], Vec::as_slice)
    }

    /// True if a spelling belongs to more than one domain.
    #[must_use]
    pub fn is_homograph(&self, text: &str) -> bool {
        self.domains_of(text).len() > 1
    }
}

impl Embedder for DomainEmbedder {
    fn dim(&self) -> usize {
        self.dim
    }

    fn embed(&self, text: &str) -> Vec<f32> {
        let key = text.to_lowercase();
        let Some(domains) = self.membership.get(&key) else {
            return self.fallback.embed(text);
        };
        let mut acc = vec![0.0f32; self.dim];
        for &d in domains {
            crate::vector::add_scaled(&mut acc, &self.anchors[d as usize], 1.0);
        }
        // Anchor mixture first (unit length), then a value-specific unit
        // noise direction scaled by `spread` — so spread is the ratio of
        // noise to signal regardless of dimension.
        normalize(&mut acc);
        let vseed = hash_str(&key, self.seed ^ 0x5EED);
        let noise = seeded_unit_vector(vseed, self.dim);
        crate::vector::add_scaled(&mut acc, &noise, self.spread);
        normalize(&mut acc);
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vector::cosine;
    use td_table::gen::domains::DomainRegistry;

    fn registry_with_homographs() -> DomainRegistry {
        let mut r = DomainRegistry::standard();
        let a = r.id("animal").unwrap();
        let c = r.id("city").unwrap();
        r.add_homograph_pair(a, c, 50);
        r
    }

    #[test]
    fn embeddings_are_deterministic_unit_vectors() {
        let e = NGramEmbedder::new(64, 3, 1);
        let a = e.embed("boston");
        let b = e.embed("boston");
        assert_eq!(a, b);
        let n: f32 = a.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((n - 1.0).abs() < 1e-4);
    }

    #[test]
    fn ngram_embedder_puts_typos_near_originals() {
        let e = NGramEmbedder::new(64, 3, 1);
        let orig = e.embed("bostonia");
        let typo = e.embed("bostonla");
        let unrelated = e.embed("quartz");
        assert!(
            cosine(&orig, &typo) > 0.5,
            "typo cos {}",
            cosine(&orig, &typo)
        );
        assert!(
            cosine(&orig, &typo) > cosine(&orig, &unrelated) + 0.3,
            "typo {} unrelated {}",
            cosine(&orig, &typo),
            cosine(&orig, &unrelated)
        );
    }

    #[test]
    fn ngram_handles_short_and_empty_strings() {
        let e = NGramEmbedder::new(32, 3, 1);
        assert_eq!(e.embed("a").len(), 32);
        assert_eq!(e.embed("").len(), 32);
    }

    #[test]
    fn domain_values_cluster_around_anchor() {
        let r = DomainRegistry::standard();
        let emb = DomainEmbedder::from_registry(&r, 500, 64, 0.4, 7);
        let city = r.id("city").unwrap();
        let a = emb.embed(&r.value(city, 1).to_string());
        let b = emb.embed(&r.value(city, 2).to_string());
        assert!(cosine(&a, &b) > 0.6, "same-domain cos {}", cosine(&a, &b));
        let anchor = emb.anchor(city.0);
        assert!(cosine(&a, anchor) > 0.7);
    }

    #[test]
    fn different_domains_separate() {
        let r = DomainRegistry::standard();
        let emb = DomainEmbedder::from_registry(&r, 500, 64, 0.4, 7);
        let city = r.id("city").unwrap();
        let gene = r.id("gene").unwrap();
        let a = emb.embed(&r.value(city, 1).to_string());
        let g = emb.embed(&r.value(gene, 1).to_string());
        assert!(cosine(&a, &g) < 0.35, "cross-domain cos {}", cosine(&a, &g));
    }

    #[test]
    fn homographs_sit_between_their_senses() {
        let r = registry_with_homographs();
        let emb = DomainEmbedder::from_registry(&r, 500, 64, 0.4, 7);
        let animal = r.id("animal").unwrap();
        let city = r.id("city").unwrap();
        let homograph = r.value(animal, 3).to_string(); // index < 50: shared
        assert!(emb.is_homograph(&homograph), "{homograph} not detected");
        let h = emb.embed(&homograph);
        let ca = cosine(&h, emb.anchor(animal.0));
        let cc = cosine(&h, emb.anchor(city.0));
        assert!(
            ca > 0.4 && cc > 0.4,
            "mixture broke: animal {ca}, city {cc}"
        );
    }

    #[test]
    fn oov_falls_back_far_from_anchors() {
        let r = DomainRegistry::standard();
        let emb = DomainEmbedder::from_registry(&r, 200, 64, 0.4, 7);
        let v = emb.embed("zzz-completely-unknown-token-123");
        assert!(emb
            .domains_of("zzz-completely-unknown-token-123")
            .is_empty());
        for (id, _) in r.iter() {
            assert!(
                cosine(&v, emb.anchor(id.0)) < 0.4,
                "OOV too close to anchor {id:?}"
            );
        }
    }

    #[test]
    fn membership_is_case_insensitive() {
        let r = DomainRegistry::standard();
        let emb = DomainEmbedder::from_registry(&r, 100, 32, 0.4, 7);
        let city = r.id("city").unwrap();
        let v = r.value(city, 1).to_string();
        assert_eq!(emb.domains_of(&v.to_uppercase()), emb.domains_of(&v));
    }

    #[test]
    fn seeded_unit_vectors_are_nearly_orthogonal_in_high_dim() {
        let a = seeded_unit_vector(1, 128);
        let b = seeded_unit_vector(2, 128);
        assert!(cosine(&a, &b).abs() < 0.3);
    }
}
