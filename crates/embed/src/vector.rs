//! Dense-vector primitives (f32, row-major `Vec`s).

/// Dot product.
///
/// # Panics
/// Panics on dimension mismatch.
#[must_use]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

/// Euclidean norm.
#[must_use]
pub fn norm(a: &[f32]) -> f32 {
    dot(a, a).sqrt()
}

/// Cosine similarity in `[-1, 1]`; 0 if either vector is zero.
#[must_use]
pub fn cosine(a: &[f32], b: &[f32]) -> f32 {
    let na = norm(a);
    let nb = norm(b);
    if na == 0.0 || nb == 0.0 {
        return 0.0;
    }
    (dot(a, b) / (na * nb)).clamp(-1.0, 1.0)
}

/// Squared Euclidean distance.
#[must_use]
pub fn l2_sq(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dimension mismatch");
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Normalize in place to unit length (no-op for the zero vector).
pub fn normalize(a: &mut [f32]) {
    let n = norm(a);
    if n > 0.0 {
        for x in a.iter_mut() {
            *x /= n;
        }
    }
}

/// `acc += scale * v`.
///
/// # Panics
/// Panics on dimension mismatch.
pub fn add_scaled(acc: &mut [f32], v: &[f32], scale: f32) {
    assert_eq!(acc.len(), v.len(), "dimension mismatch");
    for (a, x) in acc.iter_mut().zip(v) {
        *a += scale * x;
    }
}

/// Mean of a non-empty slice of equal-length vectors; `None` if empty.
#[must_use]
pub fn mean(vectors: &[Vec<f32>]) -> Option<Vec<f32>> {
    let first = vectors.first()?;
    let mut acc = vec![0.0f32; first.len()];
    for v in vectors {
        add_scaled(&mut acc, v, 1.0);
    }
    let n = vectors.len() as f32;
    for x in &mut acc {
        *x /= n;
    }
    Some(acc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_and_norm() {
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
        assert_eq!(norm(&[3.0, 4.0]), 5.0);
    }

    #[test]
    fn cosine_basics() {
        assert!((cosine(&[1.0, 0.0], &[1.0, 0.0]) - 1.0).abs() < 1e-6);
        assert!(cosine(&[1.0, 0.0], &[0.0, 1.0]).abs() < 1e-6);
        assert!((cosine(&[1.0, 0.0], &[-1.0, 0.0]) + 1.0).abs() < 1e-6);
        assert_eq!(cosine(&[0.0, 0.0], &[1.0, 0.0]), 0.0);
    }

    #[test]
    fn cosine_is_scale_invariant() {
        let a = [0.3, -0.7, 0.2];
        let b: Vec<f32> = a.iter().map(|x| x * 17.0).collect();
        assert!((cosine(&a, &b) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn normalize_makes_unit() {
        let mut v = vec![3.0, 4.0];
        normalize(&mut v);
        assert!((norm(&v) - 1.0).abs() < 1e-6);
        let mut z = vec![0.0, 0.0];
        normalize(&mut z);
        assert_eq!(z, vec![0.0, 0.0]);
    }

    #[test]
    fn l2_and_add_scaled() {
        assert_eq!(l2_sq(&[0.0, 0.0], &[3.0, 4.0]), 25.0);
        let mut acc = vec![1.0, 1.0];
        add_scaled(&mut acc, &[2.0, -2.0], 0.5);
        assert_eq!(acc, vec![2.0, 0.0]);
    }

    #[test]
    fn mean_of_vectors() {
        let m = mean(&[vec![1.0, 2.0], vec![3.0, 4.0]]).unwrap();
        assert_eq!(m, vec![2.0, 3.0]);
        assert!(mean(&[]).is_none());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn dot_rejects_mismatch() {
        let _ = dot(&[1.0], &[1.0, 2.0]);
    }
}
