//! Cost-based, distribution-aware access-method selection — the tutorial's
//! §3 vision ("more effective cost-based and distribution-aware access
//! methods that optimize access based on the data distribution").
//!
//! A discovery system holds several index families for the same column
//! vectors; which one should serve a given query stream? The selector
//! *calibrates* per-method cost models from a handful of measured probes
//! (flat scan: linear in `n`; HNSW: logarithmic-ish; plus build cost
//! amortized over the expected query count) and picks the method with the
//! lowest predicted total cost, re-deciding as the corpus grows or the
//! workload changes — a small, honest instance of the self-designing
//! access methods the tutorial points at.

use crate::flat::FlatIndex;
use crate::hnsw::{Hnsw, HnswParams};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;
use td_obs::ScopedTimer;

/// The vector access methods under selection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AccessMethod {
    /// Exact brute-force scan — free to build, O(n) to query.
    Flat,
    /// HNSW graph — expensive to build, near-O(log n) to query.
    Hnsw,
}

/// Workload description the decision is conditioned on.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Workload {
    /// Vectors currently in the corpus.
    pub corpus_size: usize,
    /// Queries expected before the index would be rebuilt anyway.
    pub expected_queries: usize,
    /// Results per query.
    pub k: usize,
}

/// Calibrated per-element costs (nanoseconds), measured on this machine.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Flat scan cost per corpus vector per query.
    pub flat_ns_per_vector: f64,
    /// HNSW query cost per *log2(n)* step (amortizes beam width).
    pub hnsw_ns_per_log_step: f64,
    /// HNSW insert cost per vector (build).
    pub hnsw_build_ns_per_vector: f64,
}

impl CostModel {
    /// Calibrate by probing at the given dimension, with every probe
    /// recorded through `td-obs` histograms (a fresh registry, so repeated
    /// calibrations never contaminate each other). The derived per-element
    /// costs are published as gauges on the global registry
    /// (`access.cost.*`) for inspection.
    ///
    /// Uses a few hundred synthetic vectors — milliseconds of work — and
    /// returns per-element costs that extrapolate across corpus sizes.
    #[must_use]
    pub fn calibrate(dim: usize) -> CostModel {
        let reg = td_obs::Registry::new();
        let model = Self::calibrate_with(dim, &reg);
        let global = td_obs::global();
        global
            .gauge("access.cost.flat_ns_per_vector")
            .set(model.flat_ns_per_vector);
        global
            .gauge("access.cost.hnsw_ns_per_log_step")
            .set(model.hnsw_ns_per_log_step);
        global
            .gauge("access.cost.hnsw_build_ns_per_vector")
            .set(model.hnsw_build_ns_per_vector);
        model
    }

    /// Calibrate against an explicit registry: probe latencies land in the
    /// `access.calibrate.{flat_query,hnsw_insert,hnsw_query}_ns`
    /// histograms and the per-element costs are derived from their
    /// snapshots — the median for query probes (robust to scheduler
    /// hiccups), the exact mean for the insert stream.
    #[must_use]
    pub fn calibrate_with(dim: usize, reg: &td_obs::Registry) -> CostModel {
        let n = 600usize;
        let reps = 50usize;
        let vectors: Vec<Vec<f32>> = (0..n as u64)
            .map(|i| td_embed::model::seeded_unit_vector(i, dim))
            .collect();
        let q = td_embed::model::seeded_unit_vector(999, dim);

        let mut flat = FlatIndex::new(dim);
        for v in &vectors {
            flat.insert(v.clone());
        }
        let flat_hist = reg.histogram("access.calibrate.flat_query_ns");
        for _ in 0..reps {
            let _t = ScopedTimer::new(flat_hist.clone());
            // td-lint: allow(TD011) calibration query: only the ScopedTimer's measurement matters, the hits are discarded by design
            let _ = flat.search(&q, 10);
        }

        let insert_hist = reg.histogram("access.calibrate.hnsw_insert_ns");
        let mut hnsw = Hnsw::new(dim, HnswParams::default());
        for v in &vectors {
            let _t = ScopedTimer::new(insert_hist.clone());
            hnsw.insert(v.clone());
        }

        let hnsw_hist = reg.histogram("access.calibrate.hnsw_query_ns");
        for _ in 0..reps {
            let _t = ScopedTimer::new(hnsw_hist.clone());
            // td-lint: allow(TD011) calibration query: timed for the cost model, results discarded by design
            let _ = hnsw.search(&q, 10, 64);
        }

        let flat_ns_per_vector = flat_hist.quantile(0.5).max(1.0) / n as f64;
        let hnsw_build_ns_per_vector = insert_hist.mean().max(1.0);
        let hnsw_ns_per_log_step = hnsw_hist.quantile(0.5).max(1.0) / (n as f64).log2().max(1.0);

        CostModel {
            flat_ns_per_vector,
            hnsw_ns_per_log_step,
            hnsw_build_ns_per_vector,
        }
    }

    /// Predicted total cost (ns) of serving the workload with a method,
    /// including build cost where the method has one.
    #[must_use]
    pub fn predict(&self, method: AccessMethod, w: &Workload) -> f64 {
        let n = w.corpus_size.max(1) as f64;
        let q = w.expected_queries.max(1) as f64;
        match method {
            AccessMethod::Flat => q * n * self.flat_ns_per_vector,
            AccessMethod::Hnsw => {
                n * self.hnsw_build_ns_per_vector
                    + q * n.log2().max(1.0) * self.hnsw_ns_per_log_step
            }
        }
    }

    /// The cheaper method for a workload.
    #[must_use]
    pub fn choose(&self, w: &Workload) -> AccessMethod {
        if self.predict(AccessMethod::Flat, w) <= self.predict(AccessMethod::Hnsw, w) {
            AccessMethod::Flat
        } else {
            AccessMethod::Hnsw
        }
    }

    /// The corpus size at which HNSW starts paying off for a given query
    /// budget (the crossover the tutorial's scalability discussion is
    /// about). Returns `None` if flat wins everywhere up to `max_n`.
    #[must_use]
    pub fn crossover(&self, expected_queries: usize, k: usize, max_n: usize) -> Option<usize> {
        let mut n = 64usize;
        while n <= max_n {
            let w = Workload {
                corpus_size: n,
                expected_queries,
                k,
            };
            if self.choose(&w) == AccessMethod::Hnsw {
                return Some(n);
            }
            n *= 2;
        }
        None
    }
}

/// A self-selecting vector index: routes inserts to both representations
/// lazily and serves queries through the currently-cheapest method.
///
/// Queries take `&self`: the lazy HNSW build is a thread-safe
/// [`OnceLock::get_or_init`], so one index can serve concurrent query
/// threads behind an `Arc` (the serving tier depends on this — see
/// `td-serve`). The first thread to need HNSW builds it; racers block on
/// the same cell and reuse the result.
pub struct AdaptiveVectorIndex {
    dim: usize,
    model: CostModel,
    expected_queries: usize,
    vectors: Vec<Vec<f32>>,
    /// Built lazily (and exactly once) the first time the selector picks
    /// HNSW while serving a query.
    hnsw: OnceLock<Box<Hnsw>>,
    flat: FlatIndex,
    queries_served: AtomicUsize,
}

impl AdaptiveVectorIndex {
    /// Create with a calibrated (or injected) cost model.
    #[must_use]
    pub fn new(dim: usize, model: CostModel, expected_queries: usize) -> Self {
        AdaptiveVectorIndex {
            dim,
            model,
            expected_queries,
            vectors: Vec::new(),
            hnsw: OnceLock::new(),
            flat: FlatIndex::new(dim),
            queries_served: AtomicUsize::new(0),
        }
    }

    /// Insert a vector.
    pub fn insert(&mut self, v: Vec<f32>) {
        self.flat.insert(v.clone());
        if let Some(h) = self.hnsw.get_mut() {
            h.insert(v.clone());
        }
        self.vectors.push(v);
    }

    /// Number of indexed vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The method the selector would use right now.
    #[must_use]
    pub fn current_method(&self) -> AccessMethod {
        self.model.choose(&Workload {
            corpus_size: self.vectors.len(),
            expected_queries: self
                .expected_queries
                .saturating_sub(self.queries_served.load(Ordering::Relaxed))
                .max(1),
            k: 10,
        })
    }

    /// Query through the currently-cheapest method, building HNSW exactly
    /// once across all threads on first use if the selector calls for it.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        self.queries_served.fetch_add(1, Ordering::Relaxed);
        match self.current_method() {
            AccessMethod::Flat => self.flat.search(query, k),
            AccessMethod::Hnsw => self
                .hnsw
                .get_or_init(|| {
                    let mut h = Hnsw::new(self.dim, HnswParams::default());
                    for v in &self.vectors {
                        h.insert(v.clone());
                    }
                    Box::new(h)
                })
                .search(query, k, 64.max(k)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A deterministic model (no machine timing) for unit tests.
    fn fixed_model() -> CostModel {
        CostModel {
            flat_ns_per_vector: 10.0,
            hnsw_ns_per_log_step: 500.0,
            hnsw_build_ns_per_vector: 5_000.0,
        }
    }

    #[test]
    fn flat_wins_small_corpora_and_few_queries() {
        let m = fixed_model();
        let w = Workload {
            corpus_size: 100,
            expected_queries: 10,
            k: 10,
        };
        assert_eq!(m.choose(&w), AccessMethod::Flat);
    }

    #[test]
    fn hnsw_wins_large_corpora_with_many_queries() {
        let m = fixed_model();
        let w = Workload {
            corpus_size: 1_000_000,
            expected_queries: 100_000,
            k: 10,
        };
        assert_eq!(m.choose(&w), AccessMethod::Hnsw);
    }

    #[test]
    fn crossover_moves_with_query_budget() {
        let m = fixed_model();
        let few = m.crossover(10, 10, 1 << 26);
        let many = m.crossover(100_000, 10, 1 << 26);
        let many_n = many.expect("many queries must cross");
        // More queries amortize the build: crossover at smaller n. (`few`
        // may be None — flat wins everywhere for 10 queries: consistent.)
        if let Some(few_n) = few {
            assert!(many_n <= few_n, "few {few_n} many {many_n}");
        }
    }

    #[test]
    fn predictions_are_monotone_in_corpus_size() {
        let m = fixed_model();
        for method in [AccessMethod::Flat, AccessMethod::Hnsw] {
            let small = m.predict(
                method,
                &Workload {
                    corpus_size: 1_000,
                    expected_queries: 100,
                    k: 10,
                },
            );
            let large = m.predict(
                method,
                &Workload {
                    corpus_size: 100_000,
                    expected_queries: 100,
                    k: 10,
                },
            );
            assert!(large > small);
        }
    }

    #[test]
    fn calibration_produces_positive_costs() {
        let m = CostModel::calibrate(16);
        assert!(m.flat_ns_per_vector > 0.0);
        assert!(m.hnsw_ns_per_log_step > 0.0);
        assert!(m.hnsw_build_ns_per_vector > 0.0);
        // The derived costs are published for inspection.
        let snap = td_obs::global().snapshot();
        assert!(snap.gauge("access.cost.flat_ns_per_vector").unwrap() > 0.0);
    }

    #[test]
    fn calibration_probes_flow_through_the_registry() {
        let reg = td_obs::Registry::new();
        let m = CostModel::calibrate_with(16, &reg);
        let snap = reg.snapshot();
        assert_eq!(
            snap.histogram("access.calibrate.flat_query_ns")
                .unwrap()
                .count,
            50
        );
        assert_eq!(
            snap.histogram("access.calibrate.hnsw_insert_ns")
                .unwrap()
                .count,
            600
        );
        assert_eq!(
            snap.histogram("access.calibrate.hnsw_query_ns")
                .unwrap()
                .count,
            50
        );
        assert!(m.hnsw_build_ns_per_vector > 0.0);
    }

    #[test]
    fn adaptive_index_serves_correct_results_through_both_methods() {
        use td_embed::model::seeded_unit_vector;
        // Model rigged so the method flips from Flat to HNSW as the
        // remaining query budget is consumed... actually flips with size:
        // start small (flat), grow (hnsw).
        let m = fixed_model();
        let mut idx = AdaptiveVectorIndex::new(16, m, 10_000);
        for i in 0..50u64 {
            idx.insert(seeded_unit_vector(i, 16));
        }
        assert_eq!(idx.current_method(), AccessMethod::Flat);
        let q = seeded_unit_vector(7, 16);
        let r = idx.search(&q, 1);
        assert_eq!(r[0].0, 7);
        for i in 50..3_000u64 {
            idx.insert(seeded_unit_vector(i, 16));
        }
        assert_eq!(idx.current_method(), AccessMethod::Hnsw);
        let r = idx.search(&q, 1);
        assert_eq!(r[0].0, 7, "HNSW path must find the exact match");
        assert_eq!(idx.len(), 3_000);
    }

    #[test]
    fn adaptive_index_is_shareable_across_threads() {
        use std::sync::Arc;
        use td_embed::model::seeded_unit_vector;
        let m = fixed_model();
        let mut idx = AdaptiveVectorIndex::new(16, m, 10_000);
        for i in 0..3_000u64 {
            idx.insert(seeded_unit_vector(i, 16));
        }
        assert_eq!(idx.current_method(), AccessMethod::Hnsw);
        let idx = Arc::new(idx);
        // All threads race the lazy HNSW build through the OnceLock; each
        // must see the exact self-match.
        let handles: Vec<_> = (0..4u64)
            .map(|t| {
                let idx = Arc::clone(&idx);
                std::thread::spawn(move || {
                    let q = seeded_unit_vector(t * 100, 16);
                    idx.search(&q, 1)[0].0
                })
            })
            .collect();
        for (t, h) in handles.into_iter().enumerate() {
            assert_eq!(h.join().unwrap() as u64, t as u64 * 100);
        }
    }
}
