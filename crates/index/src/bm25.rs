//! BM25 full-text index for keyword/metadata search (tutorial §2.3).
//!
//! Terms are interned into dense `u32` symbols through the arena-backed
//! [`Interner`] (see [`crate::intern`]), and posting lists are indexed
//! by symbol in one flat `Vec` — no string-keyed `HashMap` on the query
//! path. Score accumulation runs over a dense, epoch-marked scratch
//! array reused across the queries of a batch.

use crate::intern::Interner;
use crate::topk::TopK;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;

/// BM25 ranking parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct Bm25Params {
    /// Term-frequency saturation (`k1`, typically 1.2–2.0).
    pub k1: f64,
    /// Length normalization (`b`, typically 0.75).
    pub b: f64,
}

impl Default for Bm25Params {
    fn default() -> Self {
        Bm25Params { k1: 1.2, b: 0.75 }
    }
}

/// Lower-cased alphanumeric tokenization (runs of `[a-z0-9]`).
#[must_use]
pub fn tokenize(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in text.chars() {
        if c.is_alphanumeric() {
            cur.extend(c.to_lowercase());
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

/// Corpus-level statistics BM25 scoring depends on: document count,
/// summed document length, and per-query-term document frequencies.
///
/// Scores computed against a *subset* of the corpus (a shard) diverge
/// from whole-corpus scores unless the scorer is pinned to whole-corpus
/// statistics: idf derives from `df / num_docs` and length
/// normalization from `total_len / num_docs`. A scatter-gather
/// coordinator therefore runs keyword search in two phases — gather
/// each shard's `term_stats`, [`Bm25Stats::merge`] them, and re-scatter
/// the merged stats to [`Bm25Index::search_with_stats`].
///
/// `df` entries align index-wise with the deduplicated token sequence
/// of the query that produced them (see [`Bm25Index::term_stats`]); the
/// alignment is positional, so stats are only meaningful for the exact
/// query string they were gathered for.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bm25Stats {
    /// Total number of indexed documents.
    pub num_docs: u64,
    /// Summed token length of all indexed documents.
    pub total_len: u64,
    /// Document frequency per deduplicated query term, positional.
    pub df: Vec<u64>,
}

impl Bm25Stats {
    /// Element-wise sum of per-shard statistics. Returns `None` when
    /// the shards disagree on the query term count (stats gathered for
    /// different queries), or when `parts` is empty.
    #[must_use]
    pub fn merge(parts: &[Bm25Stats]) -> Option<Bm25Stats> {
        let first = parts.first()?;
        let mut out = Bm25Stats {
            num_docs: 0,
            total_len: 0,
            df: vec![0; first.df.len()],
        };
        for p in parts {
            if p.df.len() != first.df.len() {
                return None;
            }
            out.num_docs += p.num_docs;
            out.total_len += p.total_len;
            for (acc, d) in out.df.iter_mut().zip(&p.df) {
                *acc += d;
            }
        }
        Some(out)
    }
}

/// Dense per-thread scoring scratch, epoch-reset between queries so a
/// batch of searches re-zeroes nothing. Bounded by the largest corpus
/// scored on this thread.
#[derive(Debug, Default)]
struct ScoreScratch {
    epoch: u32,
    mark: Vec<u32>,
    score: Vec<f64>,
    touched: Vec<u32>,
}

impl ScoreScratch {
    fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.score.resize(n, 0.0);
        }
        if self.epoch == u32::MAX {
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
        self.touched.clear();
    }

    #[inline]
    fn add(&mut self, doc: u32, s: f64) {
        let i = doc as usize;
        if self.mark[i] == self.epoch {
            self.score[i] += s;
        } else {
            self.mark[i] = self.epoch;
            self.score[i] = s;
            self.touched.push(doc);
        }
    }
}

thread_local! {
    static SCRATCH: RefCell<ScoreScratch> = RefCell::new(ScoreScratch::default());
}

/// An inverted BM25 index over documents identified by `u32` ids.
/// ```
/// use td_index::{Bm25Index, Bm25Params};
///
/// let mut idx = Bm25Index::new(Bm25Params::default());
/// idx.add_document("city budget finance 2023");
/// idx.add_document("wildlife sightings dataset");
/// let hits = idx.search("municipal budget", 2);
/// assert_eq!(hits[0].0, 0);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Bm25Index {
    params: Bm25Params,
    /// Term dictionary: string → dense symbol, arena-backed.
    terms: Interner,
    /// Symbol → (doc id, term frequency), docs ascending.
    postings: Vec<Vec<(u32, u32)>>,
    doc_len: Vec<u32>,
    total_len: u64,
}

impl Bm25Index {
    /// An empty index.
    #[must_use]
    pub fn new(params: Bm25Params) -> Self {
        Bm25Index {
            params,
            terms: Interner::new(),
            postings: Vec::new(),
            doc_len: Vec::new(),
            total_len: 0,
        }
    }

    /// Add a document; returns its id (dense, insertion order).
    pub fn add_document(&mut self, text: &str) -> u32 {
        let id = self.doc_len.len() as u32;
        let tokens = tokenize(text);
        // Intern in token order (first occurrence fixes the symbol), then
        // count term frequencies over the sorted symbol run — fully
        // deterministic, so the posting layout (and anything serialized
        // from it) is identical across runs.
        let mut syms: Vec<u32> = Vec::with_capacity(tokens.len());
        for t in &tokens {
            let sym = self.terms.intern(t);
            if sym as usize == self.postings.len() {
                self.postings.push(Vec::new());
            }
            syms.push(sym);
        }
        syms.sort_unstable();
        let mut i = 0;
        while i < syms.len() {
            let sym = syms[i];
            let mut f = 1u32;
            while i + 1 < syms.len() && syms[i + 1] == sym {
                f += 1;
                i += 1;
            }
            self.postings[sym as usize].push((id, f));
            i += 1;
        }
        self.doc_len.push(tokens.len() as u32);
        self.total_len += tokens.len() as u64;
        id
    }

    /// Number of documents.
    #[must_use]
    pub fn num_docs(&self) -> usize {
        self.doc_len.len()
    }

    /// True if no documents are indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.doc_len.is_empty()
    }

    /// BM25 idf with the standard +1 smoothing (never negative).
    fn idf(n: f64, df: f64) -> f64 {
        (((n - df + 0.5) / (df + 0.5)) + 1.0).ln()
    }

    /// Posting list of a term string, if indexed.
    fn postings_of(&self, term: &str) -> Option<&[(u32, u32)]> {
        self.terms
            .get(term)
            .map(|sym| self.postings[sym as usize].as_slice())
    }

    /// This index's own statistics for `query`'s terms — the exact
    /// statistics [`Self::search`] scores with. Merge per-shard stats
    /// with [`Bm25Stats::merge`] to score against a distributed corpus.
    #[must_use]
    pub fn term_stats(&self, query: &str) -> Bm25Stats {
        let mut qterms = tokenize(query);
        qterms.dedup();
        Bm25Stats {
            num_docs: self.doc_len.len() as u64,
            total_len: self.total_len,
            df: qterms
                .iter()
                .map(|t| self.postings_of(t).map_or(0, |pl| pl.len() as u64))
                .collect(),
        }
    }

    /// Top-k documents for a free-text query, `(doc, score)` descending.
    /// Documents matching no query term are not returned.
    #[must_use]
    pub fn search(&self, query: &str, k: usize) -> Vec<(u32, f64)> {
        self.search_with_stats(query, k, &self.term_stats(query))
    }

    /// [`Self::search`] over a batch of `(query, k)` pairs, answered in
    /// input order over one shared scoring scratch — byte-identical to
    /// calling `search` once per query.
    #[must_use]
    pub fn search_batch(&self, queries: &[(&str, usize)]) -> Vec<Vec<(u32, f64)>> {
        queries.iter().map(|&(q, k)| self.search(q, k)).collect()
    }

    /// [`Self::search`], but scored with pinned corpus statistics
    /// instead of this index's own. With `stats == self.term_stats(query)`
    /// this is bit-identical to `search`; with merged multi-shard stats
    /// every shard scores its local documents on the global scale, so a
    /// coordinator can merge per-shard top-k lists exactly. `stats.df`
    /// must align with this query's deduplicated terms (same length);
    /// mismatched stats return no hits rather than mis-scored ones.
    #[must_use]
    pub fn search_with_stats(&self, query: &str, k: usize, stats: &Bm25Stats) -> Vec<(u32, f64)> {
        if self.doc_len.is_empty() || k == 0 || stats.num_docs == 0 {
            return Vec::new();
        }
        let avg_len = stats.total_len as f64 / stats.num_docs as f64;
        let n = stats.num_docs as f64;
        let mut qterms = tokenize(query);
        qterms.dedup();
        if stats.df.len() != qterms.len() {
            return Vec::new();
        }
        SCRATCH.with(|cell| {
            let s = &mut cell.borrow_mut();
            s.begin(self.doc_len.len());
            for (term, &df) in qterms.iter().zip(&stats.df) {
                let Some(pl) = self.postings_of(term) else {
                    continue;
                };
                let idf = Self::idf(n, df as f64);
                for &(doc, f) in pl {
                    let f = f as f64;
                    let len_norm = 1.0 - self.params.b
                        + self.params.b * f64::from(self.doc_len[doc as usize]) / avg_len.max(1e-9);
                    let sc = idf * (f * (self.params.k1 + 1.0)) / (f + self.params.k1 * len_norm);
                    s.add(doc, sc);
                }
            }
            // Sorted drain: tied BM25 scores must rank deterministically.
            s.touched.sort_unstable();
            let mut topk = TopK::new(k);
            for &doc in &s.touched {
                topk.push(s.score[doc as usize], doc);
            }
            topk.into_sorted()
                .into_iter()
                .map(|(sc, d)| (d, sc))
                .collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx(docs: &[&str]) -> Bm25Index {
        let mut i = Bm25Index::new(Bm25Params::default());
        for d in docs {
            i.add_document(d);
        }
        i
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(
            tokenize("City Budgets, FY-2023!"),
            vec!["city", "budgets", "fy", "2023"]
        );
        assert!(tokenize("  ,,  ").is_empty());
    }

    #[test]
    fn exact_topic_match_ranks_first() {
        let i = idx(&[
            "city budget annual finance",
            "wildlife animals habitat",
            "city population census",
        ]);
        let r = i.search("city budget", 3);
        assert_eq!(r[0].0, 0);
    }

    #[test]
    fn rare_terms_outweigh_common_ones() {
        let i = idx(&[
            "data data data zebra",
            "data survey",
            "data report",
            "data analysis",
        ]);
        // "zebra" appears in one doc: it should dominate the ubiquitous "data".
        let r = i.search("data zebra", 4);
        assert_eq!(r[0].0, 0);
        assert!(r[0].1 > r[1].1 * 1.5);
    }

    #[test]
    fn unmatched_documents_are_absent() {
        let i = idx(&["apples oranges", "trains planes"]);
        let r = i.search("apples", 10);
        assert_eq!(r.len(), 1);
        assert_eq!(r[0].0, 0);
    }

    #[test]
    fn no_hits_for_unknown_terms() {
        let i = idx(&["apples oranges"]);
        assert!(i.search("quantum chromodynamics", 5).is_empty());
    }

    #[test]
    fn length_normalization_prefers_concise_docs() {
        let long: String = std::iter::repeat_n("filler", 200)
            .collect::<Vec<_>>()
            .join(" ")
            + " target";
        let i = idx(&[&long, "short target doc"]);
        let r = i.search("target", 2);
        assert_eq!(r[0].0, 1, "short doc should outrank padded doc");
    }

    #[test]
    fn empty_query_and_empty_index() {
        let i = idx(&["a b c"]);
        assert!(i.search("", 3).is_empty());
        let e = Bm25Index::new(Bm25Params::default());
        assert!(e.search("a", 3).is_empty());
    }

    #[test]
    fn duplicate_query_terms_count_once() {
        let i = idx(&["apple pie", "apple apple apple tart"]);
        let once = i.search("apple", 2);
        let thrice = i.search("apple apple apple", 2);
        assert_eq!(once, thrice);
    }

    #[test]
    fn batch_matches_sequential_exactly() {
        let i = idx(&[
            "city budget annual finance report",
            "city population census data",
            "wildlife sightings dataset",
            "annual wildlife census",
            "finance data city",
        ]);
        let queries: Vec<(&str, usize)> = vec![
            ("city budget", 3),
            ("census", 2),
            ("wildlife data", 5),
            ("city budget", 1),
            ("", 4),
        ];
        let batch = i.search_batch(&queries);
        for (qi, &(q, k)) in queries.iter().enumerate() {
            let single = i.search(q, k);
            assert_eq!(batch[qi], single, "query {qi} diverged");
            // Debug-render equality pins byte-identical float formatting.
            assert_eq!(format!("{:?}", batch[qi]), format!("{single:?}"));
        }
    }
}
