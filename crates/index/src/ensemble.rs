//! LSH Ensemble: internet-scale *containment* search (Zhu et al., VLDB 2016).
//!
//! Jaccard-tuned LSH is biased against joins between a small query and a
//! large indexed domain: containment can be 1.0 while Jaccard is tiny. LSH
//! Ensemble fixes this by (i) partitioning indexed sets by cardinality
//! (equi-depth, approximating the paper's optimal partitioning), and
//! (ii) converting the containment threshold `t` into a *per-partition*
//! Jaccard threshold using the partition's upper cardinality bound `u`:
//! `j(t) = t·q / (q + u − t·q)` for query size `q`. Each partition's LSH is
//! then queried with a band count matched to its own threshold, and
//! candidates are re-ranked by signature-estimated containment.
//!
//! Signatures live in one id-sorted flat array (binary-search lookup)
//! rather than a hash map, and every banding table is frozen at build
//! time, so the verification loop touches contiguous memory only.

use crate::lsh::MinHashLsh;
use serde::{Deserialize, Serialize};
use td_sketch::minhash::MinHashSignature;

/// Row counts for which banding tables are precomputed. Low thresholds need
/// small `r` (a single agreeing MinHash row suffices as evidence); high
/// thresholds need large `r` for selectivity. Precomputing all of them is
/// how the original system supports *dynamic* thresholds at query time.
const ROW_CHOICES: [usize; 4] = [1, 2, 4, 8];

/// Target recall at exactly the threshold: the band count is chosen so the
/// S-curve reaches this probability at the converted Jaccard threshold.
const TARGET_RECALL: f64 = 0.95;

/// One cardinality partition with banding tables for several row counts.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct Partition {
    /// Largest set size in this partition.
    upper: usize,
    /// `(rows, table)` pairs, one per element of [`ROW_CHOICES`] that fits.
    tables: Vec<(usize, MinHashLsh)>,
    /// Ids stored in this partition (for recall accounting).
    members: Vec<u32>,
}

/// LSH Ensemble index over MinHash signatures.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LshEnsemble {
    partitions: Vec<Partition>,
    /// Ascending ids for all indexed sets; parallel to `sigs`.
    ids: Vec<u32>,
    /// Signature for `ids[i]`, for candidate verification.
    sigs: Vec<MinHashSignature>,
    /// Signature length.
    k: usize,
}

/// Bands needed for [`TARGET_RECALL`] at Jaccard `j` with `r` rows:
/// solve `1 - (1 - j^r)^b >= R`.
fn bands_needed(j: f64, r: usize) -> f64 {
    let p = j.powi(r as i32);
    if p <= 0.0 {
        return f64::INFINITY;
    }
    if p >= 1.0 {
        return 1.0;
    }
    // ln_1p keeps precision for tiny p, where (1.0 - p) == 1.0 in f64 and a
    // naive ln would return 0 (making every row count look feasible).
    ((1.0 - TARGET_RECALL).ln() / (-p).ln_1p()).ceil().max(1.0)
}

impl LshEnsemble {
    /// Build from `(id, signature)` pairs with `num_partitions` equi-depth
    /// cardinality partitions. Signatures must share a `MinHasher`; longer
    /// signatures allow stricter row counts. An empty `items` builds an
    /// empty ensemble (every query answers nothing) — the state a durable
    /// pipeline restores into on its very first boot.
    ///
    /// # Panics
    /// Panics if `num_partitions == 0`.
    #[must_use]
    pub fn build(items: Vec<(u32, MinHashSignature)>, num_partitions: usize) -> Self {
        assert!(num_partitions > 0, "need at least one partition");
        let k = items.first().map_or(0, |(_, s)| s.values.len());

        let mut sorted = items;
        sorted.sort_by_key(|(_, s)| s.set_size);
        let n = sorted.len();
        // `chunks` rejects a zero size, which `n == 0` would produce; one
        // is harmless there (no chunks to take).
        let per = n.div_ceil(num_partitions).max(1);

        let mut partitions = Vec::with_capacity(num_partitions);
        let mut store: Vec<(u32, MinHashSignature)> = Vec::with_capacity(n);
        for chunk in sorted.chunks(per) {
            let Some(last) = chunk.last() else { continue };
            let upper = last.1.set_size.max(1);
            let mut tables = Vec::new();
            for &r in &ROW_CHOICES {
                let bands = k / r;
                if bands == 0 {
                    continue;
                }
                let mut lsh = MinHashLsh::new(bands, r);
                for (id, sig) in chunk {
                    lsh.insert(*id, sig);
                }
                // Build-then-query: sort the band buckets once so every
                // probe binary-searches contiguous memory.
                lsh.freeze();
                tables.push((r, lsh));
            }
            let members: Vec<u32> = chunk.iter().map(|(id, _)| *id).collect();
            for (id, sig) in chunk {
                store.push((*id, sig.clone()));
            }
            partitions.push(Partition {
                upper,
                tables,
                members,
            });
        }
        // Id-sorted parallel arrays so verification does a binary search
        // instead of a hash lookup per raw candidate.
        store.sort_by_key(|&(id, _)| id);
        let ids: Vec<u32> = store.iter().map(|&(id, _)| id).collect();
        let sigs: Vec<MinHashSignature> = store.into_iter().map(|(_, s)| s).collect();
        LshEnsemble {
            partitions,
            ids,
            sigs,
            k,
        }
    }

    /// Number of indexed sets.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if nothing was indexed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Number of partitions.
    #[must_use]
    pub fn num_partitions(&self) -> usize {
        self.partitions.len()
    }

    /// The per-partition Jaccard threshold for containment `t`, query size
    /// `q`, partition upper bound `u`.
    #[must_use]
    pub fn jaccard_threshold(t: f64, q: usize, u: usize) -> f64 {
        let qf = q as f64;
        let denom = qf + u as f64 - t * qf;
        if denom <= 0.0 {
            1.0
        } else {
            (t * qf / denom).clamp(0.0, 1.0)
        }
    }

    /// Sets whose estimated containment of the query reaches `t`,
    /// with their estimates, sorted descending.
    ///
    /// Candidates are produced per partition with a band count matched to
    /// that partition's Jaccard threshold, then verified against their
    /// stored signatures (`containment_in` conversion).
    #[must_use]
    pub fn query_containment(&self, query: &MinHashSignature, t: f64) -> Vec<(u32, f64)> {
        self.query_containment_with_stats(query, t).0
    }

    /// Like [`Self::query_containment`], additionally returning the number
    /// of raw candidates fetched from the banding tables *before*
    /// signature verification — the work the partitioning minimizes.
    #[must_use]
    pub fn query_containment_with_stats(
        &self,
        query: &MinHashSignature,
        t: f64,
    ) -> (Vec<(u32, f64)>, usize) {
        let q = query.set_size.max(1);
        let mut raw_candidates = 0usize;
        // Each id lives in exactly one partition and `query_bands` already
        // deduplicates within a table, so candidates are unique: a plain
        // Vec replaces the old hash-map accumulator without changing the
        // result set.
        let mut v: Vec<(u32, f64)> = Vec::new();
        for p in &self.partitions {
            let j = Self::jaccard_threshold(t, q, p.upper);
            // Pick the largest row count whose target-recall band budget
            // fits in the signature (stricter rows = fewer false positives),
            // then use exactly that many bands.
            let mut choice: Option<(usize, usize)> = None; // (rows, bands)
            for &(r, _) in &p.tables {
                let need = bands_needed(j, r);
                if need <= (self.k / r) as f64 {
                    choice = Some((r, need as usize));
                }
            }
            // Nothing reaches target recall: fall back to the most
            // forgiving table with all its bands.
            let (rows, bands) = choice.unwrap_or((ROW_CHOICES[0], self.k));
            let Some(table) = p
                .tables
                .iter()
                .find(|&&(r, _)| r == rows)
                .map(|(_, lsh)| lsh)
            else {
                continue;
            };
            for id in table.query_bands(query, bands) {
                raw_candidates += 1;
                let Ok(pos) = self.ids.binary_search(&id) else {
                    continue;
                };
                let est = query.containment_in(&self.sigs[pos]);
                if est >= t {
                    v.push((id, est));
                }
            }
        }
        v.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let reg = td_obs::global();
        reg.counter("index.ensemble.queries").inc();
        reg.counter("index.ensemble.partition_probes")
            .add(self.partitions.len() as u64);
        reg.counter("index.ensemble.raw_candidates")
            .add(raw_candidates as u64);
        reg.counter("index.ensemble.verified_hits")
            .add(v.len() as u64);
        (v, raw_candidates)
    }

    /// Batched [`Self::query_containment`]: one call answers every
    /// `(query, threshold)` pair, results in input order. Answers are
    /// byte-identical to issuing the singles sequentially.
    #[must_use]
    pub fn query_containment_batch(
        &self,
        queries: &[(&MinHashSignature, f64)],
    ) -> Vec<Vec<(u32, f64)>> {
        queries
            .iter()
            .map(|&(sig, t)| self.query_containment(sig, t))
            .collect()
    }

    /// Top-k by estimated containment: runs a low-threshold containment
    /// query and truncates.
    #[must_use]
    pub fn top_k_containment(&self, query: &MinHashSignature, k: usize) -> Vec<(u32, f64)> {
        let mut v = self.query_containment(query, 0.05);
        v.truncate(k);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_sketch::minhash::MinHasher;

    fn sig(h: &MinHasher, range: std::ops::Range<u32>) -> MinHashSignature {
        let toks: Vec<String> = range.map(|i| format!("v{i}")).collect();
        h.sign(toks.iter().map(String::as_str))
    }

    /// Corpus with wildly skewed cardinalities: ids 0..10 are large sets
    /// (5k) fully containing the query; 10..20 are small sets (100) with
    /// only partial overlap; 20..60 are disjoint noise of mixed size.
    fn corpus(h: &MinHasher) -> Vec<(u32, MinHashSignature)> {
        let mut items = Vec::new();
        for i in 0..10u32 {
            items.push((i, sig(h, 0..(5000 + i * 100)))); // contain [0,200)
        }
        for i in 10..20u32 {
            items.push((i, sig(h, (i - 10) * 20..((i - 10) * 20 + 100)))); // partial
        }
        for i in 20..60u32 {
            let base = 100_000 + i * 10_000;
            let len = if i % 2 == 0 { 80 } else { 4_000 };
            items.push((i, sig(h, base..base + len)));
        }
        items
    }

    #[test]
    fn jaccard_threshold_conversion() {
        // q=100 fully contained in u=10000: j = 100/10000 ≈ 0.01.
        let j = LshEnsemble::jaccard_threshold(1.0, 100, 10_000);
        assert!((j - 0.01).abs() < 0.001, "j {j}");
        // u = q, t=1: j = 1.
        let j2 = LshEnsemble::jaccard_threshold(1.0, 100, 100);
        assert!((j2 - 1.0).abs() < 1e-9);
        // Monotone in t.
        assert!(
            LshEnsemble::jaccard_threshold(0.5, 100, 1000)
                < LshEnsemble::jaccard_threshold(0.9, 100, 1000)
        );
    }

    #[test]
    fn finds_large_containing_sets_that_jaccard_lsh_misses() {
        let h = MinHasher::new(256, 1);
        let ens = LshEnsemble::build(corpus(&h), 8);
        let q = sig(&h, 0..200);
        let hits = ens.query_containment(&q, 0.8);
        let ids: Vec<u32> = hits.iter().map(|&(id, _)| id).collect();
        // All ten big containing sets should be found.
        let found = (0..10).filter(|i| ids.contains(i)).count();
        assert!(found >= 8, "found only {found}/10 containing supersets");
        // Disjoint noise should not pass the containment filter.
        assert!(ids.iter().all(|&id| id < 20), "noise leaked: {ids:?}");
    }

    #[test]
    fn threshold_filters_partial_overlaps() {
        let h = MinHasher::new(256, 1);
        let ens = LshEnsemble::build(corpus(&h), 8);
        let q = sig(&h, 0..200);
        let strict = ens.query_containment(&q, 0.9);
        let loose = ens.query_containment(&q, 0.2);
        assert!(loose.len() >= strict.len());
    }

    #[test]
    fn top_k_ranks_by_containment() {
        let h = MinHasher::new(256, 1);
        let ens = LshEnsemble::build(corpus(&h), 8);
        let q = sig(&h, 0..200);
        let top = ens.top_k_containment(&q, 5);
        assert_eq!(top.len(), 5);
        for w in top.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // The best hits are the full containers.
        assert!(top[0].1 > 0.8);
        assert!(top[0].0 < 10);
    }

    #[test]
    fn partitions_are_equi_depth() {
        let h = MinHasher::new(64, 1);
        let items: Vec<(u32, MinHashSignature)> =
            (0..100u32).map(|i| (i, sig(&h, 0..(10 + i * 7)))).collect();
        let ens = LshEnsemble::build(items, 4);
        assert_eq!(ens.num_partitions(), 4);
        assert_eq!(ens.len(), 100);
    }

    #[test]
    fn single_partition_still_works() {
        let h = MinHasher::new(128, 1);
        let ens = LshEnsemble::build(corpus(&h), 1);
        let q = sig(&h, 0..200);
        let hits = ens.query_containment(&q, 0.8);
        assert!(!hits.is_empty());
    }

    #[test]
    fn empty_build_answers_nothing() {
        let ens = LshEnsemble::build(Vec::new(), 4);
        assert!(ens.is_empty());
        let h = MinHasher::new(128, 7);
        let probe = sig(&h, 0..10);
        assert!(ens.query_containment(&probe, 0.0).is_empty());
        assert!(ens.top_k_containment(&probe, 5).is_empty());
    }

    #[test]
    fn batch_matches_sequential_exactly() {
        let h = MinHasher::new(256, 1);
        let ens = LshEnsemble::build(corpus(&h), 8);
        let qs = [sig(&h, 0..200), sig(&h, 40..140), sig(&h, 0..60)];
        let reqs: Vec<(&MinHashSignature, f64)> = qs.iter().zip([0.8, 0.3, 0.05]).collect();
        let batched = ens.query_containment_batch(&reqs);
        for (i, &(q, t)) in reqs.iter().enumerate() {
            assert_eq!(
                format!("{:?}", batched[i]),
                format!("{:?}", ens.query_containment(q, t)),
                "query {i}"
            );
        }
    }
}
