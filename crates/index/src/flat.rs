//! Flat (brute-force) vector index: the exact baseline every approximate
//! index is measured against.
//!
//! Vectors are packed end-to-end in one `Vec<f32>` arena (`dim` stride)
//! instead of a `Vec<Vec<f32>>` of separate heap allocations, so a scan
//! walks one contiguous buffer. [`FlatIndex::search_batch`] answers many
//! queries in a single corpus pass, amortizing that scan across the batch.

use crate::topk::TopK;
use serde::{Deserialize, Serialize};
use td_embed::vector::{dot, normalize};

/// Exact cosine top-k over normalized vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    /// All vectors, normalized, packed contiguously with stride `dim`.
    data: Vec<f32>,
}

impl FlatIndex {
    /// An empty index for dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        FlatIndex {
            dim,
            data: Vec::new(),
        }
    }

    /// Insert a vector (normalized internally); returns its id.
    pub fn insert(&mut self, vector: Vec<f32>) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let mut v = vector;
        normalize(&mut v);
        let id = (self.data.len() / self.dim) as u32;
        self.data.extend_from_slice(&v);
        id
    }

    /// Number of indexed vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.data.len() / self.dim
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Exact top-k by cosine similarity, `(id, similarity)` descending.
    #[must_use]
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if self.data.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut topk = TopK::new(k);
        for (i, v) in self.data.chunks_exact(self.dim).enumerate() {
            topk.push(dot(v, &q) as f64, i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, id)| (id, s as f32))
            .collect()
    }

    /// Batched [`Self::search`]: all queries are answered in a single pass
    /// over the packed corpus (each vector is loaded once and scored
    /// against every query while cache-hot), results in input order and
    /// byte-identical to the sequential path.
    #[must_use]
    pub fn search_batch(&self, queries: &[(&[f32], usize)]) -> Vec<Vec<(u32, f32)>> {
        for &(q, _) in queries {
            assert_eq!(q.len(), self.dim, "dimension mismatch");
        }
        if queries.is_empty() {
            return Vec::new();
        }
        let normed: Vec<Vec<f32>> = queries
            .iter()
            .map(|&(q, _)| {
                let mut v = q.to_vec();
                normalize(&mut v);
                v
            })
            .collect();
        let mut tops: Vec<TopK<u32>> = queries.iter().map(|&(_, k)| TopK::new(k.max(1))).collect();
        if !self.data.is_empty() {
            for (i, v) in self.data.chunks_exact(self.dim).enumerate() {
                for (q, top) in normed.iter().zip(tops.iter_mut()) {
                    top.push(dot(v, q) as f64, i as u32);
                }
            }
        }
        tops.into_iter()
            .zip(queries)
            .map(|(top, &(_, k))| {
                if self.data.is_empty() || k == 0 {
                    Vec::new()
                } else {
                    top.into_sorted()
                        .into_iter()
                        .map(|(s, id)| (id, s as f32))
                        .collect()
                }
            })
            .collect()
    }

    /// Access a stored (normalized) vector.
    #[must_use]
    pub fn vector(&self, id: u32) -> &[f32] {
        let start = id as usize * self.dim;
        &self.data[start..start + self.dim]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors() {
        let mut f = FlatIndex::new(3);
        f.insert(vec![1.0, 0.0, 0.0]);
        f.insert(vec![0.0, 1.0, 0.0]);
        f.insert(vec![0.9, 0.1, 0.0]);
        let r = f.search(&[1.0, 0.0, 0.0], 2);
        assert_eq!(r[0].0, 0);
        assert_eq!(r[1].0, 2);
    }

    #[test]
    fn normalization_makes_scale_irrelevant() {
        let mut f = FlatIndex::new(2);
        f.insert(vec![100.0, 0.0]);
        f.insert(vec![0.001, 0.001]);
        let r = f.search(&[5.0, 0.0], 1);
        assert_eq!(r[0].0, 0);
        assert!((r[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn k_larger_than_len() {
        let mut f = FlatIndex::new(2);
        f.insert(vec![1.0, 0.0]);
        assert_eq!(f.search(&[1.0, 0.0], 10).len(), 1);
    }

    #[test]
    fn empty_and_zero_k() {
        let f = FlatIndex::new(2);
        assert!(f.search(&[1.0, 0.0], 3).is_empty());
        let mut f2 = FlatIndex::new(2);
        f2.insert(vec![1.0, 0.0]);
        assert!(f2.search(&[1.0, 0.0], 0).is_empty());
    }

    #[test]
    fn vector_accessor_round_trips() {
        let mut f = FlatIndex::new(4);
        let a = f.insert(vec![2.0, 0.0, 0.0, 0.0]);
        let b = f.insert(vec![0.0, 0.0, 3.0, 0.0]);
        assert_eq!(f.vector(a), &[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(f.vector(b), &[0.0, 0.0, 1.0, 0.0]);
        assert_eq!(f.len(), 2);
    }

    #[test]
    fn batch_matches_sequential_exactly() {
        let mut f = FlatIndex::new(3);
        for i in 0..40u32 {
            let x = (i % 7) as f32 + 0.25;
            let y = (i % 5) as f32 - 1.5;
            let z = (i % 3) as f32 * 0.5 + 0.1;
            f.insert(vec![x, y, z]);
        }
        let queries: Vec<Vec<f32>> = vec![
            vec![1.0, 0.0, 0.0],
            vec![0.3, -0.7, 0.2],
            vec![2.0, 2.0, 2.0],
            vec![0.0, 1.0, 1.0],
        ];
        let reqs: Vec<(&[f32], usize)> = queries
            .iter()
            .zip([1usize, 4, 9, 0])
            .map(|(q, k)| (q.as_slice(), k))
            .collect();
        let batched = f.search_batch(&reqs);
        for (i, &(q, k)) in reqs.iter().enumerate() {
            let single = f.search(q, k);
            assert_eq!(
                format!("{:?}", batched[i]),
                format!("{single:?}"),
                "query {i}"
            );
        }
        assert!(f.search_batch(&[]).is_empty());
    }
}
