//! Flat (brute-force) vector index: the exact baseline every approximate
//! index is measured against.

use crate::topk::TopK;
use serde::{Deserialize, Serialize};
use td_embed::vector::{dot, normalize};

/// Exact cosine top-k over normalized vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    vectors: Vec<Vec<f32>>,
}

impl FlatIndex {
    /// An empty index for dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0`.
    #[must_use]
    pub fn new(dim: usize) -> Self {
        assert!(dim > 0);
        FlatIndex {
            dim,
            vectors: Vec::new(),
        }
    }

    /// Insert a vector (normalized internally); returns its id.
    pub fn insert(&mut self, vector: Vec<f32>) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let mut v = vector;
        normalize(&mut v);
        self.vectors.push(v);
        (self.vectors.len() - 1) as u32
    }

    /// Number of indexed vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Exact top-k by cosine similarity, `(id, similarity)` descending.
    #[must_use]
    pub fn search(&self, query: &[f32], k: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        if self.vectors.is_empty() || k == 0 {
            return Vec::new();
        }
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut topk = TopK::new(k);
        for (i, v) in self.vectors.iter().enumerate() {
            topk.push(dot(v, &q) as f64, i as u32);
        }
        topk.into_sorted()
            .into_iter()
            .map(|(s, id)| (id, s as f32))
            .collect()
    }

    /// Access a stored (normalized) vector.
    #[must_use]
    pub fn vector(&self, id: u32) -> &[f32] {
        &self.vectors[id as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finds_exact_neighbors() {
        let mut f = FlatIndex::new(3);
        f.insert(vec![1.0, 0.0, 0.0]);
        f.insert(vec![0.0, 1.0, 0.0]);
        f.insert(vec![0.9, 0.1, 0.0]);
        let r = f.search(&[1.0, 0.0, 0.0], 2);
        assert_eq!(r[0].0, 0);
        assert_eq!(r[1].0, 2);
    }

    #[test]
    fn normalization_makes_scale_irrelevant() {
        let mut f = FlatIndex::new(2);
        f.insert(vec![100.0, 0.0]);
        f.insert(vec![0.001, 0.001]);
        let r = f.search(&[5.0, 0.0], 1);
        assert_eq!(r[0].0, 0);
        assert!((r[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn k_larger_than_len() {
        let mut f = FlatIndex::new(2);
        f.insert(vec![1.0, 0.0]);
        assert_eq!(f.search(&[1.0, 0.0], 10).len(), 1);
    }

    #[test]
    fn empty_and_zero_k() {
        let f = FlatIndex::new(2);
        assert!(f.search(&[1.0, 0.0], 3).is_empty());
        let mut f2 = FlatIndex::new(2);
        f2.insert(vec![1.0, 0.0]);
        assert!(f2.search(&[1.0, 0.0], 0).is_empty());
    }
}
