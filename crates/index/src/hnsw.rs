//! HNSW: Hierarchical Navigable Small World graphs for approximate
//! nearest-neighbor search over dense vectors (Malkov & Yashunin, 2020) —
//! the graph index Starmie uses for column-embedding retrieval.
//!
//! Similarity is cosine; inserted vectors are L2-normalized so cosine
//! reduces to dot product. Level assignment is derived from the item id
//! through the crate's seeded hash, so builds are deterministic.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashSet};
use td_embed::vector::{dot, normalize};
use td_sketch::hash::hash_u64;

/// Construction/search parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HnswParams {
    /// Max neighbors per node on layers > 0 (`M`).
    pub m: usize,
    /// Max neighbors on layer 0 (`M0`, conventionally `2M`).
    pub m0: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Seed for level assignment.
    pub seed: u64,
}

impl Default for HnswParams {
    fn default() -> Self {
        HnswParams {
            m: 16,
            m0: 32,
            ef_construction: 100,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
struct Candidate {
    sim: f32,
    id: u32,
}

impl Eq for Candidate {}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        self.sim.total_cmp(&other.sim).then(other.id.cmp(&self.id))
    }
}

/// An HNSW index over unit vectors with cosine similarity.
/// ```
/// use td_index::{Hnsw, HnswParams};
/// use td_embed::seeded_unit_vector;
///
/// let mut index = Hnsw::new(32, HnswParams::default());
/// for i in 0..200 {
///     index.insert(seeded_unit_vector(i, 32));
/// }
/// let query = seeded_unit_vector(42, 32);
/// let hits = index.search(&query, 3, 32);
/// assert_eq!(hits[0].0, 42); // the vector itself is its own neighbor
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Hnsw {
    params: HnswParams,
    dim: usize,
    vectors: Vec<Vec<f32>>,
    /// `neighbors[node][level]` — adjacency per level (level 0 first).
    neighbors: Vec<Vec<Vec<u32>>>,
    entry: Option<u32>,
    max_level: usize,
    /// `1 / ln(M)`.
    level_mult: f64,
}

impl Hnsw {
    /// An empty index for vectors of dimension `dim`.
    ///
    /// # Panics
    /// Panics if `dim == 0` or `params.m == 0`.
    #[must_use]
    pub fn new(dim: usize, params: HnswParams) -> Self {
        assert!(dim > 0 && params.m > 0);
        Hnsw {
            params,
            dim,
            vectors: Vec::new(),
            neighbors: Vec::new(),
            entry: None,
            max_level: 0,
            level_mult: 1.0 / (params.m as f64).ln().max(f64::MIN_POSITIVE),
        }
    }

    /// Number of indexed vectors.
    #[must_use]
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Deterministic geometric level from the node id.
    fn assign_level(&self, id: u32) -> usize {
        let u = (hash_u64(id as u64, self.params.seed) as f64 + 1.0) / (u64::MAX as f64 + 2.0);
        ((-u.ln()) * self.level_mult).floor() as usize
    }

    #[inline]
    fn sim(&self, a: u32, v: &[f32]) -> f32 {
        dot(&self.vectors[a as usize], v)
    }

    /// Greedy best-first beam search on one level; returns up to `ef`
    /// closest nodes as a min-heap-extracted sorted vec (descending sim),
    /// plus the number of nodes visited (= distance evaluations).
    fn search_level(
        &self,
        query: &[f32],
        entry: u32,
        ef: usize,
        level: usize,
    ) -> (Vec<Candidate>, usize) {
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(entry);
        let e = Candidate {
            sim: self.sim(entry, query),
            id: entry,
        };
        // `frontier`: max-heap by sim (explore best first).
        let mut frontier = BinaryHeap::new();
        frontier.push(e);
        // `best`: bounded min-set of current ef best (implemented as
        // max-heap of Reverse-like by negated ordering via peek-min trick:
        // keep a Vec-backed BinaryHeap of Candidate with custom compare by
        // -sim using Reverse wrapper).
        let mut best: BinaryHeap<std::cmp::Reverse<Candidate>> = BinaryHeap::new();
        best.push(std::cmp::Reverse(e));
        while let Some(cur) = frontier.pop() {
            let worst = best.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
            if cur.sim < worst && best.len() >= ef {
                break;
            }
            for &nb in &self.neighbors[cur.id as usize][level] {
                if !visited.insert(nb) {
                    continue;
                }
                let s = self.sim(nb, query);
                let worst = best.peek().map_or(f32::NEG_INFINITY, |r| r.0.sim);
                if best.len() < ef || s > worst {
                    let c = Candidate { sim: s, id: nb };
                    frontier.push(c);
                    best.push(std::cmp::Reverse(c));
                    if best.len() > ef {
                        best.pop();
                    }
                }
            }
        }
        let visited_count = visited.len();
        let mut out: Vec<Candidate> = best.into_iter().map(|r| r.0).collect();
        out.sort_by(|a, b| b.cmp(a));
        (out, visited_count)
    }

    /// Insert a vector; it is normalized internally. Returns the node id.
    pub fn insert(&mut self, vector: Vec<f32>) -> u32 {
        assert_eq!(vector.len(), self.dim, "dimension mismatch");
        let mut v = vector;
        normalize(&mut v);
        let id = self.vectors.len() as u32;
        let level = self.assign_level(id);
        self.vectors.push(v);
        self.neighbors.push(vec![Vec::new(); level + 1]);

        let Some(mut cur) = self.entry else {
            self.entry = Some(id);
            self.max_level = level;
            return id;
        };

        let query = self.vectors[id as usize].clone();
        // Greedy descent through levels above the new node's level.
        for l in ((level + 1)..=self.max_level).rev() {
            loop {
                let mut improved = false;
                let cur_sim = self.sim(cur, &query);
                for &nb in &self.neighbors[cur as usize][l] {
                    if self.sim(nb, &query) > cur_sim {
                        cur = nb;
                        improved = true;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        // Beam search + connect on each level from min(level, max_level) down.
        for l in (0..=level.min(self.max_level)).rev() {
            let (found, _) = self.search_level(&query, cur, self.params.ef_construction, l);
            cur = found.first().map_or(cur, |c| c.id);
            let m_max = if l == 0 {
                self.params.m0
            } else {
                self.params.m
            };
            let selected: Vec<u32> = found.iter().take(self.params.m).map(|c| c.id).collect();
            self.neighbors[id as usize][l] = selected.clone();
            for nb in selected {
                let list = &mut self.neighbors[nb as usize][l];
                list.push(id);
                if list.len() > m_max {
                    // Prune: keep the m_max most similar to nb.
                    let base = self.vectors[nb as usize].clone();
                    let mut scored: Vec<(f32, u32)> = self.neighbors[nb as usize][l]
                        .iter()
                        .map(|&x| (dot(&self.vectors[x as usize], &base), x))
                        .collect();
                    scored.sort_by(|a, b| b.0.total_cmp(&a.0));
                    scored.truncate(m_max);
                    self.neighbors[nb as usize][l] = scored.into_iter().map(|(_, x)| x).collect();
                }
            }
        }
        if level > self.max_level {
            self.max_level = level;
            self.entry = Some(id);
        }
        id
    }

    /// Approximate top-k by cosine similarity with beam width `ef`
    /// (`ef >= k` recommended). Returns `(id, similarity)` descending.
    #[must_use]
    pub fn search(&self, query: &[f32], k: usize, ef: usize) -> Vec<(u32, f32)> {
        assert_eq!(query.len(), self.dim, "dimension mismatch");
        let Some(mut cur) = self.entry else {
            return Vec::new();
        };
        let mut q = query.to_vec();
        normalize(&mut q);
        let mut descent_hops = 0u64;
        for l in (1..=self.max_level).rev() {
            loop {
                let mut improved = false;
                let cur_sim = self.sim(cur, &q);
                for &nb in &self.neighbors[cur as usize][l] {
                    if self.sim(nb, &q) > cur_sim {
                        cur = nb;
                        improved = true;
                        descent_hops += 1;
                        break;
                    }
                }
                if !improved {
                    break;
                }
            }
        }
        let (found, visited) = self.search_level(&q, cur, ef.max(k).max(1), 0);
        let reg = td_obs::global();
        reg.counter("index.hnsw.queries").inc();
        reg.counter("index.hnsw.nodes_visited")
            .add(visited as u64 + descent_hops);
        found.into_iter().take(k).map(|c| (c.id, c.sim)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_embed::model::seeded_unit_vector;

    fn clustered_vectors(clusters: usize, per: usize, dim: usize) -> Vec<Vec<f32>> {
        // `per` noisy copies of each of `clusters` anchor directions.
        let mut out = Vec::with_capacity(clusters * per);
        for c in 0..clusters {
            let anchor = seeded_unit_vector(c as u64 + 1, dim);
            for i in 0..per {
                let noise = seeded_unit_vector((c * per + i) as u64 + 10_000, dim);
                let mut v = anchor.clone();
                td_embed::vector::add_scaled(&mut v, &noise, 0.3);
                out.push(v);
            }
        }
        out
    }

    fn brute_force(vectors: &[Vec<f32>], q: &[f32], k: usize) -> Vec<u32> {
        let mut qn = q.to_vec();
        normalize(&mut qn);
        let mut scored: Vec<(f32, u32)> = vectors
            .iter()
            .enumerate()
            .map(|(i, v)| {
                let mut vn = v.clone();
                normalize(&mut vn);
                (dot(&vn, &qn), i as u32)
            })
            .collect();
        scored.sort_by(|a, b| b.0.total_cmp(&a.0));
        scored.into_iter().take(k).map(|(_, i)| i).collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let h = Hnsw::new(8, HnswParams::default());
        assert!(h.search(&[1.0; 8], 5, 10).is_empty());
    }

    #[test]
    fn single_item() {
        let mut h = Hnsw::new(4, HnswParams::default());
        h.insert(vec![1.0, 0.0, 0.0, 0.0]);
        let r = h.search(&[1.0, 0.0, 0.0, 0.0], 1, 10);
        assert_eq!(r[0].0, 0);
        assert!((r[0].1 - 1.0).abs() < 1e-5);
    }

    #[test]
    fn exact_match_is_found() {
        let vecs = clustered_vectors(5, 40, 32);
        let mut h = Hnsw::new(32, HnswParams::default());
        for v in &vecs {
            h.insert(v.clone());
        }
        for probe in [0usize, 57, 123, 199] {
            let r = h.search(&vecs[probe], 1, 50);
            assert_eq!(r[0].0, probe as u32, "probe {probe}");
        }
    }

    #[test]
    fn recall_against_brute_force() {
        let vecs = clustered_vectors(8, 50, 32);
        let mut h = Hnsw::new(32, HnswParams::default());
        for v in &vecs {
            h.insert(v.clone());
        }
        let mut hits = 0usize;
        let mut total = 0usize;
        for c in 0..8u64 {
            let q = seeded_unit_vector(c + 1, 32); // the cluster anchors
            let truth: HashSet<u32> = brute_force(&vecs, &q, 10).into_iter().collect();
            let got = h.search(&q, 10, 80);
            hits += got.iter().filter(|(id, _)| truth.contains(id)).count();
            total += 10;
        }
        let recall = hits as f64 / total as f64;
        assert!(recall >= 0.9, "recall {recall}");
    }

    #[test]
    fn higher_ef_does_not_reduce_recall() {
        let vecs = clustered_vectors(6, 40, 24);
        let mut h = Hnsw::new(24, HnswParams::default());
        for v in &vecs {
            h.insert(v.clone());
        }
        let q = seeded_unit_vector(3, 24);
        let truth: HashSet<u32> = brute_force(&vecs, &q, 10).into_iter().collect();
        let recall = |ef: usize| {
            h.search(&q, 10, ef)
                .iter()
                .filter(|(id, _)| truth.contains(id))
                .count()
        };
        assert!(recall(120) >= recall(12));
    }

    #[test]
    fn results_are_sorted_descending() {
        let vecs = clustered_vectors(4, 30, 16);
        let mut h = Hnsw::new(16, HnswParams::default());
        for v in &vecs {
            h.insert(v.clone());
        }
        let r = h.search(&seeded_unit_vector(2, 16), 20, 64);
        for w in r.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn build_is_deterministic() {
        let vecs = clustered_vectors(3, 20, 16);
        let build = || {
            let mut h = Hnsw::new(16, HnswParams::default());
            for v in &vecs {
                h.insert(v.clone());
            }
            h.search(&seeded_unit_vector(1, 16), 5, 30)
        };
        assert_eq!(build(), build());
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn rejects_wrong_dimension() {
        let mut h = Hnsw::new(8, HnswParams::default());
        h.insert(vec![1.0; 4]);
    }

    use std::collections::HashSet;
}
