//! Flat arena-backed symbol tables: the substrate of the batched probe
//! paths.
//!
//! Every index in this crate used to key its hot lookups through nested
//! `std::collections::HashMap`s — token-hash → id, term → posting list,
//! band-bucket → candidate ids. Each lookup chased SipHash state and a
//! heap-allocated bucket; each posting list was its own allocation. The
//! three types here replace that with contiguous, cache-friendly
//! layouts:
//!
//! * [`FlatMap64`] — an open-addressed `u64 → u32` table with linear
//!   probing, for lookups whose keys are already 64-bit hashes.
//! * [`Interner`] — a string → dense `u32` symbol table whose bytes
//!   live in one arena, with exact (byte-compare) collision handling.
//! * [`PostingLists`] — CSR-style posting storage: one `offsets` array
//!   and one flat `data` array instead of a `Vec` of `Vec`s.
//!
//! All three are **deterministic**: their contents depend only on the
//! sequence of insertions, never on process-random hash seeds, so the
//! indexes built on them serialize byte-identically across runs and
//! the rankings they produce are reproducible. Their growth is bounded
//! by what is inserted at build time (the lake), not by query volume —
//! queries only read.

use serde::{Deserialize, Serialize};

/// Slot marker for an empty [`FlatMap64`] cell. Values are dense ids
/// assigned by callers, so the all-ones id is reserved.
const EMPTY: u32 = u32::MAX;

/// Multiplier for Fibonacci hashing: spreads already-hashed keys whose
/// low bits are weak across the power-of-two table.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// An open-addressed `u64 → u32` map with linear probing.
///
/// Keys are expected to already be well-mixed 64-bit hashes (the token
/// hashes of the inverted index); values are dense ids strictly below
/// `u32::MAX`. Lookups touch one contiguous slot run — no per-bucket
/// allocations, no SipHash. Layout depends only on insertion order.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatMap64 {
    keys: Vec<u64>,
    vals: Vec<u32>,
    len: usize,
}

impl Default for FlatMap64 {
    fn default() -> Self {
        Self::new()
    }
}

impl FlatMap64 {
    /// An empty map.
    #[must_use]
    pub fn new() -> Self {
        FlatMap64 {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Capacity is a power of two; Fibonacci-mix the key first so
        // structured keys still spread.
        (key.wrapping_mul(FIB) >> 32) as usize & (self.keys.len() - 1)
    }

    /// Look up a key.
    #[must_use]
    pub fn get(&self, key: u64) -> Option<u32> {
        if self.len == 0 {
            return None;
        }
        let mut i = self.slot_of(key);
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                return None;
            }
            if self.keys[i] == key {
                return Some(v);
            }
            i = (i + 1) & (self.keys.len() - 1);
        }
    }

    /// Insert `val` under `key` unless the key is present; returns the
    /// stored value either way (the `entry(..).or_insert(..)` shape the
    /// builders use). `val` must be below `u32::MAX`.
    pub fn get_or_insert(&mut self, key: u64, val: u32) -> u32 {
        debug_assert!(val != EMPTY, "u32::MAX is the empty-slot marker");
        // Grow at 7/8 load so probe runs stay short.
        if (self.len + 1) * 8 > self.keys.len() * 7 {
            self.grow();
        }
        let mut i = self.slot_of(key);
        loop {
            let v = self.vals[i];
            if v == EMPTY {
                self.keys[i] = key;
                self.vals[i] = val;
                self.len += 1;
                return val;
            }
            if self.keys[i] == key {
                return v;
            }
            i = (i + 1) & (self.keys.len() - 1);
        }
    }

    fn grow(&mut self) {
        let cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![0; cap]);
        let old_vals = std::mem::replace(&mut self.vals, vec![EMPTY; cap]);
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if v == EMPTY {
                continue;
            }
            let mut i = self.slot_of(k);
            while self.vals[i] != EMPTY {
                i = (i + 1) & (cap - 1);
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

/// A string interner over one contiguous byte arena.
///
/// Symbols are dense `u32`s assigned in first-occurrence order. Unlike
/// [`FlatMap64`], lookups compare the actual bytes on hash collision,
/// so two distinct strings can never alias one symbol. The arena grows
/// only on [`Interner::intern`] — i.e. at index build/ingest time — so
/// its footprint is bounded by the lake's vocabulary, not by how many
/// queries are served.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Interner {
    /// All interned strings, concatenated.
    text: String,
    /// Per-symbol `(byte offset, byte length)` into `text`.
    spans: Vec<(u32, u32)>,
    /// Per-symbol hash (avoids re-hashing the arena when growing).
    hashes: Vec<u64>,
    /// Open-addressed table of `symbol + 1` (0 = empty slot).
    table: Vec<u32>,
}

/// FNV-1a, good enough for short tokens and fully deterministic.
fn hash_bytes(s: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in s.as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

impl Interner {
    /// An empty interner.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// True if nothing has been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total arena bytes (diagnostics: growth is bounded by the lake).
    #[must_use]
    pub fn arena_bytes(&self) -> usize {
        self.text.len()
    }

    /// The symbol of `s`, if it was interned.
    #[must_use]
    pub fn get(&self, s: &str) -> Option<u32> {
        if self.table.is_empty() {
            return None;
        }
        let h = hash_bytes(s);
        let mask = self.table.len() - 1;
        let mut i = (h.wrapping_mul(FIB) >> 32) as usize & mask;
        loop {
            let slot = self.table[i];
            if slot == 0 {
                return None;
            }
            let sym = slot - 1;
            if self.hashes[sym as usize] == h && self.resolve(sym) == s {
                return Some(sym);
            }
            i = (i + 1) & mask;
        }
    }

    /// Intern `s`, returning its dense symbol (existing or fresh).
    pub fn intern(&mut self, s: &str) -> u32 {
        if (self.spans.len() + 1) * 8 > self.table.len() * 7 {
            self.grow();
        }
        let h = hash_bytes(s);
        let mask = self.table.len() - 1;
        let mut i = (h.wrapping_mul(FIB) >> 32) as usize & mask;
        loop {
            let slot = self.table[i];
            if slot == 0 {
                let sym = self.spans.len() as u32;
                self.spans.push((self.text.len() as u32, s.len() as u32));
                self.hashes.push(h);
                self.text.push_str(s);
                self.table[i] = sym + 1;
                return sym;
            }
            let sym = slot - 1;
            if self.hashes[sym as usize] == h && self.resolve(sym) == s {
                return sym;
            }
            i = (i + 1) & mask;
        }
    }

    /// The string of a symbol.
    ///
    /// # Panics
    /// Panics if `sym` was never returned by this interner.
    #[must_use]
    pub fn resolve(&self, sym: u32) -> &str {
        let (start, len) = self.spans[sym as usize];
        &self.text[start as usize..(start + len) as usize]
    }

    fn grow(&mut self) {
        let cap = (self.table.len() * 2).max(16);
        let mask = cap - 1;
        let mut table = vec![0u32; cap];
        for (sym, &h) in self.hashes.iter().enumerate() {
            let mut i = (h.wrapping_mul(FIB) >> 32) as usize & mask;
            while table[i] != 0 {
                i = (i + 1) & mask;
            }
            table[i] = sym as u32 + 1;
        }
        self.table = table;
    }
}

/// CSR posting storage: `n` variable-length `u32` lists packed into one
/// flat `data` array with an `offsets` fence array (`n + 1` entries).
///
/// Reading list `i` is two offset loads and one contiguous slice — no
/// pointer chase per list, and sequential scans over many lists walk
/// one allocation front to back.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PostingLists {
    offsets: Vec<u64>,
    data: Vec<u32>,
}

impl PostingLists {
    /// Empty storage.
    #[must_use]
    pub fn new() -> Self {
        PostingLists {
            offsets: vec![0],
            data: Vec::new(),
        }
    }

    /// Pack a nested list-of-lists (consumed) into CSR form.
    #[must_use]
    pub fn from_lists(lists: Vec<Vec<u32>>) -> Self {
        let total: usize = lists.iter().map(Vec::len).sum();
        let mut out = PostingLists {
            offsets: Vec::with_capacity(lists.len() + 1),
            data: Vec::with_capacity(total),
        };
        out.offsets.push(0);
        for l in lists {
            out.data.extend_from_slice(&l);
            out.offsets.push(out.data.len() as u64);
        }
        out
    }

    /// Append one list.
    pub fn push_list<I: IntoIterator<Item = u32>>(&mut self, items: I) {
        if self.offsets.is_empty() {
            self.offsets.push(0);
        }
        self.data.extend(items);
        self.offsets.push(self.data.len() as u64);
    }

    /// Number of lists.
    #[must_use]
    pub fn num_lists(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// True if no lists are stored.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.num_lists() == 0
    }

    /// Total stored elements across all lists.
    #[must_use]
    pub fn total_len(&self) -> usize {
        self.data.len()
    }

    /// List `i` as a contiguous slice.
    ///
    /// # Panics
    /// Panics if `i >= num_lists()` (same contract as `Vec` indexing).
    #[must_use]
    pub fn list(&self, i: usize) -> &[u32] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

/// Epoch-marked dense scratch for probe sweeps: per-item counters that
/// reset in O(1) between queries instead of re-zeroing (or re-hashing)
/// the whole array. One instance is reused across every query of a
/// batch, which is where the batched entry points get their allocation
/// amortization; correctness never depends on reuse, only speed.
#[derive(Debug, Default)]
pub struct EpochCounters {
    epoch: u32,
    mark: Vec<u32>,
    count: Vec<u32>,
}

impl EpochCounters {
    /// Start a fresh query over `n` items: all counters read as unset.
    pub fn begin(&mut self, n: usize) {
        if self.mark.len() < n {
            self.mark.resize(n, 0);
            self.count.resize(n, 0);
        }
        if self.epoch == u32::MAX {
            // Epoch wrap: stale marks could alias; hard-reset once per
            // ~4 billion queries.
            self.mark.iter_mut().for_each(|m| *m = 0);
            self.epoch = 1;
        } else {
            self.epoch += 1;
        }
    }

    /// Current counter of `i` (0 if untouched this epoch).
    #[inline]
    #[must_use]
    pub fn get(&self, i: usize) -> u32 {
        if self.mark[i] == self.epoch {
            self.count[i]
        } else {
            0
        }
    }

    /// True if `i` was touched this epoch.
    #[inline]
    #[must_use]
    pub fn is_set(&self, i: usize) -> bool {
        self.mark[i] == self.epoch
    }

    /// Set the counter of `i`, returning the previous value.
    #[inline]
    pub fn set(&mut self, i: usize, v: u32) -> u32 {
        let prev = self.get(i);
        self.mark[i] = self.epoch;
        self.count[i] = v;
        prev
    }

    /// Increment the counter of `i`, returning true if this was the
    /// first touch this epoch.
    #[inline]
    pub fn bump(&mut self, i: usize) -> bool {
        if self.mark[i] == self.epoch {
            self.count[i] += 1;
            false
        } else {
            self.mark[i] = self.epoch;
            self.count[i] = 1;
            true
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_map_inserts_and_gets() {
        let mut m = FlatMap64::new();
        assert!(m.is_empty());
        assert_eq!(m.get(42), None);
        for i in 0..1000u64 {
            let v = m.get_or_insert(i.wrapping_mul(0x123_4567), i as u32);
            assert_eq!(v, i as u32);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(i.wrapping_mul(0x123_4567)), Some(i as u32));
        }
        assert_eq!(m.get(999_999_999), None);
        // Re-insert returns the first value.
        assert_eq!(m.get_or_insert(0, 77), 0);
    }

    #[test]
    fn flat_map_survives_adversarial_low_bits() {
        // Keys differing only above bit 32 collide without mixing.
        let mut m = FlatMap64::new();
        for i in 0..200u64 {
            m.get_or_insert(i << 48, i as u32);
        }
        for i in 0..200u64 {
            assert_eq!(m.get(i << 48), Some(i as u32));
        }
    }

    #[test]
    fn interner_assigns_dense_first_occurrence_symbols() {
        let mut it = Interner::new();
        assert_eq!(it.intern("alpha"), 0);
        assert_eq!(it.intern("beta"), 1);
        assert_eq!(it.intern("alpha"), 0);
        assert_eq!(it.len(), 2);
        assert_eq!(it.resolve(0), "alpha");
        assert_eq!(it.resolve(1), "beta");
        assert_eq!(it.get("beta"), Some(1));
        assert_eq!(it.get("gamma"), None);
    }

    #[test]
    fn interner_handles_many_symbols_and_unicode() {
        let mut it = Interner::new();
        let words: Vec<String> = (0..5000).map(|i| format!("wörd-{i}")).collect();
        for (i, w) in words.iter().enumerate() {
            assert_eq!(it.intern(w), i as u32);
        }
        for (i, w) in words.iter().enumerate() {
            assert_eq!(it.get(w), Some(i as u32));
            assert_eq!(it.resolve(i as u32), w.as_str());
        }
    }

    #[test]
    fn interner_serializes_deterministically() {
        let build = || {
            let mut it = Interner::new();
            for w in ["x", "y", "z", "x"] {
                it.intern(w);
            }
            it
        };
        let a = serde_json::to_string(&build()).expect("serialize");
        let b = serde_json::to_string(&build()).expect("serialize");
        assert_eq!(a, b);
        let back: Interner = serde_json::from_str(&a).expect("deserialize");
        assert_eq!(back.get("y"), Some(1));
    }

    #[test]
    fn posting_lists_roundtrip() {
        let pl = PostingLists::from_lists(vec![vec![1, 2, 3], vec![], vec![9]]);
        assert_eq!(pl.num_lists(), 3);
        assert_eq!(pl.total_len(), 4);
        assert_eq!(pl.list(0), &[1, 2, 3]);
        assert_eq!(pl.list(1), &[] as &[u32]);
        assert_eq!(pl.list(2), &[9]);
        let mut inc = PostingLists::new();
        inc.push_list([5, 6]);
        inc.push_list([]);
        assert_eq!(inc.num_lists(), 2);
        assert_eq!(inc.list(0), &[5, 6]);
    }

    #[test]
    fn epoch_counters_reset_between_queries() {
        let mut c = EpochCounters::default();
        c.begin(4);
        assert!(c.bump(2));
        assert!(!c.bump(2));
        assert_eq!(c.get(2), 2);
        assert_eq!(c.get(0), 0);
        assert!(c.is_set(2));
        c.begin(4);
        assert_eq!(c.get(2), 0, "new epoch clears counters");
        assert!(!c.is_set(2));
        assert_eq!(c.set(3, 7), 0);
        assert_eq!(c.get(3), 7);
    }
}
