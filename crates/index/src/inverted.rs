//! Inverted index over token sets with exact top-k overlap search.
//!
//! This is the substrate of JOSIE (Zhu et al., SIGMOD 2019): columns are
//! token sets, the index maps token → posting list of set ids, and top-k
//! equi-joinability search means *exact* top-k by overlap `|Q ∩ X|`.
//!
//! Storage is flat and arena-backed (see [`crate::intern`]): the token
//! dictionary is an open-addressed [`FlatMap64`] over token hashes, and
//! both the postings (token → set ids) and the sets (set → rare-first
//! token ids) live in CSR [`PostingLists`] — one contiguous allocation
//! each instead of a `Vec` of `Vec`s behind a `HashMap`. Query scratch
//! (candidate counters, seen/settled marks) is dense and epoch-marked,
//! reused across queries on the same thread, so a batched probe sweep
//! allocates nothing per query.
//!
//! Three search strategies expose the trade-off JOSIE's cost model
//! navigates (ablated in experiment E03):
//!
//! * [`InvertedSetIndex::top_k_merge`] — read **every** posting list of the
//!   query's tokens and count (cheap per element, reads everything).
//! * [`InvertedSetIndex::top_k_probe`] — read lists rare-token-first,
//!   verifying candidates *exactly* against the query set, with the
//!   position upper bound (`unseen tokens`) used to stop early.
//! * [`InvertedSetIndex::top_k_adaptive`] — JOSIE-style: at each step
//!   compare the estimated cost of continuing to read posting lists with
//!   the cost of verifying the current candidates, and switch when
//!   verification becomes cheaper.
//!
//! Each strategy also has a `*_batch` twin answering many queries in one
//! call over the shared scratch — byte-identical to the sequential loop.

use crate::intern::{EpochCounters, FlatMap64, PostingLists};
use crate::topk::TopK;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use td_sketch::hash::hash_str;

/// Identifier of an indexed set (dense, insertion order).
pub type SetId = u32;

const TOKEN_SEED: u64 = 0x10_5E7;

/// Search-strategy statistics (for the E03 cost ablation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SearchStats {
    /// Posting-list elements read.
    pub postings_read: usize,
    /// Candidate sets exactly verified.
    pub sets_verified: usize,
    /// Total tokens touched during verification.
    pub verify_tokens_read: usize,
}

impl SearchStats {
    /// Fold this query's work into the global `td-obs` counters under
    /// `index.inverted.<strategy>.*`.
    fn publish(&self, strategy: &str) {
        let reg = td_obs::global();
        reg.counter(&format!("index.inverted.{strategy}.queries"))
            .inc();
        reg.counter(&format!("index.inverted.{strategy}.postings_read"))
            .add(self.postings_read as u64);
        reg.counter(&format!("index.inverted.{strategy}.sets_verified"))
            .add(self.sets_verified as u64);
    }
}

/// Dense per-thread probe scratch: candidate counters and seen/settled
/// marks sized to the index, epoch-reset between queries. Bounded by
/// the largest index probed on this thread — build-time state, never
/// query-volume state.
#[derive(Debug, Default)]
struct Scratch {
    /// Merge counts / adaptive partial counts.
    counts: EpochCounters,
    /// Probe "seen" marks / adaptive "settled" marks.
    marks: EpochCounters,
    /// Set ids touched this query (drain order is re-sorted before any
    /// ranking, so reuse cannot leak order across queries).
    touched: Vec<SetId>,
    /// Query token ids sorted ascending, for binary-search membership
    /// during verification.
    qsorted: Vec<u32>,
}

thread_local! {
    static SCRATCH: RefCell<Scratch> = RefCell::new(Scratch::default());
}

/// Builder for [`InvertedSetIndex`].
#[derive(Debug, Default)]
pub struct InvertedSetIndexBuilder {
    /// Token-hash → interned token id.
    token_ids: FlatMap64,
    /// Per-set interned token ids (unsorted during build).
    sets: Vec<Vec<u32>>,
    /// Per-token global frequency.
    freq: Vec<u32>,
}

impl InvertedSetIndexBuilder {
    /// New empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a set of string tokens; returns its id. Duplicate tokens within
    /// a set are collapsed.
    pub fn add_set<'a, I>(&mut self, tokens: I) -> SetId
    where
        I: IntoIterator<Item = &'a str>,
    {
        let id = self.sets.len() as SetId;
        let mut ids: Vec<u32> = Vec::new();
        for t in tokens {
            let h = hash_str(t, TOKEN_SEED);
            let next = self.token_ids.len() as u32;
            let tid = self.token_ids.get_or_insert(h, next);
            if tid as usize == self.freq.len() {
                self.freq.push(0);
            }
            ids.push(tid);
        }
        // Collapse duplicates within the set (the final per-set order is
        // established in `build`, so a sort here loses nothing).
        ids.sort_unstable();
        ids.dedup();
        for &tid in &ids {
            self.freq[tid as usize] += 1;
        }
        self.sets.push(ids);
        id
    }

    /// Finish building: computes the global rare-first token order and the
    /// posting lists, packing both into contiguous CSR arenas.
    #[must_use]
    pub fn build(self) -> InvertedSetIndex {
        let InvertedSetIndexBuilder {
            token_ids,
            mut sets,
            freq,
        } = self;
        // Sort each set's tokens rare-first (frequency asc, id tiebreak):
        // this is the canonical prefix-filter ordering.
        for s in &mut sets {
            s.sort_unstable_by_key(|&t| (freq[t as usize], t));
        }
        let mut postings: Vec<Vec<SetId>> = vec![Vec::new(); freq.len()];
        for (sid, s) in sets.iter().enumerate() {
            for &t in s {
                postings[t as usize].push(sid as SetId);
            }
        }
        InvertedSetIndex {
            token_ids,
            postings: PostingLists::from_lists(postings),
            sets: PostingLists::from_lists(sets),
            freq,
        }
    }
}

/// An immutable inverted index over token sets, CSR-packed.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct InvertedSetIndex {
    token_ids: FlatMap64,
    /// Token id → set ids (ascending).
    postings: PostingLists,
    /// Set id → token ids, rare-first.
    sets: PostingLists,
    freq: Vec<u32>,
}

impl InvertedSetIndex {
    /// Number of indexed sets.
    #[must_use]
    pub fn num_sets(&self) -> usize {
        self.sets.num_lists()
    }

    /// Number of distinct tokens.
    #[must_use]
    pub fn num_tokens(&self) -> usize {
        self.postings.num_lists()
    }

    /// Size (distinct tokens) of an indexed set.
    #[must_use]
    pub fn set_size(&self, id: SetId) -> usize {
        self.sets.list(id as usize).len()
    }

    /// Intern a query's tokens: known token ids sorted rare-first
    /// (unknown tokens can't contribute overlap and are dropped).
    fn intern_query<'a, I>(&self, tokens: I) -> Vec<u32>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut ids: Vec<u32> = tokens
            .into_iter()
            .filter_map(|t| self.token_ids.get(hash_str(t, TOKEN_SEED)))
            .collect();
        ids.sort_unstable_by_key(|&t| (self.freq[t as usize], t));
        ids.dedup();
        ids
    }

    /// Exact top-k by overlap, full-merge strategy.
    pub fn top_k_merge<'a, I>(&self, tokens: I, k: usize) -> (Vec<(SetId, usize)>, SearchStats)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let q = self.intern_query(tokens);
        let (out, stats) = SCRATCH.with(|s| self.merge_core(&q, k, &mut s.borrow_mut()));
        stats.publish("merge");
        (out, stats)
    }

    fn merge_core(
        &self,
        q: &[u32],
        k: usize,
        s: &mut Scratch,
    ) -> (Vec<(SetId, usize)>, SearchStats) {
        let mut stats = SearchStats::default();
        s.counts.begin(self.num_sets());
        s.touched.clear();
        for &t in q {
            let pl = self.postings.list(t as usize);
            stats.postings_read += pl.len();
            for &sid in pl {
                if s.counts.bump(sid as usize) {
                    s.touched.push(sid);
                }
            }
        }
        // Sorted drain: TopK's tie-breaking is insertion-invariant, but
        // draining candidates in ascending set id keeps the offered
        // sequence — and therefore every downstream byte — identical to
        // the historical sorted HashMap drain.
        s.touched.sort_unstable();
        let mut topk = TopK::new(k.max(1));
        for &sid in &s.touched {
            topk.push(f64::from(s.counts.get(sid as usize)), sid);
        }
        let out = topk
            .into_sorted()
            .into_iter()
            .map(|(sc, id)| (id, sc as usize))
            .collect();
        (out, stats)
    }

    /// Exact overlap of an indexed set with the query (given as token ids
    /// sorted ascending, for binary-search membership).
    fn verify(&self, sid: SetId, qsorted: &[u32], stats: &mut SearchStats) -> usize {
        let set = self.sets.list(sid as usize);
        stats.sets_verified += 1;
        stats.verify_tokens_read += set.len();
        set.iter()
            .filter(|t| qsorted.binary_search(t).is_ok())
            .count()
    }

    /// Exact top-k by overlap, probe strategy: posting lists rare-first,
    /// exact verification of first-seen candidates, early exit when the
    /// number of unread query tokens can no longer beat the k-th best.
    pub fn top_k_probe<'a, I>(&self, tokens: I, k: usize) -> (Vec<(SetId, usize)>, SearchStats)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let q = self.intern_query(tokens);
        let (out, stats) = SCRATCH.with(|s| self.probe_core(&q, k, &mut s.borrow_mut()));
        stats.publish("probe");
        (out, stats)
    }

    fn probe_core(
        &self,
        q: &[u32],
        k: usize,
        s: &mut Scratch,
    ) -> (Vec<(SetId, usize)>, SearchStats) {
        let mut stats = SearchStats::default();
        s.marks.begin(self.num_sets());
        s.qsorted.clear();
        s.qsorted.extend_from_slice(q);
        s.qsorted.sort_unstable();
        let mut topk = TopK::new(k.max(1));
        for (i, &t) in q.iter().enumerate() {
            // Any set first appearing now shares none of the earlier (rarer)
            // tokens we've read... it may still share them (we only read a
            // prefix of ITS tokens implicitly) — the sound bound is the
            // number of query tokens not yet processed:
            let remaining = q.len() - i;
            if let Some(th) = topk.threshold() {
                // Strict: a set *tying* the k-th best can still displace a
                // larger id under TopK's total order, so only a strictly
                // lower bound is safe to stop on.
                if (remaining as f64) < th {
                    break; // no unseen set can beat or tie the k-th best
                }
            }
            let pl = self.postings.list(t as usize);
            stats.postings_read += pl.len();
            for &sid in pl {
                if !s.marks.is_set(sid as usize) {
                    s.marks.set(sid as usize, 1);
                    let ov = self.verify(sid, &s.qsorted, &mut stats);
                    topk.push(ov as f64, sid);
                }
            }
        }
        let out = topk
            .into_sorted()
            .into_iter()
            .map(|(sc, id)| (id, sc as usize))
            .collect();
        (out, stats)
    }

    /// Exact top-k by overlap, JOSIE-style adaptive strategy.
    ///
    /// Reads posting lists rare-first while *counting* partial overlaps.
    /// Before each list it compares the cost of reading the remaining
    /// lists (`sum of their lengths`) against the cost of verifying the
    /// outstanding candidates (`sum of their unread set sizes`), and
    /// switches to verification when that becomes cheaper. The final
    /// verification pass only touches candidates whose upper bound
    /// (`partial + unread query tokens`) can still beat the k-th best.
    pub fn top_k_adaptive<'a, I>(&self, tokens: I, k: usize) -> (Vec<(SetId, usize)>, SearchStats)
    where
        I: IntoIterator<Item = &'a str>,
    {
        let q = self.intern_query(tokens);
        let (out, stats) = SCRATCH.with(|s| self.adaptive_core(&q, k, &mut s.borrow_mut()));
        stats.publish("adaptive");
        (out, stats)
    }

    fn adaptive_core(
        &self,
        q: &[u32],
        k: usize,
        s: &mut Scratch,
    ) -> (Vec<(SetId, usize)>, SearchStats) {
        let mut stats = SearchStats::default();
        let mut topk = TopK::new(k.max(1));
        // Partial counts of unsettled candidates (sound upper bound for a
        // candidate at boundary i: partial + unread tokens). `counts` is
        // the partial counter, `marks` flags sets whose exact overlap is
        // settled (verified, or soundly pruned forever — the threshold
        // only rises).
        s.counts.begin(self.num_sets());
        s.marks.begin(self.num_sets());
        s.touched.clear();
        s.qsorted.clear();
        s.qsorted.extend_from_slice(q);
        s.qsorted.sort_unstable();
        let mut remaining_list_cost: usize = q
            .iter()
            .map(|&t| self.postings.list(t as usize).len())
            .sum();
        let mut merged_all = true;
        for (i, &t) in q.iter().enumerate() {
            let unread = q.len() - i;
            // Global stop: no unseen set (≤ unread) nor any outstanding
            // candidate (≤ partial + unread) can beat the k-th best.
            if let Some(th) = topk.threshold() {
                // Strict bounds: ties can still displace under TopK's
                // total order (see top_k_probe).
                let max_partial = self.max_partial(s);
                if (unread as f64) < th && ((max_partial + unread) as f64) < th {
                    merged_all = false;
                    break;
                }
            }
            // Incremental verification: settle the few most promising
            // candidates (highest partial count, upper bound above the
            // threshold) so the threshold rises early and the global stop
            // can fire — without committing to verify every candidate the
            // remaining heavy lists will spawn (which is what makes naive
            // probing lose to merging on skewed token distributions).
            const VERIFY_PER_ROUND: usize = 2;
            for _ in 0..VERIFY_PER_ROUND {
                let th = topk.threshold();
                // Highest partial count wins, ties prefer the smaller set
                // id — the same total order the historical HashMap
                // `max_by` computed, so iteration order is irrelevant.
                let mut best: Option<(u32, SetId)> = None;
                for &sid in &s.touched {
                    if s.marks.is_set(sid as usize) {
                        continue; // settled
                    }
                    let p = s.counts.get(sid as usize);
                    if let Some(t) = th {
                        if ((p as usize + unread) as f64) < t {
                            continue;
                        }
                    }
                    best = match best {
                        Some((bp, bs)) if p < bp || (p == bp && sid >= bs) => Some((bp, bs)),
                        _ => Some((p, sid)),
                    };
                }
                let Some((_, sid)) = best else { break };
                // Verifying this candidate must be cheaper than just
                // finishing the merge.
                if self.sets.list(sid as usize).len() >= remaining_list_cost {
                    break;
                }
                s.marks.set(sid as usize, 1);
                let ov = self.verify(sid, &s.qsorted, &mut stats);
                topk.push(ov as f64, sid);
            }
            if let Some(th) = topk.threshold() {
                let max_partial = self.max_partial(s);
                if (unread as f64) < th && ((max_partial + unread) as f64) < th {
                    merged_all = false;
                    break;
                }
            }
            let pl = self.postings.list(t as usize);
            remaining_list_cost -= pl.len();
            stats.postings_read += pl.len();
            for &sid in pl {
                if !s.marks.is_set(sid as usize) && s.counts.bump(sid as usize) {
                    s.touched.push(sid);
                }
            }
        }
        // Leftover candidates. If every list was merged, the partial counts
        // are exact. If we broke early, the break condition guaranteed that
        // every outstanding candidate's upper bound (partial + unread) was
        // strictly below the k-th best — nothing left can beat or tie it.
        if merged_all {
            // Sorted drain for run-to-run deterministic tie order.
            s.touched.sort_unstable();
            for &sid in &s.touched {
                if s.marks.is_set(sid as usize) {
                    continue;
                }
                topk.push(f64::from(s.counts.get(sid as usize)), sid);
            }
        }
        let out = topk
            .into_sorted()
            .into_iter()
            .map(|(sc, id)| (id, sc as usize))
            .collect();
        (out, stats)
    }

    /// Largest partial count among unsettled candidates.
    fn max_partial(&self, s: &Scratch) -> usize {
        let mut max = 0u32;
        for &sid in &s.touched {
            if !s.marks.is_set(sid as usize) {
                max = max.max(s.counts.get(sid as usize));
            }
        }
        max as usize
    }

    /// [`Self::top_k_merge`] over a batch of queries: one scratch, one
    /// sweep per query, results in input order — byte-identical to the
    /// sequential loop.
    #[must_use]
    pub fn top_k_merge_batch(
        &self,
        queries: &[&[&str]],
        k: usize,
    ) -> Vec<(Vec<(SetId, usize)>, SearchStats)> {
        queries
            .iter()
            .map(|q| self.top_k_merge(q.iter().copied(), k))
            .collect()
    }

    /// [`Self::top_k_probe`] over a batch of queries (input order).
    #[must_use]
    pub fn top_k_probe_batch(
        &self,
        queries: &[&[&str]],
        k: usize,
    ) -> Vec<(Vec<(SetId, usize)>, SearchStats)> {
        queries
            .iter()
            .map(|q| self.top_k_probe(q.iter().copied(), k))
            .collect()
    }

    /// [`Self::top_k_adaptive`] over a batch of queries (input order).
    #[must_use]
    pub fn top_k_adaptive_batch(
        &self,
        queries: &[&[&str]],
        k: usize,
    ) -> Vec<(Vec<(SetId, usize)>, SearchStats)> {
        queries
            .iter()
            .map(|q| self.top_k_adaptive(q.iter().copied(), k))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sets: s0 = {a..j} (10), s1 = {a..e} (5), s2 = {f..o} (10), s3 = {x,y,z}.
    fn toy() -> InvertedSetIndex {
        let mut b = InvertedSetIndexBuilder::new();
        let t = |r: std::ops::Range<u8>| -> Vec<String> {
            r.map(|c| ((b'a' + c) as char).to_string()).collect()
        };
        let s0 = t(0..10);
        let s1 = t(0..5);
        let s2 = t(5..15);
        b.add_set(s0.iter().map(String::as_str));
        b.add_set(s1.iter().map(String::as_str));
        b.add_set(s2.iter().map(String::as_str));
        b.add_set(["x", "y", "z"]);
        b.build()
    }

    fn query() -> Vec<String> {
        // q = {a..h}: overlap s0=8, s1=5, s2=3, s3=0.
        (0..8u8).map(|c| ((b'a' + c) as char).to_string()).collect()
    }

    #[test]
    fn merge_finds_exact_topk() {
        let idx = toy();
        let q = query();
        let (r, _) = idx.top_k_merge(q.iter().map(String::as_str), 2);
        assert_eq!(r, vec![(0, 8), (1, 5)]);
    }

    #[test]
    fn probe_matches_merge() {
        let idx = toy();
        let q = query();
        let (m, _) = idx.top_k_merge(q.iter().map(String::as_str), 3);
        let (p, _) = idx.top_k_probe(q.iter().map(String::as_str), 3);
        assert_eq!(m, p);
    }

    #[test]
    fn adaptive_matches_merge() {
        let idx = toy();
        let q = query();
        let (m, _) = idx.top_k_merge(q.iter().map(String::as_str), 3);
        let (a, _) = idx.top_k_adaptive(q.iter().map(String::as_str), 3);
        assert_eq!(m, a);
    }

    #[test]
    fn unknown_tokens_are_ignored() {
        let idx = toy();
        let (r, _) = idx.top_k_merge(["a", "zzz-not-indexed"], 1);
        assert_eq!(r[0].1, 1);
    }

    #[test]
    fn empty_query_returns_nothing() {
        let idx = toy();
        let (r, s) = idx.top_k_merge(std::iter::empty(), 5);
        assert!(r.is_empty());
        assert_eq!(s.postings_read, 0);
    }

    #[test]
    fn duplicate_query_tokens_count_once() {
        let idx = toy();
        let (r, _) = idx.top_k_merge(["a", "a", "a", "b"], 1);
        // s0 and s1 both contain {a, b}: overlap 2, either may win the tie.
        assert_eq!(r[0].1, 2);
        assert!(r[0].0 == 0 || r[0].0 == 1);
    }

    #[test]
    fn duplicate_set_tokens_count_once() {
        let mut b = InvertedSetIndexBuilder::new();
        b.add_set(["a", "a", "b"]);
        let idx = b.build();
        assert_eq!(idx.set_size(0), 2);
    }

    #[test]
    fn probe_early_exit_reads_fewer_postings_on_skew() {
        // One huge common token shared by everyone + rare discriminative
        // tokens: probe should finish before touching the huge list.
        let mut b = InvertedSetIndexBuilder::new();
        let common: Vec<String> = (0..50).map(|i| format!("common{i}")).collect();
        for s in 0..200u32 {
            let mut toks: Vec<String> = common.clone();
            toks.push(format!("rare-{s}"));
            b.add_set(toks.iter().map(String::as_str));
        }
        let idx = b.build();
        let mut q: Vec<String> = common.clone();
        q.push("rare-7".to_string());
        let (m, sm) = idx.top_k_merge(q.iter().map(String::as_str), 1);
        let (p, sp) = idx.top_k_probe(q.iter().map(String::as_str), 1);
        assert_eq!(m[0], p[0]);
        assert_eq!(m[0], (7, 51));
        assert!(
            sp.postings_read < sm.postings_read,
            "probe {} vs merge {}",
            sp.postings_read,
            sm.postings_read
        );
    }

    #[test]
    fn strategies_agree_on_random_sets() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(99);
        let mut b = InvertedSetIndexBuilder::new();
        let mut raw_sets = Vec::new();
        for _ in 0..120 {
            let n = rng.gen_range(3..40);
            let s: Vec<String> = (0..n)
                .map(|_| format!("t{}", rng.gen_range(0..200)))
                .collect();
            raw_sets.push(s);
        }
        for s in &raw_sets {
            b.add_set(s.iter().map(String::as_str));
        }
        let idx = b.build();
        for qi in [0usize, 5, 17, 60] {
            let q = &raw_sets[qi];
            let (m, _) = idx.top_k_merge(q.iter().map(String::as_str), 5);
            let (p, _) = idx.top_k_probe(q.iter().map(String::as_str), 5);
            let (a, _) = idx.top_k_adaptive(q.iter().map(String::as_str), 5);
            // Overlap multisets must agree (ties may order differently).
            let ov =
                |v: &Vec<(SetId, usize)>| -> Vec<usize> { v.iter().map(|&(_, o)| o).collect() };
            assert_eq!(ov(&m), ov(&p), "query {qi}");
            assert_eq!(ov(&m), ov(&a), "query {qi}");
            // The query set itself must rank first with full overlap.
            assert_eq!(m[0].1, idx.set_size(qi as SetId));
        }
    }

    #[test]
    fn batched_strategies_match_sequential_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(7);
        let mut b = InvertedSetIndexBuilder::new();
        let mut raw_sets = Vec::new();
        for _ in 0..80 {
            let n = rng.gen_range(3..30);
            let s: Vec<String> = (0..n)
                .map(|_| format!("t{}", rng.gen_range(0..150)))
                .collect();
            raw_sets.push(s);
        }
        for s in &raw_sets {
            b.add_set(s.iter().map(String::as_str));
        }
        let idx = b.build();
        let qsets: Vec<Vec<&str>> = [3usize, 11, 42, 60, 77]
            .iter()
            .map(|&qi| raw_sets[qi].iter().map(String::as_str).collect())
            .collect();
        let queries: Vec<&[&str]> = qsets.iter().map(Vec::as_slice).collect();
        for k in [1usize, 4, 9] {
            let merge_b = idx.top_k_merge_batch(&queries, k);
            let probe_b = idx.top_k_probe_batch(&queries, k);
            let adapt_b = idx.top_k_adaptive_batch(&queries, k);
            for (qi, q) in queries.iter().enumerate() {
                assert_eq!(merge_b[qi], idx.top_k_merge(q.iter().copied(), k));
                assert_eq!(probe_b[qi], idx.top_k_probe(q.iter().copied(), k));
                assert_eq!(adapt_b[qi], idx.top_k_adaptive(q.iter().copied(), k));
            }
        }
    }
}
