//! # td-index — indices for table discovery at lake scale
//!
//! The tutorial's Section 3 singles out indexing as the open scalability
//! problem for discovery over millions of tables. This crate implements the
//! index families the surveyed systems rely on:
//!
//! * [`InvertedSetIndex`] — token posting lists with exact top-k overlap
//!   search in three strategies (merge / probe / JOSIE-style adaptive).
//! * [`MinHashLsh`] — classic banding LSH for Jaccard thresholds.
//! * [`LshEnsemble`] — cardinality-partitioned LSH for *containment*
//!   (domain) search under skew (Zhu et al., VLDB 2016).
//! * [`Hnsw`] — hierarchical navigable small-world graphs for dense column
//!   embeddings (Malkov & Yashunin), as used by Starmie.
//! * [`FlatIndex`] — exact brute-force vector baseline.
//! * [`Bm25Index`] — metadata keyword search.
//!
//! All families share the flat arena substrate in [`intern`]: dense `u32`
//! symbols from an [`Interner`], contiguous [`PostingLists`], and
//! epoch-reset probe scratch — the cache-friendly layout that makes the
//! `*_batch` entry points on each index worth batching for.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod access;
pub mod bm25;
pub mod ensemble;
pub mod flat;
pub mod hnsw;
pub mod intern;
pub mod inverted;
pub mod lsh;
pub mod topk;

pub use access::{AccessMethod, AdaptiveVectorIndex, CostModel, Workload};
pub use bm25::{tokenize, Bm25Index, Bm25Params, Bm25Stats};
pub use ensemble::LshEnsemble;
pub use flat::FlatIndex;
pub use hnsw::{Hnsw, HnswParams};
pub use intern::{EpochCounters, FlatMap64, Interner, PostingLists};
pub use inverted::{InvertedSetIndex, InvertedSetIndexBuilder, SearchStats, SetId};
pub use lsh::{collision_probability, tune_bands, MinHashLsh};
pub use topk::TopK;
