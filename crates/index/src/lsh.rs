//! MinHash LSH: banding index for Jaccard-threshold candidate retrieval.
//!
//! Band buckets are stored flat: each band keeps one contiguous array
//! of `(bucket key, item id)` pairs, sorted by key after a
//! [`MinHashLsh::freeze`] call so a probe is a binary search over one
//! allocation instead of a `HashMap` chase per band. Inserts append to
//! an unsorted tail that queries scan linearly, so the build-then-query
//! pattern ([`crate::LshEnsemble`] freezes after its build) pays zero
//! per-probe overhead while incremental use stays correct — candidate
//! sets are deduplicated and sorted before they leave this module, so
//! layout never changes answers.

use serde::{Deserialize, Serialize};
use td_sketch::hash::hash_u64;
use td_sketch::minhash::MinHashSignature;

/// Probability that two sets with Jaccard `j` collide in at least one of
/// `b` bands of `r` rows: `1 - (1 - j^r)^b`.
#[must_use]
pub fn collision_probability(j: f64, b: usize, r: usize) -> f64 {
    1.0 - (1.0 - j.powi(r as i32)).powi(b as i32)
}

/// Choose `(bands, rows)` with `bands * rows <= k` minimizing the sum of
/// false-positive and false-negative areas around `threshold` (the classic
/// S-curve tuning used by MinHash-LSH implementations).
#[must_use]
pub fn tune_bands(k: usize, threshold: f64) -> (usize, usize) {
    let mut best = (1, k.max(1));
    let mut best_err = f64::INFINITY;
    for r in 1..=k.max(1) {
        let b = k / r;
        if b == 0 {
            break;
        }
        // Integrate the S-curve error on both sides of the threshold.
        const STEPS: usize = 50;
        let mut fp = 0.0;
        let mut fn_ = 0.0;
        for s in 0..STEPS {
            let x = (s as f64 + 0.5) / STEPS as f64;
            let p = collision_probability(x, b, r);
            if x < threshold {
                fp += p;
            } else {
                fn_ += 1.0 - p;
            }
        }
        let err = (fp + fn_) / STEPS as f64;
        if err < best_err {
            best_err = err;
            best = (b, r);
        }
    }
    best
}

/// One band's flat bucket storage: `(bucket key, item id)` pairs where
/// `pairs[..sorted]` is sorted by key (binary-searchable) and
/// `pairs[sorted..]` is the unsorted insert tail.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct Band {
    pairs: Vec<(u64, u32)>,
    sorted: usize,
}

impl Band {
    fn insert(&mut self, key: u64, id: u32) {
        self.pairs.push((key, id));
    }

    fn freeze(&mut self) {
        self.pairs.sort_unstable();
        self.sorted = self.pairs.len();
    }

    /// Append every id bucketed under `key` to `out`.
    fn collect_bucket(&self, key: u64, out: &mut Vec<u32>) {
        let frozen = &self.pairs[..self.sorted];
        let start = frozen.partition_point(|&(k, _)| k < key);
        for &(k, id) in &frozen[start..] {
            if k != key {
                break;
            }
            out.push(id);
        }
        for &(k, id) in &self.pairs[self.sorted..] {
            if k == key {
                out.push(id);
            }
        }
    }
}

/// A MinHash LSH index with `b` bands of `r` rows.
///
/// Keys are `u32` item ids assigned by the caller; signatures must all come
/// from the same `MinHasher` with at least `b*r` hash functions.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MinHashLsh {
    bands: usize,
    rows: usize,
    /// One flat bucket array per band.
    tables: Vec<Band>,
    len: usize,
}

impl MinHashLsh {
    /// Create an index with explicit banding.
    ///
    /// # Panics
    /// Panics if `bands == 0 || rows == 0`.
    #[must_use]
    pub fn new(bands: usize, rows: usize) -> Self {
        assert!(bands > 0 && rows > 0);
        MinHashLsh {
            bands,
            rows,
            tables: vec![Band::default(); bands],
            len: 0,
        }
    }

    /// Create an index tuned for a Jaccard `threshold` given signature
    /// length `k`.
    #[must_use]
    pub fn with_threshold(k: usize, threshold: f64) -> Self {
        let (b, r) = tune_bands(k, threshold);
        Self::new(b, r)
    }

    /// Banding parameters `(bands, rows)`.
    #[must_use]
    pub fn params(&self) -> (usize, usize) {
        (self.bands, self.rows)
    }

    /// Number of indexed items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn band_key(&self, sig: &MinHashSignature, band: usize) -> u64 {
        let start = band * self.rows;
        let mut h = 0xB4_5Du64 ^ band as u64;
        for &v in &sig.values[start..start + self.rows] {
            h = hash_u64(v, h);
        }
        h
    }

    /// Insert a signature under an id.
    ///
    /// # Panics
    /// Panics if the signature is shorter than `bands * rows`.
    pub fn insert(&mut self, id: u32, sig: &MinHashSignature) {
        assert!(
            sig.values.len() >= self.bands * self.rows,
            "signature too short for banding"
        );
        for band in 0..self.bands {
            let key = self.band_key(sig, band);
            self.tables[band].insert(key, id);
        }
        self.len += 1;
    }

    /// Sort every band's bucket array so probes binary-search instead of
    /// scanning the insert tail. Call once after bulk insertion; queries
    /// are correct (just slower) without it.
    pub fn freeze(&mut self) {
        for band in &mut self.tables {
            band.freeze();
        }
    }

    /// Candidate ids colliding with the query in at least one band,
    /// deduplicated, in ascending order.
    #[must_use]
    pub fn query(&self, sig: &MinHashSignature) -> Vec<u32> {
        self.query_bands(sig, self.bands)
    }

    /// Candidates using only the first `use_bands` bands — LSH Ensemble's
    /// dynamic thresholding queries fewer bands for stricter (higher)
    /// Jaccard thresholds.
    #[must_use]
    pub fn query_bands(&self, sig: &MinHashSignature, use_bands: usize) -> Vec<u32> {
        assert!(
            sig.values.len() >= self.bands * self.rows,
            "signature too short for banding"
        );
        let reg = td_obs::global();
        reg.counter("index.lsh.queries").inc();
        let mut probes = 0u64;
        let mut ids: Vec<u32> = Vec::new();
        for band in 0..use_bands.min(self.bands) {
            let key = self.band_key(sig, band);
            probes += 1;
            self.tables[band].collect_bucket(key, &mut ids);
        }
        // Candidate ids deduplicated in sorted order: callers treat this
        // Vec as output, so it must not depend on band or bucket layout.
        ids.sort_unstable();
        ids.dedup();
        reg.counter("index.lsh.band_probes").add(probes);
        reg.counter("index.lsh.candidates").add(ids.len() as u64);
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_sketch::minhash::MinHasher;

    fn sig(h: &MinHasher, range: std::ops::Range<u32>) -> MinHashSignature {
        let toks: Vec<String> = range.map(|i| format!("v{i}")).collect();
        h.sign(toks.iter().map(String::as_str))
    }

    #[test]
    fn collision_probability_is_monotone() {
        let p1 = collision_probability(0.2, 16, 8);
        let p2 = collision_probability(0.8, 16, 8);
        assert!(p2 > p1);
        assert!(collision_probability(1.0, 4, 4) > 0.999);
        assert!(collision_probability(0.0, 4, 4) < 1e-9);
    }

    #[test]
    fn tune_bands_targets_threshold() {
        let (b, r) = tune_bands(128, 0.5);
        assert!(b * r <= 128);
        // The 50%-collision point (1/b)^(1/r) should be near 0.5.
        let mid = (1.0 / b as f64).powf(1.0 / r as f64);
        assert!((mid - 0.5).abs() < 0.15, "mid {mid} for b={b} r={r}");
        // Higher threshold -> more rows per band.
        let (_, r_strict) = tune_bands(128, 0.9);
        assert!(r_strict >= r);
    }

    #[test]
    fn identical_sets_always_collide() {
        let h = MinHasher::new(128, 1);
        let mut lsh = MinHashLsh::with_threshold(128, 0.5);
        let s = sig(&h, 0..100);
        lsh.insert(0, &s);
        assert_eq!(lsh.query(&s), vec![0]);
    }

    #[test]
    fn high_jaccard_pairs_are_retrieved() {
        let h = MinHasher::new(128, 1);
        let mut lsh = MinHashLsh::with_threshold(128, 0.5);
        // 90% overlap with the query.
        lsh.insert(7, &sig(&h, 10..110));
        let q = sig(&h, 0..100);
        assert!(lsh.query(&q).contains(&7));
    }

    #[test]
    fn low_jaccard_pairs_are_mostly_filtered() {
        let h = MinHasher::new(128, 3);
        let mut lsh = MinHashLsh::with_threshold(128, 0.6);
        // Insert 100 sets with ~5% Jaccard vs the query.
        for i in 0..100u32 {
            lsh.insert(i, &sig(&h, (1000 + i * 200)..(1100 + i * 200)));
        }
        let q = sig(&h, 0..100);
        let cands = lsh.query(&q);
        assert!(
            cands.len() < 15,
            "too many false positives: {}",
            cands.len()
        );
    }

    #[test]
    fn fewer_bands_is_stricter() {
        let h = MinHasher::new(128, 5);
        let mut lsh = MinHashLsh::new(32, 4);
        for i in 0..50u32 {
            // ~50% overlap sets.
            lsh.insert(i, &sig(&h, (i * 2)..(i * 2 + 100)));
        }
        let q = sig(&h, 0..100);
        let all = lsh.query_bands(&q, 32).len();
        let few = lsh.query_bands(&q, 4).len();
        assert!(few <= all, "few {few} all {all}");
    }

    #[test]
    fn frozen_answers_match_unfrozen() {
        let h = MinHasher::new(128, 2);
        let mut hot = MinHashLsh::new(16, 4);
        for i in 0..60u32 {
            hot.insert(i, &sig(&h, (i * 3)..(i * 3 + 80)));
        }
        let mut cold = hot.clone();
        cold.freeze();
        for probe in 0..10u32 {
            let q = sig(&h, (probe * 7)..(probe * 7 + 80));
            assert_eq!(hot.query(&q), cold.query(&q), "probe {probe}");
        }
        // Inserts after a freeze land in the scan tail and stay visible.
        cold.insert(999, &sig(&h, 0..80));
        assert!(cold.query(&sig(&h, 0..80)).contains(&999));
    }

    #[test]
    #[should_panic(expected = "signature too short")]
    fn rejects_short_signatures() {
        let h = MinHasher::new(16, 1);
        let mut lsh = MinHashLsh::new(8, 4); // needs 32
        lsh.insert(0, &sig(&h, 0..10));
    }

    #[test]
    fn empty_index_returns_nothing() {
        let h = MinHasher::new(64, 1);
        let lsh = MinHashLsh::new(16, 4);
        assert!(lsh.query(&sig(&h, 0..10)).is_empty());
        assert!(lsh.is_empty());
    }
}
