//! Bounded top-k collection by score with a *total* deterministic order.
//!
//! Ties on score are broken by the item's own `Ord` (ascending), so the
//! kept set and the output order depend only on the (score, item) pairs
//! offered — never on insertion order or heap internals. This is what
//! makes distributed scatter-gather exact: an item's rank within any
//! subset of the corpus is never better than its global rank, so the
//! global top-k is always contained in the union of per-shard top-ks,
//! and re-ranking that union reproduces the global answer byte for byte.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item with an `f64` score, ordered so a max-heap pops the *weakest*
/// entry first (for bounded top-k keeping the strongest). "Weakest" is
/// the entry that sorts last under (score descending, item ascending).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored<T> {
    score: f64,
    item: T,
}

impl<T: Ord> Eq for Scored<T> {}

impl<T: Ord> PartialOrd for Scored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: Ord> Ord for Scored<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the weakest on top.
        // Weakest = lowest score, ties broken by *largest* item (so the
        // kept set prefers smaller items on equal scores).
        other
            .score
            .total_cmp(&self.score)
            .then_with(|| self.item.cmp(&other.item))
    }
}

/// Keeps the `k` best items seen under (score descending, item ascending).
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Scored<T>>,
}

impl<T: Ord> TopK<T> {
    /// A collector of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k of zero");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer an item; it is kept only if it beats the current weakest
    /// entry under the total order (score descending, item ascending).
    pub fn push(&mut self, score: f64, item: T) {
        let cand = Scored { score, item };
        if self.heap.len() < self.k {
            self.heap.push(cand);
        } else if let Some(weakest) = self.heap.peek() {
            // `cand > *weakest` in heap order means the candidate is
            // *weaker*; admit only strictly stronger entries.
            if cand < *weakest {
                self.heap.pop();
                self.heap.push(cand);
            }
        }
    }

    /// Current number of kept items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing was kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The k-th best score so far (the admission bar), if `k` items are
    /// already held. Note: entries tying this score may still be
    /// admitted when their item sorts before the current weakest item.
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|s| s.score)
        } else {
            None
        }
    }

    /// Consume into `(score, item)` pairs sorted by descending score,
    /// ties by ascending item.
    #[must_use]
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, T)> = self.heap.into_iter().map(|s| (s.score, s.item)).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).reverse().then_with(|| a.1.cmp(&b.1)));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_k_sorted() {
        let mut t = TopK::new(3);
        for (s, i) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (4.0, "d"), (2.0, "e")] {
            t.push(s, i);
        }
        let out = t.into_sorted();
        assert_eq!(out, vec![(5.0, "b"), (4.0, "d"), (3.0, "c")]);
    }

    #[test]
    fn fewer_than_k_keeps_all() {
        let mut t = TopK::new(10);
        t.push(1.0, 1);
        t.push(2.0, 2);
        assert_eq!(t.len(), 2);
        assert!(t.threshold().is_none());
        assert_eq!(t.into_sorted(), vec![(2.0, 2), (1.0, 1)]);
    }

    #[test]
    fn threshold_is_kth_best() {
        let mut t = TopK::new(2);
        t.push(1.0, 'x');
        t.push(9.0, 'y');
        assert_eq!(t.threshold(), Some(1.0));
        t.push(5.0, 'z');
        assert_eq!(t.threshold(), Some(5.0));
    }

    #[test]
    fn equal_scores_keep_smallest_item() {
        let mut t = TopK::new(1);
        t.push(1.0, "first");
        t.push(1.0, "second");
        assert_eq!(t.into_sorted(), vec![(1.0, "first")]);

        // And the symmetric case: a smaller item arriving later wins.
        let mut t = TopK::new(1);
        t.push(1.0, "second");
        t.push(1.0, "first");
        assert_eq!(t.into_sorted(), vec![(1.0, "first")]);
    }

    #[test]
    fn order_is_insertion_invariant() {
        let entries = [(2.0, 7u32), (2.0, 3), (1.0, 9), (2.0, 5), (1.0, 1)];
        let mut fwd = TopK::new(3);
        for &(s, i) in &entries {
            fwd.push(s, i);
        }
        let mut rev = TopK::new(3);
        for &(s, i) in entries.iter().rev() {
            rev.push(s, i);
        }
        let expect = vec![(2.0, 3), (2.0, 5), (2.0, 7)];
        assert_eq!(fwd.into_sorted(), expect);
        assert_eq!(rev.into_sorted(), expect);
    }

    #[test]
    fn handles_negative_and_nan_free_scores() {
        let mut t = TopK::new(2);
        t.push(-5.0, 1);
        t.push(-1.0, 2);
        t.push(-3.0, 3);
        assert_eq!(t.into_sorted(), vec![(-1.0, 2), (-3.0, 3)]);
    }
}
