//! Bounded top-k collection by score.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An item with an `f64` score, ordered so a max-heap pops the *smallest*
/// score first (for bounded top-k keeping the largest).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Scored<T> {
    score: f64,
    item: T,
}

impl<T: PartialEq> Eq for Scored<T> {}

impl<T: PartialEq> PartialOrd for Scored<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T: PartialEq> Ord for Scored<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: BinaryHeap is a max-heap; we want the weakest on top.
        other.score.total_cmp(&self.score)
    }
}

/// Keeps the `k` highest-scoring items seen.
#[derive(Debug, Clone)]
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Scored<T>>,
}

impl<T: PartialEq> TopK<T> {
    /// A collector of capacity `k`.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Self {
        assert!(k > 0, "top-k of zero");
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offer an item; it is kept only if it beats the current k-th best.
    pub fn push(&mut self, score: f64, item: T) {
        if self.heap.len() < self.k {
            self.heap.push(Scored { score, item });
        } else if let Some(weakest) = self.heap.peek() {
            if score > weakest.score {
                self.heap.pop();
                self.heap.push(Scored { score, item });
            }
        }
    }

    /// Current number of kept items.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if nothing was kept.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The k-th best score so far (the admission bar), if `k` items are
    /// already held.
    #[must_use]
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|s| s.score)
        } else {
            None
        }
    }

    /// Consume into `(score, item)` pairs sorted by descending score.
    #[must_use]
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut v: Vec<(f64, T)> = self.heap.into_iter().map(|s| (s.score, s.item)).collect();
        v.sort_by(|a, b| b.0.total_cmp(&a.0));
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_top_k_sorted() {
        let mut t = TopK::new(3);
        for (s, i) in [(1.0, "a"), (5.0, "b"), (3.0, "c"), (4.0, "d"), (2.0, "e")] {
            t.push(s, i);
        }
        let out = t.into_sorted();
        assert_eq!(out, vec![(5.0, "b"), (4.0, "d"), (3.0, "c")]);
    }

    #[test]
    fn fewer_than_k_keeps_all() {
        let mut t = TopK::new(10);
        t.push(1.0, 1);
        t.push(2.0, 2);
        assert_eq!(t.len(), 2);
        assert!(t.threshold().is_none());
        assert_eq!(t.into_sorted(), vec![(2.0, 2), (1.0, 1)]);
    }

    #[test]
    fn threshold_is_kth_best() {
        let mut t = TopK::new(2);
        t.push(1.0, 'x');
        t.push(9.0, 'y');
        assert_eq!(t.threshold(), Some(1.0));
        t.push(5.0, 'z');
        assert_eq!(t.threshold(), Some(5.0));
    }

    #[test]
    fn equal_scores_do_not_evict() {
        let mut t = TopK::new(1);
        t.push(1.0, "first");
        t.push(1.0, "second");
        assert_eq!(t.into_sorted(), vec![(1.0, "first")]);
    }

    #[test]
    fn handles_negative_and_nan_free_scores() {
        let mut t = TopK::new(2);
        t.push(-5.0, 1);
        t.push(-1.0, 2);
        t.push(-3.0, 3);
        assert_eq!(t.into_sorted(), vec![(-1.0, 2), (-3.0, 3)]);
    }
}
