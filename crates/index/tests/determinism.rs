//! Regression tests for run-to-run determinism of search rankings
//! (TD005): two independently built indexes over the same data must
//! return byte-identical result lists, even when scores tie.
//!
//! `std::collections::HashMap` seeds its hasher per instance, so two
//! builds in one process iterate in different orders — exactly the
//! nondeterminism a fresh process would exhibit. Before the sorted
//! drains landed, tied candidates ranked in hash order and these tests
//! flaked across runs.

use td_index::bm25::{Bm25Index, Bm25Params};
use td_index::inverted::InvertedSetIndexBuilder;
use td_index::lsh::MinHashLsh;
use td_sketch::minhash::MinHasher;

/// Many sets with identical token overlap against the query, so every
/// candidate ties and only deterministic tie-breaking can order them.
fn build_tied_inverted() -> td_index::inverted::InvertedSetIndex {
    let mut b = InvertedSetIndexBuilder::new();
    for i in 0..12u32 {
        // All sets share {q0, q1, q2}; each adds unique filler.
        let mut toks: Vec<String> = (0..3).map(|j| format!("q{j}")).collect();
        toks.push(format!("filler_{i}"));
        b.add_set(toks.iter().map(String::as_str));
    }
    b.build()
}

#[test]
fn inverted_merge_rankings_are_byte_identical_across_builds() {
    let q: Vec<&str> = vec!["q0", "q1", "q2"];
    let run = || {
        let idx = build_tied_inverted();
        let (hits, _) = idx.top_k_merge(q.iter().copied(), 8);
        format!("{hits:?}")
    };
    assert_eq!(run(), run(), "tied overlap scores must rank identically");
}

#[test]
fn inverted_adaptive_rankings_are_byte_identical_across_builds() {
    let q: Vec<&str> = vec!["q0", "q1", "q2"];
    let run = || {
        let idx = build_tied_inverted();
        let (hits, _) = idx.top_k_adaptive(q.iter().copied(), 8);
        format!("{hits:?}")
    };
    assert_eq!(run(), run());
}

#[test]
fn bm25_rankings_are_byte_identical_across_builds() {
    let run = || {
        let mut idx = Bm25Index::new(Bm25Params::default());
        // Identical documents -> identical scores -> pure tie-breaking.
        for _ in 0..10 {
            idx.add_document("customer city population country");
        }
        idx.add_document("unrelated words entirely");
        format!("{:?}", idx.search("city population", 8))
    };
    assert_eq!(run(), run(), "tied BM25 scores must rank identically");
}

#[test]
fn lsh_candidates_are_sorted_and_stable_across_builds() {
    let h = MinHasher::new(64, 7);
    let toks: Vec<String> = (0..40).map(|i| format!("v{i}")).collect();
    let sig = h.sign(toks.iter().map(String::as_str));
    let run = || {
        let mut lsh = MinHashLsh::with_threshold(64, 0.5);
        // Same signature under many ids: all collide in every band.
        for id in [9u32, 3, 11, 0, 7, 5] {
            lsh.insert(id, &sig);
        }
        lsh.query(&sig)
    };
    let first = run();
    assert_eq!(first, vec![0, 3, 5, 7, 9, 11], "candidates must be sorted");
    assert_eq!(first, run());
}
