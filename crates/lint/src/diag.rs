//! Diagnostics: stable lint codes, span-accurate locations, waiver
//! state, and text/JSON rendering (hand-rolled — this crate has no
//! dependencies, serde included).

use std::fmt::Write as _;

/// The project lint codes, stable across releases. Adding a code is
/// backward compatible; renumbering is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `unwrap()` / `expect()` / `panic!` in non-test library code.
    Td001,
    /// `Instant::now` / `SystemTime::now` timing outside `crates/obs`.
    Td002,
    /// `unsafe` anywhere in the workspace.
    Td003,
    /// `println!` / `eprintln!` / `dbg!` in library code.
    Td004,
    /// Hash-order iteration feeding ordered output without a sort.
    Td005,
    /// Undocumented `pub fn` in a crate root.
    Td006,
}

/// Every code, in report order.
pub const ALL_CODES: [Code; 6] = [
    Code::Td001,
    Code::Td002,
    Code::Td003,
    Code::Td004,
    Code::Td005,
    Code::Td006,
];

impl Code {
    /// The stable code string (`"TD001"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Td001 => "TD001",
            Code::Td002 => "TD002",
            Code::Td003 => "TD003",
            Code::Td004 => "TD004",
            Code::Td005 => "TD005",
            Code::Td006 => "TD006",
        }
    }

    /// Parse `"TD001"` (case-insensitive) into a code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s.trim()))
    }

    /// One-line rule summary for reports.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Code::Td001 => "no unwrap()/expect()/panic! in non-test library code",
            Code::Td002 => "no Instant::now/SystemTime::now outside crates/obs",
            Code::Td003 => "no unsafe code anywhere",
            Code::Td004 => "no println!/eprintln!/dbg! in library code (route through td-obs)",
            Code::Td005 => "no hash-order iteration feeding ordered output without a sort",
            Code::Td006 => "every pub fn in a crate root must be documented",
        }
    }
}

/// One lint finding: where, what, and whether a waiver covers it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: Code,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based byte column of the finding.
    pub col: u32,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// The full source line the finding sits on (trimmed of newline).
    pub excerpt: String,
    /// The reason text of the waiver covering this finding, if any.
    pub waive_reason: Option<String>,
}

impl Diagnostic {
    /// True when an inline waiver covers this finding.
    #[must_use]
    pub fn is_waived(&self) -> bool {
        self.waive_reason.is_some()
    }

    /// Render in a rustc-like two-line format with a caret marker.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let status = if self.is_waived() { "waived" } else { "error" };
        let _ = writeln!(s, "{status}[{}]: {}", self.code.as_str(), self.message);
        let _ = writeln!(s, "  --> {}:{}:{}", self.path, self.line, self.col);
        let gutter = format!("{}", self.line);
        let _ = writeln!(s, "{} | {}", gutter, self.excerpt);
        let pad = " ".repeat(gutter.len() + 3 + self.col.saturating_sub(1) as usize);
        let _ = writeln!(s, "{pad}^");
        if let Some(reason) = &self.waive_reason {
            let _ = writeln!(s, "   = waived: {reason}");
        }
        s
    }
}

/// Escape a string for inclusion in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Render as one JSON object (no trailing newline).
    #[must_use]
    pub fn render_json(&self) -> String {
        let reason = match &self.waive_reason {
            Some(r) => format!("\"{}\"", json_escape(r)),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"excerpt\":\"{}\",\"waived\":{},\"waive_reason\":{}}}",
            self.code.as_str(),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.excerpt),
            self.is_waived(),
            reason,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trips() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert_eq!(Code::parse(&c.as_str().to_lowercase()), Some(c));
        }
        assert_eq!(Code::parse("TD999"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let d = Diagnostic {
            code: Code::Td001,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "call to `unwrap()`".into(),
            excerpt: "    x.unwrap();".into(),
            waive_reason: None,
        };
        let j = d.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"TD001\""));
        assert!(j.contains("\"waived\":false"));
    }
}
