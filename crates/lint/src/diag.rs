//! Diagnostics: stable lint codes, span-accurate locations, waiver
//! state, and text/JSON rendering (hand-rolled — this crate has no
//! dependencies, serde included).

use std::fmt::Write as _;

/// The project lint codes, stable across releases. Adding a code is
/// backward compatible; renumbering is not.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Code {
    /// `unwrap()` / `expect()` / `panic!` in non-test library code.
    Td001,
    /// `Instant::now` / `SystemTime::now` timing outside `crates/obs`.
    Td002,
    /// `unsafe` anywhere in the workspace.
    Td003,
    /// `println!` / `eprintln!` / `dbg!` in library code.
    Td004,
    /// Hash-order iteration feeding ordered output without a sort.
    Td005,
    /// Undocumented `pub fn` in a crate root.
    Td006,
    /// Lock-order cycle in the global acquisition graph.
    Td007,
    /// Blocking operation while a lock guard is live.
    Td008,
    /// Atomics-ordering audit: `Relaxed` beyond pure counters.
    Td009,
    /// Unbounded growth of long-lived server/obs state.
    Td010,
    /// Swallowed `Result` / unconsumed `#[must_use]` return.
    Td011,
    /// Crate-layering violation (manifest dependency outside the spec).
    Td012,
}

/// Every code, in report order.
pub const ALL_CODES: [Code; 12] = [
    Code::Td001,
    Code::Td002,
    Code::Td003,
    Code::Td004,
    Code::Td005,
    Code::Td006,
    Code::Td007,
    Code::Td008,
    Code::Td009,
    Code::Td010,
    Code::Td011,
    Code::Td012,
];

impl Code {
    /// The stable code string (`"TD001"`).
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Code::Td001 => "TD001",
            Code::Td002 => "TD002",
            Code::Td003 => "TD003",
            Code::Td004 => "TD004",
            Code::Td005 => "TD005",
            Code::Td006 => "TD006",
            Code::Td007 => "TD007",
            Code::Td008 => "TD008",
            Code::Td009 => "TD009",
            Code::Td010 => "TD010",
            Code::Td011 => "TD011",
            Code::Td012 => "TD012",
        }
    }

    /// Parse `"TD001"` (case-insensitive) into a code.
    #[must_use]
    pub fn parse(s: &str) -> Option<Code> {
        ALL_CODES
            .iter()
            .copied()
            .find(|c| c.as_str().eq_ignore_ascii_case(s.trim()))
    }

    /// One-line rule summary for reports.
    #[must_use]
    pub fn summary(self) -> &'static str {
        match self {
            Code::Td001 => "no unwrap()/expect()/panic! in non-test library code",
            Code::Td002 => "no Instant::now/SystemTime::now outside crates/obs",
            Code::Td003 => "no unsafe code anywhere",
            Code::Td004 => "no println!/eprintln!/dbg! in library code (route through td-obs)",
            Code::Td005 => "no hash-order iteration feeding ordered output without a sort",
            Code::Td006 => "every pub fn in a crate root must be documented",
            Code::Td007 => "no lock-order cycles in the global acquisition graph",
            Code::Td008 => "no blocking operation (lock/recv/io/sleep/join) while a guard is live",
            Code::Td009 => "Relaxed atomics only for pure counters; CAS and publish/consume need stronger orderings",
            Code::Td010 => "push/insert into long-lived serve/obs state must be capacity-bounded",
            Code::Td011 => "no swallowed Result (`let _ =`) or discarded #[must_use] return in library code",
            Code::Td012 => "crate layering: core never depends on serve; obs and lint stay leaves",
        }
    }

    /// The full rationale printed by `td-lint --explain TDxxx`: why the
    /// rule exists, what it matches, and how to waive a finding.
    #[must_use]
    pub fn rationale(self) -> &'static str {
        match self {
            Code::Td001 => {
                "A panic in library code tears down whichever thread happened to run the \
                 discovery — in td-serve that is a connection or worker thread, and the peer \
                 sees a silent hangup. Return a typed error, or restructure so the invariant \
                 is established where it is checked."
            }
            Code::Td002 => {
                "Raw Instant::now()/SystemTime::now() reads bypass the td-obs clock, so the \
                 measurement never reaches the metrics registry and logical-clock test runs \
                 stop being reproducible. Route timing through td_obs::Timer or a trace span; \
                 crates/obs itself is the one place allowed to touch the raw clock."
            }
            Code::Td003 => {
                "The workspace is unsafe-free by policy and every crate root carries \
                 #![forbid(unsafe_code)] as the compiler-enforced backstop. There is no \
                 performance story here worth a memory-safety proof obligation."
            }
            Code::Td004 => {
                "Library code writing to stdout/stderr interleaves with the serving \
                 protocol and the bench harness's own tables. Emit a td-obs metric or span, \
                 or return the text to the caller who owns the terminal."
            }
            Code::Td005 => {
                "HashMap/HashSet iteration order changes run to run, so any ordered output \
                 fed from it (a collected Vec, a ranked reply) is nondeterministic — the \
                 byte-identity tests and cached results both break. Sort the entries, or \
                 collect into a BTree container."
            }
            Code::Td006 => {
                "The crate root is the crate's public API surface; an undocumented pub fn \
                 there is an API nobody agreed to support. Add a /// doc comment stating the \
                 contract."
            }
            Code::Td007 => {
                "Two code paths that acquire the same locks in opposite orders deadlock \
                 under concurrency the moment both paths run at once. td-lint builds the \
                 global acquisition graph (held-lock sets propagated through calls, across \
                 crates) and flags every edge of any cycle. Fix by choosing one global \
                 order, or narrow a guard's scope so the nesting disappears. Lock identity \
                 is name-based (crate::Type.field), so distinct instances of one field can \
                 alias — waive such a finding with the instance argument spelled out."
            }
            Code::Td008 => {
                "Blocking while holding a guard (another lock, a channel recv, TCP/file \
                 I/O, sleep, join) stretches the critical section over an unbounded wait \
                 and stalls every thread queued on that mutex. Hoist the blocking call out \
                 of the guard's scope, or drop() the guard first. Condvar::wait(guard) is \
                 recognized and exempt for the guard it releases. Where the lock exists \
                 precisely to serialize the blocking operation (e.g. a per-connection \
                 write mutex), waive with that justification."
            }
            Code::Td009 => {
                "Ordering::Relaxed is sound only when the atomic's value is the entire \
                 story — pure counters and gauges. A compare-exchange loop or a \
                 publish/consume pair (Release store observed by Acquire load) that drops \
                 to Relaxed loses the happens-before edge and readers observe stale or \
                 torn protected data. td-lint flags Relaxed success orderings in CAS \
                 calls and mixed-ordering pairs on one field. If the CAS really protects \
                 nothing but its own cell, waive with that argument."
            }
            Code::Td010 => {
                "A server that runs for weeks cannot push into unbounded state: every \
                 queue, log, and cache in crates/serve and crates/obs must enforce a \
                 capacity the way Ring<T> does (drop-oldest), or shed load like the \
                 admission queue. td-lint flags insertions into self-reachable state in \
                 functions with no visible bound enforcement (capacity/limit/truncate/\
                 pop_front/evict/retain/budget). If growth is bounded by construction \
                 (e.g. a closed key set), waive with that reasoning."
            }
            Code::Td011 => {
                "`let _ = fallible()` silently discards the error path, and a discarded \
                 #[must_use] return is a computed value nobody consumed — both hide real \
                 failures until they metastasize. Handle the Result, count it into a \
                 metric, or waive with the reason the error is genuinely uninteresting. \
                 (`let _ = write!(..)` into a String is exempt: fmt::Write to memory is \
                 infallible.)"
            }
            Code::Td012 => {
                "The dependency DAG is the architecture: td-core must never know about \
                 td-serve, td-obs and td-lint stay leaf crates everything may use, and \
                 each crate's allowed dependency set is pinned in the lint. A new edge is \
                 an architectural decision — add it to the layering table deliberately, \
                 or waive the manifest line with `# td-lint: allow(TD012) reason`."
            }
        }
    }
}

/// One lint finding: where, what, and whether a waiver covers it.
#[derive(Debug, Clone)]
pub struct Diagnostic {
    /// Which rule fired.
    pub code: Code,
    /// Workspace-relative path of the offending file.
    pub path: String,
    /// 1-based line of the finding.
    pub line: u32,
    /// 1-based byte column of the finding.
    pub col: u32,
    /// Human-readable description of this specific finding.
    pub message: String,
    /// The full source line the finding sits on (trimmed of newline).
    pub excerpt: String,
    /// The reason text of the waiver covering this finding, if any.
    pub waive_reason: Option<String>,
}

impl Diagnostic {
    /// True when an inline waiver covers this finding.
    #[must_use]
    pub fn is_waived(&self) -> bool {
        self.waive_reason.is_some()
    }

    /// Render in a rustc-like two-line format with a caret marker.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let status = if self.is_waived() { "waived" } else { "error" };
        let _ = writeln!(s, "{status}[{}]: {}", self.code.as_str(), self.message);
        let _ = writeln!(s, "  --> {}:{}:{}", self.path, self.line, self.col);
        let gutter = format!("{}", self.line);
        let _ = writeln!(s, "{} | {}", gutter, self.excerpt);
        let pad = " ".repeat(gutter.len() + 3 + self.col.saturating_sub(1) as usize);
        let _ = writeln!(s, "{pad}^");
        if let Some(reason) = &self.waive_reason {
            let _ = writeln!(s, "   = waived: {reason}");
        }
        s
    }
}

/// Escape a string for inclusion in a JSON document.
#[must_use]
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

impl Diagnostic {
    /// Render as one JSON object (no trailing newline).
    #[must_use]
    pub fn render_json(&self) -> String {
        let reason = match &self.waive_reason {
            Some(r) => format!("\"{}\"", json_escape(r)),
            None => "null".to_string(),
        };
        format!(
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"col\":{},\"message\":\"{}\",\"excerpt\":\"{}\",\"waived\":{},\"waive_reason\":{}}}",
            self.code.as_str(),
            json_escape(&self.path),
            self.line,
            self.col,
            json_escape(&self.message),
            json_escape(&self.excerpt),
            self.is_waived(),
            reason,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_round_trips() {
        for c in ALL_CODES {
            assert_eq!(Code::parse(c.as_str()), Some(c));
            assert_eq!(Code::parse(&c.as_str().to_lowercase()), Some(c));
        }
        assert_eq!(Code::parse("TD999"), None);
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("tab\there"), "tab\\there");
    }

    #[test]
    fn render_json_is_parseable_shape() {
        let d = Diagnostic {
            code: Code::Td001,
            path: "crates/x/src/lib.rs".into(),
            line: 3,
            col: 7,
            message: "call to `unwrap()`".into(),
            excerpt: "    x.unwrap();".into(),
            waive_reason: None,
        };
        let j = d.render_json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(j.contains("\"code\":\"TD001\""));
        assert!(j.contains("\"waived\":false"));
    }
}
