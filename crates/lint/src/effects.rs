//! Effect propagation over the symbol graph: which functions may
//! block, and which locks each function may transitively acquire.
//! Computed as a fixpoint over resolved call edges, so `a -> b -> c`
//! where `c` locks makes both `a` and `b` may-lock (and may-block —
//! acquiring a lock is a potential wait).

use crate::graph::SymbolGraph;
use crate::parser::CallSite;
use std::collections::BTreeSet;

/// Blocking primitives recognized by bare method/function name when the
/// call has an empty argument list (which separates `RwLock::read()`
/// from `io::Read::read(buf)`, and `JoinHandle::join()` from
/// `slice::join(sep)`).
const BLOCKING_NO_ARGS: [&str; 7] = ["lock", "read", "write", "recv", "join", "accept", "flush"];

/// Blocking primitives recognized by name regardless of arguments.
const BLOCKING_ANY_ARGS: [&str; 9] = [
    "sleep",
    "recv_timeout",
    "wait_timeout",
    "wait_while",
    "read_exact",
    "write_all",
    "read_to_end",
    "read_to_string",
    "get_or_init",
];

/// Types whose path-qualified `connect` is a network dial.
const DIAL_TYPES: [&str; 3] = ["TcpStream", "UnixStream", "UdpSocket"];

/// Is this call a directly blocking primitive? `Condvar::wait(guard)`
/// is handled separately by TD008 (it atomically releases the guard it
/// is passed).
#[must_use]
pub fn is_blocking_primitive(c: &CallSite) -> bool {
    if c.args_empty && BLOCKING_NO_ARGS.contains(&c.name.as_str()) {
        return true;
    }
    if BLOCKING_ANY_ARGS.contains(&c.name.as_str()) {
        return true;
    }
    c.name == "connect"
        && c.path_prev
            .as_deref()
            .is_some_and(|p| DIAL_TYPES.contains(&p))
}

/// The fixpoint result, indexed by graph node.
pub struct Effects {
    /// Node may block (directly or transitively).
    pub may_block: Vec<bool>,
    /// Lock identities the node may acquire, transitively.
    pub locks: Vec<BTreeSet<String>>,
}

/// Propagate effects until fixpoint. Cycles in the call graph (mutual
/// recursion) converge because the per-node sets only grow.
#[must_use]
pub fn propagate(g: &SymbolGraph) -> Effects {
    let n = g.nodes.len();
    let mut may_block = vec![false; n];
    let mut locks: Vec<BTreeSet<String>> = vec![BTreeSet::new(); n];

    // Seed with direct effects.
    for (i, f) in g.iter_fns() {
        for l in &f.locks {
            locks[i].insert(l.lock_id.clone());
            may_block[i] = true;
        }
        if f.calls
            .iter()
            .any(|c| is_blocking_primitive(c) || (c.name == "wait" && !c.args_empty))
        {
            may_block[i] = true;
        }
    }

    // Fixpoint over call edges.
    let mut changed = true;
    while changed {
        changed = false;
        for i in 0..n {
            for targets in &g.edges[i] {
                for &t in targets {
                    if t == i {
                        continue;
                    }
                    if may_block[t] && !may_block[i] {
                        may_block[i] = true;
                        changed = true;
                    }
                    if !locks[t].is_empty() && !locks[t].is_subset(&locks[i]) {
                        let add: Vec<String> = locks[t].difference(&locks[i]).cloned().collect();
                        for a in add {
                            locks[i].insert(a);
                        }
                        changed = true;
                    }
                }
            }
        }
    }

    Effects { may_block, locks }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::SymbolGraph;
    use crate::parser::parse_file;

    #[test]
    fn effects_propagate_transitively() {
        let a = parse_file(
            "crates/alpha/src/lib.rs",
            "alpha",
            "\
pub struct S { m: std::sync::Mutex<u32> }
impl S {
    pub fn leaf(&self) { let _g = self.m.lock(); }
}
pub fn mid(s: &S) { s.leaf(); }
pub fn top(s: &S) { mid(s); }
pub fn pure(x: u32) -> u32 { x + 1 }
",
        );
        let g = SymbolGraph::build(vec![a]);
        let fx = propagate(&g);
        let idx = |name: &str| {
            g.iter_fns()
                .find(|(_, f)| f.name == name)
                .map(|(i, _)| i)
                .unwrap()
        };
        assert!(fx.may_block[idx("leaf")]);
        assert!(fx.may_block[idx("mid")]);
        assert!(fx.may_block[idx("top")]);
        assert!(!fx.may_block[idx("pure")]);
        assert!(fx.locks[idx("top")].contains("alpha::S.m"));
        assert!(fx.locks[idx("pure")].is_empty());
    }
}
