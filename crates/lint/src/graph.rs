//! The cross-crate symbol graph: every parsed function from every
//! library file, with call edges resolved by name across the whole
//! workspace. Resolution is deliberately conservative for method names
//! that collide with std container/iterator vocabulary (`len`, `get`,
//! `push`, ...) — linking those by bare name would wire `Vec::len` to
//! `Ring::len` and poison the effect propagation with false may-lock
//! edges, so they stay unresolved unless path-qualified.

use crate::parser::{FileItems, FnItem};
use std::collections::HashMap;

/// Method names too generic to resolve by bare name: the std
/// container/iterator/atomic vocabulary. A call to one of these only
/// resolves when path-qualified (`Ring::len(..)`).
const COMMON_METHODS: [&str; 96] = [
    "new",
    "default",
    "clone",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "as_ref",
    "as_mut",
    "as_str",
    "as_bytes",
    "as_slice",
    "len",
    "is_empty",
    "clear",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "push_back",
    "push_front",
    "pop_front",
    "pop_back",
    "extend",
    "retain",
    "truncate",
    "iter",
    "iter_mut",
    "into_iter",
    "next",
    "map",
    "filter",
    "filter_map",
    "flat_map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "take",
    "replace",
    "min",
    "max",
    "sum",
    "count",
    "collect",
    "fold",
    "any",
    "all",
    "find",
    "position",
    "rev",
    "chain",
    "zip",
    "enumerate",
    "last",
    "first",
    "contains",
    "contains_key",
    "keys",
    "values",
    "entry",
    "or_default",
    "or_insert",
    "drain",
    "split",
    "trim",
    "starts_with",
    "ends_with",
    "parse",
    "fmt",
    "cmp",
    "partial_cmp",
    "hash",
    "sort",
    "sort_by",
    "sort_by_key",
    "sort_unstable",
    "sort_unstable_by",
    "sort_unstable_by_key",
    "binary_search",
    "partition_point",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_min",
    "fetch_max",
    "compare_exchange",
    "compare_exchange_weak",
];

/// One node: `(file index, fn index)` into the owning [`SymbolGraph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FnId(pub usize, pub usize);

/// Aggregate counters reported in BENCH_lint.json and `--format json`.
#[derive(Debug, Clone, Default)]
pub struct GraphStats {
    /// Library files parsed into the graph.
    pub files: usize,
    /// Functions and impl-methods extracted.
    pub items: usize,
    /// Call sites recorded.
    pub call_sites: usize,
    /// Call sites resolved to at least one workspace function.
    pub resolved_edges: usize,
    /// Lock-acquisition sites.
    pub lock_sites: usize,
    /// Atomic operations carrying an `Ordering`.
    pub atomic_sites: usize,
    /// Collection-insertion sites.
    pub mutation_sites: usize,
    /// Per-rule wall time in nanoseconds, `(code, ns)`, zero when the
    /// caller supplied no clock.
    pub rule_ns: Vec<(&'static str, u64)>,
    /// Total analysis wall time (lex+parse+graph+rules) in ns.
    pub total_ns: u64,
}

/// The workspace symbol graph.
pub struct SymbolGraph {
    /// Parsed library files, in scan order.
    pub files: Vec<FileItems>,
    /// Flattened function nodes.
    pub nodes: Vec<FnId>,
    /// Bare name → node indices.
    by_name: HashMap<String, Vec<usize>>,
    /// Qualified `Type::name` → node indices.
    by_qual: HashMap<String, Vec<usize>>,
    /// Resolved callees per node (indices into `nodes`), parallel to
    /// each fn's `calls` vector: `edges[node][call_idx]` lists targets.
    pub edges: Vec<Vec<Vec<usize>>>,
    /// Aggregate counters.
    pub stats: GraphStats,
}

impl SymbolGraph {
    /// Assemble the graph from parsed files and resolve call edges.
    #[must_use]
    pub fn build(files: Vec<FileItems>) -> SymbolGraph {
        let mut nodes = Vec::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        let mut by_qual: HashMap<String, Vec<usize>> = HashMap::new();
        for (fi, file) in files.iter().enumerate() {
            for (gi, f) in file.fns.iter().enumerate() {
                let id = nodes.len();
                nodes.push(FnId(fi, gi));
                by_name.entry(f.name.clone()).or_default().push(id);
                by_qual.entry(f.qual.clone()).or_default().push(id);
            }
        }

        let mut graph = SymbolGraph {
            files,
            nodes,
            by_name,
            by_qual,
            edges: Vec::new(),
            stats: GraphStats::default(),
        };

        let mut edges = Vec::with_capacity(graph.nodes.len());
        let mut call_sites = 0usize;
        let mut resolved = 0usize;
        for &FnId(fi, gi) in &graph.nodes {
            let crate_name = &graph.files[fi].crate_name;
            let f = &graph.files[fi].fns[gi];
            let mut per_call = Vec::with_capacity(f.calls.len());
            call_sites += f.calls.len();
            for c in &f.calls {
                let targets = graph.resolve(crate_name, &c.name, c.path_prev.as_deref());
                if !targets.is_empty() {
                    resolved += 1;
                }
                per_call.push(targets);
            }
            edges.push(per_call);
        }
        let lock_sites = graph.iter_fns().map(|(_, f)| f.locks.len()).sum();
        let atomic_sites = graph.iter_fns().map(|(_, f)| f.atomics.len()).sum();
        let mutation_sites = graph.iter_fns().map(|(_, f)| f.mutations.len()).sum();
        graph.stats = GraphStats {
            files: graph.files.len(),
            items: graph.nodes.len(),
            call_sites,
            resolved_edges: resolved,
            lock_sites,
            atomic_sites,
            mutation_sites,
            rule_ns: Vec::new(),
            total_ns: 0,
        };
        graph.edges = edges;
        graph
    }

    /// All `(node index, fn)` pairs.
    pub fn iter_fns(&self) -> impl Iterator<Item = (usize, &FnItem)> {
        self.nodes
            .iter()
            .enumerate()
            .map(move |(i, &FnId(fi, gi))| (i, &self.files[fi].fns[gi]))
    }

    /// The fn behind a node index.
    #[must_use]
    pub fn fn_of(&self, node: usize) -> &FnItem {
        let FnId(fi, gi) = self.nodes[node];
        &self.files[fi].fns[gi]
    }

    /// The file behind a node index.
    #[must_use]
    pub fn file_of(&self, node: usize) -> &FileItems {
        &self.files[self.nodes[node].0]
    }

    /// Resolve a call to candidate nodes. Path-qualified calls try
    /// `Type::name` first; common std method names stay unresolved;
    /// bare names prefer same-crate definitions, falling back to the
    /// whole workspace (cross-crate edges).
    fn resolve(&self, crate_name: &str, name: &str, path_prev: Option<&str>) -> Vec<usize> {
        if let Some(prev) = path_prev {
            if let Some(hits) = self.by_qual.get(&format!("{prev}::{name}")) {
                return hits.clone();
            }
            // A path-qualified call whose type is not ours (e.g.
            // `Arc::new`, `TcpStream::connect`) is std territory.
            return Vec::new();
        }
        if COMMON_METHODS.contains(&name) {
            return Vec::new();
        }
        let Some(hits) = self.by_name.get(name) else {
            return Vec::new();
        };
        let same_crate: Vec<usize> = hits
            .iter()
            .copied()
            .filter(|&n| self.file_of(n).crate_name == crate_name)
            .collect();
        if same_crate.is_empty() {
            hits.clone()
        } else {
            same_crate
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_file;

    #[test]
    fn cross_crate_resolution() {
        let a = parse_file(
            "crates/alpha/src/lib.rs",
            "alpha",
            "pub fn caller() { helper_in_beta(); local(); }\npub fn local() {}\n",
        );
        let b = parse_file(
            "crates/beta/src/lib.rs",
            "beta",
            "pub fn helper_in_beta() {}\n",
        );
        let g = SymbolGraph::build(vec![a, b]);
        assert_eq!(g.stats.items, 3);
        // caller resolves helper_in_beta cross-crate and local same-crate.
        let caller = g
            .iter_fns()
            .find(|(_, f)| f.name == "caller")
            .map(|(i, _)| i)
            .unwrap();
        let resolved: Vec<&str> = g.edges[caller]
            .iter()
            .flatten()
            .map(|&t| g.fn_of(t).name.as_str())
            .collect();
        assert!(resolved.contains(&"helper_in_beta"));
        assert!(resolved.contains(&"local"));
    }

    #[test]
    fn common_method_names_stay_unresolved() {
        let a = parse_file(
            "crates/alpha/src/lib.rs",
            "alpha",
            "impl Ring { pub fn len(&self) -> usize { 0 } }\npub fn f(v: &[u8]) { v.len(); }\n",
        );
        let g = SymbolGraph::build(vec![a]);
        let f = g
            .iter_fns()
            .find(|(_, f)| f.name == "f")
            .map(|(i, _)| i)
            .unwrap();
        assert!(g.edges[f].iter().all(Vec::is_empty));
    }
}
