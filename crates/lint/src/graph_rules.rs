//! The cross-file rules TD007–TD012, run over the assembled
//! [`SymbolGraph`] and the propagated [`Effects`].

use crate::diag::{Code, Diagnostic};
use crate::effects::{is_blocking_primitive, Effects};
use crate::graph::SymbolGraph;
use crate::parser::{FileItems, FnItem, Site};
use crate::rules::Waiver;
use std::collections::{BTreeMap, BTreeSet};

/// The pinned crate-layering table: each crate's allowed `td-*`
/// dependencies. Crates not listed (fixtures, future crates) are not
/// checked. Adding an edge here is an architectural decision — TD012
/// exists so it happens in review, not by accident.
const LAYERS: [(&str, &[&str]); 15] = [
    ("table", &[]),
    ("sketch", &[]),
    ("obs", &[]),
    ("lint", &[]),
    ("embed", &["table", "sketch"]),
    ("index", &["sketch", "embed", "obs"]),
    ("understand", &["table", "sketch", "embed"]),
    (
        "core",
        &["table", "sketch", "index", "embed", "understand", "obs"],
    ),
    ("nav", &["table", "sketch", "index", "embed", "core", "obs"]),
    (
        "apps",
        &["table", "sketch", "embed", "core", "understand", "obs"],
    ),
    ("store", &["core", "table", "sketch", "embed", "obs"]),
    ("shard", &["core", "index", "table", "obs", "store"]),
    ("serve", &["core", "table", "obs", "store", "shard"]),
    (
        "td",
        &[
            "table",
            "sketch",
            "index",
            "embed",
            "understand",
            "core",
            "nav",
            "apps",
            "serve",
            "store",
            "obs",
        ],
    ),
    ("bench", &["td", "obs", "lint", "serve", "shard"]),
];

/// Crates whose state is long-lived (server / observability planes);
/// TD010 applies there.
const LONG_LIVED_CRATES: [&str; 2] = ["serve", "obs"];

/// One parsed workspace manifest (`crates/<name>/Cargo.toml`).
pub(crate) struct Manifest {
    pub(crate) path: String,
    pub(crate) crate_name: String,
    /// `(dep crate short name, 1-based line, raw line text)`.
    pub(crate) deps: Vec<(String, u32, String)>,
    pub(crate) waivers: Vec<Waiver>,
}

/// Parse a `Cargo.toml`'s `[dependencies]` section and its
/// `# td-lint: allow(..)` waiver comments. Line-based on purpose: the
/// manifests here are flat workspace-dep tables.
pub(crate) fn parse_manifest(rel_path: &str, src: &str) -> Option<Manifest> {
    let crate_name = rel_path
        .strip_prefix("crates/")?
        .split('/')
        .next()?
        .to_string();
    let mut deps = Vec::new();
    let mut waivers = Vec::new();
    let mut in_deps = false;
    for (i, line) in src.lines().enumerate() {
        let ln = i as u32 + 1;
        let t = line.trim();
        if let Some(at) = t.find("# td-lint:") {
            let rest = t[at + "# td-lint:".len()..].trim_start();
            if let Some(rest) = rest.strip_prefix("allow") {
                let rest = rest.trim_start();
                if let Some(rest) = rest.strip_prefix('(') {
                    if let Some(close) = rest.find(')') {
                        let codes: Vec<Code> =
                            rest[..close].split(',').filter_map(Code::parse).collect();
                        let reason = rest[close + 1..].trim().to_string();
                        if !codes.is_empty() && !reason.is_empty() {
                            waivers.push(Waiver {
                                line: ln,
                                codes,
                                reason,
                            });
                        }
                    }
                }
            }
            continue;
        }
        if t.starts_with('[') {
            in_deps = t == "[dependencies]";
            continue;
        }
        if !in_deps || t.is_empty() || t.starts_with('#') {
            continue;
        }
        let name: String = t
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '-' || *c == '_')
            .collect();
        if !name.is_empty() {
            deps.push((name, ln, line.trim_end().to_string()));
        }
    }
    Some(Manifest {
        path: rel_path.to_string(),
        crate_name,
        deps,
        waivers,
    })
}

fn diag_at(file: &FileItems, code: Code, site: Site, message: String) -> Diagnostic {
    Diagnostic {
        code,
        path: file.path.clone(),
        line: site.line,
        col: site.col,
        message,
        excerpt: file
            .lines
            .get(site.line.saturating_sub(1) as usize)
            .cloned()
            .unwrap_or_default(),
        waive_reason: None,
    }
}

/// Guards of `f` live at code index `ci`, excluding the acquisition at
/// `ci` itself.
fn live_guards_at(f: &FnItem, ci: usize) -> Vec<&crate::parser::LockSite> {
    f.locks
        .iter()
        .filter(|l| l.live_from < ci && ci < l.live_to)
        .collect()
}

/// TD007 — lock-order cycles over the global acquisition graph.
pub(crate) fn td007(g: &SymbolGraph, fx: &Effects, out: &mut Vec<Diagnostic>) {
    // Collect acquisition edges: held lock -> acquired lock, with the
    // site that creates each edge.
    struct Edge {
        from: String,
        to: String,
        file: usize,
        site: Site,
        via: Option<String>,
    }
    let mut edges: Vec<Edge> = Vec::new();
    for (i, f) in g.iter_fns() {
        let fi = g.nodes[i].0;
        for l in &f.locks {
            for h in live_guards_at(f, l.live_from) {
                edges.push(Edge {
                    from: h.lock_id.clone(),
                    to: l.lock_id.clone(),
                    file: fi,
                    site: l.site,
                    via: None,
                });
            }
        }
        for (c_idx, c) in f.calls.iter().enumerate() {
            let held = live_guards_at(f, c.site.ci);
            if held.is_empty() {
                continue;
            }
            // Bare-name resolution can be ambiguous; take the
            // *intersection* of candidate locksets so a name collision
            // with a lock-free overload cannot fabricate an edge.
            let mut callee_locks: Option<BTreeSet<&String>> = None;
            for &t in &g.edges[i][c_idx] {
                if t == i {
                    continue;
                }
                let ls: BTreeSet<&String> = fx.locks[t].iter().collect();
                callee_locks = Some(match callee_locks {
                    None => ls,
                    Some(prev) => prev.intersection(&ls).copied().collect(),
                });
            }
            let callee_locks = callee_locks.unwrap_or_default();
            for to in callee_locks {
                for h in &held {
                    edges.push(Edge {
                        from: h.lock_id.clone(),
                        to: to.clone(),
                        file: fi,
                        site: c.site,
                        via: Some(c.name.clone()),
                    });
                }
            }
        }
    }

    // Adjacency over lock identities.
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in &edges {
        adj.entry(&e.from).or_default().insert(&e.to);
    }
    let reaches = |from: &str, to: &str| -> bool {
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter().copied());
            }
        }
        false
    };

    // An edge a->b is part of a cycle iff b reaches a. Report each
    // offending site once, deterministically ordered.
    let mut fired: BTreeSet<(String, String, String, u32)> = BTreeSet::new();
    for e in &edges {
        if !reaches(&e.to, &e.from) {
            continue;
        }
        let file = &g.files[e.file];
        if !fired.insert((e.from.clone(), e.to.clone(), file.path.clone(), e.site.line)) {
            continue;
        }
        let via = e
            .via
            .as_ref()
            .map(|v| format!(" (via call to `{v}`)"))
            .unwrap_or_default();
        let kind = if e.from == e.to {
            format!(
                "re-acquiring `{}` while a guard on it is live{via}; std locks are not reentrant",
                e.from
            )
        } else {
            format!(
                "acquiring `{}` while holding `{}`{via} completes a lock-order cycle `{}` -> `{}` -> .. -> `{}`; pick one global order or narrow the guard",
                e.to, e.from, e.from, e.to, e.from
            )
        };
        out.push(diag_at(file, Code::Td007, e.site, kind));
    }
}

/// TD008 — no blocking operation while a guard is live.
pub(crate) fn td008(g: &SymbolGraph, fx: &Effects, out: &mut Vec<Diagnostic>) {
    for (i, f) in g.iter_fns() {
        let file = g.file_of(i);
        // Nested lock acquisitions block too.
        for l in &f.locks {
            let held = live_guards_at(f, l.live_from);
            if let Some(h) = held.first() {
                out.push(diag_at(
                    file,
                    Code::Td008,
                    l.site,
                    format!(
                        "acquiring `{}` while guard on `{}` (line {}) is live; a contended inner lock stretches the outer critical section",
                        l.lock_id, h.lock_id, h.site.line
                    ),
                ));
            }
        }
        for (c_idx, c) in f.calls.iter().enumerate() {
            let is_wait = c.name == "wait" && !c.args_empty;
            let direct = is_blocking_primitive(c);
            // Same ambiguity rule as TD007: every resolution candidate
            // must block before we claim the call does.
            let others: Vec<usize> = g.edges[i][c_idx]
                .iter()
                .copied()
                .filter(|&t| t != i)
                .collect();
            let transitive =
                !direct && !others.is_empty() && others.iter().all(|&t| fx.may_block[t]);
            if !(direct || transitive || is_wait) {
                continue;
            }
            let held: Vec<_> = live_guards_at(f, c.site.ci)
                .into_iter()
                // Condvar::wait(guard) atomically releases the guard it
                // consumes; only *other* live guards are a finding.
                .filter(|l| {
                    !(is_wait
                        && l.guard
                            .as_ref()
                            .is_some_and(|n| c.arg_idents.iter().any(|a| a == n)))
                })
                .collect();
            let Some(h) = held.first() else { continue };
            // Skip double-reporting nested lock acquisitions (handled
            // above with a sharper message).
            if c.args_empty && matches!(c.name.as_str(), "lock" | "read" | "write") {
                continue;
            }
            let what = if direct || is_wait {
                format!("blocking call `{}(..)`", c.name)
            } else {
                format!("call to `{}(..)`, which may block (transitively)", c.name)
            };
            out.push(diag_at(
                file,
                Code::Td008,
                c.site,
                format!(
                    "{what} while guard on `{}` (line {}) is live; hoist it out of the critical section or drop the guard first",
                    h.lock_id, h.site.line
                ),
            ));
        }
    }
}

/// Orderings that publish (for stores) or consume (for loads).
fn publishes(o: &str) -> bool {
    matches!(o, "Release" | "AcqRel" | "SeqCst")
}
fn consumes(o: &str) -> bool {
    matches!(o, "Acquire" | "AcqRel" | "SeqCst")
}

/// TD009 — atomics-ordering audit.
pub(crate) fn td009(g: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    // (a) CAS/fetch_update with a Relaxed success ordering.
    for (i, f) in g.iter_fns() {
        let file = g.file_of(i);
        for a in &f.atomics {
            if matches!(
                a.method.as_str(),
                "compare_exchange" | "compare_exchange_weak" | "fetch_update"
            ) && a.orderings.first().is_some_and(|o| o == "Relaxed")
            {
                out.push(diag_at(
                    file,
                    Code::Td009,
                    a.site,
                    format!(
                        "`{}` on `{}` with Relaxed success ordering; a CAS that publishes anything beyond its own cell needs AcqRel (or waive with the pure-value argument)",
                        a.method, a.field
                    ),
                ));
            }
        }
    }

    // (b) Publish/consume mismatches per (crate, field): a field
    // written with Release/SeqCst somewhere but read Relaxed elsewhere
    // (or vice versa) has lost its happens-before edge.
    let mut stores: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    let mut loads: BTreeMap<(String, String), BTreeSet<String>> = BTreeMap::new();
    for (i, f) in g.iter_fns() {
        let crate_name = g.file_of(i).crate_name.clone();
        for a in &f.atomics {
            let key = (crate_name.clone(), a.field.clone());
            match a.method.as_str() {
                "store" | "swap" => {
                    stores
                        .entry(key)
                        .or_default()
                        .extend(a.orderings.iter().cloned());
                }
                "load" => {
                    loads
                        .entry(key)
                        .or_default()
                        .extend(a.orderings.iter().cloned());
                }
                _ => {}
            }
        }
    }
    for (i, f) in g.iter_fns() {
        let crate_name = g.file_of(i).crate_name.clone();
        let file = g.file_of(i);
        for a in &f.atomics {
            let key = (crate_name.clone(), a.field.clone());
            let relaxed = a.orderings.iter().any(|o| o == "Relaxed");
            if !relaxed {
                continue;
            }
            if a.method == "load"
                && stores
                    .get(&key)
                    .is_some_and(|s| s.iter().any(|o| publishes(o)))
            {
                out.push(diag_at(
                    file,
                    Code::Td009,
                    a.site,
                    format!(
                        "Relaxed load of `{}`, which is stored with Release/SeqCst elsewhere in this crate; the consume side needs Acquire to keep the happens-before edge",
                        a.field
                    ),
                ));
            }
            if matches!(a.method.as_str(), "store" | "swap")
                && loads
                    .get(&key)
                    .is_some_and(|l| l.iter().any(|o| consumes(o)))
            {
                out.push(diag_at(
                    file,
                    Code::Td009,
                    a.site,
                    format!(
                        "Relaxed store to `{}`, which is loaded with Acquire/SeqCst elsewhere in this crate; the publish side needs Release",
                        a.field
                    ),
                ));
            }
        }
    }
}

/// TD010 — unbounded growth of long-lived serve/obs state.
pub(crate) fn td010(g: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    for (i, f) in g.iter_fns() {
        let file = g.file_of(i);
        if !LONG_LIVED_CRATES.contains(&file.crate_name.as_str()) {
            continue;
        }
        if f.has_bound_token {
            continue;
        }
        for m in &f.mutations {
            let self_reachable = m.recv_idents.iter().any(|r| {
                r == "self"
                    || f.ref_params.iter().any(|p| p == r)
                    || f.derived_locals.iter().any(|d| d == r)
            });
            if !self_reachable {
                continue;
            }
            out.push(diag_at(
                file,
                Code::Td010,
                m.site,
                format!(
                    "`.{}(..)` grows long-lived state reachable from `{}` with no visible bound in `{}`; enforce a capacity (Ring-style drop-oldest, truncate, evict) or waive with the bounding argument",
                    m.method,
                    m.recv_idents.last().map_or("self", String::as_str),
                    f.qual
                ),
            ));
        }
    }
}

/// TD011 — swallowed `Result` / discarded `#[must_use]` returns.
pub(crate) fn td011(g: &SymbolGraph, out: &mut Vec<Diagnostic>) {
    for (i, f) in g.iter_fns() {
        let file = g.file_of(i);
        for d in &f.discards {
            if d.is_fmt_write {
                continue;
            }
            out.push(diag_at(
                file,
                Code::Td011,
                d.site,
                format!(
                    "`let _ = {}(..)` swallows the call's result; handle the error path, count it into a metric, or waive with why it is uninteresting",
                    d.head
                ),
            ));
        }
        for (c_idx, c) in f.calls.iter().enumerate() {
            if !c.stmt_position {
                continue;
            }
            // Bare-name resolution can be ambiguous; only fire when
            // *every* candidate is #[must_use] — a single plain-returning
            // candidate means we may be looking at the wrong overload.
            let targets = &g.edges[i][c_idx];
            if targets.is_empty() || !targets.iter().all(|&t| g.fn_of(t).must_use) {
                continue;
            }
            if let Some(&t) = targets.first() {
                out.push(diag_at(
                    file,
                    Code::Td011,
                    c.site,
                    format!(
                        "discarded `#[must_use]` return of `{}`; consume the value or drop the attribute",
                        g.fn_of(t).qual
                    ),
                ));
            }
        }
    }
}

/// TD012 — crate-layering enforcement over workspace manifests.
pub(crate) fn td012(manifests: &[Manifest], out: &mut Vec<Diagnostic>) {
    for m in manifests {
        let Some((_, allowed)) = LAYERS.iter().find(|(c, _)| *c == m.crate_name) else {
            continue;
        };
        for (dep, line, excerpt) in &m.deps {
            let Some(short) = dep.strip_prefix("td-") else {
                continue; // vendored stand-ins are not layered
            };
            if allowed.contains(&short) {
                continue;
            }
            let allowed_list = if allowed.is_empty() {
                "nothing (leaf crate)".to_string()
            } else {
                allowed
                    .iter()
                    .map(|a| format!("td-{a}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            };
            out.push(Diagnostic {
                code: Code::Td012,
                path: m.path.clone(),
                line: *line,
                col: 1,
                message: format!(
                    "`{}` may depend on {allowed_list}, not `{dep}`; layering is pinned in td-lint — add the edge to the table deliberately or remove the dependency",
                    m.crate_name
                ),
                excerpt: excerpt.clone(),
                waive_reason: None,
            });
        }
    }
}
