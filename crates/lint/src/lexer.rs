//! A lightweight Rust lexer: just enough tokenization for lint rules.
//!
//! Splits a source file into identifiers, literals, punctuation,
//! lifetimes, and comments, each carrying a byte span and a line/column
//! position. String, char, raw-string, and byte-string literals are
//! consumed atomically so rule patterns never match inside them; line and
//! block comments (including nested block comments and doc comments) are
//! kept as tokens so the waiver scanner can read them. This is *not* a
//! full lexer — numeric literal shapes are approximated — but every
//! construct that could hide a false match (strings, comments, chars) is
//! handled exactly.

/// What a token is; the lint rules mostly pattern-match on [`Ident`]
/// and [`Punct`] runs.
///
/// [`Ident`]: TokenKind::Ident
/// [`Punct`]: TokenKind::Punct
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`unwrap`, `unsafe`, `fn`, ...).
    Ident,
    /// A lifetime such as `'a` (distinguished from char literals).
    Lifetime,
    /// A string/char/numeric/byte literal, consumed atomically.
    Literal,
    /// One punctuation character (`.`, `!`, `::` arrives as two tokens).
    Punct,
    /// `// ...` — `doc` is true for `///` and `//!`.
    LineComment {
        /// True for `///` and `//!` doc comments.
        doc: bool,
    },
    /// `/* ... */` (nesting-aware) — `doc` is true for `/**` and `/*!`.
    BlockComment {
        /// True for `/**` and `/*!` doc comments.
        doc: bool,
    },
}

/// One lexed token: kind, byte span, and 1-based source position.
#[derive(Debug, Clone, Copy)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// Byte offset of the token's first character.
    pub start: usize,
    /// Byte offset one past the token's last character.
    pub end: usize,
    /// 1-based source line of the token's first character.
    pub line: u32,
    /// 1-based column (in bytes) of the token's first character.
    pub col: u32,
}

impl Token {
    /// The token's text within `src`.
    #[must_use]
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start..self.end).unwrap_or("")
    }

    /// True for line or block comments.
    #[must_use]
    pub fn is_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )
    }

    /// True for doc comments (`///`, `//!`, `/**`, `/*!`).
    #[must_use]
    pub fn is_doc_comment(&self) -> bool {
        matches!(
            self.kind,
            TokenKind::LineComment { doc: true } | TokenKind::BlockComment { doc: true }
        )
    }
}

struct Cursor<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'s> Cursor<'s> {
    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek_at(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        if b == b'\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(b)
    }
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_ident_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lex `src` into a token stream. Never fails: unrecognized bytes become
/// single [`TokenKind::Punct`] tokens, and unterminated literals or
/// comments simply run to end-of-file.
#[must_use]
pub fn lex(src: &str) -> Vec<Token> {
    let mut c = Cursor {
        src: src.as_bytes(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Vec::new();
    while let Some(b) = c.peek() {
        let (start, line, col) = (c.pos, c.line, c.col);
        if b.is_ascii_whitespace() {
            c.bump();
            continue;
        }
        let kind = if b == b'/' && c.peek_at(1) == Some(b'/') {
            lex_line_comment(&mut c)
        } else if b == b'/' && c.peek_at(1) == Some(b'*') {
            lex_block_comment(&mut c)
        } else if b == b'"' {
            lex_string(&mut c);
            TokenKind::Literal
        } else if b == b'\'' {
            lex_char_or_lifetime(&mut c)
        } else if is_ident_start(b) {
            lex_ident_or_prefixed_literal(&mut c, src)
        } else if b.is_ascii_digit() {
            lex_number(&mut c);
            TokenKind::Literal
        } else {
            c.bump();
            TokenKind::Punct
        };
        out.push(Token {
            kind,
            start,
            end: c.pos,
            line,
            col,
        });
    }
    out
}

fn lex_line_comment(c: &mut Cursor<'_>) -> TokenKind {
    let start = c.pos;
    while let Some(b) = c.peek() {
        if b == b'\n' {
            break;
        }
        c.bump();
    }
    let text = &c.src[start..c.pos];
    // `///` or `//!` but not the common `////....` separator line.
    let doc = (text.starts_with(b"///") && !text.starts_with(b"////")) || text.starts_with(b"//!");
    TokenKind::LineComment { doc }
}

fn lex_block_comment(c: &mut Cursor<'_>) -> TokenKind {
    let start = c.pos;
    c.bump(); // '/'
    c.bump(); // '*'
    let head = &c.src[start..(start + 4).min(c.src.len())];
    let doc = (head.starts_with(b"/**") && head != b"/**/") || head.starts_with(b"/*!");
    let mut depth = 1usize;
    while depth > 0 {
        match (c.peek(), c.peek_at(1)) {
            (Some(b'/'), Some(b'*')) => {
                depth += 1;
                c.bump();
                c.bump();
            }
            (Some(b'*'), Some(b'/')) => {
                depth -= 1;
                c.bump();
                c.bump();
            }
            (Some(_), _) => {
                c.bump();
            }
            (None, _) => break,
        }
    }
    TokenKind::BlockComment { doc }
}

/// Consume a `"..."` body; the opening quote is at the cursor.
fn lex_string(c: &mut Cursor<'_>) {
    c.bump(); // opening quote
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump(); // escaped char (possibly a quote)
            }
            b'"' => break,
            _ => {}
        }
    }
}

/// Consume `r"..."` / `r#"..."#` with any number of `#` guards; the
/// cursor sits on the first `#` or quote (after the `r`/`br` prefix).
fn lex_raw_string(c: &mut Cursor<'_>) {
    let mut hashes = 0usize;
    while c.peek() == Some(b'#') {
        hashes += 1;
        c.bump();
    }
    if c.peek() != Some(b'"') {
        return; // not actually a raw string; leave the rest to the lexer
    }
    c.bump(); // opening quote
    'outer: while let Some(b) = c.bump() {
        if b == b'"' {
            for _ in 0..hashes {
                if c.peek() != Some(b'#') {
                    continue 'outer;
                }
                c.bump();
            }
            break;
        }
    }
}

fn lex_char_or_lifetime(c: &mut Cursor<'_>) -> TokenKind {
    // Lifetime: 'ident not followed by a closing quote. Char literal:
    // anything else ('x', '\n', '\u{1F600}').
    let next = c.peek_at(1);
    let after = c.peek_at(2);
    let is_lifetime = match next {
        Some(b) if is_ident_start(b) => after != Some(b'\''),
        _ => false,
    };
    c.bump(); // the quote
    if is_lifetime {
        while let Some(b) = c.peek() {
            if !is_ident_continue(b) {
                break;
            }
            c.bump();
        }
        return TokenKind::Lifetime;
    }
    // Char literal: consume until the closing quote, honoring escapes.
    while let Some(b) = c.bump() {
        match b {
            b'\\' => {
                c.bump();
            }
            b'\'' => break,
            b'\n' => break, // malformed; don't swallow the file
            _ => {}
        }
    }
    TokenKind::Literal
}

fn lex_ident_or_prefixed_literal(c: &mut Cursor<'_>, src: &str) -> TokenKind {
    let start = c.pos;
    while let Some(b) = c.peek() {
        if !is_ident_continue(b) {
            break;
        }
        c.bump();
    }
    let ident = &src[start..c.pos];
    // Raw / byte string prefixes: r"", r#""#, b"", br"", rb is invalid,
    // c"" and cr"" (C strings) for completeness.
    match c.peek() {
        Some(b'"') if matches!(ident, "b" | "c") => {
            lex_string(c);
            return TokenKind::Literal;
        }
        Some(b'"') | Some(b'#') if matches!(ident, "r" | "br" | "cr") => {
            lex_raw_string(c);
            return TokenKind::Literal;
        }
        _ => {}
    }
    // Raw identifiers (`r#match`) arrive as ident "r", punct '#', ident
    // "match" — harmless for our rules.
    TokenKind::Ident
}

fn lex_number(c: &mut Cursor<'_>) {
    // Digits, `_`, type suffixes, hex/oct/bin prefixes, exponents, and a
    // decimal point only when followed by a digit (so `0..10` stays three
    // tokens).
    while let Some(b) = c.peek() {
        if b.is_ascii_alphanumeric() || b == b'_' {
            c.bump();
            // e-/E- exponent sign.
            if (b == b'e' || b == b'E')
                && matches!(c.peek(), Some(b'+') | Some(b'-'))
                && c.peek_at(1).is_some_and(|d| d.is_ascii_digit())
            {
                c.bump();
            }
        } else if b == b'.' && c.peek_at(1).is_some_and(|d| d.is_ascii_digit()) {
            c.bump();
        } else {
            break;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src)
            .into_iter()
            .map(|t| (t.kind, t.text(src).to_string()))
            .collect()
    }

    #[test]
    fn idents_and_puncts() {
        let toks = kinds("let x = a.unwrap();");
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "x", "a", "unwrap"]);
    }

    #[test]
    fn strings_hide_their_contents() {
        let toks = kinds(r#"call("x.unwrap() // not a comment");"#);
        assert!(toks
            .iter()
            .all(|(k, t)| *k != TokenKind::Ident || t != "unwrap"));
        assert!(!toks.iter().any(|(k, _)| matches!(
            k,
            TokenKind::LineComment { .. } | TokenKind::BlockComment { .. }
        )));
    }

    #[test]
    fn raw_strings_with_hashes() {
        let src = r####"let s = r#"quote " inside"#; x.unwrap()"####;
        let toks = kinds(src);
        let idents: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Ident)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(idents, vec!["let", "s", "x", "unwrap"]);
    }

    #[test]
    fn lifetimes_are_not_chars() {
        let toks = kinds("fn f<'a>(x: &'a str) -> char { 'x' }");
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Lifetime && t == "'a"));
        assert!(toks
            .iter()
            .any(|(k, t)| *k == TokenKind::Literal && t == "'x'"));
    }

    #[test]
    fn nested_block_comments() {
        let toks = kinds("/* outer /* inner */ still comment */ ident");
        assert_eq!(toks.len(), 2);
        assert!(matches!(toks[0].0, TokenKind::BlockComment { doc: false }));
        assert_eq!(toks[1].1, "ident");
    }

    #[test]
    fn doc_comments_flagged() {
        let toks = kinds("/// docs\n//! inner\n// plain\nfn f() {}");
        assert!(matches!(toks[0].0, TokenKind::LineComment { doc: true }));
        assert!(matches!(toks[1].0, TokenKind::LineComment { doc: true }));
        assert!(matches!(toks[2].0, TokenKind::LineComment { doc: false }));
    }

    #[test]
    fn positions_are_one_based() {
        let toks = lex("a\n  b");
        assert_eq!((toks[0].line, toks[0].col), (1, 1));
        assert_eq!((toks[1].line, toks[1].col), (2, 3));
    }

    #[test]
    fn float_vs_range() {
        let toks = kinds("1.5 0..10");
        let lits: Vec<&str> = toks
            .iter()
            .filter(|(k, _)| *k == TokenKind::Literal)
            .map(|(_, t)| t.as_str())
            .collect();
        assert_eq!(lits, vec!["1.5", "0", "10"]);
    }
}
