//! # td-lint — the workspace's own static-analysis gate
//!
//! A zero-dependency lint driver (no syn, no regex — crates.io is not
//! assumed) that walks `crates/*/{src,tests,benches,examples}` with a
//! lightweight Rust lexer, and — since v2 — assembles every library
//! file into a cross-crate *symbol graph* (functions, call edges, lock
//! acquisitions, guard lifetimes, atomics, collection mutations) so the
//! concurrency rules can reason across files, not just within a line:
//!
//! | code  | rule |
//! |-------|------|
//! | TD001 | no `unwrap()`/`expect()`/`panic!` in non-test library code |
//! | TD002 | no `Instant::now`/`SystemTime::now` outside `crates/obs` |
//! | TD003 | no `unsafe` anywhere |
//! | TD004 | no `println!`/`eprintln!`/`dbg!` in library code |
//! | TD005 | no hash-order iteration feeding ordered output without a sort |
//! | TD006 | every `pub fn` in a crate root is documented |
//! | TD007 | no lock-order cycles in the global acquisition graph |
//! | TD008 | no blocking op (lock/recv/io/sleep/join) while a guard is live |
//! | TD009 | Relaxed atomics only for pure counters; CAS/publish need more |
//! | TD010 | growth of long-lived serve/obs state must be capacity-bounded |
//! | TD011 | no swallowed `Result` / discarded `#[must_use]` in library code |
//! | TD012 | crate layering: `core` never depends on `serve`; obs/lint leaves |
//!
//! Any diagnostic can be waived inline with a justified comment on the
//! same line or the line above (`#` comments in `Cargo.toml` for TD012):
//!
//! ```text
//! // td-lint: allow(TD004) harness prints human-readable tables by design
//! println!("{report}");
//! ```
//!
//! A waiver without a reason is ignored. Run `cargo run -p td-lint`
//! (add `-- --format json` for the machine-readable report, or
//! `-- --explain TD007` for a rule's rationale); the process exits
//! non-zero if any unwaived diagnostic remains.

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod diag;
pub mod effects;
pub mod graph;
mod graph_rules;
pub mod lexer;
pub mod parser;
pub mod rules;

pub use diag::{Code, Diagnostic, ALL_CODES};
pub use graph::{GraphStats, SymbolGraph};
pub use rules::{FileClass, FileCtx};

use rules::waiver_in;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};

/// The outcome of a workspace scan.
#[derive(Debug, Clone)]
pub struct LintReport {
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
    /// Every finding, waived or not, in (path, line, col) order.
    pub diagnostics: Vec<Diagnostic>,
    /// Symbol-graph aggregates from the cross-file pass.
    pub stats: GraphStats,
}

impl LintReport {
    /// Findings not covered by a waiver — the CI-failing set.
    pub fn unwaived(&self) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(|d| !d.is_waived())
    }

    /// `(unwaived, waived)` counts for one code.
    #[must_use]
    pub fn count(&self, code: Code) -> (usize, usize) {
        let mut fired = 0usize;
        let mut waived = 0usize;
        for d in self.diagnostics.iter().filter(|d| d.code == code) {
            if d.is_waived() {
                waived += 1;
            } else {
                fired += 1;
            }
        }
        (fired, waived)
    }

    /// Total waived findings.
    #[must_use]
    pub fn waived_total(&self) -> usize {
        self.diagnostics.iter().filter(|d| d.is_waived()).count()
    }

    /// Total unwaived findings (non-zero fails the gate).
    #[must_use]
    pub fn unwaived_total(&self) -> usize {
        self.unwaived().count()
    }

    /// The machine-readable report: per-code summary, symbol-graph
    /// stats, plus every diagnostic, as one JSON document.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut s = String::from("{\n  \"tool\": \"td-lint\",\n");
        let _ = writeln!(s, "  \"files_scanned\": {},", self.files_scanned);
        s.push_str("  \"summary\": {\n");
        for (i, code) in ALL_CODES.iter().enumerate() {
            let (fired, waived) = self.count(*code);
            let _ = write!(
                s,
                "    \"{}\": {{\"unwaived\": {fired}, \"waived\": {waived}}}",
                code.as_str()
            );
            s.push_str(if i + 1 < ALL_CODES.len() { ",\n" } else { "\n" });
        }
        s.push_str("  },\n");
        s.push_str("  \"graph\": {\n");
        let _ = writeln!(s, "    \"files\": {},", self.stats.files);
        let _ = writeln!(s, "    \"items\": {},", self.stats.items);
        let _ = writeln!(s, "    \"call_sites\": {},", self.stats.call_sites);
        let _ = writeln!(s, "    \"resolved_edges\": {},", self.stats.resolved_edges);
        let _ = writeln!(s, "    \"lock_sites\": {},", self.stats.lock_sites);
        let _ = writeln!(s, "    \"atomic_sites\": {},", self.stats.atomic_sites);
        let _ = writeln!(s, "    \"mutation_sites\": {},", self.stats.mutation_sites);
        s.push_str("    \"rule_ns\": {");
        for (i, (name, ns)) in self.stats.rule_ns.iter().enumerate() {
            let _ = write!(s, "\"{name}\": {ns}");
            if i + 1 < self.stats.rule_ns.len() {
                s.push_str(", ");
            }
        }
        s.push_str("},\n");
        let _ = writeln!(s, "    \"total_ns\": {}", self.stats.total_ns);
        s.push_str("  },\n");
        let _ = writeln!(s, "  \"waived_total\": {},", self.waived_total());
        let _ = writeln!(s, "  \"unwaived_total\": {},", self.unwaived_total());
        s.push_str("  \"diagnostics\": [\n");
        for (i, d) in self.diagnostics.iter().enumerate() {
            s.push_str("    ");
            s.push_str(&d.render_json());
            s.push_str(if i + 1 < self.diagnostics.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// The human-readable report: every finding rendered rustc-style,
    /// then a per-code summary table.
    #[must_use]
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        for d in &self.diagnostics {
            s.push_str(&d.render_text());
            s.push('\n');
        }
        let _ = writeln!(s, "td-lint: {} files scanned", self.files_scanned);
        let _ = writeln!(
            s,
            "  graph: {} items, {}/{} calls resolved, {} lock sites, {} atomic sites",
            self.stats.items,
            self.stats.resolved_edges,
            self.stats.call_sites,
            self.stats.lock_sites,
            self.stats.atomic_sites
        );
        for code in ALL_CODES {
            let (fired, waived) = self.count(code);
            if fired + waived > 0 {
                let _ = writeln!(
                    s,
                    "  {}: {fired} unwaived, {waived} waived — {}",
                    code.as_str(),
                    code.summary()
                );
            }
        }
        let _ = writeln!(
            s,
            "  total: {} unwaived, {} waived",
            self.unwaived_total(),
            self.waived_total()
        );
        s
    }
}

/// Classify a workspace-relative path (`crates/<name>/...`). Returns
/// `(crate_name, class, is_crate_root)`, or `None` for files td-lint
/// does not scan (lint fixtures, vendored stand-ins, non-Rust files).
#[must_use]
pub fn classify(rel: &str) -> Option<(String, FileClass, bool)> {
    let rel = rel.replace('\\', "/");
    if !rel.ends_with(".rs") || rel.contains("/fixtures/") {
        return None;
    }
    let rest = rel.strip_prefix("crates/")?;
    let (crate_name, tail) = rest.split_once('/')?;
    let class = if tail.starts_with("tests/") {
        FileClass::Test
    } else if tail.starts_with("benches/")
        || tail.starts_with("examples/")
        || tail.starts_with("src/bin/")
        || tail == "src/main.rs"
    {
        FileClass::Binary
    } else if tail.starts_with("src/") {
        FileClass::Library
    } else {
        return None;
    };
    let is_root = tail == "src/lib.rs";
    Some((crate_name.to_string(), class, is_root))
}

/// Lint one file's source given its workspace-relative path; paths
/// outside the scan scope produce no diagnostics. Per-file rules only —
/// the cross-file rules (TD007–TD012) need a [`SourceSet`].
#[must_use]
pub fn scan_str(rel_path: &str, src: &str) -> Vec<Diagnostic> {
    let Some((crate_name, class, is_root)) = classify(rel_path) else {
        return Vec::new();
    };
    FileCtx::new(rel_path, &crate_name, class, is_root, src).run()
}

/// Everything one scan looks at: `.rs` sources and crate manifests,
/// both as `(workspace-relative path, contents)`. In-memory so fixture
/// tests can exercise cross-crate analysis without touching disk.
#[derive(Debug, Default, Clone)]
pub struct SourceSet {
    /// Rust sources, `(rel path, source)`.
    pub files: Vec<(String, String)>,
    /// Crate manifests, `(rel path, toml text)`.
    pub manifests: Vec<(String, String)>,
}

/// Run the full v2 analysis — per-file rules, then the cross-crate
/// symbol graph and TD007–TD012 — over an in-memory source set.
///
/// `clock` supplies monotonic nanoseconds for the per-rule timing in
/// [`GraphStats`]; td-lint itself never reads a clock (its own TD002
/// applies), so callers inject one (`td_bench` passes a td-obs timer,
/// the CLI passes `&|| 0`).
#[must_use]
pub fn scan_set(set: &SourceSet, clock: &dyn Fn() -> u64) -> LintReport {
    let t0 = clock();
    let mut diagnostics = Vec::new();
    let mut files_scanned = 0usize;
    let mut parsed: Vec<parser::FileItems> = Vec::new();

    for (rel, src) in &set.files {
        let Some((crate_name, class, is_root)) = classify(rel) else {
            continue;
        };
        files_scanned += 1;
        diagnostics.extend(FileCtx::new(rel, &crate_name, class, is_root, src).run());
        if class == FileClass::Library {
            parsed.push(parser::parse_file(rel, &crate_name, src));
        }
    }

    let t_parse = clock();
    let g = SymbolGraph::build(parsed);
    let fx = effects::propagate(&g);
    let t_graph = clock();

    let mut rule_ns: Vec<(&'static str, u64)> =
        vec![("parse", t_parse - t0), ("graph", t_graph - t_parse)];
    let mut graph_diags = Vec::new();
    let mut timed = |name: &'static str, f: &mut dyn FnMut(&mut Vec<Diagnostic>)| {
        let s = clock();
        f(&mut graph_diags);
        rule_ns.push((name, clock() - s));
    };
    timed("TD007", &mut |out| graph_rules::td007(&g, &fx, out));
    timed("TD008", &mut |out| graph_rules::td008(&g, &fx, out));
    timed("TD009", &mut |out| graph_rules::td009(&g, out));
    timed("TD010", &mut |out| graph_rules::td010(&g, out));
    timed("TD011", &mut |out| graph_rules::td011(&g, out));

    let manifests: Vec<graph_rules::Manifest> = set
        .manifests
        .iter()
        .filter_map(|(rel, src)| graph_rules::parse_manifest(rel, src))
        .collect();
    timed("TD012", &mut |out| graph_rules::td012(&manifests, out));

    // Attach waivers to the graph diagnostics (per-file rules attach
    // their own through FileCtx).
    let mut waiver_map: BTreeMap<&str, &[rules::Waiver]> = BTreeMap::new();
    for f in &g.files {
        waiver_map.insert(&f.path, &f.waivers);
    }
    for m in &manifests {
        waiver_map.insert(&m.path, &m.waivers);
    }
    for d in &mut graph_diags {
        if let Some(ws) = waiver_map.get(d.path.as_str()) {
            d.waive_reason = waiver_in(ws, d.code, d.line);
        }
    }
    diagnostics.append(&mut graph_diags);
    diagnostics.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.code).cmp(&(b.path.as_str(), b.line, b.col, b.code))
    });

    let mut stats = g.stats.clone();
    stats.rule_ns = rule_ns;
    stats.total_ns = clock() - t0;
    LintReport {
        files_scanned,
        diagnostics,
        stats,
    }
}

/// Recursively collect `.rs` files under `dir`, sorted for determinism.
fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Load every crate under `<root>/crates` — sources and manifests —
/// into a [`SourceSet`]. `vendor/` (API stand-ins for crates.io) and
/// lint-test fixtures are out of scope by design.
pub fn load_workspace(root: &Path) -> io::Result<SourceSet> {
    let crates_dir = root.join("crates");
    let mut set = SourceSet::default();
    let mut crate_dirs: Vec<PathBuf> = std::fs::read_dir(&crates_dir)?
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    crate_dirs.sort();
    for crate_dir in crate_dirs {
        let mut files = Vec::new();
        for sub in ["src", "tests", "benches", "examples"] {
            collect_rs(&crate_dir.join(sub), &mut files)?;
        }
        let manifest = crate_dir.join("Cargo.toml");
        if manifest.is_file() {
            let rel = manifest
                .strip_prefix(root)
                .unwrap_or(&manifest)
                .to_string_lossy()
                .replace('\\', "/");
            set.manifests
                .push((rel, std::fs::read_to_string(&manifest)?));
        }
        for path in files {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            if classify(&rel).is_none() {
                continue;
            }
            set.files.push((rel, std::fs::read_to_string(&path)?));
        }
    }
    Ok(set)
}

/// Scan every crate under `<root>/crates` and produce the full report,
/// timing phases with the injected `clock` (monotonic nanoseconds).
pub fn scan_workspace_timed(root: &Path, clock: &dyn Fn() -> u64) -> io::Result<LintReport> {
    Ok(scan_set(&load_workspace(root)?, clock))
}

/// Scan every crate under `<root>/crates` and produce the full report
/// (untimed — all `rule_ns` entries read zero).
pub fn scan_workspace(root: &Path) -> io::Result<LintReport> {
    scan_workspace_timed(root, &|| 0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classify_paths() {
        assert_eq!(
            classify("crates/core/src/lib.rs"),
            Some(("core".into(), FileClass::Library, true))
        );
        assert_eq!(
            classify("crates/core/src/pipeline.rs"),
            Some(("core".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/bench/src/bin/e01_pipeline.rs"),
            Some(("bench".into(), FileClass::Binary, false))
        );
        assert_eq!(
            classify("crates/bench/benches/sketches.rs"),
            Some(("bench".into(), FileClass::Binary, false))
        );
        assert_eq!(
            classify("crates/core/tests/acceptance.rs"),
            Some(("core".into(), FileClass::Test, false))
        );
        assert_eq!(classify("crates/lint/tests/fixtures/td001_fire.rs"), None);
        assert_eq!(classify("vendor/serde/src/lib.rs"), None);
        assert_eq!(classify("crates/core/Cargo.toml"), None);
        // The segmented incremental layer is ordinary library code too:
        // every rule applies to it, same as the batch pipeline.
        assert_eq!(
            classify("crates/core/src/segment.rs"),
            Some(("core".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/core/src/segmented.rs"),
            Some(("core".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/core/tests/segmented.rs"),
            Some(("core".into(), FileClass::Test, false))
        );
        assert_eq!(
            classify("crates/serve/tests/reload.rs"),
            Some(("serve".into(), FileClass::Test, false))
        );
        // The serving layer is ordinary library code: every rule applies.
        assert_eq!(
            classify("crates/serve/src/lib.rs"),
            Some(("serve".into(), FileClass::Library, true))
        );
        assert_eq!(
            classify("crates/serve/src/server.rs"),
            Some(("serve".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/serve/tests/concurrent.rs"),
            Some(("serve".into(), FileClass::Test, false))
        );
        // The td-trace layer and the admin plane are ordinary library
        // code in their respective crates; the trace integration test
        // and overhead bench get the usual relaxed classes.
        assert_eq!(
            classify("crates/obs/src/trace.rs"),
            Some(("obs".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/serve/src/admin.rs"),
            Some(("serve".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/serve/tests/trace.rs"),
            Some(("serve".into(), FileClass::Test, false))
        );
        assert_eq!(
            classify("crates/bench/src/bin/trace_report.rs"),
            Some(("bench".into(), FileClass::Binary, false))
        );
        // The persistence layer is ordinary library code: every rule
        // applies, including the layering pin (store below serve).
        assert_eq!(
            classify("crates/store/src/lib.rs"),
            Some(("store".into(), FileClass::Library, true))
        );
        assert_eq!(
            classify("crates/store/src/wal.rs"),
            Some(("store".into(), FileClass::Library, false))
        );
        assert_eq!(
            classify("crates/store/tests/restore_equivalence.rs"),
            Some(("store".into(), FileClass::Test, false))
        );
        assert_eq!(
            classify("crates/bench/src/bin/store_report.rs"),
            Some(("bench".into(), FileClass::Binary, false))
        );
    }

    #[test]
    fn trace_and_admin_code_is_held_to_every_rule() {
        // TD001: the admin plane answers inline on connection threads —
        // a panic there kills the connection, so unwraps fire unwaived.
        let diags = scan_str(
            "crates/serve/src/admin.rs",
            "pub fn f(s: Option<u32>) -> u32 { s.unwrap() }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td001 && !d.is_waived()));

        // TD002: trace timing in *serve* must flow through td-obs
        // clocks (TraceClock / Timer), never a raw Instant::now...
        let diags = scan_str(
            "crates/serve/src/admin.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td002 && !d.is_waived()));

        // ...while crates/obs itself — where those clocks live — is the
        // one place allowed to read the raw clock.
        let diags = scan_str(
            "crates/obs/src/trace.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert!(diags.iter().all(|d| d.code != Code::Td002));

        // TD003: no unsafe in the trace ring, however lock-cheap it
        // wants to be.
        let diags = scan_str(
            "crates/obs/src/trace.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td003 && !d.is_waived()));

        // TD004: admin replies go over the wire, not to stdout.
        let diags = scan_str(
            "crates/serve/src/admin.rs",
            "pub fn f() { println!(\"slow query\"); }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td004 && !d.is_waived()));

        // TD005: `SlowQueries` is ordered output — ranking worst traces
        // out of a HashMap without sorting would make the admin plane
        // nondeterministic, which the byte-identity tests forbid.
        let src = "pub fn f() -> Vec<(u64, u64)> {\n    let m: std::collections::HashMap<u64, u64> = std::collections::HashMap::new();\n    m.iter().map(|(k, v)| (*k, *v)).collect()\n}\n";
        let diags = scan_str("crates/serve/src/admin.rs", src);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td005 && !d.is_waived()));

        // TD006: new public trace surface in the obs crate root must be
        // documented.
        let diags = scan_str("crates/obs/src/lib.rs", "pub fn trace_undocumented() {}\n");
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td006 && !d.is_waived()));
    }

    #[test]
    fn serve_library_code_is_held_to_every_rule() {
        // TD001: a bare unwrap in the serving layer fires like anywhere
        // else — connection handling must be panic-free.
        let diags = scan_str(
            "crates/serve/src/server.rs",
            "pub fn f(s: Option<u32>) -> u32 { s.unwrap() }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td001 && !d.is_waived()));

        // TD002: serve must take time through td-obs, not Instant::now.
        let diags = scan_str(
            "crates/serve/src/server.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td002 && !d.is_waived()));

        // TD004: prints in serve library code fire unwaived...
        let diags = scan_str(
            "crates/serve/src/server.rs",
            "pub fn f() { eprintln!(\"oops\"); }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td004 && !d.is_waived()));

        // ...and the accept-loop's justified waiver is honored.
        let src = "pub fn f() {\n    // td-lint: allow(TD004) accept-loop diagnostics have no other channel\n    eprintln!(\"accept error\");\n}\n";
        let diags = scan_str("crates/serve/src/server.rs", src);
        assert!(diags.iter().all(|d| d.code != Code::Td004 || d.is_waived()));
    }

    #[test]
    fn segmented_pipeline_code_is_held_to_every_rule() {
        // TD001: segment merge paths must be panic-free — a stray unwrap
        // in artifact concatenation fires unwaived.
        let diags = scan_str(
            "crates/core/src/segmented.rs",
            "pub fn f(s: Option<u32>) -> u32 { s.unwrap() }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td001 && !d.is_waived()));

        // TD002: ingest/compaction timing goes through td-obs spans, not
        // raw clocks.
        let diags = scan_str(
            "crates/core/src/segment.rs",
            "pub fn f() { let _t = std::time::Instant::now(); }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td002 && !d.is_waived()));

        // TD003: unsafe is banned even for "clever" segment swaps.
        let diags = scan_str(
            "crates/core/src/segmented.rs",
            "pub fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td003 && !d.is_waived()));

        // TD004: no prints from the incremental layer.
        let diags = scan_str(
            "crates/core/src/segment.rs",
            "pub fn f() { println!(\"sealed\"); }\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td004 && !d.is_waived()));

        // TD005: flattening segments into ranked output must sort, never
        // trust hash-map iteration order.
        let src = "pub fn f() -> Vec<(u32, f32)> {\n    let m: std::collections::HashMap<u32, f32> = std::collections::HashMap::new();\n    m.iter().map(|(k, v)| (*k, *v)).collect()\n}\n";
        let diags = scan_str("crates/core/src/segmented.rs", src);
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td005 && !d.is_waived()));

        // TD006: new public surface in the core crate root stays
        // documented.
        let diags = scan_str(
            "crates/core/src/lib.rs",
            "pub fn ingest_undocumented() {}\n",
        );
        assert!(diags
            .iter()
            .any(|d| d.code == Code::Td006 && !d.is_waived()));
    }

    #[test]
    fn scan_str_fires_and_waives() {
        let src = "pub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = scan_str("crates/demo/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, Code::Td001);
        assert!(!diags[0].is_waived());

        let src = "// td-lint: allow(TD001) checked by caller\npub fn f(x: Option<u32>) -> u32 { x.unwrap() }\n";
        let diags = scan_str("crates/demo/src/x.rs", src);
        assert_eq!(diags.len(), 1);
        assert!(diags[0].is_waived());
    }

    #[test]
    fn json_report_shape() {
        let r = LintReport {
            files_scanned: 2,
            diagnostics: scan_str("crates/demo/src/x.rs", "pub fn f() { println!(\"hi\"); }\n"),
            stats: GraphStats::default(),
        };
        let j = r.render_json();
        assert!(j.contains("\"TD004\": {\"unwaived\": 1, \"waived\": 0}"));
        assert!(j.contains("\"unwaived_total\": 1"));
        assert!(j.contains("\"graph\""));
    }

    #[test]
    fn scan_set_runs_graph_rules_and_attaches_waivers() {
        let set = SourceSet {
            files: vec![(
                "crates/serve/src/x.rs".into(),
                "\
pub struct S { log: Vec<u32> }
impl S {
    // td-lint: allow(TD010) bounded by caller contract
    pub fn record(&mut self, v: u32) { self.log.push(v); }
    pub fn leak(&mut self, v: u32) { self.log.push(v); }
}
"
                .into(),
            )],
            manifests: vec![(
                "crates/core/Cargo.toml".into(),
                "[package]\nname = \"td-core\"\n\n[dependencies]\ntd-serve = { path = \"../serve\" }\n"
                    .into(),
            )],
        };
        let r = scan_set(&set, &|| 0);
        let (fired_10, waived_10) = r.count(Code::Td010);
        assert_eq!((fired_10, waived_10), (1, 1), "report: {}", r.render_text());
        let (fired_12, _) = r.count(Code::Td012);
        assert_eq!(fired_12, 1, "core -> serve must violate layering");
    }
}
