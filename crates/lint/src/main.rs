//! CLI for td-lint: scan the workspace, print the report, and exit
//! non-zero when any unwaived diagnostic remains.
//!
//! ```text
//! cargo run -p td-lint                      # human-readable
//! cargo run -p td-lint -- --format json     # machine-readable
//! cargo run -p td-lint -- --root /path/to/workspace
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => {
                if let Some(f) = args.next() {
                    format = f;
                }
            }
            "--root" => {
                if let Some(r) = args.next() {
                    root = PathBuf::from(r);
                }
            }
            "--help" | "-h" => {
                println!(
                    "td-lint: workspace lint driver\n\n  --format text|json   output format (default text)\n  --root PATH          workspace root (default .)\n\nExits 1 if any unwaived diagnostic remains.\nWaive a finding with: // td-lint: allow(TD00x) reason"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("td-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Fall back from the crate dir to the workspace root so both
    // `cargo run -p td-lint` (runs at workspace root) and direct
    // invocation from `crates/lint` work.
    if !root.join("crates").is_dir() && root.join("../../crates").is_dir() {
        root = root.join("../..");
    }
    let report = match td_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        _ => print!("{}", report.render_text()),
    }
    if report.unwaived_total() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
