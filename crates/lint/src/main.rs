//! CLI for td-lint: scan the workspace, print the report, and exit
//! non-zero when any unwaived diagnostic remains.
//!
//! ```text
//! cargo run -p td-lint                      # human-readable
//! cargo run -p td-lint -- --format json     # machine-readable
//! cargo run -p td-lint -- --root /path/to/workspace
//! cargo run -p td-lint -- --explain TD007   # rule rationale + waiver syntax
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut format = String::from("text");
    let mut root = PathBuf::from(".");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--format" => {
                if let Some(f) = args.next() {
                    format = f;
                }
            }
            "--root" => {
                if let Some(r) = args.next() {
                    root = PathBuf::from(r);
                }
            }
            "--explain" => {
                let Some(raw) = args.next() else {
                    eprintln!("td-lint: --explain needs a code (TD001..TD012)");
                    return ExitCode::from(2);
                };
                let Some(code) = td_lint::Code::parse(&raw) else {
                    eprintln!("td-lint: unknown code `{raw}` (TD001..TD012)");
                    return ExitCode::from(2);
                };
                println!("{} — {}\n", code.as_str(), code.summary());
                println!("{}\n", code.rationale());
                if code == td_lint::Code::Td012 {
                    println!(
                        "Waive in the crate's Cargo.toml, on the dependency line or the line above:\n  # td-lint: allow(TD012) <why this edge is deliberate>"
                    );
                } else {
                    println!(
                        "Waive on the offending line or the line above:\n  // td-lint: allow({}) <why this finding is acceptable>",
                        code.as_str()
                    );
                }
                return ExitCode::SUCCESS;
            }
            "--help" | "-h" => {
                println!(
                    "td-lint: workspace lint driver\n\n  --format text|json   output format (default text)\n  --root PATH          workspace root (default .)\n  --explain TDxxx      print a rule's rationale and waiver syntax\n\nExits 1 if any unwaived diagnostic remains.\nWaive a finding with: // td-lint: allow(TD00x) reason"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("td-lint: unknown argument `{other}` (try --help)");
                return ExitCode::from(2);
            }
        }
    }
    // Fall back from the crate dir to the workspace root so both
    // `cargo run -p td-lint` (runs at workspace root) and direct
    // invocation from `crates/lint` work.
    if !root.join("crates").is_dir() && root.join("../../crates").is_dir() {
        root = root.join("../..");
    }
    let report = match td_lint::scan_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("td-lint: scan failed: {e}");
            return ExitCode::from(2);
        }
    };
    match format.as_str() {
        "json" => print!("{}", report.render_json()),
        _ => print!("{}", report.render_text()),
    }
    if report.unwaived_total() > 0 {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}
