//! A lightweight item parser on top of the lexer: extracts, per file,
//! the functions and impl-methods with everything the cross-crate rules
//! need — call sites, lock-acquisition sites, guard lifetimes (binding
//! to drop/end-of-scope at brace depth), atomic operations with their
//! `Ordering` arguments, and collection-mutation sites. No `syn`, no
//! type information: every extraction is a token-pattern over the
//! existing [`lex`] stream, precise enough for the graph rules and
//! honest about being a heuristic (lock identity is name-based).
//!
//! Test-masked code (`#[cfg(test)]` items, `#[test]` fns) is skipped
//! entirely: the symbol graph models the production library surface.

use crate::lexer::{lex, Token, TokenKind};
use crate::rules::{parse_waivers, test_mask, Waiver};

/// Atomic RMW/accessor methods whose `Ordering` arguments TD009 audits.
const ATOMIC_METHODS: [&str; 13] = [
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "compare_exchange",
    "compare_exchange_weak",
    "fetch_update",
];

/// The five `std::sync::atomic::Ordering` variants.
const ORDERINGS: [&str; 5] = ["Relaxed", "Acquire", "Release", "AcqRel", "SeqCst"];

/// Collection-insertion methods TD010 treats as growth sites.
const GROWTH_METHODS: [&str; 7] = [
    "push",
    "push_back",
    "push_front",
    "insert",
    "extend",
    "entry",
    "append",
];

/// Idents whose presence in a function body counts as visible bound
/// enforcement for TD010 (prefix match for `evict*`).
const BOUND_TOKENS: [&str; 10] = [
    "capacity",
    "limit",
    "truncate",
    "pop_front",
    "pop_back",
    "retain",
    "budget",
    "bounded",
    "shed",
    "drop_oldest",
];

/// Keywords that look like calls when followed by `(`.
const CALL_KEYWORDS: [&str; 14] = [
    "if", "while", "for", "match", "return", "loop", "in", "as", "let", "move", "break",
    "continue", "where", "await",
];

/// How a lock is acquired; part of the lock identity shown in messages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex::lock()`.
    Mutex,
    /// `RwLock::read()`.
    RwRead,
    /// `RwLock::write()`.
    RwWrite,
    /// `OnceLock::get_or_init` / `get_or_try_init` (blocks other
    /// initializers).
    Once,
}

/// A source position shared by every event record.
#[derive(Debug, Clone, Copy)]
pub struct Site {
    /// Index into the function body's code-token sequence (file-wide
    /// code index, comparable across events of one file).
    pub ci: usize,
    /// 1-based line.
    pub line: u32,
    /// 1-based byte column.
    pub col: u32,
}

/// One call site inside a function body.
#[derive(Debug, Clone)]
pub struct CallSite {
    /// Callee name (last path segment / method name).
    pub name: String,
    /// The path segment before `::name`, if the call was path-qualified
    /// (`AdmissionQueue::new` → `Some("AdmissionQueue")`).
    pub path_prev: Option<String>,
    /// True for `.name(..)` method calls.
    pub is_method: bool,
    /// True when the argument list is empty (`()`), which disambiguates
    /// `RwLock::read()` from `io::Read::read(buf)`.
    pub args_empty: bool,
    /// Identifiers appearing anywhere in the argument list.
    pub arg_idents: Vec<String>,
    /// Whether this call is the entire statement (`foo(x);`) — its
    /// return value is discarded.
    pub stmt_position: bool,
    /// Where.
    pub site: Site,
}

/// One lock acquisition.
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Name-based lock identity, e.g. `serve::Shared.slot`.
    pub lock_id: String,
    /// Which primitive.
    pub kind: LockKind,
    /// Guard binding name when the acquisition is `let`-bound.
    pub guard: Option<String>,
    /// First code index at which the guard is live (the acquisition).
    pub live_from: usize,
    /// Code index one past which the guard is dead (end of statement
    /// for temporaries, end of enclosing block or `drop()` for
    /// bindings).
    pub live_to: usize,
    /// Where.
    pub site: Site,
}

/// One atomic operation with its `Ordering` arguments.
#[derive(Debug, Clone)]
pub struct AtomicSite {
    /// The receiver field/binding name (`self.bits.load(..)` → `bits`).
    pub field: String,
    /// The atomic method (`load`, `store`, `compare_exchange_weak`, ..).
    pub method: String,
    /// `Ordering` variant names in argument order.
    pub orderings: Vec<String>,
    /// Where.
    pub site: Site,
}

/// One collection-insertion site.
#[derive(Debug, Clone)]
pub struct MutationSite {
    /// The insertion method.
    pub method: String,
    /// Every identifier in the receiver chain (including through
    /// wrapper calls such as `relock(self.inner.lock()).push(..)`).
    pub recv_idents: Vec<String>,
    /// Where.
    pub site: Site,
}

/// A `let _ = <expr>;` statement whose expression contains a call.
#[derive(Debug, Clone)]
pub struct DiscardSite {
    /// Head of the discarded expression, for the message.
    pub head: String,
    /// Whether the expression's head is a `write!`/`writeln!` macro
    /// (infallible fmt::Write into a String — exempt).
    pub is_fmt_write: bool,
    /// Where.
    pub site: Site,
}

/// One parsed function or impl-method.
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Bare function name.
    pub name: String,
    /// Qualified name: `Type::name` inside an impl block, else `name`.
    pub qual: String,
    /// Whether the function carries `#[must_use]`.
    pub must_use: bool,
    /// Parameter names declared as references (`x: &T`), plus `self`
    /// when the receiver is `&self`/`&mut self` — the "long-lived state
    /// reachable from here" roots for TD010.
    pub ref_params: Vec<String>,
    /// Locals transitively derived from `self`/ref-params (via `let`
    /// initializers), in declaration order.
    pub derived_locals: Vec<String>,
    /// Whether the body mentions any bound-enforcement token (TD010).
    pub has_bound_token: bool,
    /// Call sites, in order.
    pub calls: Vec<CallSite>,
    /// Lock acquisitions, in order.
    pub locks: Vec<LockSite>,
    /// Atomic operations, in order.
    pub atomics: Vec<AtomicSite>,
    /// Collection insertions, in order.
    pub mutations: Vec<MutationSite>,
    /// `let _ = call(..)` discards, in order.
    pub discards: Vec<DiscardSite>,
    /// Where the `fn` keyword sits.
    pub site: Site,
}

/// Everything the graph needs from one library file.
#[derive(Debug, Clone)]
pub struct FileItems {
    /// Workspace-relative path.
    pub path: String,
    /// Owning crate.
    pub crate_name: String,
    /// Parsed functions (test-masked items excluded).
    pub fns: Vec<FnItem>,
    /// The file's waiver table, for post-hoc attachment to graph
    /// diagnostics.
    pub(crate) waivers: Vec<Waiver>,
    /// Source lines, for diagnostic excerpts.
    pub lines: Vec<String>,
}

/// Token-walking state shared by the extraction passes.
struct Walk<'s> {
    src: &'s str,
    toks: Vec<Token>,
    code: Vec<usize>,
    is_test: Vec<bool>,
}

impl<'s> Walk<'s> {
    fn ident(&self, ci: usize) -> Option<&'s str> {
        let t = self.toks.get(*self.code.get(ci)?)?;
        (t.kind == TokenKind::Ident).then(|| t.text(self.src))
    }

    fn punct(&self, ci: usize) -> Option<char> {
        let t = self.toks.get(*self.code.get(ci)?)?;
        (t.kind == TokenKind::Punct).then(|| t.text(self.src).chars().next())?
    }

    fn site(&self, ci: usize) -> Site {
        let t = self.code.get(ci).and_then(|&ti| self.toks.get(ti));
        Site {
            ci,
            line: t.map_or(0, |t| t.line),
            col: t.map_or(0, |t| t.col),
        }
    }

    fn in_test(&self, ci: usize) -> bool {
        self.code
            .get(ci)
            .is_some_and(|&ti| self.is_test.get(ti).copied().unwrap_or(false))
    }

    /// Index of the delimiter closing the one at `open` (`(`/`[`/`{`).
    fn matching_close(&self, open: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in open..self.code.len() {
            match self.punct(j) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => {
                    depth -= 1;
                    if depth == 0 {
                        return Some(j);
                    }
                }
                _ => {}
            }
        }
        None
    }

    /// Walk back from `ci` to the start of the enclosing statement: the
    /// code index right after the previous `;`, `{`, or `}` at brace
    /// depth zero. Parens and brackets are ignored so wrapper calls
    /// (`relock(self.inner.lock())`) do not hide the `let` head.
    fn stmt_start(&self, ci: usize) -> usize {
        let mut j = ci;
        while j > 0 {
            match self.punct(j - 1) {
                Some('{') | Some('}') | Some(';') => return j,
                _ => {}
            }
            j -= 1;
        }
        j
    }

    /// Forward from `ci` to the end of the enclosing statement at brace
    /// depth (parens ignored — wrapper calls like `relock(..)` must not
    /// terminate the scan): the first `;` at depth 0, or the enclosing
    /// `}`.
    fn stmt_end_braces(&self, ci: usize) -> usize {
        let mut depth = 0i32;
        let mut j = ci;
        while j < self.code.len() {
            match self.punct(j) {
                Some('{') => depth += 1,
                Some('}') => {
                    if depth == 0 {
                        return j;
                    }
                    depth -= 1;
                }
                Some(';') if depth == 0 => return j,
                _ => {}
            }
            j += 1;
        }
        j
    }

    /// First `{` at brace depth 0 after `ci` (a block opening within
    /// the current statement).
    fn first_block_open(&self, ci: usize) -> Option<usize> {
        let mut depth = 0i32;
        for j in ci..self.code.len() {
            match self.punct(j) {
                Some('(') | Some('[') => depth += 1,
                // Clamp: scanning may start inside a group whose closers
                // would otherwise drive the depth negative.
                Some(')') | Some(']') => depth = (depth - 1).max(0),
                Some('{') if depth == 0 => return Some(j),
                Some(';') if depth == 0 => return None,
                _ => {}
            }
        }
        None
    }

    /// The identifiers of a receiver chain ending just before the `.`
    /// at `dot_ci`, walking back through field accesses, indexing, path
    /// segments, and wrapper calls (whose argument idents are included,
    /// so `relock(self.inner.lock()).x` yields `relock, lock, inner,
    /// self`). First element is the ident nearest the call.
    fn receiver_idents(&self, dot_ci: usize) -> Vec<String> {
        let mut out = Vec::new();
        let mut j = dot_ci; // points at `.`
        loop {
            if j == 0 {
                break;
            }
            let prev = j - 1;
            match self.punct(prev) {
                Some(')') | Some(']') => {
                    // Skip back over the balanced group, collecting
                    // idents inside it.
                    let close = if self.punct(prev) == Some(')') {
                        ')'
                    } else {
                        ']'
                    };
                    let open = if close == ')' { '(' } else { '[' };
                    let mut depth = 0i32;
                    let mut k = prev;
                    loop {
                        match self.punct(k) {
                            Some(c) if c == close => depth += 1,
                            Some(c) if c == open => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {
                                if let Some(id) = self.ident(k) {
                                    out.push(id.to_string());
                                }
                            }
                        }
                        if k == 0 {
                            break;
                        }
                        k -= 1;
                    }
                    if k == 0 {
                        break;
                    }
                    j = k;
                    // A callee name may precede the group.
                    if let Some(id) = self.ident(j - 1) {
                        out.push(id.to_string());
                        j -= 1;
                    } else {
                        break;
                    }
                }
                _ => {
                    if let Some(id) = self.ident(prev) {
                        out.push(id.to_string());
                        j = prev;
                    } else {
                        break;
                    }
                }
            }
            // Continue only through `.` or `::` chains.
            if j == 0 {
                break;
            }
            if self.punct(j - 1) == Some('.') {
                j -= 1;
            } else if j >= 2 && self.punct(j - 1) == Some(':') && self.punct(j - 2) == Some(':') {
                j -= 2;
            } else {
                break;
            }
        }
        out
    }
}

/// Parse one library file into its item set. `crate_name` scopes lock
/// identities and call resolution.
#[must_use]
pub fn parse_file(path: &str, crate_name: &str, src: &str) -> FileItems {
    let toks = lex(src);
    let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
    let is_test = test_mask(src, &toks, &code);
    let waivers = parse_waivers(src, &toks);
    let lines = src.lines().map(|l| l.trim_end().to_string()).collect();
    let w = Walk {
        src,
        toks,
        code,
        is_test,
    };

    let mut fns = Vec::new();
    // Impl extents: (body_open, body_close, type_name).
    let impls = impl_extents(&w);
    let mut ci = 0usize;
    while ci < w.code.len() {
        if w.ident(ci) != Some("fn") || w.in_test(ci) {
            ci += 1;
            continue;
        }
        let Some(name) = w.ident(ci + 1) else {
            ci += 1;
            continue;
        };
        // Parameter list.
        let Some(params_open) = (ci + 1..w.code.len()).find(|&j| w.punct(j) == Some('(')) else {
            break;
        };
        let Some(params_close) = w.matching_close(params_open) else {
            break;
        };
        // Body: first `{` at depth 0 after the params (skipping return
        // type and where clause), or `;` for a bodiless trait method.
        let mut body_open = None;
        let mut depth = 0i32;
        let mut j = params_close + 1;
        while j < w.code.len() {
            match w.punct(j) {
                Some('(') | Some('[') => depth += 1,
                Some(')') | Some(']') => depth -= 1,
                Some('{') if depth == 0 => {
                    body_open = Some(j);
                    break;
                }
                Some(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body_open) = body_open else {
            ci = j + 1;
            continue;
        };
        let Some(body_close) = w.matching_close(body_open) else {
            break;
        };
        let impl_type = impls
            .iter()
            .find(|(o, c, _)| *o < ci && ci < *c)
            .map(|(_, _, t)| t.clone());
        let qual = match &impl_type {
            Some(t) => format!("{t}::{name}"),
            None => name.to_string(),
        };
        let item = parse_fn(
            &w,
            crate_name,
            name,
            qual,
            impl_type.as_deref(),
            ci,
            params_open,
            params_close,
            body_open,
            body_close,
        );
        fns.push(item);
        ci = body_open + 1; // descend: nested fns are parsed too
    }

    FileItems {
        path: path.to_string(),
        crate_name: crate_name.to_string(),
        fns,
        waivers,
        lines,
    }
}

/// `(body_open, body_close, type_name)` for every impl block.
fn impl_extents(w: &Walk<'_>) -> Vec<(usize, usize, String)> {
    let mut out = Vec::new();
    for ci in 0..w.code.len() {
        if w.ident(ci) != Some("impl") {
            continue;
        }
        // Scan forward to the body `{`; the type is the first ident
        // after `for` (trait impls) or after the generics, otherwise.
        let mut j = ci + 1;
        // Skip `<...>` generics (watch for `->` inside Fn bounds).
        if w.punct(j) == Some('<') {
            let mut angle = 0i32;
            while j < w.code.len() {
                match w.punct(j) {
                    Some('<') => angle += 1,
                    Some('>') if w.punct(j.wrapping_sub(1)) != Some('-') => {
                        angle -= 1;
                        if angle == 0 {
                            j += 1;
                            break;
                        }
                    }
                    _ => {}
                }
                j += 1;
            }
        }
        let mut ty: Option<String> = None;
        while j < w.code.len() {
            if w.punct(j) == Some('{') {
                break;
            }
            if w.ident(j) == Some("for") {
                ty = None;
            } else if let Some(id) = w.ident(j) {
                if ty.is_none() {
                    ty = Some(id.to_string());
                }
            }
            j += 1;
        }
        let (Some(open), Some(ty)) = ((w.punct(j) == Some('{')).then_some(j), ty) else {
            continue;
        };
        if let Some(close) = w.matching_close(open) {
            out.push((open, close, ty));
        }
    }
    out
}

/// Extract one function's events from its body token range.
#[allow(clippy::too_many_arguments)]
fn parse_fn(
    w: &Walk<'_>,
    crate_name: &str,
    name: &str,
    qual: String,
    impl_type: Option<&str>,
    fn_ci: usize,
    params_open: usize,
    params_close: usize,
    body_open: usize,
    body_close: usize,
) -> FnItem {
    let must_use = has_attr_before(w, fn_ci, "must_use");

    // Shared-state params: `self` in any receiver form, plus params
    // whose type names a shared container (`&Mutex<..>`, `Arc<..>`,
    // `&RwLock<..>`, atomics). A plain `&mut String` out-param is a
    // caller-owned buffer, not long-lived state, and does not root.
    let mut ref_params = Vec::new();
    {
        let mut j = params_open + 1;
        while j < params_close {
            // Each param may start with `&`, a lifetime, or `mut`.
            let mut p0 = j;
            while w.punct(p0) == Some('&')
                || w.ident(p0) == Some("mut")
                || w.code
                    .get(p0)
                    .and_then(|&ti| w.toks.get(ti))
                    .is_some_and(|t| t.kind == TokenKind::Lifetime)
            {
                p0 += 1;
            }
            // Find the param's end: the next comma at depth 0.
            let mut depth = 0i32;
            let mut end = params_close;
            let mut k = j;
            while k < params_close {
                match w.punct(k) {
                    Some('(') | Some('[') | Some('<') => depth += 1,
                    Some(')') | Some(']') => depth -= 1,
                    Some('>') if w.punct(k.wrapping_sub(1)) != Some('-') => depth -= 1,
                    Some(',') if depth == 0 => {
                        end = k;
                        break;
                    }
                    _ => {}
                }
                k += 1;
            }
            if w.ident(p0) == Some("self") {
                ref_params.push("self".to_string());
            } else if let Some(p) = w.ident(p0) {
                if w.punct(p0 + 1) == Some(':') && w.punct(p0 + 2) != Some(':') {
                    let shared = (p0 + 2..end).any(|m| {
                        w.ident(m).is_some_and(|t| {
                            matches!(
                                t,
                                "Mutex"
                                    | "RwLock"
                                    | "OnceLock"
                                    | "Condvar"
                                    | "Arc"
                                    | "Rc"
                                    | "Cell"
                                    | "RefCell"
                            ) || t.starts_with("Atomic")
                        })
                    });
                    if shared {
                        ref_params.push(p.to_string());
                    }
                }
            }
            j = end + 1;
        }
        ref_params.dedup();
    }

    let mut item = FnItem {
        name: name.to_string(),
        qual,
        must_use,
        ref_params,
        derived_locals: Vec::new(),
        has_bound_token: false,
        calls: Vec::new(),
        locks: Vec::new(),
        atomics: Vec::new(),
        mutations: Vec::new(),
        discards: Vec::new(),
        site: w.site(fn_ci),
    };

    // `let NAME = <init>` bindings with the idents of their initializer,
    // for derived-local computation, plus `drop(NAME)` sites for guard
    // truncation.
    let mut lets: Vec<(String, Vec<String>, usize)> = Vec::new();
    let mut drops: Vec<(String, usize)> = Vec::new();

    let mut j = body_open + 1;
    while j < body_close {
        let Some(id) = w.ident(j) else {
            j += 1;
            continue;
        };
        if BOUND_TOKENS.contains(&id) || id.starts_with("evict") {
            item.has_bound_token = true;
        }

        // `let [mut] NAME [: ty] = init;`
        if id == "let" {
            let mut k = j + 1;
            if w.ident(k) == Some("mut") {
                k += 1;
            }
            if let Some(bound) = w.ident(k) {
                if bound == "_" {
                    // `let _ = expr;` — a discard candidate.
                    if w.punct(k + 1) == Some('=') {
                        let end = w.stmt_end_braces(k + 2);
                        let head = w.ident(k + 2).unwrap_or("?").to_string();
                        let is_fmt_write =
                            matches!(w.ident(k + 2), Some("write") | Some("writeln"))
                                && w.punct(k + 3) == Some('!');
                        let has_call = (k + 2..end).any(|m| {
                            w.ident(m).is_some()
                                && !w.ident(m).is_some_and(|n| CALL_KEYWORDS.contains(&n))
                                && (w.punct(m + 1) == Some('(')
                                    || (w.punct(m + 1) == Some('!') && w.punct(m + 2) == Some('(')))
                        });
                        if has_call {
                            item.discards.push(DiscardSite {
                                head,
                                is_fmt_write,
                                site: w.site(k + 2),
                            });
                        }
                    }
                } else if w.punct(k + 1) != Some(':') || w.punct(k + 2) != Some(':') {
                    let end = w.stmt_end_braces(k + 1);
                    let init_idents: Vec<String> = (k + 1..end)
                        .filter_map(|m| w.ident(m))
                        .map(str::to_string)
                        .collect();
                    lets.push((bound.to_string(), init_idents, end));
                }
            }
            j += 1;
            continue;
        }

        // Calls: `ident (` that is not a macro or keyword.
        if w.punct(j + 1) == Some('(')
            && !CALL_KEYWORDS.contains(&id)
            && w.punct(j.wrapping_sub(1)) != Some('#')
        {
            let Some(close) = w.matching_close(j + 1) else {
                j += 1;
                continue;
            };
            let is_method = w.punct(j.wrapping_sub(1)) == Some('.');
            let path_prev = (w.punct(j.wrapping_sub(1)) == Some(':')
                && w.punct(j.wrapping_sub(2)) == Some(':'))
            .then(|| w.ident(j.wrapping_sub(3)))
            .flatten()
            .map(str::to_string);
            let args_empty = close == j + 2;
            let arg_idents: Vec<String> = (j + 2..close)
                .filter_map(|m| w.ident(m))
                .map(str::to_string)
                .collect();
            let start = w.stmt_start(j);
            // Statement position: the statement is exactly this call —
            // possibly path-qualified or a method on a plain receiver
            // chain — and ends right after it.
            let head_ok = start == j
                || (start < j
                    && (start..j).all(|m| {
                        w.ident(m).is_some_and(|n| n != "let" && n != "return")
                            || matches!(w.punct(m), Some(':') | Some('.'))
                    }));
            let stmt_position = head_ok && w.punct(close + 1) == Some(';');

            if id == "drop" && !is_method {
                if let Some(dropped) = w.ident(j + 2) {
                    if close == j + 3 {
                        drops.push((dropped.to_string(), j));
                    }
                }
            }

            // Lock acquisition?
            let lock_kind = match id {
                "lock" if is_method && args_empty => Some(LockKind::Mutex),
                "read" if is_method && args_empty => Some(LockKind::RwRead),
                "write" if is_method && args_empty => Some(LockKind::RwWrite),
                "get_or_init" | "get_or_try_init" if is_method => Some(LockKind::Once),
                _ => None,
            };
            if let Some(kind) = lock_kind {
                let recv = w.receiver_idents(j - 1);
                let field = recv.first().cloned().unwrap_or_else(|| "?".to_string());
                let root_is_self = recv.last().is_some_and(|r| r == "self");
                let lock_id = match (root_is_self, impl_type) {
                    (true, Some(t)) => format!("{crate_name}::{t}.{field}"),
                    _ => format!("{crate_name}::{field}"),
                };
                // Bound to a `let` guard? Only when the guard value
                // itself reaches the binding — `let v = relock(m.read())
                // .get(k).cloned();` binds the *lookup result*, and the
                // guard temporary dies with the statement.
                let start_ci = w.stmt_start(j);
                let mut guard = None;
                if w.ident(start_ci) == Some("let") && guard_reaches_binding(w, close) {
                    let mut g = start_ci + 1;
                    if w.ident(g) == Some("mut") {
                        g += 1;
                    }
                    if let Some(gname) = w.ident(g) {
                        if gname != "_" {
                            guard = Some(gname.to_string());
                        }
                    }
                }
                let live_to = match &guard {
                    Some(_) => {
                        // End of the innermost enclosing block.
                        enclosing_block_close(w, start_ci, body_open, body_close)
                    }
                    None => temp_guard_end(w, start_ci, j, body_close),
                };
                item.locks.push(LockSite {
                    lock_id,
                    kind,
                    guard,
                    live_from: j,
                    live_to,
                    site: w.site(j),
                });
            }

            // Atomic op?
            if is_method && ATOMIC_METHODS.contains(&id) {
                let orderings: Vec<String> = (j + 2..close)
                    .filter_map(|m| w.ident(m))
                    .filter(|n| ORDERINGS.contains(n))
                    .map(str::to_string)
                    .collect();
                if !orderings.is_empty() {
                    let recv = w.receiver_idents(j - 1);
                    let field = recv.first().cloned().unwrap_or_else(|| "?".to_string());
                    item.atomics.push(AtomicSite {
                        field,
                        method: id.to_string(),
                        orderings,
                        site: w.site(j),
                    });
                }
            }

            // Growth site?
            if is_method && GROWTH_METHODS.contains(&id) {
                item.mutations.push(MutationSite {
                    method: id.to_string(),
                    recv_idents: w.receiver_idents(j - 1),
                    site: w.site(j),
                });
            }

            item.calls.push(CallSite {
                name: id.to_string(),
                path_prev,
                is_method,
                args_empty,
                arg_idents,
                stmt_position,
                site: w.site(j),
            });
        }
        j += 1;
    }

    // Truncate guard liveness at `drop(guard)`.
    for lock in &mut item.locks {
        if let Some(g) = &lock.guard {
            if let Some(&(_, at)) = drops
                .iter()
                .find(|(n, at)| n == g && *at > lock.live_from && *at < lock.live_to)
            {
                lock.live_to = at;
            }
        }
    }

    // Derived locals: fixpoint over `let` initializers seeded by
    // `self` and the reference params.
    let mut derived: Vec<String> = Vec::new();
    let roots: Vec<&str> = item.ref_params.iter().map(String::as_str).collect();
    let mut changed = true;
    while changed {
        changed = false;
        for (name, init, _) in &lets {
            if derived.iter().any(|d| d == name) {
                continue;
            }
            if init
                .iter()
                .any(|i| roots.contains(&i.as_str()) || derived.iter().any(|d| d == i))
            {
                derived.push(name.clone());
                changed = true;
            }
        }
    }
    item.derived_locals = derived;
    item
}

/// Does an attribute group `#[.. name ..]` directly precede the item at
/// `fn_ci` (skipping `pub`, qualifiers, and other attributes)?
fn has_attr_before(w: &Walk<'_>, fn_ci: usize, name: &str) -> bool {
    let mut j = fn_ci;
    // Walk back over qualifiers.
    while j > 0
        && matches!(
            w.ident(j - 1),
            Some("pub") | Some("async") | Some("const") | Some("extern") | Some("unsafe")
        )
    {
        j -= 1;
    }
    // `pub(crate)` — skip the parenthesized restriction.
    if j > 0 && w.punct(j - 1) == Some(')') {
        let mut depth = 0i32;
        let mut k = j - 1;
        loop {
            match w.punct(k) {
                Some(')') => depth += 1,
                Some('(') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if k > 0 && w.ident(k - 1) == Some("pub") {
            j = k - 1;
        }
    }
    // Walk back over attribute groups, checking each for `name`.
    while j > 1 && w.punct(j - 1) == Some(']') {
        let mut depth = 0i32;
        let mut k = j - 1;
        loop {
            match w.punct(k) {
                Some(']') => depth += 1,
                Some('[') => {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                _ => {}
            }
            if k == 0 {
                return false;
            }
            k -= 1;
        }
        if (k..j).any(|m| w.ident(m) == Some(name)) {
            return true;
        }
        j = if k > 0 && w.punct(k - 1) == Some('#') {
            k - 1
        } else {
            k
        };
    }
    false
}

/// The code index closing the innermost block that encloses `at`
/// (searched within the function body).
fn enclosing_block_close(w: &Walk<'_>, at: usize, body_open: usize, body_close: usize) -> usize {
    let mut stack = vec![body_close];
    let mut j = body_open + 1;
    while j < at {
        match w.punct(j) {
            Some('{') => {
                if let Some(c) = w.matching_close(j) {
                    stack.push(c);
                }
            }
            Some('}') if stack.len() > 1 => {
                stack.pop();
            }
            _ => {}
        }
        j += 1;
    }
    *stack.last().unwrap_or(&body_close)
}

/// Liveness end for an unbound (temporary) guard acquired at `at` in
/// the statement starting at `start`: end of statement, extended to the
/// block close for `if let`/`while let`/`match`/`for` heads, whose
/// scrutinee temporaries live through the body (the classic extended-
/// temporary footgun), and clipped to the condition for plain
/// `if`/`while`.
fn temp_guard_end(w: &Walk<'_>, start: usize, at: usize, body_close: usize) -> usize {
    let head = w.ident(start);
    let head_let = matches!(head, Some("if") | Some("while")) && w.ident(start + 1) == Some("let");
    match head {
        Some("match") | Some("for") => w
            .first_block_open(start)
            .and_then(|o| w.matching_close(o))
            .unwrap_or(body_close),
        Some("if") | Some("while") if head_let => w
            .first_block_open(start)
            .and_then(|o| w.matching_close(o))
            .unwrap_or(body_close),
        Some("if") | Some("while") => w.first_block_open(start).unwrap_or(body_close),
        _ => w.stmt_end_braces(at),
    }
}

/// Does the value produced by the call closing at `close` still reach
/// the `let` binding as a *guard*? True only when the chain from the
/// call to the statement's `;` passes exclusively through
/// guard-preserving steps: a `relock(..)` wrapper closing, `?`, or
/// `.unwrap()`/`.expect(..)`/`.unwrap_or_else(..)`. Anything else
/// (`.iter()`, `.get(..)`, field access, `std::mem::take(..)`)
/// consumes the guard, leaving a temporary that dies with the
/// statement.
fn guard_reaches_binding(w: &Walk<'_>, close: usize) -> bool {
    let mut k = close + 1;
    loop {
        match w.punct(k) {
            Some(';') => return true,
            Some('?') => k += 1,
            Some(')') => {
                // Find the matching open and its callee ident.
                let mut depth = 0i32;
                let mut m = k;
                let open = loop {
                    if m == 0 {
                        return false;
                    }
                    m -= 1;
                    match w.punct(m) {
                        Some(')') => depth += 1,
                        Some('(') => {
                            if depth == 0 {
                                break m;
                            }
                            depth -= 1;
                        }
                        _ => {}
                    }
                };
                if w.ident(open.wrapping_sub(1)) == Some("relock") {
                    k += 1;
                } else {
                    return false;
                }
            }
            Some('.') => {
                if !matches!(
                    w.ident(k + 1),
                    Some("unwrap") | Some("expect") | Some("unwrap_or_else")
                ) || w.punct(k + 2) != Some('(')
                {
                    return false;
                }
                let Some(c) = w.matching_close(k + 2) else {
                    return false;
                };
                k = c + 1;
            }
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn items(src: &str) -> FileItems {
        parse_file("crates/demo/src/x.rs", "demo", src)
    }

    #[test]
    fn extracts_fns_and_impl_methods() {
        let f = items("pub struct S;\nimpl S {\n    pub fn m(&self) {}\n}\npub fn free() {}\n");
        let quals: Vec<&str> = f.fns.iter().map(|f| f.qual.as_str()).collect();
        assert_eq!(quals, vec!["S::m", "free"]);
        assert_eq!(f.fns[0].ref_params, vec!["self"]);
    }

    #[test]
    fn lock_sites_and_guard_scopes() {
        let src = "\
use std::sync::Mutex;
pub struct S { inner: Mutex<u32> }
impl S {
    pub fn bound(&self) {
        let g = self.inner.lock();
        helper();
        drop(g);
        helper2();
    }
    pub fn temp(&self) -> u32 {
        *self.inner.lock().unwrap()
    }
}
";
        let f = items(src);
        let bound = &f.fns[0];
        assert_eq!(bound.locks.len(), 1);
        let l = &bound.locks[0];
        assert_eq!(l.lock_id, "demo::S.inner");
        assert_eq!(l.kind, LockKind::Mutex);
        assert_eq!(l.guard.as_deref(), Some("g"));
        // helper() is inside the guard's liveness, helper2() is after
        // the drop().
        let helper = bound.calls.iter().find(|c| c.name == "helper").unwrap();
        let helper2 = bound.calls.iter().find(|c| c.name == "helper2").unwrap();
        assert!(l.live_from < helper.site.ci && helper.site.ci < l.live_to);
        assert!(helper2.site.ci > l.live_to);
        // The temporary in `temp` dies at the statement end.
        let t = &f.fns[1].locks[0];
        assert!(t.guard.is_none());
        assert!(t.live_to > t.live_from);
    }

    #[test]
    fn atomic_orderings_extracted() {
        let src = "\
impl G {
    pub fn add(&self) {
        self.bits.compare_exchange_weak(1, 2, Ordering::Relaxed, Ordering::Relaxed);
        self.n.fetch_add(1, Ordering::SeqCst);
    }
}
";
        let f = items(src);
        let a = &f.fns[0].atomics;
        assert_eq!(a.len(), 2);
        assert_eq!(a[0].field, "bits");
        assert_eq!(a[0].orderings, vec!["Relaxed", "Relaxed"]);
        assert_eq!(a[1].method, "fetch_add");
    }

    #[test]
    fn test_code_is_skipped() {
        let src = "#[cfg(test)]\nmod tests {\n    fn helper() { x.lock(); }\n}\npub fn real() {}\n";
        let f = items(src);
        assert_eq!(f.fns.len(), 1);
        assert_eq!(f.fns[0].name, "real");
    }

    #[test]
    fn discards_and_fmt_exemption() {
        let src = "\
pub fn f(s: &mut String) {
    let _ = fallible();
    let _ = writeln!(s, \"x\");
    let _ = s;
}
";
        let f = items(src);
        let d = &f.fns[0].discards;
        assert_eq!(d.len(), 2); // `let _ = s;` has no call
        assert!(!d[0].is_fmt_write);
        assert!(d[1].is_fmt_write);
    }

    #[test]
    fn derived_locals_follow_self() {
        let src = "\
impl S {
    pub fn f(&self, other: u32) {
        let a = self.field;
        let b = a + 1;
        let c = other;
    }
}
";
        let f = items(src);
        let d = &f.fns[0].derived_locals;
        assert!(d.contains(&"a".to_string()));
        assert!(d.contains(&"b".to_string()));
        assert!(!d.contains(&"c".to_string()));
    }
}
