//! The lint rules (TD001–TD006) and the per-file analysis context they
//! share: the token stream, a test-code mask (`#[cfg(test)]` modules and
//! `#[test]` functions are exempt from most rules), and the inline
//! waiver table parsed from `// td-lint: allow(CODE) reason` comments.

use crate::diag::{Code, Diagnostic};
use crate::lexer::{lex, Token, TokenKind};

/// How a file participates in the build; rules apply per class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Ordinary library source (`src/**` outside `bin/`).
    Library,
    /// Executable or harness code: `src/bin/**`, `src/main.rs`,
    /// `benches/**`, `examples/**`. Allowed to print and to panic.
    Binary,
    /// Integration-test code (`tests/**`). Only TD003 applies.
    Test,
}

/// One parsed waiver comment.
#[derive(Debug, Clone)]
pub(crate) struct Waiver {
    pub(crate) line: u32,
    pub(crate) codes: Vec<Code>,
    pub(crate) reason: String,
}

/// Resolve a waiver for `code` at `line` against a parsed waiver table:
/// a waiver on line L covers findings on L (trailing comment) and L+1
/// (comment on its own line above the code).
pub(crate) fn waiver_in(waivers: &[Waiver], code: Code, line: u32) -> Option<String> {
    waivers
        .iter()
        .find(|w| w.codes.contains(&code) && (w.line == line || w.line + 1 == line))
        .map(|w| w.reason.clone())
}

/// Per-file analysis context handed to each rule.
pub struct FileCtx<'s> {
    src: &'s str,
    path: &'s str,
    crate_name: &'s str,
    class: FileClass,
    is_crate_root: bool,
    toks: Vec<Token>,
    /// Indices into `toks` of non-comment tokens.
    code: Vec<usize>,
    /// Per-token flag: inside a `#[cfg(test)]` item or `#[test]` fn.
    is_test: Vec<bool>,
    lines: Vec<&'s str>,
    waivers: Vec<Waiver>,
}

impl<'s> FileCtx<'s> {
    /// Lex and pre-analyze one source file.
    #[must_use]
    pub fn new(
        path: &'s str,
        crate_name: &'s str,
        class: FileClass,
        is_crate_root: bool,
        src: &'s str,
    ) -> Self {
        let toks = lex(src);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let is_test = test_mask(src, &toks, &code);
        let lines = src.lines().collect();
        let waivers = parse_waivers(src, &toks);
        FileCtx {
            src,
            path,
            crate_name,
            class,
            is_crate_root,
            toks,
            code,
            is_test,
            lines,
            waivers,
        }
    }

    /// Run every applicable rule and attach waivers. Diagnostics arrive
    /// in (line, col) order.
    #[must_use]
    pub fn run(&self) -> Vec<Diagnostic> {
        let mut out = Vec::new();
        let lib = self.class == FileClass::Library;
        if lib {
            td001_no_panics(self, &mut out);
            td004_no_prints(self, &mut out);
            td005_hash_order(self, &mut out);
            if self.is_crate_root {
                td006_pub_fn_docs(self, &mut out);
            }
        }
        if self.class != FileClass::Test && self.crate_name != "obs" {
            td002_no_raw_timing(self, &mut out);
        }
        td003_no_unsafe(self, &mut out);
        out.sort_by_key(|d| (d.line, d.col, d.code));
        for d in &mut out {
            d.waive_reason = self.waiver_for(d.code, d.line);
        }
        out
    }

    /// The text of code token `ci` (an index into `self.code`), if it is
    /// an identifier.
    fn ident(&self, ci: usize) -> Option<&'s str> {
        let t = self.toks.get(*self.code.get(ci)?)?;
        (t.kind == TokenKind::Ident).then(|| t.text(self.src))
    }

    /// The punctuation character of code token `ci`, if any.
    fn punct(&self, ci: usize) -> Option<char> {
        let t = self.toks.get(*self.code.get(ci)?)?;
        (t.kind == TokenKind::Punct).then(|| t.text(self.src).chars().next())?
    }

    fn tok(&self, ci: usize) -> Option<&Token> {
        self.toks.get(*self.code.get(ci)?)
    }

    fn in_test(&self, ci: usize) -> bool {
        self.code
            .get(ci)
            .is_some_and(|&ti| self.is_test.get(ti).copied().unwrap_or(false))
    }

    fn diag(&self, code: Code, ci: usize, message: String) -> Option<Diagnostic> {
        let t = self.tok(ci)?;
        let excerpt = self
            .lines
            .get(t.line as usize - 1)
            .map(|l| l.trim_end().to_string())
            .unwrap_or_default();
        Some(Diagnostic {
            code,
            path: self.path.to_string(),
            line: t.line,
            col: t.col,
            message,
            excerpt,
            waive_reason: None,
        })
    }

    /// A waiver on line L covers findings on L (trailing comment) and
    /// L+1 (comment on its own line above the code).
    fn waiver_for(&self, code: Code, line: u32) -> Option<String> {
        waiver_in(&self.waivers, code, line)
    }
}

/// Parse `td-lint: allow(CODE[, CODE...]) reason` out of every comment.
/// A waiver with no reason text is invalid and ignored — the underlying
/// diagnostic still fires, which is the safe default.
pub(crate) fn parse_waivers(src: &str, toks: &[Token]) -> Vec<Waiver> {
    let mut out = Vec::new();
    for t in toks.iter().filter(|t| t.is_comment()) {
        let text = t.text(src);
        let Some(at) = text.find("td-lint:") else {
            continue;
        };
        let rest = text[at + "td-lint:".len()..].trim_start();
        let Some(rest) = rest.strip_prefix("allow") else {
            continue;
        };
        let rest = rest.trim_start();
        let Some(rest) = rest.strip_prefix('(') else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            continue;
        };
        let codes: Vec<Code> = rest[..close].split(',').filter_map(Code::parse).collect();
        let reason = rest[close + 1..]
            .trim()
            .trim_end_matches("*/")
            .trim()
            .to_string();
        if codes.is_empty() || reason.is_empty() {
            continue;
        }
        out.push(Waiver {
            line: t.line,
            codes,
            reason,
        });
    }
    out
}

/// Mark every token inside a `#[cfg(test)]` item (typically the trailing
/// test module) or a `#[test]`-attributed function. `#![cfg(test)]` as an
/// inner attribute marks the whole file.
pub(crate) fn test_mask(src: &str, toks: &[Token], code: &[usize]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let ident = |ci: usize| -> Option<&str> {
        let t = toks.get(*code.get(ci)?)?;
        (t.kind == TokenKind::Ident).then(|| t.text(src))
    };
    let punct = |ci: usize| -> Option<char> {
        let t = toks.get(*code.get(ci)?)?;
        (t.kind == TokenKind::Punct).then(|| t.text(src).chars().next())?
    };
    let mut ci = 0usize;
    while ci < code.len() {
        if punct(ci) != Some('#') {
            ci += 1;
            continue;
        }
        let attr_start = ci;
        let mut j = ci + 1;
        let inner = punct(j) == Some('!');
        if inner {
            j += 1;
        }
        if punct(j) != Some('[') {
            ci += 1;
            continue;
        }
        // Find the matching `]`.
        let mut depth = 0i32;
        let mut k = j;
        let mut attr_end = None;
        while k < code.len() {
            match punct(k) {
                Some('[') => depth += 1,
                Some(']') => {
                    depth -= 1;
                    if depth == 0 {
                        attr_end = Some(k);
                        break;
                    }
                }
                _ => {}
            }
            k += 1;
        }
        let Some(attr_end) = attr_end else { break };
        // Test-gating? `#[test]`, `#[cfg(test)]`, `#[foo::test]`.
        let idents: Vec<&str> = (j + 1..attr_end).filter_map(ident).collect();
        let gating = match idents.first() {
            Some(&"cfg") => idents.contains(&"test"),
            _ => idents.last() == Some(&"test"),
        };
        if !gating {
            ci = attr_end + 1;
            continue;
        }
        if inner {
            // `#![cfg(test)]`: the entire file is test code.
            mask.fill(true);
            return mask;
        }
        // Skip further attributes, then find the item's extent: first
        // `;` at depth 0, or the matching `}` of its first `{`.
        let mut p = attr_end + 1;
        while punct(p) == Some('#') {
            let mut d = 0i32;
            let mut q = p + 1;
            while q < code.len() {
                match punct(q) {
                    Some('[') => d += 1,
                    Some(']') => {
                        d -= 1;
                        if d == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                q += 1;
            }
            p = q + 1;
        }
        let mut d = 0i32;
        let mut end = code.len().saturating_sub(1);
        let mut q = p;
        while q < code.len() {
            match punct(q) {
                Some('{') | Some('(') | Some('[') => d += 1,
                Some('}') | Some(')') | Some(']') => {
                    d -= 1;
                    if d == 0 && punct(q) == Some('}') {
                        end = q;
                        break;
                    }
                }
                Some(';') if d == 0 => {
                    end = q;
                    break;
                }
                _ => {}
            }
            q += 1;
        }
        let (lo, hi) = (code[attr_start], code[end.min(code.len() - 1)]);
        for m in mask.iter_mut().take(hi + 1).skip(lo) {
            *m = true;
        }
        ci = end + 1;
    }
    mask
}

/// TD001 — `unwrap()` / `expect()` / `panic!` in non-test library code.
fn td001_no_panics(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.in_test(ci) {
            continue;
        }
        let Some(name) = ctx.ident(ci) else { continue };
        let fired = match name {
            "unwrap" | "expect" => {
                ctx.punct(ci.wrapping_sub(1)) == Some('.') && ctx.punct(ci + 1) == Some('(')
            }
            "panic" => ctx.punct(ci + 1) == Some('!'),
            _ => false,
        };
        if fired {
            let what = if name == "panic" {
                "`panic!` in non-test library code".to_string()
            } else {
                format!("`.{name}()` in non-test library code")
            };
            out.extend(ctx.diag(
                Code::Td001,
                ci,
                format!("{what}; return a typed error or restructure to make the panic impossible"),
            ));
        }
    }
}

/// TD002 — raw `Instant::now` / `SystemTime::now` outside `crates/obs`.
fn td002_no_raw_timing(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.in_test(ci) {
            continue;
        }
        let Some(name) = ctx.ident(ci) else { continue };
        if !matches!(name, "Instant" | "SystemTime") {
            continue;
        }
        if ctx.punct(ci + 1) == Some(':')
            && ctx.punct(ci + 2) == Some(':')
            && ctx.ident(ci + 3) == Some("now")
        {
            out.extend(ctx.diag(
                Code::Td002,
                ci,
                format!(
                    "raw `{name}::now()` outside crates/obs; use `td_obs::time`, `Timer`, or a span so the measurement reaches the metrics registry"
                ),
            ));
        }
    }
}

/// TD003 — no `unsafe` anywhere (the workspace is unsafe-free; keep it so).
fn td003_no_unsafe(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.ident(ci) == Some("unsafe") {
            out.extend(ctx.diag(
                Code::Td003,
                ci,
                "`unsafe` code; the workspace is unsafe-free by policy".to_string(),
            ));
        }
    }
    // Crate roots must also carry the compiler-enforced backstop.
    if ctx.is_crate_root && !has_forbid_unsafe(ctx) {
        out.push(Diagnostic {
            code: Code::Td003,
            path: ctx.path.to_string(),
            line: 1,
            col: 1,
            message: "crate root lacks `#![forbid(unsafe_code)]`".to_string(),
            excerpt: ctx
                .lines
                .first()
                .map(|l| l.trim_end().to_string())
                .unwrap_or_default(),
            waive_reason: None,
        });
    }
}

/// Whether the token stream contains `forbid ( unsafe_code )` — the body
/// of a `#![forbid(unsafe_code)]` inner attribute.
fn has_forbid_unsafe(ctx: &FileCtx<'_>) -> bool {
    (0..ctx.code.len()).any(|ci| {
        ctx.ident(ci) == Some("forbid")
            && ctx.punct(ci + 1) == Some('(')
            && ctx.ident(ci + 2) == Some("unsafe_code")
            && ctx.punct(ci + 3) == Some(')')
    })
}

/// TD004 — `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` in
/// library code; route output through td-obs or return it to the caller.
fn td004_no_prints(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.in_test(ci) {
            continue;
        }
        let Some(name) = ctx.ident(ci) else { continue };
        if !matches!(name, "println" | "eprintln" | "print" | "eprint" | "dbg") {
            continue;
        }
        if ctx.punct(ci + 1) == Some('!') {
            out.extend(ctx.diag(
                Code::Td004,
                ci,
                format!(
                    "`{name}!` in library code; emit a td-obs metric/span or return the text to the caller"
                ),
            ));
        }
    }
}

/// The iterator-source methods whose order is the hash map's.
const HASH_ITER_METHODS: [&str; 7] = [
    "iter",
    "into_iter",
    "keys",
    "values",
    "into_keys",
    "into_values",
    "drain",
];

/// Collect targets that make hash-order irrelevant again.
const ORDER_FREE_SINKS: [&str; 5] = ["HashMap", "HashSet", "BTreeMap", "BTreeSet", "BinaryHeap"];

/// TD005 — iterating a `HashMap`/`HashSet` local straight into ordered
/// output (a `Vec` collect or a `.push(..)` loop) without a sort.
///
/// Heuristic, by design: it tracks `let`-bound locals whose initializer
/// or type annotation names `HashMap`/`HashSet`, then flags (a) `for ..
/// in binding`-style loops whose body pushes or extends an accumulator
/// and (b) `binding.iter()/keys()/..` chains that `collect` into
/// anything ordered, unless the collected binding is sorted later in
/// the file. Sorting the drained entries (or collecting into a BTree
/// container) is both the fix and the suppression.
fn td005_hash_order(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let bindings = hash_bindings(ctx);
    if bindings.iter().all(|b| !b.is_hash) {
        return;
    }
    // Shadowing-aware: the most recent `let name` before the use site
    // decides, so the sorted-`Vec` rebind idiom
    // (`let mut xs: Vec<_> = xs.into_iter().collect(); xs.sort...`)
    // clears the hash flag for everything after it.
    let is_hash_at = |name: Option<&str>, use_ci: usize| {
        name.is_some_and(|n| {
            bindings
                .iter()
                .rev()
                .find(|b| b.name == n && b.stmt_end < use_ci)
                .is_some_and(|b| b.is_hash)
        })
    };

    for ci in 0..ctx.code.len() {
        if ctx.in_test(ci) {
            continue;
        }
        // (a) `for pat in [&][mut] binding { .. body with .push/.extend .. }`
        if ctx.ident(ci) == Some("for") {
            let Some(in_ci) = find_at_depth(ctx, ci + 1, |c, j| c.ident(j) == Some("in")) else {
                continue;
            };
            let mut j = in_ci + 1;
            while ctx.punct(j) == Some('&') || ctx.ident(j) == Some("mut") {
                j += 1;
            }
            if !is_hash_at(ctx.ident(j), j) {
                continue;
            }
            let name = ctx.ident(j).unwrap_or_default();
            // Direct iteration (`{` next) or an explicit hash-order
            // iterator chain.
            let direct = ctx.punct(j + 1) == Some('{');
            let chained = ctx.punct(j + 1) == Some('.')
                && ctx
                    .ident(j + 2)
                    .is_some_and(|m| HASH_ITER_METHODS.contains(&m));
            if !(direct || chained) {
                continue;
            }
            let Some(body_open) = find_at_depth(ctx, in_ci + 1, |c, k| c.punct(k) == Some('{'))
            else {
                continue;
            };
            let Some(body_close) = matching_close(ctx, body_open) else {
                continue;
            };
            // A push/extend into an ordered accumulator leaks the hash
            // order — unless that accumulator is itself a hash container
            // (order-free) or is sorted after the loop.
            let order_leaks = (body_open..body_close).any(|k| {
                if ctx.punct(k) != Some('.')
                    || !matches!(ctx.ident(k + 1), Some("push") | Some("extend"))
                    || ctx.punct(k + 2) != Some('(')
                {
                    return false;
                }
                let acc = ctx.ident(k.wrapping_sub(1));
                if is_hash_at(acc, k) {
                    return false;
                }
                let sorted_later = acc.is_some_and(|a| {
                    (body_close..ctx.code.len().saturating_sub(2)).any(|m| {
                        ctx.ident(m) == Some(a)
                            && ctx.punct(m + 1) == Some('.')
                            && ctx.ident(m + 2).is_some_and(|s| s.starts_with("sort"))
                    })
                });
                !sorted_later
            });
            if order_leaks {
                out.extend(ctx.diag(
                    Code::Td005,
                    j,
                    format!(
                        "iterating hash-ordered `{name}` into an ordered accumulator; sort the entries first (e.g. collect and `sort_unstable_by_key`) so results are run-to-run deterministic"
                    ),
                ));
            }
            continue;
        }
        // (b) `binding.iter()...collect()` in one statement.
        if is_hash_at(ctx.ident(ci), ci)
            && ctx.punct(ci + 1) == Some('.')
            && ctx
                .ident(ci + 2)
                .is_some_and(|m| HASH_ITER_METHODS.contains(&m))
        {
            let name = ctx.ident(ci).unwrap_or_default();
            if collect_without_sort(ctx, ci) {
                out.extend(ctx.diag(
                    Code::Td005,
                    ci,
                    format!(
                        "collecting hash-ordered `{name}` into ordered output without a sort; sort the result or collect into a BTree container"
                    ),
                ));
            }
        }
    }
}

/// One `let` binding: its name, where its statement ends (uses after
/// this point resolve to it), and whether it is hash-typed.
struct LetBinding {
    name: String,
    stmt_end: usize,
    is_hash: bool,
}

/// Every `let`-bound local in the file, in order, with hash-typing
/// decided by the *outermost* type of its annotation or initializer.
fn hash_bindings(ctx: &FileCtx<'_>) -> Vec<LetBinding> {
    let mut out = Vec::new();
    let mut ci = 0usize;
    while ci < ctx.code.len() {
        if ctx.ident(ci) != Some("let") {
            ci += 1;
            continue;
        }
        let mut j = ci + 1;
        if ctx.ident(j) == Some("mut") {
            j += 1;
        }
        let Some(name) = ctx.ident(j) else {
            ci += 1;
            continue;
        };
        // Hash-typed when the *outermost* type of the annotation (`let x:
        // HashMap<..>`) or the head path of the initializer (`=
        // HashMap::new()`, `= std::collections::HashSet::from(..)`) names
        // a hash container. `Vec<HashSet<..>>` is a Vec, not a hash.
        let mut mentions_hash = false;
        if ctx.punct(j + 1) == Some(':') && ctx.punct(j + 2) != Some(':') {
            mentions_hash = head_path_is_hash(ctx, j + 2);
        }
        // Find `=` at depth 0 to inspect the initializer head.
        let mut depth = 0i32;
        let mut k = j + 1;
        while k < ctx.code.len() {
            match ctx.punct(k) {
                Some('(') | Some('[') | Some('{') => depth += 1,
                Some(')') | Some(']') | Some('}') => {
                    if depth == 0 {
                        break;
                    }
                    depth -= 1;
                }
                Some(';') if depth == 0 => break,
                Some('=')
                    if depth == 0
                        && ctx.punct(k + 1) != Some('=')
                        && head_path_is_hash(ctx, k + 1) =>
                {
                    mentions_hash = true;
                }
                _ => {}
            }
            k += 1;
        }
        out.push(LetBinding {
            name: name.to_string(),
            stmt_end: k,
            is_hash: mentions_hash,
        });
        ci = k.max(ci + 1);
    }
    out
}

/// Does the path starting at code index `from` (after skipping `&`,
/// `mut`, and lifetime-free qualifiers) have `HashMap`/`HashSet` as a
/// segment of its head path — before any `<` generic opens or a call
/// begins? `HashMap<..>` and `std::collections::HashMap::with_capacity`
/// qualify; `Vec<HashSet<..>>` and `foo(HashMap::new())` do not.
fn head_path_is_hash(ctx: &FileCtx<'_>, from: usize) -> bool {
    let mut j = from;
    while ctx.punct(j) == Some('&') || ctx.ident(j) == Some("mut") {
        j += 1;
    }
    loop {
        match ctx.ident(j) {
            Some("HashMap") | Some("HashSet") => return true,
            // Continue only through `::` path separators.
            Some(_) if ctx.punct(j + 1) == Some(':') && ctx.punct(j + 2) == Some(':') => {
                j += 3;
            }
            Some(_) => return false,
            None => return false,
        }
    }
}

/// Find the first code token at delimiter depth 0 (relative to `from`)
/// satisfying `pred`, stopping at statement/block boundaries.
fn find_at_depth(
    ctx: &FileCtx<'_>,
    from: usize,
    pred: impl Fn(&FileCtx<'_>, usize) -> bool,
) -> Option<usize> {
    let mut depth = 0i32;
    let mut j = from;
    while j < ctx.code.len() {
        if depth == 0 && pred(ctx, j) {
            return Some(j);
        }
        match ctx.punct(j) {
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                if depth == 0 {
                    return None;
                }
                depth -= 1;
            }
            Some(';') if depth == 0 => return None,
            _ => {}
        }
        j += 1;
    }
    None
}

/// Index of the `}` matching the `{` at code index `open`.
fn matching_close(ctx: &FileCtx<'_>, open: usize) -> Option<usize> {
    let mut depth = 0i32;
    for j in open..ctx.code.len() {
        match ctx.punct(j) {
            Some('{') => depth += 1,
            Some('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

/// For a hash-iteration chain starting at code index `ci`, decide
/// whether it collects into ordered output with no later sort.
fn collect_without_sort(ctx: &FileCtx<'_>, ci: usize) -> bool {
    // Statement start: walk back to the previous `;`, `{`, or `}`.
    let mut start = ci;
    while start > 0 {
        match ctx.punct(start - 1) {
            Some(';') | Some('{') | Some('}') => break,
            _ => start -= 1,
        }
    }
    // Statement end: forward to `;` at depth 0 (or block open/close —
    // a depth-0 `{` means this chain is a loop/if header, not a
    // collect expression).
    let mut depth = 0i32;
    let mut end = ci;
    while end < ctx.code.len() {
        match ctx.punct(end) {
            Some('{') if depth == 0 => break,
            Some('(') | Some('[') | Some('{') => depth += 1,
            Some(')') | Some(']') | Some('}') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            Some(';') if depth == 0 => break,
            _ => {}
        }
        end += 1;
    }
    // Does the chain collect at all?
    let Some(collect_ci) = (ci..end).find(|&j| ctx.ident(j) == Some("collect")) else {
        return false;
    };
    // Collecting back into an order-free container is fine; check the
    // turbofish and any `let` type annotation in this statement.
    let sink_ok = (collect_ci..end)
        .chain(start..ci)
        .filter_map(|j| ctx.ident(j))
        .any(|n| ORDER_FREE_SINKS.contains(&n));
    if sink_ok {
        return false;
    }
    // `let name = ...` — a later `name.sort*(..)` anywhere downstream
    // counts as the required sort.
    if ctx.ident(start) == Some("let") {
        let mut j = start + 1;
        if ctx.ident(j) == Some("mut") {
            j += 1;
        }
        if let Some(bound) = ctx.ident(j) {
            let sorted_later = (end..ctx.code.len().saturating_sub(2)).any(|k| {
                ctx.ident(k) == Some(bound)
                    && ctx.punct(k + 1) == Some('.')
                    && ctx.ident(k + 2).is_some_and(|m| m.starts_with("sort"))
            });
            if sorted_later {
                return false;
            }
        }
    }
    true
}

/// TD006 — every `pub fn` in a crate root (`src/lib.rs`) carries a doc
/// comment. `pub(crate)`/`pub(super)` functions are not public API and
/// are exempt.
fn td006_pub_fn_docs(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    for ci in 0..ctx.code.len() {
        if ctx.in_test(ci) || ctx.ident(ci) != Some("fn") {
            continue;
        }
        // Walk back over fn qualifiers to find `pub`.
        let mut j = ci;
        while j > 0
            && matches!(
                ctx.ident(j - 1),
                Some("async") | Some("unsafe") | Some("const") | Some("extern")
            )
        {
            j -= 1;
        }
        if j == 0 || ctx.ident(j - 1) != Some("pub") {
            // `pub(crate) fn` ends with `)` before the qualifiers; exempt.
            continue;
        }
        let pub_ci = j - 1;
        if has_doc_before(ctx, pub_ci) {
            continue;
        }
        let name = ctx.ident(ci + 1).unwrap_or("?");
        out.extend(ctx.diag(
            Code::Td006,
            pub_ci,
            format!("undocumented `pub fn {name}` in crate root; add a `///` doc comment"),
        ));
    }
}

/// Is the item whose first code token is `pub_ci` preceded by a doc
/// comment (skipping attributes such as `#[must_use]`)?
fn has_doc_before(ctx: &FileCtx<'_>, pub_ci: usize) -> bool {
    let Some(&pub_ti) = ctx.code.get(pub_ci) else {
        return false;
    };
    let mut ti = pub_ti;
    loop {
        if ti == 0 {
            return false;
        }
        ti -= 1;
        let t = &ctx.toks[ti];
        if t.is_doc_comment() {
            return true;
        }
        if t.is_comment() {
            continue;
        }
        match t.kind {
            // Attribute group: skip back over `#[...]`.
            TokenKind::Punct if t.text(ctx.src) == "]" => {
                let mut depth = 0i32;
                loop {
                    let u = &ctx.toks[ti];
                    if u.kind == TokenKind::Punct {
                        match u.text(ctx.src) {
                            "]" => depth += 1,
                            "[" => {
                                depth -= 1;
                                if depth == 0 {
                                    break;
                                }
                            }
                            _ => {}
                        }
                    }
                    if ti == 0 {
                        return false;
                    }
                    ti -= 1;
                }
                // `ti` now sits on `[`; the `#` (and maybe `!`) precede.
                if ti > 0 && ctx.toks[ti - 1].text(ctx.src) == "#" {
                    ti -= 1;
                }
            }
            _ => return false,
        }
    }
}
