//! Fixture coverage for the flat-postings interner and batched-execution
//! idioms introduced by the batch refactor: the lint rules must both
//! catch the failure modes batching invites (request-path interner
//! growth, unsorted per-query drains, swallowed per-job delivery
//! Results, layering inversions) and stay quiet on the disciplined
//! versions the workspace actually ships.

use std::path::Path;
use td_lint::{scan_set, scan_str, Code, SourceSet};

/// Where the real batch fan-out lives — a plain library module.
const BATCH: &str = "crates/core/src/batch.rs";
/// A serve-crate module: TD010's long-lived-state scope applies.
const SERVE: &str = "crates/serve/src/interner.rs";
/// The real interner's home — *outside* TD010's long-lived scope.
const INTERN: &str = "crates/index/src/intern.rs";

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// `(unwaived, waived)` counts of `code` when `src` is scanned as
/// `rel_path` (single-file rules).
fn counts(code: Code, rel_path: &str, src: &str) -> (usize, usize) {
    let diags = scan_str(rel_path, src);
    let unwaived = diags
        .iter()
        .filter(|d| d.code == code && !d.is_waived())
        .count();
    let waived = diags
        .iter()
        .filter(|d| d.code == code && d.is_waived())
        .count();
    (unwaived, waived)
}

/// `(unwaived, waived)` counts over an in-memory source set (cross-file
/// rules TD007–TD012).
fn graph_counts(code: Code, files: &[(&str, &str)], manifests: &[(&str, &str)]) -> (usize, usize) {
    let set = SourceSet {
        files: files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect(),
        manifests: manifests
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect(),
    };
    let report = scan_set(&set, &|| 0);
    let unwaived = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code && !d.is_waived())
        .count();
    let waived = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code && d.is_waived())
        .count();
    (unwaived, waived)
}

// --- TD010: interner growth must be bounded by lake size -------------

#[test]
fn td010_fires_on_request_path_interner_growth() {
    // An interner living in the serve crate that interns query terms on
    // the request path: one finding per growth site (push + insert).
    let src = fixture("td010_interner_fire.rs");
    let files = [(SERVE, src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &files, &[]), (2, 0));
}

#[test]
fn td010_spares_the_sealed_interner_discipline() {
    // Growth gated on the lake-derived capacity, lookups on the request
    // path: bounded by lake size, not request volume — no finding even
    // inside the long-lived serve scope.
    let src = fixture("td010_interner_no_fire.rs");
    let files = [(SERVE, src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &files, &[]), (0, 0));
}

#[test]
fn td010_interner_in_index_is_build_time_state() {
    // The real interner lives in td-index, which is built once per lake
    // and swapped whole — outside TD010's long-lived serve/obs scope, so
    // even the unbounded pattern is not server-held growth there.
    let src = fixture("td010_interner_fire.rs");
    let files = [(INTERN, src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &files, &[]), (0, 0));
}

// --- TD005: batched merges must sort their drains --------------------

#[test]
fn td005_fires_on_unsorted_batch_merge() {
    assert_eq!(
        counts(Code::Td005, BATCH, &fixture("td005_batch_fire.rs")),
        (1, 0)
    );
}

#[test]
fn td005_spares_the_sorted_batch_merge() {
    assert_eq!(
        counts(Code::Td005, BATCH, &fixture("td005_batch_no_fire.rs")),
        (0, 0)
    );
}

// --- TD001: the batch module classifies as library code --------------

#[test]
fn td001_batch_chunking_is_unwrap_free() {
    assert_eq!(
        counts(Code::Td001, BATCH, &fixture("td001_batch_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td001_still_fires_in_the_batch_module() {
    // The new module path classifies as lib code, not a bin or test:
    // the generic unwrap/expect/panic fixture fires there exactly as it
    // does in any other library file.
    assert_eq!(
        counts(Code::Td001, BATCH, &fixture("td001_fire.rs")),
        (3, 0)
    );
}

// --- TD011: per-job delivery must not swallow write Results ----------

#[test]
fn td011_fires_on_swallowed_batch_delivery() {
    let src = fixture("td011_batch_fire.rs");
    let files = [(BATCH, src.as_str())];
    assert_eq!(graph_counts(Code::Td011, &files, &[]), (1, 0));
}

#[test]
fn td011_batch_delivery_waiver_needs_the_counting_argument() {
    let src = fixture("td011_batch_waived.rs");
    let files = [(BATCH, src.as_str())];
    assert_eq!(graph_counts(Code::Td011, &files, &[]), (0, 1));
}

// --- TD012: the flat-postings refactor must not invert layering ------

#[test]
fn td012_fires_when_index_reaches_up_into_core() {
    // The batch entry points thread core → index, never the reverse.
    let src = fixture("td012_index_fire.toml");
    let manifests = [("crates/index/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (1, 0));
}

#[test]
fn td012_spares_the_index_layer_dep_set() {
    let src = fixture("td012_index_no_fire.toml");
    let manifests = [("crates/index/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (0, 0));
}
