//! Fixture-driven fire / no-fire / waiver coverage for every lint code,
//! plus the workspace self-check: td-lint must run clean on this repo.
//!
//! Fixture sources live under `tests/fixtures/` (excluded from both the
//! cargo build and the workspace scan) and are lexed through the public
//! [`td_lint::scan_str`] entry point under synthetic workspace paths, so
//! each case also exercises path classification.

use std::path::Path;
use td_lint::{scan_set, scan_str, scan_workspace, Code, SourceSet};

/// A library file that is not the crate root.
const LIB: &str = "crates/demo/src/util.rs";
/// The crate root (TD006 and the TD003 forbid-attr check apply).
const ROOT: &str = "crates/demo/src/lib.rs";
/// A binary target (printing and panicking allowed).
const BIN: &str = "crates/demo/src/bin/tool.rs";

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// `(unwaived, waived)` counts of `code` when `src` is scanned as
/// `rel_path`.
fn counts(code: Code, rel_path: &str, src: &str) -> (usize, usize) {
    let diags = scan_str(rel_path, src);
    let unwaived = diags
        .iter()
        .filter(|d| d.code == code && !d.is_waived())
        .count();
    let waived = diags
        .iter()
        .filter(|d| d.code == code && d.is_waived())
        .count();
    (unwaived, waived)
}

#[test]
fn td001_fires_on_unwrap_expect_panic() {
    assert_eq!(counts(Code::Td001, LIB, &fixture("td001_fire.rs")), (3, 0));
}

#[test]
fn td001_spares_typed_errors_and_tests() {
    assert_eq!(
        counts(Code::Td001, LIB, &fixture("td001_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td001_spares_binaries() {
    assert_eq!(counts(Code::Td001, BIN, &fixture("td001_fire.rs")), (0, 0));
}

#[test]
fn td001_waiver_needs_a_reason() {
    // One justified waiver; the reason-less one does not suppress.
    assert_eq!(
        counts(Code::Td001, LIB, &fixture("td001_waived.rs")),
        (1, 1)
    );
}

#[test]
fn td002_fires_on_raw_clock_reads() {
    assert_eq!(counts(Code::Td002, LIB, &fixture("td002_fire.rs")), (2, 0));
}

#[test]
fn td002_spares_type_mentions_and_tests() {
    assert_eq!(
        counts(Code::Td002, LIB, &fixture("td002_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td002_spares_the_obs_crate() {
    let src = fixture("td002_fire.rs");
    assert_eq!(counts(Code::Td002, "crates/obs/src/timer.rs", &src), (0, 0));
}

#[test]
fn td002_waiver() {
    assert_eq!(
        counts(Code::Td002, LIB, &fixture("td002_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td003_fires_on_unsafe_and_missing_forbid() {
    // The unsafe block plus the crate-root missing-attribute check.
    assert_eq!(counts(Code::Td003, ROOT, &fixture("td003_fire.rs")), (2, 0));
    // As a non-root file only the unsafe block fires.
    assert_eq!(counts(Code::Td003, LIB, &fixture("td003_fire.rs")), (1, 0));
}

#[test]
fn td003_applies_even_to_tests() {
    let rel = "crates/demo/tests/acceptance.rs";
    assert_eq!(
        counts(Code::Td003, rel, &fixture("td003_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td003_spares_clean_roots() {
    assert_eq!(
        counts(Code::Td003, ROOT, &fixture("td003_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td003_waiver() {
    assert_eq!(
        counts(Code::Td003, LIB, &fixture("td003_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td004_fires_on_prints_in_library_code() {
    assert_eq!(counts(Code::Td004, LIB, &fixture("td004_fire.rs")), (3, 0));
}

#[test]
fn td004_spares_binaries_and_tests() {
    assert_eq!(counts(Code::Td004, BIN, &fixture("td004_fire.rs")), (0, 0));
    assert_eq!(
        counts(Code::Td004, LIB, &fixture("td004_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td004_waiver() {
    assert_eq!(
        counts(Code::Td004, LIB, &fixture("td004_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td005_fires_on_unsorted_hash_drain() {
    assert_eq!(counts(Code::Td005, LIB, &fixture("td005_fire.rs")), (1, 0));
}

#[test]
fn td005_spares_sorted_drains_and_order_free_sinks() {
    assert_eq!(
        counts(Code::Td005, LIB, &fixture("td005_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td005_waiver() {
    assert_eq!(
        counts(Code::Td005, LIB, &fixture("td005_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td006_fires_on_undocumented_root_pub_fn() {
    assert_eq!(counts(Code::Td006, ROOT, &fixture("td006_fire.rs")), (1, 0));
    // Outside the crate root the rule does not apply.
    assert_eq!(counts(Code::Td006, LIB, &fixture("td006_fire.rs")), (0, 0));
}

#[test]
fn td006_spares_documented_and_non_public() {
    assert_eq!(
        counts(Code::Td006, ROOT, &fixture("td006_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td006_waiver() {
    assert_eq!(
        counts(Code::Td006, ROOT, &fixture("td006_waived.rs")),
        (0, 1)
    );
}

/// `(unwaived, waived)` counts of `code` over an in-memory source set —
/// the entry point for the cross-file rules TD007–TD012.
fn graph_counts(code: Code, files: &[(&str, &str)], manifests: &[(&str, &str)]) -> (usize, usize) {
    let set = SourceSet {
        files: files
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect(),
        manifests: manifests
            .iter()
            .map(|(p, s)| ((*p).to_string(), (*s).to_string()))
            .collect(),
    };
    let report = scan_set(&set, &|| 0);
    let unwaived = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code && !d.is_waived())
        .count();
    let waived = report
        .diagnostics
        .iter()
        .filter(|d| d.code == code && d.is_waived())
        .count();
    (unwaived, waived)
}

#[test]
fn td007_detects_cross_crate_lock_cycle() {
    // The two halves live in different crates; each one alone is
    // cycle-free, so only the assembled symbol graph can see it.
    let a = fixture("td007_fire_a.rs");
    let b = fixture("td007_fire_b.rs");
    let files = [
        ("crates/alpha/src/lib.rs", a.as_str()),
        ("crates/beta/src/lib.rs", b.as_str()),
    ];
    let (unwaived, _) = graph_counts(Code::Td007, &files, &[]);
    assert_eq!(unwaived, 2, "one finding per edge of the m1 <-> m2 cycle");

    // Either half on its own has no cycle.
    let (alone, _) = graph_counts(Code::Td007, &files[..1], &[]);
    assert_eq!(alone, 0);
}

#[test]
fn td007_spares_consistent_lock_order() {
    let src = fixture("td007_no_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td007, &files, &[]), (0, 0));
}

#[test]
fn td007_waiver() {
    let src = fixture("td007_waived.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td007, &files, &[]), (0, 1));
}

#[test]
fn td008_fires_on_blocking_under_guard() {
    let src = fixture("td008_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td008, &files, &[]), (1, 0));
}

#[test]
fn td008_spares_scoped_guards_and_condvar_wait() {
    let src = fixture("td008_no_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td008, &files, &[]), (0, 0));
}

#[test]
fn td008_waiver() {
    let src = fixture("td008_waived.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td008, &files, &[]), (0, 1));
}

#[test]
fn td009_fires_on_relaxed_cas_and_broken_publish_pair() {
    let src = fixture("td009_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    // One Relaxed-success CAS + one Relaxed load of a Release-stored flag.
    assert_eq!(graph_counts(Code::Td009, &files, &[]), (2, 0));
}

#[test]
fn td009_spares_pure_counters_and_proper_pairs() {
    let src = fixture("td009_no_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td009, &files, &[]), (0, 0));
}

#[test]
fn td009_waiver() {
    let src = fixture("td009_waived.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td009, &files, &[]), (0, 1));
}

#[test]
fn td010_fires_on_unbounded_growth_in_serve() {
    let src = fixture("td010_fire.rs");
    let files = [("crates/serve/src/state.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &files, &[]), (1, 0));

    // The same code outside the long-lived crates is not long-lived
    // state; the rule scopes itself to serve/obs.
    let elsewhere = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &elsewhere, &[]), (0, 0));
}

#[test]
fn td010_spares_bounded_growth_and_locals() {
    let src = fixture("td010_no_fire.rs");
    let files = [("crates/serve/src/state.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &files, &[]), (0, 0));
}

#[test]
fn td010_waiver() {
    let src = fixture("td010_waived.rs");
    let files = [("crates/obs/src/state.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td010, &files, &[]), (0, 1));
}

#[test]
fn td011_fires_on_swallowed_result_and_must_use() {
    let src = fixture("td011_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td011, &files, &[]), (2, 0));
}

#[test]
fn td011_spares_fmt_writes_and_plain_values() {
    let src = fixture("td011_no_fire.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td011, &files, &[]), (0, 0));
}

#[test]
fn td011_waiver() {
    let src = fixture("td011_waived.rs");
    let files = [("crates/demo/src/util.rs", src.as_str())];
    assert_eq!(graph_counts(Code::Td011, &files, &[]), (0, 1));
}

#[test]
fn td012_fires_on_layering_violation() {
    let src = fixture("td012_fire.toml");
    let manifests = [("crates/core/Cargo.toml", src.as_str())];
    // td-table is allowed for core; td-serve is the violation.
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (1, 0));
}

#[test]
fn td012_spares_allowed_edges() {
    let src = fixture("td012_no_fire.toml");
    let manifests = [("crates/serve/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (0, 0));
}

#[test]
fn td012_fires_when_store_reaches_up_into_serve() {
    // The persistence layer sits below the serving layer: serve may
    // depend on store, never the reverse.
    let src = fixture("td012_store_fire.toml");
    let manifests = [("crates/store/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (1, 0));
}

#[test]
fn td012_spares_the_store_layer_dep_set() {
    let src = fixture("td012_store_no_fire.toml");
    let manifests = [("crates/store/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (0, 0));
}

#[test]
fn td012_fires_when_shard_reaches_up_into_serve() {
    // The shard merge algebra sits below the serving layer: serve's
    // coordinator calls into td-shard, never the reverse.
    let src = fixture("td012_shard_fire.toml");
    let manifests = [("crates/shard/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (1, 0));
}

#[test]
fn td012_spares_the_shard_layer_dep_set() {
    let src = fixture("td012_shard_no_fire.toml");
    let manifests = [("crates/shard/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (0, 0));
}

#[test]
fn td012_manifest_waiver() {
    let src = fixture("td012_waived.toml");
    let manifests = [("crates/obs/Cargo.toml", src.as_str())];
    assert_eq!(graph_counts(Code::Td012, &[], &manifests), (0, 1));
}

/// The gate itself: the workspace must be lint-clean. This is the same
/// check CI runs via `cargo run -p td-lint`.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let unwaived: Vec<String> = report.unwaived().map(|d| d.render_text()).collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived diagnostics:\n{}",
        unwaived.join("\n")
    );
    // The symbol graph actually assembled: a refactor that silently
    // stopped feeding files into the cross-file pass would zero these.
    assert!(
        report.stats.items > 100,
        "suspiciously few graph items: {}",
        report.stats.items
    );
    assert!(
        report.stats.lock_sites > 10,
        "suspiciously few lock sites: {}",
        report.stats.lock_sites
    );
    assert!(
        report.stats.resolved_edges > 100,
        "suspiciously few resolved call edges: {}",
        report.stats.resolved_edges
    );
}
