//! Fixture-driven fire / no-fire / waiver coverage for every lint code,
//! plus the workspace self-check: td-lint must run clean on this repo.
//!
//! Fixture sources live under `tests/fixtures/` (excluded from both the
//! cargo build and the workspace scan) and are lexed through the public
//! [`td_lint::scan_str`] entry point under synthetic workspace paths, so
//! each case also exercises path classification.

use std::path::Path;
use td_lint::{scan_str, scan_workspace, Code};

/// A library file that is not the crate root.
const LIB: &str = "crates/demo/src/util.rs";
/// The crate root (TD006 and the TD003 forbid-attr check apply).
const ROOT: &str = "crates/demo/src/lib.rs";
/// A binary target (printing and panicking allowed).
const BIN: &str = "crates/demo/src/bin/tool.rs";

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// `(unwaived, waived)` counts of `code` when `src` is scanned as
/// `rel_path`.
fn counts(code: Code, rel_path: &str, src: &str) -> (usize, usize) {
    let diags = scan_str(rel_path, src);
    let unwaived = diags
        .iter()
        .filter(|d| d.code == code && !d.is_waived())
        .count();
    let waived = diags
        .iter()
        .filter(|d| d.code == code && d.is_waived())
        .count();
    (unwaived, waived)
}

#[test]
fn td001_fires_on_unwrap_expect_panic() {
    assert_eq!(counts(Code::Td001, LIB, &fixture("td001_fire.rs")), (3, 0));
}

#[test]
fn td001_spares_typed_errors_and_tests() {
    assert_eq!(
        counts(Code::Td001, LIB, &fixture("td001_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td001_spares_binaries() {
    assert_eq!(counts(Code::Td001, BIN, &fixture("td001_fire.rs")), (0, 0));
}

#[test]
fn td001_waiver_needs_a_reason() {
    // One justified waiver; the reason-less one does not suppress.
    assert_eq!(
        counts(Code::Td001, LIB, &fixture("td001_waived.rs")),
        (1, 1)
    );
}

#[test]
fn td002_fires_on_raw_clock_reads() {
    assert_eq!(counts(Code::Td002, LIB, &fixture("td002_fire.rs")), (2, 0));
}

#[test]
fn td002_spares_type_mentions_and_tests() {
    assert_eq!(
        counts(Code::Td002, LIB, &fixture("td002_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td002_spares_the_obs_crate() {
    let src = fixture("td002_fire.rs");
    assert_eq!(counts(Code::Td002, "crates/obs/src/timer.rs", &src), (0, 0));
}

#[test]
fn td002_waiver() {
    assert_eq!(
        counts(Code::Td002, LIB, &fixture("td002_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td003_fires_on_unsafe_and_missing_forbid() {
    // The unsafe block plus the crate-root missing-attribute check.
    assert_eq!(counts(Code::Td003, ROOT, &fixture("td003_fire.rs")), (2, 0));
    // As a non-root file only the unsafe block fires.
    assert_eq!(counts(Code::Td003, LIB, &fixture("td003_fire.rs")), (1, 0));
}

#[test]
fn td003_applies_even_to_tests() {
    let rel = "crates/demo/tests/acceptance.rs";
    assert_eq!(
        counts(Code::Td003, rel, &fixture("td003_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td003_spares_clean_roots() {
    assert_eq!(
        counts(Code::Td003, ROOT, &fixture("td003_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td003_waiver() {
    assert_eq!(
        counts(Code::Td003, LIB, &fixture("td003_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td004_fires_on_prints_in_library_code() {
    assert_eq!(counts(Code::Td004, LIB, &fixture("td004_fire.rs")), (3, 0));
}

#[test]
fn td004_spares_binaries_and_tests() {
    assert_eq!(counts(Code::Td004, BIN, &fixture("td004_fire.rs")), (0, 0));
    assert_eq!(
        counts(Code::Td004, LIB, &fixture("td004_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td004_waiver() {
    assert_eq!(
        counts(Code::Td004, LIB, &fixture("td004_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td005_fires_on_unsorted_hash_drain() {
    assert_eq!(counts(Code::Td005, LIB, &fixture("td005_fire.rs")), (1, 0));
}

#[test]
fn td005_spares_sorted_drains_and_order_free_sinks() {
    assert_eq!(
        counts(Code::Td005, LIB, &fixture("td005_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td005_waiver() {
    assert_eq!(
        counts(Code::Td005, LIB, &fixture("td005_waived.rs")),
        (0, 1)
    );
}

#[test]
fn td006_fires_on_undocumented_root_pub_fn() {
    assert_eq!(counts(Code::Td006, ROOT, &fixture("td006_fire.rs")), (1, 0));
    // Outside the crate root the rule does not apply.
    assert_eq!(counts(Code::Td006, LIB, &fixture("td006_fire.rs")), (0, 0));
}

#[test]
fn td006_spares_documented_and_non_public() {
    assert_eq!(
        counts(Code::Td006, ROOT, &fixture("td006_no_fire.rs")),
        (0, 0)
    );
}

#[test]
fn td006_waiver() {
    assert_eq!(
        counts(Code::Td006, ROOT, &fixture("td006_waived.rs")),
        (0, 1)
    );
}

/// The gate itself: the workspace must be lint-clean. This is the same
/// check CI runs via `cargo run -p td-lint`.
#[test]
fn workspace_self_check_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = scan_workspace(&root).expect("workspace scan");
    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
    let unwaived: Vec<String> = report.unwaived().map(|d| d.render_text()).collect();
    assert!(
        unwaived.is_empty(),
        "workspace has unwaived diagnostics:\n{}",
        unwaived.join("\n")
    );
}
