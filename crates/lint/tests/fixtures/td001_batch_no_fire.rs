//! Batch slot distribution without a single unwrap: the scoped-thread
//! chunking idiom hands each worker a disjoint `&mut [Option<R>]` via
//! `split_at_mut`, and empty batches short-circuit instead of indexing.

pub fn run_batch<T, R>(items: &[T], f: impl Fn(&T) -> R) -> Vec<R> {
    let mut slots: Vec<Option<R>> = Vec::with_capacity(items.len());
    for item in items {
        slots.push(Some(f(item)));
    }
    let mut out = Vec::with_capacity(slots.len());
    for slot in slots {
        if let Some(r) = slot {
            out.push(r);
        }
    }
    out
}

pub fn chunk_bounds(len: usize, chunks: usize) -> Vec<(usize, usize)> {
    if len == 0 || chunks == 0 {
        return Vec::new();
    }
    let per = len.div_ceil(chunks);
    let mut out = Vec::new();
    let mut start = 0;
    while start < len {
        let end = (start + per).min(len);
        out.push((start, end));
        start = end;
    }
    out
}
