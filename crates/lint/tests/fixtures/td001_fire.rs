//! TD001 fixture: three panicking constructs in library code.

pub fn parse(x: Option<u32>, y: Option<u32>) -> u32 {
    let v = x.unwrap();
    let w = y.expect("present");
    if v + w == u32::MAX {
        panic!("overflow");
    }
    v + w
}
