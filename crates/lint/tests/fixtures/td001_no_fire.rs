//! TD001 fixture: typed errors in library code; unwrap stays legal in
//! the test module.

pub fn parse(x: Option<u32>) -> Result<u32, String> {
    x.ok_or_else(|| "missing".to_string())
}

#[cfg(test)]
mod tests {
    #[test]
    fn unwrap_is_fine_in_tests() {
        assert_eq!(super::parse(Some(1)).unwrap(), 1);
    }
}
