//! TD001 fixture: a justified waiver on a provable invariant, and one
//! reason-less waiver that must NOT suppress the diagnostic.

pub fn kth(values: &[u64]) -> u64 {
    // td-lint: allow(TD001) caller fills `values` from a non-empty range
    *values.last().expect("non-empty by construction")
}

pub fn bad_waiver(x: Option<u32>) -> u32 {
    // td-lint: allow(TD001)
    x.unwrap()
}
