//! TD002 fixture: raw clock reads outside crates/obs.

pub fn stamp() -> (std::time::Instant, std::time::SystemTime) {
    let a = std::time::Instant::now();
    let b = std::time::SystemTime::now();
    (a, b)
}
