//! TD002 fixture: mentioning the types without calling `now()` is fine,
//! and tests may read the clock directly.

pub fn describe(t: std::time::Instant) -> String {
    format!("{t:?}")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_read_the_clock() {
        let _ = std::time::Instant::now();
    }
}
