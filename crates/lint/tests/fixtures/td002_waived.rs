//! TD002 fixture: a justified waiver for a wall-clock read that is not a
//! measurement.

pub fn wall_clock_seed() -> u64 {
    use std::time::{SystemTime, UNIX_EPOCH};
    // td-lint: allow(TD002) seed entropy, not a latency measurement
    SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or_default()
}
