//! TD003 fixture: an `unsafe` block in a crate root that also lacks
//! `#![forbid(unsafe_code)]` — two findings.

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
