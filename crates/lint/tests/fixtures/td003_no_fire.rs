//! TD003 fixture: a clean crate root with the compiler backstop.

#![forbid(unsafe_code)]

/// Nothing scary here.
pub fn safe() -> u8 {
    0
}
