//! TD003 fixture: a waived `unsafe` in a non-root library file.

pub fn reinterpret(x: u64) -> i64 {
    // td-lint: allow(TD003) bit-pattern cast audited in review
    unsafe { std::mem::transmute(x) }
}
