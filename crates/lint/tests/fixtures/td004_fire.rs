//! TD004 fixture: direct printing from library code. The same source
//! scanned under a `src/bin/` path must produce no findings.

pub fn report(n: usize) {
    println!("{n} tables");
    eprintln!("warning: {n}");
    let _ = dbg!(n);
}
