//! TD004 fixture: library code that returns text instead of printing,
//! and a test that prints.

pub fn render(n: usize) -> String {
    format!("{n} tables")
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("{}", super::render(3));
    }
}
