//! TD004 fixture: a justified waiver on a deliberate print.

pub fn banner() {
    // td-lint: allow(TD004) startup banner is this helper's whole job
    println!("td starting");
}
