//! A batched merge that drains each query's score map in hash order —
//! the batch path's rankings would drift from the sequential path run
//! to run, breaking the byte-identity contract.

use std::collections::HashMap;

pub fn merge_batch(batches: &[Vec<(u32, f64)>]) -> Vec<Vec<(u32, f64)>> {
    let mut out = Vec::new();
    for pairs in batches {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for &(k, v) in pairs {
            *scores.entry(k).or_insert(0.0) += v;
        }
        let ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        out.push(ranked);
    }
    out
}
