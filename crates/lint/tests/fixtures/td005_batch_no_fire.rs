//! The batched merge done right: every per-query drain is sorted with
//! the same total order the sequential path uses (score desc, id asc),
//! so batching a workload cannot reorder any ranking.

use std::collections::HashMap;

pub fn merge_batch(batches: &[Vec<(u32, f64)>]) -> Vec<Vec<(u32, f64)>> {
    let mut out = Vec::new();
    for pairs in batches {
        let mut scores: HashMap<u32, f64> = HashMap::new();
        for &(k, v) in pairs {
            *scores.entry(k).or_insert(0.0) += v;
        }
        let mut ranked: Vec<(u32, f64)> = scores.into_iter().collect();
        ranked.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out.push(ranked);
    }
    out
}
