//! TD005 fixture: hash-order iteration feeding the returned Vec with no
//! intervening sort — the ranking drifts run to run.

use std::collections::HashMap;

pub fn ranked(pairs: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut scores: HashMap<u32, f64> = HashMap::new();
    for &(k, v) in pairs {
        *scores.entry(k).or_insert(0.0) += v;
    }
    let out: Vec<(u32, f64)> = scores.into_iter().collect();
    out
}
