//! TD005 fixture: the same accumulation with a sorted drain — clean.

use std::collections::HashMap;

pub fn ranked(pairs: &[(u32, f64)]) -> Vec<(u32, f64)> {
    let mut scores: HashMap<u32, f64> = HashMap::new();
    for &(k, v) in pairs {
        *scores.entry(k).or_insert(0.0) += v;
    }
    let mut out: Vec<(u32, f64)> = scores.into_iter().collect();
    out.sort_unstable_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// Collecting into an order-free sink is also fine.
pub fn distinct(pairs: &[(u32, f64)]) -> std::collections::HashSet<u32> {
    let mut scores: HashMap<u32, f64> = HashMap::new();
    for &(k, v) in pairs {
        *scores.entry(k).or_insert(0.0) += v;
    }
    scores.keys().copied().collect::<std::collections::HashSet<u32>>()
}
