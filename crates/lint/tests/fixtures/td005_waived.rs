//! TD005 fixture: a waived hash-order drain (order genuinely ignored by
//! the one caller).

use std::collections::HashMap;

pub fn sample(counts: &HashMap<u32, u64>) -> Vec<u32> {
    let mut counts2: HashMap<u32, u64> = counts.clone();
    counts2.retain(|_, v| *v > 0);
    // td-lint: allow(TD005) diagnostic dump; the only caller sorts downstream
    let out: Vec<u32> = counts2.keys().copied().collect();
    out
}
