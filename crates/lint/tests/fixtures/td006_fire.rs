//! TD006 fixture: an undocumented `pub fn` in a crate root.

#![forbid(unsafe_code)]

pub fn mystery() -> u32 {
    42
}
