//! TD006 fixture: documented public API; `pub(crate)` and private items
//! are exempt.

#![forbid(unsafe_code)]

/// Answers the question.
#[must_use]
pub fn answer() -> u32 {
    42
}

pub(crate) fn helper() -> u32 {
    7
}

fn private() -> u32 {
    1
}
