//! TD006 fixture: a waived undocumented `pub fn`.

#![forbid(unsafe_code)]

// td-lint: allow(TD006) generated trampoline, documented at the macro site
pub fn trampoline() -> u32 {
    0
}
