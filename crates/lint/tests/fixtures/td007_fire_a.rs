//! Half of the cross-crate lock-order cycle: alpha locks `A.m1`, then
//! calls into beta while holding it.

pub struct A {
    m1: std::sync::Mutex<u32>,
}

impl A {
    pub fn alpha_then_beta(&self, b: &B) {
        let _g = self.m1.lock();
        grab_m2(b);
    }

    pub fn lock_m1_only(&self) {
        let _g = self.m1.lock();
    }
}

pub fn grab_m1(a: &A) {
    a.lock_m1_only();
}
