//! The other half: beta locks `B.m2`, then calls back into alpha while
//! holding it — completing the m1 -> m2 -> m1 cycle across crates.

pub struct B {
    m2: std::sync::Mutex<u32>,
}

impl B {
    pub fn beta_then_alpha(&self, a: &A) {
        let _g = self.m2.lock();
        grab_m1(a);
    }

    pub fn lock_m2_only(&self) {
        let _g = self.m2.lock();
    }
}

pub fn grab_m2(b: &B) {
    b.lock_m2_only();
}
