//! Two locks always taken in the same order: an acquisition graph with
//! an a -> b edge only, hence no cycle.

pub struct S {
    a: std::sync::Mutex<u32>,
    b: std::sync::Mutex<u32>,
}

impl S {
    pub fn both(&self) {
        let _x = self.a.lock();
        let _y = self.b.lock();
    }

    pub fn also_both(&self) {
        let _x = self.a.lock();
        let _y = self.b.lock();
    }
}
