//! A deliberate same-lock re-acquisition, waived with a justification.

pub struct S {
    m: std::sync::Mutex<u32>,
}

impl S {
    pub fn relocks(&self) {
        let _g = self.m.lock();
        // td-lint: allow(TD007) fixture: documents the reentrancy hazard on purpose
        let _h = self.m.lock();
    }
}
