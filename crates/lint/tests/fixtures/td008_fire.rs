//! Sleeping while a mutex guard is live: every other thread contending
//! for the lock waits out the nap too.

pub struct S {
    m: std::sync::Mutex<u32>,
}

impl S {
    pub fn sleeps_under_guard(&self) {
        let _g = self.m.lock();
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
