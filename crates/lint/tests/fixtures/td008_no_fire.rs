//! Blocking is fine once the guard is gone, and `Condvar::wait(guard)`
//! atomically releases the guard it consumes.

pub struct Q {
    m: std::sync::Mutex<u32>,
    cv: std::sync::Condvar,
}

impl Q {
    pub fn naps_after_guard(&self) {
        {
            let _g = self.m.lock();
        }
        std::thread::sleep(std::time::Duration::from_millis(1));
    }

    pub fn waits(&self) {
        let mut g = self.m.lock().unwrap();
        g = self.cv.wait(g).unwrap();
        let _ = g;
    }
}
