//! A justified blocking call under a guard.

pub struct S {
    m: std::sync::Mutex<u32>,
}

impl S {
    pub fn sleeps(&self) {
        let _g = self.m.lock();
        // td-lint: allow(TD008) fixture: the pause is part of the critical section by design
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
