//! A Relaxed-success CAS plus a Release-store / Relaxed-load pair: both
//! lose the happens-before edge they look like they provide.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct S {
    seq: AtomicU64,
    ready: AtomicBool,
}

impl S {
    pub fn cas_relaxed(&self) {
        let _ = self
            .seq
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    }

    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn consume(&self) -> bool {
        self.ready.load(Ordering::Relaxed)
    }
}
