//! Relaxed is correct for a pure counter, and the flag pairs Release
//! with Acquire.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

pub struct S {
    hits: AtomicU64,
    ready: AtomicBool,
}

impl S {
    pub fn count(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }

    pub fn total(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn publish(&self) {
        self.ready.store(true, Ordering::Release);
    }

    pub fn consume(&self) -> bool {
        self.ready.load(Ordering::Acquire)
    }
}
