//! A Relaxed CAS with the pure-value justification spelled out.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct S {
    bits: AtomicU64,
}

impl S {
    pub fn cas(&self) {
        let _ = self
            .bits
            // td-lint: allow(TD009) fixture: the u64 bits are the entire payload, nothing else is published
            .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed);
    }
}
