//! Unbounded growth of server-held state: every call appends, nothing
//! ever evicts.

pub struct S {
    log: Vec<u64>,
}

impl S {
    pub fn remember(&mut self, v: u64) {
        self.log.push(v);
    }
}
