//! An interner that grows on the request path: every unseen query term
//! is interned into server-held state with no visible bound, so memory
//! scales with request volume instead of lake size.

use std::collections::HashMap;

pub struct QueryInterner {
    index: HashMap<String, u32>,
    symbols: Vec<String>,
}

impl QueryInterner {
    pub fn intern(&mut self, term: &str) -> u32 {
        if let Some(&sym) = self.index.get(term) {
            return sym;
        }
        let sym = self.symbols.len() as u32;
        self.symbols.push(term.to_string());
        self.index.insert(term.to_string(), sym);
        sym
    }
}
