//! The flat-postings interner discipline: the symbol table grows only
//! during build, bounded by the lake's vocabulary (the explicit
//! capacity), and the request path only *looks up* — an unseen query
//! term resolves to None instead of growing server-held state.

use std::collections::HashMap;

pub struct SealedInterner {
    index: HashMap<String, u32>,
    symbols: Vec<String>,
    capacity: usize,
}

impl SealedInterner {
    /// Build-path insert: refuses past the lake-derived capacity.
    pub fn intern_for_build(&mut self, term: &str) -> Option<u32> {
        if let Some(&sym) = self.index.get(term) {
            return Some(sym);
        }
        if self.symbols.len() >= self.capacity {
            return None;
        }
        let sym = self.symbols.len() as u32;
        self.symbols.push(term.to_string());
        self.index.insert(term.to_string(), sym);
        Some(sym)
    }

    /// Request-path lookup: never grows.
    pub fn resolve(&self, term: &str) -> Option<u32> {
        self.index.get(term).copied()
    }
}
