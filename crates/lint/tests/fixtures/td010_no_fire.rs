//! Growth with a visible bound (truncate), and growth of a local that
//! never outlives the call.

pub struct S {
    recent: Vec<u64>,
    limit: usize,
}

impl S {
    pub fn remember(&mut self, v: u64) {
        self.recent.push(v);
        self.recent.truncate(self.limit);
    }

    pub fn local_only(&self) -> Vec<u64> {
        let mut out = Vec::new();
        out.push(1);
        out
    }
}
