//! Growth whose bound lives elsewhere, documented by a waiver.

pub struct S {
    log: Vec<u64>,
}

impl S {
    pub fn remember(&mut self, v: u64) {
        // td-lint: allow(TD010) fixture: the caller drains this vec every tick
        self.log.push(v);
    }
}
