//! Batched delivery that swallows the per-job write Result: one slow
//! client's dead socket disappears silently instead of being counted.

fn respond(frame: &[u8]) -> Result<(), std::io::Error> {
    let _ = frame;
    Ok(())
}

pub fn deliver_batch(frames: &[Vec<u8>]) {
    for frame in frames {
        let _ = respond(frame);
    }
}
