//! The same batched delivery with the justified waiver the serve layer
//! uses: the error is already counted by the caller's write_errors
//! counter, so the Result here is intentionally dropped.

fn respond(frame: &[u8]) -> Result<(), std::io::Error> {
    let _ = frame;
    Ok(())
}

pub fn deliver_batch(frames: &[Vec<u8>]) {
    for frame in frames {
        // td-lint: allow(TD011) fixture: write errors are counted by the caller before delivery returns
        let _ = respond(frame);
    }
}
