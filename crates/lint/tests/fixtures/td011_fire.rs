//! A swallowed Result and a discarded #[must_use] return.

fn fallible() -> Result<(), std::io::Error> {
    Ok(())
}

#[must_use]
pub fn important() -> u32 {
    7
}

pub fn f() {
    let _ = fallible();
    important();
}
