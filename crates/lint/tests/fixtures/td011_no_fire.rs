//! Infallible fmt writes are exempt; discarding a plain value that
//! involved no call is not a swallowed Result.

pub fn render(s: &mut String) {
    use std::fmt::Write;
    let _ = write!(s, "x");
    let n = compute();
    let _ = n;
}

fn compute() -> u32 {
    1
}
