//! A justified discard.

fn best_effort() -> Result<(), std::io::Error> {
    Ok(())
}

pub fn f() {
    // td-lint: allow(TD011) fixture: failure here is expected and uninteresting
    let _ = best_effort();
}
