//! Homograph detection via graph centrality (DomainNet; Leventidis et
//! al., EDBT 2021; tutorial §3).
//!
//! A data lake can be modeled as a bipartite graph between values and the
//! columns containing them. A *homograph* — one spelling denoting two
//! different concepts ("Jaguar" the animal and the car) — bridges
//! otherwise-disconnected column communities, which makes its
//! **betweenness centrality** anomalously high relative to unambiguous
//! values of similar frequency. We build the bipartite graph and rank
//! values by Brandes betweenness (with source sampling for scale).

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};
use td_table::DataLake;

/// A value node's centrality score.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ValueCentrality {
    /// The value (lower-cased join token).
    pub value: String,
    /// Approximate betweenness centrality.
    pub betweenness: f64,
    /// Number of columns containing the value.
    pub degree: usize,
}

/// Parameters for [`rank_homographs`].
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct HomographConfig {
    /// Number of BFS sources sampled for Brandes (0 = all nodes).
    pub sample_sources: usize,
    /// Ignore values occurring in fewer columns than this (degree-1 values
    /// can never bridge anything).
    pub min_degree: usize,
    /// Seed for source sampling.
    pub seed: u64,
}

impl Default for HomographConfig {
    fn default() -> Self {
        HomographConfig {
            sample_sources: 64,
            min_degree: 2,
            seed: 3,
        }
    }
}

/// Bipartite value–column graph in CSR-ish form.
struct BipartiteGraph {
    /// Node 0..nv are values; nv..nv+nc are columns.
    nv: usize,
    adj: Vec<Vec<u32>>,
    values: Vec<String>,
}

fn build_graph(lake: &DataLake) -> BipartiteGraph {
    let mut value_ids: HashMap<String, u32> = HashMap::new();
    let mut values: Vec<String> = Vec::new();
    let mut col_members: Vec<Vec<u32>> = Vec::new();
    for (_, col) in lake.columns() {
        if col.is_numeric() {
            continue;
        }
        let mut members = Vec::new();
        for t in col.token_set() {
            let next = values.len() as u32;
            let id = *value_ids.entry(t.clone()).or_insert_with(|| {
                values.push(t);
                next
            });
            members.push(id);
        }
        if !members.is_empty() {
            col_members.push(members);
        }
    }
    let nv = values.len();
    let n = nv + col_members.len();
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); n];
    for (c, members) in col_members.iter().enumerate() {
        let cnode = (nv + c) as u32;
        for &v in members {
            adj[v as usize].push(cnode);
            adj[cnode as usize].push(v);
        }
    }
    BipartiteGraph { nv, adj, values }
}

/// Rank values by approximate betweenness centrality, descending.
///
/// Homographs bridge column communities and surface at the top; the
/// experiment (E14) checks planted homographs against this ranking.
#[must_use]
pub fn rank_homographs(lake: &DataLake, cfg: &HomographConfig) -> Vec<ValueCentrality> {
    let g = build_graph(lake);
    let n = g.adj.len();
    if n == 0 {
        return Vec::new();
    }
    let mut bc = vec![0.0f64; n];
    // Brandes' algorithm from sampled sources.
    let sources: Vec<usize> = if cfg.sample_sources == 0 || cfg.sample_sources >= n {
        (0..n).collect()
    } else {
        (0..cfg.sample_sources)
            .map(|i| (td_sketch::hash::hash_u64(i as u64, cfg.seed) % n as u64) as usize)
            .collect()
    };
    let mut sigma = vec![0.0f64; n];
    let mut dist = vec![-1i32; n];
    let mut delta = vec![0.0f64; n];
    let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
    for &s in &sources {
        // Reset state.
        sigma.fill(0.0);
        dist.fill(-1);
        delta.fill(0.0);
        for p in &mut preds {
            p.clear();
        }
        sigma[s] = 1.0;
        dist[s] = 0;
        let mut order: Vec<u32> = Vec::new();
        let mut queue = VecDeque::new();
        queue.push_back(s as u32);
        while let Some(v) = queue.pop_front() {
            order.push(v);
            for &w in &g.adj[v as usize] {
                if dist[w as usize] < 0 {
                    dist[w as usize] = dist[v as usize] + 1;
                    queue.push_back(w);
                }
                if dist[w as usize] == dist[v as usize] + 1 {
                    sigma[w as usize] += sigma[v as usize];
                    preds[w as usize].push(v);
                }
            }
        }
        for &w in order.iter().rev() {
            for &v in &preds[w as usize] {
                delta[v as usize] +=
                    sigma[v as usize] / sigma[w as usize] * (1.0 + delta[w as usize]);
            }
            if w as usize != s {
                bc[w as usize] += delta[w as usize];
            }
        }
    }
    let mut out: Vec<ValueCentrality> = (0..g.nv)
        .filter(|&v| g.adj[v].len() >= cfg.min_degree)
        .map(|v| ValueCentrality {
            value: g.values[v].clone(),
            betweenness: bc[v],
            degree: g.adj[v].len(),
        })
        .collect();
    out.sort_by(|a, b| {
        b.betweenness
            .total_cmp(&a.betweenness)
            .then(a.value.cmp(&b.value))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::domains::DomainRegistry;
    use td_table::{Column, Table};

    /// Lake with two worlds (cities, animals) sharing planted homograph
    /// spellings, several columns per world so communities are dense.
    fn lake_with_homographs(num_homographs: u64) -> (DataLake, Vec<String>) {
        let mut r = DomainRegistry::standard();
        let city = r.id("city").unwrap();
        let animal = r.id("animal").unwrap();
        r.add_homograph_pair(city, animal, num_homographs);
        let mut lake = DataLake::new();
        for w in 0..4u64 {
            // City columns: indices [w*20, w*20+40) — includes homograph
            // range [0, num_homographs) for small w.
            let col = Column::new(
                "city",
                (w * 20..w * 20 + 40).map(|i| r.value(city, i)).collect(),
            );
            lake.add(Table::new(format!("city_{w}"), vec![col]).unwrap());
            let col = Column::new(
                "animal",
                (w * 20..w * 20 + 40).map(|i| r.value(animal, i)).collect(),
            );
            lake.add(Table::new(format!("animal_{w}"), vec![col]).unwrap());
        }
        let homographs: Vec<String> = (0..num_homographs)
            .map(|i| r.value(city, i).to_string().to_lowercase())
            .collect();
        (lake, homographs)
    }

    #[test]
    fn homographs_rank_above_ordinary_values() {
        let (lake, homographs) = lake_with_homographs(5);
        let ranked = rank_homographs(
            &lake,
            &HomographConfig {
                sample_sources: 0,
                ..Default::default()
            },
        );
        assert!(!ranked.is_empty());
        let topk: Vec<&str> = ranked.iter().take(8).map(|v| v.value.as_str()).collect();
        let found = homographs
            .iter()
            .filter(|h| topk.contains(&h.as_str()))
            .count();
        assert!(found >= 4, "only {found}/5 homographs in top 8: {topk:?}");
    }

    #[test]
    fn sampling_approximates_full_brandes() {
        let (lake, homographs) = lake_with_homographs(5);
        let sampled = rank_homographs(
            &lake,
            &HomographConfig {
                sample_sources: 40,
                ..Default::default()
            },
        );
        let top: Vec<&str> = sampled.iter().take(10).map(|v| v.value.as_str()).collect();
        let found = homographs
            .iter()
            .filter(|h| top.contains(&h.as_str()))
            .count();
        assert!(found >= 3, "sampled ranking lost the homographs: {top:?}");
    }

    #[test]
    fn no_homographs_no_sharp_outliers() {
        let (lake, _) = lake_with_homographs(0);
        let ranked = rank_homographs(
            &lake,
            &HomographConfig {
                sample_sources: 0,
                ..Default::default()
            },
        );
        if ranked.len() > 10 {
            // Without bridges, the top score should not dwarf the median.
            let top = ranked[0].betweenness;
            let median = ranked[ranked.len() / 2].betweenness;
            assert!(
                top < median * 50.0 + 1e-9,
                "unexpected outlier: top {top}, median {median}"
            );
        }
    }

    #[test]
    fn min_degree_filters_rare_values() {
        let (lake, _) = lake_with_homographs(3);
        let ranked = rank_homographs(
            &lake,
            &HomographConfig {
                min_degree: 3,
                sample_sources: 0,
                ..Default::default()
            },
        );
        for v in &ranked {
            assert!(v.degree >= 3);
        }
    }

    #[test]
    fn empty_lake() {
        let lake = DataLake::new();
        assert!(rank_homographs(&lake, &HomographConfig::default()).is_empty());
    }
}
