//! # td-nav — navigation support for data lakes
//!
//! The tutorial's §2.6 alternative to query-driven discovery: instead of a
//! ranked list, give the user structure to explore. [`linkage`] builds an
//! Aurum-style column linkage graph (content similarity + PK/FK
//! candidates); [`organize`] builds navigable hierarchies with a
//! probabilistic discovery model (Nargesian et al.); [`ronin`] groups
//! search results into labeled clusters online; and [`homograph`] ranks
//! ambiguous values by betweenness centrality on the value–column graph
//! (DomainNet, the §3 graph-mining direction).

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod homograph;
pub mod linkage;
pub mod organize;
pub mod ronin;

pub use homograph::{rank_homographs, HomographConfig, ValueCentrality};
pub use linkage::{Link, LinkKind, LinkageConfig, LinkageGraph};
pub use organize::{OrgNode, Organization, OrganizeConfig};
pub use ronin::{group_results, ResultGroup, RoninConfig};
