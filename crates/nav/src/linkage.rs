//! Enterprise linkage graphs (Aurum; Fernandez et al., ICDE 2018;
//! tutorial §2.6).
//!
//! Aurum models a lake as a graph whose nodes are columns and whose edges
//! assert relationships discovered from data: content similarity (high
//! Jaccard between value sets) and candidate primary-key/foreign-key links
//! (high containment into a key-like column). Discovery then becomes graph
//! traversal: neighbors, two-hop context, join paths between tables.

use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet, VecDeque};
use td_sketch::minhash::MinHasher;
use td_table::{ColumnRef, DataLake, LakeProfile, TableId};

/// Why two columns are linked.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum LinkKind {
    /// Value sets are similar (estimated Jaccard above threshold).
    ContentSimilarity {
        /// Estimated Jaccard.
        jaccard: f64,
    },
    /// Source column's values are contained in a key-like target column.
    PkFkCandidate {
        /// Estimated containment of source in target.
        containment: f64,
    },
}

/// A directed edge of the linkage graph.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    /// Source column.
    pub from: ColumnRef,
    /// Target column.
    pub to: ColumnRef,
    /// Relationship kind and strength.
    pub kind: LinkKind,
}

/// Construction thresholds.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct LinkageConfig {
    /// Jaccard threshold for content-similarity edges.
    pub jaccard_threshold: f64,
    /// Containment threshold for PK/FK candidate edges.
    pub containment_threshold: f64,
    /// MinHash functions per signature.
    pub minhash_k: usize,
}

impl Default for LinkageConfig {
    fn default() -> Self {
        LinkageConfig {
            jaccard_threshold: 0.5,
            containment_threshold: 0.8,
            minhash_k: 128,
        }
    }
}

/// The linkage graph over a lake's columns.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct LinkageGraph {
    edges: Vec<Link>,
    adjacency: HashMap<ColumnRef, Vec<usize>>,
}

impl LinkageGraph {
    /// Build the graph: signatures for every textual column, pairwise
    /// estimation (quadratic in columns — Aurum's profile stage; fine at
    /// our scale), edges above thresholds.
    #[must_use]
    pub fn build(lake: &DataLake, cfg: &LinkageConfig) -> Self {
        let profile = LakeProfile::of(lake);
        let hasher = MinHasher::new(cfg.minhash_k, 0x11_4B);
        let mut cols: Vec<ColumnRef> = Vec::new();
        let mut sigs = Vec::new();
        for (r, col) in lake.columns() {
            if col.is_numeric() {
                continue;
            }
            let tokens = col.token_set();
            if tokens.is_empty() {
                continue;
            }
            sigs.push(hasher.sign(tokens.iter().map(String::as_str)));
            cols.push(r);
        }
        let mut graph = LinkageGraph::default();
        for i in 0..cols.len() {
            for j in (i + 1)..cols.len() {
                if cols[i].table == cols[j].table {
                    continue; // intra-table links are schema, not discovery
                }
                let jac = sigs[i].jaccard(&sigs[j]);
                if jac >= cfg.jaccard_threshold {
                    graph.add_edge(Link {
                        from: cols[i],
                        to: cols[j],
                        kind: LinkKind::ContentSimilarity { jaccard: jac },
                    });
                    graph.add_edge(Link {
                        from: cols[j],
                        to: cols[i],
                        kind: LinkKind::ContentSimilarity { jaccard: jac },
                    });
                    continue;
                }
                // PK/FK: containment of one side into a key-like other.
                for (a, b) in [(i, j), (j, i)] {
                    let cont = sigs[a].containment_in(&sigs[b]);
                    let target_is_key = profile.get(cols[b]).is_some_and(|p| p.is_key_like());
                    if cont >= cfg.containment_threshold && target_is_key {
                        graph.add_edge(Link {
                            from: cols[a],
                            to: cols[b],
                            kind: LinkKind::PkFkCandidate { containment: cont },
                        });
                    }
                }
            }
        }
        graph
    }

    fn add_edge(&mut self, link: Link) {
        let idx = self.edges.len();
        self.adjacency.entry(link.from).or_default().push(idx);
        self.edges.push(link);
    }

    /// Total directed edges.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Outgoing links of a column.
    #[must_use]
    pub fn neighbors(&self, c: ColumnRef) -> Vec<&Link> {
        self.adjacency
            .get(&c)
            .map(|idxs| idxs.iter().map(|&i| &self.edges[i]).collect())
            .unwrap_or_default()
    }

    /// Tables reachable from a table within `hops` link steps (excluding
    /// itself) — Aurum's "related datasets" primitive.
    #[must_use]
    pub fn related_tables(&self, lake: &DataLake, start: TableId, hops: usize) -> Vec<TableId> {
        let mut visited: HashSet<ColumnRef> = HashSet::new();
        let mut out: HashSet<TableId> = HashSet::new();
        let mut queue: VecDeque<(ColumnRef, usize)> = VecDeque::new();
        let t = lake.table(start);
        for ci in 0..t.num_cols() {
            let r = ColumnRef::new(start, ci);
            visited.insert(r);
            queue.push_back((r, 0));
        }
        while let Some((r, d)) = queue.pop_front() {
            if d >= hops {
                continue;
            }
            for link in self.neighbors(r) {
                if visited.insert(link.to) {
                    if link.to.table != start {
                        out.insert(link.to.table);
                    }
                    // Continue through the *table*: sibling columns of the
                    // reached column are reachable at the same hop count.
                    let reached = lake.table(link.to.table);
                    for ci in 0..reached.num_cols() {
                        let sib = ColumnRef::new(link.to.table, ci);
                        if visited.insert(sib) {
                            queue.push_back((sib, d + 1));
                        }
                    }
                    queue.push_back((link.to, d + 1));
                }
            }
        }
        let mut v: Vec<TableId> = out.into_iter().collect();
        v.sort();
        v
    }

    /// A join path between two tables (sequence of links), if one exists
    /// within `max_hops`.
    #[must_use]
    pub fn join_path(
        &self,
        lake: &DataLake,
        from: TableId,
        to: TableId,
        max_hops: usize,
    ) -> Option<Vec<Link>> {
        let mut visited: HashSet<ColumnRef> = HashSet::new();
        let mut parent: HashMap<ColumnRef, Link> = HashMap::new();
        let mut queue: VecDeque<(ColumnRef, usize)> = VecDeque::new();
        let t = lake.table(from);
        for ci in 0..t.num_cols() {
            let r = ColumnRef::new(from, ci);
            visited.insert(r);
            queue.push_back((r, 0));
        }
        while let Some((r, d)) = queue.pop_front() {
            if d >= max_hops {
                continue;
            }
            for link in self.neighbors(r) {
                if !visited.insert(link.to) {
                    continue;
                }
                parent.insert(link.to, *link);
                if link.to.table == to {
                    // Reconstruct.
                    let mut path = vec![*link];
                    let mut cur = link.from;
                    while let Some(l) = parent.get(&cur) {
                        path.push(*l);
                        cur = l.from;
                    }
                    path.reverse();
                    return Some(path);
                }
                let reached = lake.table(link.to.table);
                for ci in 0..reached.num_cols() {
                    let sib = ColumnRef::new(link.to.table, ci);
                    if visited.insert(sib) {
                        // Hopping within a table is free of a link but
                        // counts as progress toward max_hops.
                        queue.push_back((sib, d + 1));
                        if parent.contains_key(&link.to) {
                            parent.entry(sib).or_insert(*link);
                        }
                    }
                }
                queue.push_back((link.to, d + 1));
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_table::gen::domains::DomainRegistry;
    use td_table::{Column, Table};

    /// Three tables: orders(city_fk, qty) → cities(city_pk, country),
    /// and a near-duplicate of cities.
    fn lake() -> (DataLake, DomainRegistry) {
        let r = DomainRegistry::standard();
        let city = r.id("city").unwrap();
        let country = r.id("country").unwrap();
        let mut lake = DataLake::new();
        // cities: key-like city column 0..100.
        lake.add(
            Table::new(
                "cities",
                vec![
                    Column::new("city", (0..100).map(|i| r.value(city, i)).collect()),
                    Column::new(
                        "country",
                        (0..100).map(|i| r.value(country, i % 20)).collect(),
                    ),
                ],
            )
            .unwrap(),
        );
        // orders: fk drawn from cities' range with repeats.
        lake.add(
            Table::new(
                "orders",
                vec![
                    Column::new("city", (0..150).map(|i| r.value(city, i % 30)).collect()),
                    Column::from_strings(
                        "qty",
                        &(0..150).map(|i| i.to_string()).collect::<Vec<_>>(),
                    ),
                ],
            )
            .unwrap(),
        );
        // cities_copy: 80% same values.
        lake.add(
            Table::new(
                "cities_copy",
                vec![Column::new(
                    "town",
                    (20..120).map(|i| r.value(city, i)).collect(),
                )],
            )
            .unwrap(),
        );
        (lake, r)
    }

    #[test]
    fn detects_content_similarity_edges() {
        let (lake, _) = lake();
        let g = LinkageGraph::build(&lake, &LinkageConfig::default());
        // cities.city ↔ cities_copy.town share 80 of 120 values (J = 2/3).
        let c = ColumnRef::new(TableId(0), 0);
        let hits: Vec<_> = g
            .neighbors(c)
            .into_iter()
            .filter(|l| l.to.table == TableId(2))
            .collect();
        assert!(!hits.is_empty(), "no similarity edge to the copy");
        assert!(matches!(hits[0].kind, LinkKind::ContentSimilarity { jaccard } if jaccard > 0.4));
    }

    #[test]
    fn detects_pk_fk_candidates() {
        let (lake, _) = lake();
        let g = LinkageGraph::build(&lake, &LinkageConfig::default());
        // orders.city (30 distinct) ⊆ cities.city (100 distinct, key-like):
        // Jaccard 0.3 is below the similarity threshold, containment is 1.
        let fk = ColumnRef::new(TableId(1), 0);
        let links = g.neighbors(fk);
        let pkfk: Vec<_> = links
            .iter()
            .filter(|l| matches!(l.kind, LinkKind::PkFkCandidate { .. }))
            .collect();
        assert!(
            !pkfk.is_empty(),
            "no PK/FK edge from orders.city: {links:?}"
        );
        assert_eq!(pkfk[0].to, ColumnRef::new(TableId(0), 0));
    }

    #[test]
    fn related_tables_walks_the_graph() {
        let (lake, _) = lake();
        let g = LinkageGraph::build(&lake, &LinkageConfig::default());
        let related = g.related_tables(&lake, TableId(1), 2);
        assert!(
            related.contains(&TableId(0)),
            "orders should relate to cities"
        );
        // Two hops: orders → cities → cities_copy.
        assert!(
            related.contains(&TableId(2)),
            "two-hop neighbor missing: {related:?}"
        );
        let one_hop = g.related_tables(&lake, TableId(1), 1);
        assert!(one_hop.contains(&TableId(0)));
    }

    #[test]
    fn join_path_connects_tables() {
        let (lake, _) = lake();
        let g = LinkageGraph::build(&lake, &LinkageConfig::default());
        let p = g.join_path(&lake, TableId(1), TableId(0), 3).unwrap();
        assert!(!p.is_empty());
        assert_eq!(p.last().unwrap().to.table, TableId(0));
        assert!(g.join_path(&lake, TableId(1), TableId(0), 0).is_none());
    }

    #[test]
    fn unrelated_columns_get_no_edges() {
        let r = DomainRegistry::standard();
        let gene = r.id("gene").unwrap();
        let food = r.id("food").unwrap();
        let mut lake = DataLake::new();
        lake.add(
            Table::new(
                "a",
                vec![Column::new(
                    "g",
                    (0..50).map(|i| r.value(gene, i)).collect(),
                )],
            )
            .unwrap(),
        );
        lake.add(
            Table::new(
                "b",
                vec![Column::new(
                    "f",
                    (0..50).map(|i| r.value(food, i)).collect(),
                )],
            )
            .unwrap(),
        );
        let g = LinkageGraph::build(&lake, &LinkageConfig::default());
        assert_eq!(g.num_edges(), 0);
    }
}
