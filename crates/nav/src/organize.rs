//! Data-lake organization (Nargesian et al., SIGMOD 2020 / TKDE 2023;
//! tutorial §2.6).
//!
//! An *organization* is a hierarchy over the lake's tables that a user
//! navigates top-down: at each node they pick the child whose concept
//! looks most like what they want. The original work optimizes the
//! expected probability of discovering tables under a probabilistic
//! navigation model; we reproduce that model — children are chosen with
//! probability proportional to the similarity between the child's
//! centroid and the target table — and build organizations by recursive
//! k-means over table embedding vectors, so the experiment (E13) can
//! compare an organization's expected discovery probability against flat
//! scanning.

use serde::{Deserialize, Serialize};
use td_embed::vector::{add_scaled, cosine, normalize};
use td_table::TableId;

/// One node of an organization.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OrgNode {
    /// Centroid of the table vectors below this node.
    pub centroid: Vec<f32>,
    /// Child node indices (empty for leaves).
    pub children: Vec<usize>,
    /// Tables at this node (non-empty only for leaves).
    pub tables: Vec<TableId>,
}

/// A navigable hierarchy over tables.
/// ```
/// use td_nav::{Organization, OrganizeConfig};
/// use td_embed::seeded_unit_vector;
/// use td_table::TableId;
///
/// let items: Vec<(TableId, Vec<f32>)> = (0..20)
///     .map(|i| (TableId(i), seeded_unit_vector(u64::from(i % 4), 16)))
///     .collect();
/// let org = Organization::build(&items, &OrganizeConfig::default());
/// // Every table is reachable by navigation:
/// assert_eq!(org.tables_below(org.root()).len(), 20);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Organization {
    nodes: Vec<OrgNode>,
    root: usize,
}

/// Construction parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct OrganizeConfig {
    /// Children per internal node.
    pub branching: usize,
    /// Tables per leaf before splitting stops.
    pub leaf_size: usize,
    /// k-means iterations per split.
    pub kmeans_iters: usize,
    /// Softmax sharpness of the navigation model.
    pub beta: f32,
    /// Seed for centroid initialization.
    pub seed: u64,
}

impl Default for OrganizeConfig {
    fn default() -> Self {
        OrganizeConfig {
            branching: 4,
            leaf_size: 4,
            kmeans_iters: 8,
            beta: 8.0,
            seed: 5,
        }
    }
}

/// Spherical k-means into `k` clusters; returns cluster assignment.
/// Deterministic in `seed`. Empty clusters are re-seeded with the point
/// farthest from its centroid.
pub(crate) fn kmeans(vectors: &[&[f32]], k: usize, iters: usize, seed: u64) -> Vec<usize> {
    let n = vectors.len();
    if n == 0 || k <= 1 {
        return vec![0; n];
    }
    let k = k.min(n);
    let dim = vectors[0].len();
    // Farthest-first initialization from a seeded start.
    let start = (td_sketch::hash::hash_u64(n as u64, seed) % n as u64) as usize;
    let mut centroids: Vec<Vec<f32>> = vec![vectors[start].to_vec()];
    while centroids.len() < k {
        let far = (0..n)
            .max_by(|&a, &b| {
                let da = centroids
                    .iter()
                    .map(|c| 1.0 - cosine(vectors[a], c))
                    .fold(f32::INFINITY, f32::min);
                let db = centroids
                    .iter()
                    .map(|c| 1.0 - cosine(vectors[b], c))
                    .fold(f32::INFINITY, f32::min);
                da.total_cmp(&db)
            })
            .unwrap_or(start);
        centroids.push(vectors[far].to_vec());
    }
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        // Assign.
        for (i, v) in vectors.iter().enumerate() {
            assign[i] = centroids
                .iter()
                .enumerate()
                .max_by(|(_, a), (_, b)| cosine(v, a).total_cmp(&cosine(v, b)))
                .map_or(0, |(c, _)| c);
        }
        // Update.
        let mut sums = vec![vec![0.0f32; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, v) in vectors.iter().enumerate() {
            add_scaled(&mut sums[assign[i]], v, 1.0);
            counts[assign[i]] += 1;
        }
        for (c, sum) in sums.iter_mut().enumerate() {
            if counts[c] == 0 {
                // Re-seed with the worst-fit point.
                let worst = (0..n)
                    .min_by(|&a, &b| {
                        cosine(vectors[a], &centroids[assign[a]])
                            .total_cmp(&cosine(vectors[b], &centroids[assign[b]]))
                    })
                    .unwrap_or(start);
                *sum = vectors[worst].to_vec();
            }
            normalize(sum);
            centroids[c] = std::mem::take(sum);
        }
    }
    // Final assignment against the last centroids.
    for (i, v) in vectors.iter().enumerate() {
        assign[i] = centroids
            .iter()
            .enumerate()
            .max_by(|(_, a), (_, b)| cosine(v, a).total_cmp(&cosine(v, b)))
            .map_or(0, |(c, _)| c);
    }
    assign
}

impl Organization {
    /// Build an organization over `(table, vector)` pairs by recursive
    /// spherical k-means.
    ///
    /// # Panics
    /// Panics if `items` is empty or vectors have inconsistent dimensions.
    #[must_use]
    pub fn build(items: &[(TableId, Vec<f32>)], cfg: &OrganizeConfig) -> Self {
        assert!(!items.is_empty(), "cannot organize an empty lake");
        let mut org = Organization {
            nodes: Vec::new(),
            root: 0,
        };
        let idxs: Vec<usize> = (0..items.len()).collect();
        org.root = org.split(items, &idxs, cfg, 0);
        org
    }

    fn centroid_of(items: &[(TableId, Vec<f32>)], idxs: &[usize]) -> Vec<f32> {
        let dim = items[idxs[0]].1.len();
        let mut c = vec![0.0f32; dim];
        for &i in idxs {
            add_scaled(&mut c, &items[i].1, 1.0);
        }
        normalize(&mut c);
        c
    }

    fn split(
        &mut self,
        items: &[(TableId, Vec<f32>)],
        idxs: &[usize],
        cfg: &OrganizeConfig,
        depth: usize,
    ) -> usize {
        let centroid = Self::centroid_of(items, idxs);
        if idxs.len() <= cfg.leaf_size || depth > 12 {
            let node = OrgNode {
                centroid,
                children: Vec::new(),
                tables: idxs.iter().map(|&i| items[i].0).collect(),
            };
            self.nodes.push(node);
            return self.nodes.len() - 1;
        }
        let vectors: Vec<&[f32]> = idxs.iter().map(|&i| items[i].1.as_slice()).collect();
        let assign = kmeans(
            &vectors,
            cfg.branching,
            cfg.kmeans_iters,
            cfg.seed + depth as u64,
        );
        let mut groups: Vec<Vec<usize>> = vec![Vec::new(); cfg.branching];
        for (pos, &i) in idxs.iter().enumerate() {
            groups[assign[pos]].push(i);
        }
        let groups: Vec<Vec<usize>> = groups.into_iter().filter(|g| !g.is_empty()).collect();
        if groups.len() <= 1 {
            // Degenerate split: make a leaf.
            let node = OrgNode {
                centroid,
                children: Vec::new(),
                tables: idxs.iter().map(|&i| items[i].0).collect(),
            };
            self.nodes.push(node);
            return self.nodes.len() - 1;
        }
        let children: Vec<usize> = groups
            .iter()
            .map(|g| self.split(items, g, cfg, depth + 1))
            .collect();
        self.nodes.push(OrgNode {
            centroid,
            children,
            tables: Vec::new(),
        });
        self.nodes.len() - 1
    }

    /// Node accessor.
    #[must_use]
    pub fn node(&self, i: usize) -> &OrgNode {
        &self.nodes[i]
    }

    /// Root node index.
    #[must_use]
    pub fn root(&self) -> usize {
        self.root
    }

    /// Total node count.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// All tables below a node.
    #[must_use]
    pub fn tables_below(&self, node: usize) -> Vec<TableId> {
        let mut out = Vec::new();
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            out.extend(self.nodes[n].tables.iter().copied());
            stack.extend(self.nodes[n].children.iter().copied());
        }
        out
    }

    /// Local-search refinement (the optimization pass of the organization
    /// papers): each table is reassigned to the leaf whose centroid it is
    /// most similar to, then all centroids are rebuilt bottom-up from the
    /// table vectors. Repeats up to `rounds` times or until no move helps.
    /// Returns the number of moves made.
    ///
    /// `items` must be the same `(table, vector)` pairs the organization
    /// was built from.
    pub fn refine(&mut self, items: &[(TableId, Vec<f32>)], rounds: usize) -> usize {
        use std::collections::HashMap;
        let vec_of: HashMap<TableId, &Vec<f32>> = items.iter().map(|(t, v)| (*t, v)).collect();
        let leaves: Vec<usize> = (0..self.nodes.len())
            .filter(|&n| self.nodes[n].children.is_empty())
            .collect();
        if leaves.len() <= 1 {
            return 0;
        }
        let mut total_moves = 0usize;
        for _ in 0..rounds {
            let mut moves = 0usize;
            // Current leaf of each table.
            let mut leaf_of: HashMap<TableId, usize> = HashMap::new();
            for &l in &leaves {
                for &t in &self.nodes[l].tables {
                    leaf_of.insert(t, l);
                }
            }
            for (t, v) in items {
                let Some(&cur) = leaf_of.get(t) else { continue };
                let Some(best) = leaves.iter().copied().max_by(|&a, &b| {
                    cosine(&self.nodes[a].centroid, v)
                        .total_cmp(&cosine(&self.nodes[b].centroid, v))
                }) else {
                    continue;
                };
                if best != cur && self.nodes[cur].tables.len() > 1 {
                    self.nodes[cur].tables.retain(|x| x != t);
                    self.nodes[best].tables.push(*t);
                    leaf_of.insert(*t, best);
                    moves += 1;
                }
            }
            if moves == 0 {
                break;
            }
            total_moves += moves;
            self.rebuild_centroids(&vec_of);
        }
        total_moves
    }

    /// Recompute every node's centroid as the normalized mean of the table
    /// vectors below it.
    fn rebuild_centroids(&mut self, vec_of: &std::collections::HashMap<TableId, &Vec<f32>>) {
        for n in 0..self.nodes.len() {
            let below = self.tables_below(n);
            let dim = self.nodes[n].centroid.len();
            let mut c = vec![0.0f32; dim];
            for t in below {
                if let Some(v) = vec_of.get(&t) {
                    add_scaled(&mut c, v, 1.0);
                }
            }
            normalize(&mut c);
            if c.iter().any(|&x| x != 0.0) {
                self.nodes[n].centroid = c;
            }
        }
    }

    /// The navigation model's probability of *discovering* `target` (whose
    /// embedding is `target_vec`): at each internal node the user picks a
    /// child with probability softmax(β · cos(child centroid, target)),
    /// and at a leaf inspects every table (finding the target iff it is
    /// there).
    #[must_use]
    pub fn discovery_probability(&self, target: TableId, target_vec: &[f32], beta: f32) -> f64 {
        self.discover_from(self.root, target, target_vec, beta)
    }

    fn discover_from(&self, node: usize, target: TableId, tv: &[f32], beta: f32) -> f64 {
        let n = &self.nodes[node];
        if n.children.is_empty() {
            return if n.tables.contains(&target) { 1.0 } else { 0.0 };
        }
        // Softmax over children similarities.
        let sims: Vec<f64> = n
            .children
            .iter()
            .map(|&c| f64::from(beta * cosine(&self.nodes[c].centroid, tv)))
            .collect();
        let m = sims.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        let exps: Vec<f64> = sims.iter().map(|s| (s - m).exp()).collect();
        let z: f64 = exps.iter().sum();
        n.children
            .iter()
            .zip(&exps)
            .map(|(&c, e)| (e / z) * self.discover_from(c, target, tv, beta))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_embed::model::seeded_unit_vector;

    /// Clustered table vectors: `per` tables around each of `k` anchors.
    fn clustered(k: usize, per: usize, dim: usize) -> Vec<(TableId, Vec<f32>)> {
        let mut out = Vec::new();
        for c in 0..k {
            let anchor = seeded_unit_vector(c as u64 + 1, dim);
            for i in 0..per {
                let mut v = anchor.clone();
                let noise = seeded_unit_vector((c * per + i + 999) as u64, dim);
                add_scaled(&mut v, &noise, 0.25);
                normalize(&mut v);
                out.push((TableId((c * per + i) as u32), v));
            }
        }
        out
    }

    #[test]
    fn kmeans_recovers_clusters() {
        let items = clustered(3, 20, 32);
        let vectors: Vec<&[f32]> = items.iter().map(|(_, v)| v.as_slice()).collect();
        let assign = kmeans(&vectors, 3, 10, 1);
        // All members of a true cluster should share a label.
        for c in 0..3 {
            let labels: std::collections::HashSet<usize> =
                (0..20).map(|i| assign[c * 20 + i]).collect();
            assert_eq!(labels.len(), 1, "cluster {c} split: {labels:?}");
        }
    }

    #[test]
    fn organization_contains_all_tables() {
        let items = clustered(4, 10, 32);
        let org = Organization::build(&items, &OrganizeConfig::default());
        let mut below = org.tables_below(org.root());
        below.sort();
        let mut all: Vec<TableId> = items.iter().map(|(t, _)| *t).collect();
        all.sort();
        assert_eq!(below, all);
    }

    #[test]
    fn navigation_beats_random_descent() {
        let items = clustered(4, 12, 32);
        let org = Organization::build(&items, &OrganizeConfig::default());
        // Expected discovery probability under the informed model vs an
        // uninformed one (beta = 0 → uniform child choice).
        let avg = |beta: f32| {
            items
                .iter()
                .map(|(t, v)| org.discovery_probability(*t, v, beta))
                .sum::<f64>()
                / items.len() as f64
        };
        let informed = avg(8.0);
        let uninformed = avg(0.0);
        // Within a topical cluster the model cannot discriminate siblings,
        // so the informed probability is far from 1 — but it should beat
        // uniform descent by a wide factor (the paper's claim).
        assert!(
            informed > 3.0 * uninformed,
            "informed {informed} vs uninformed {uninformed}"
        );
        assert!(informed > 0.15, "informed discovery probability {informed}");
    }

    #[test]
    fn probabilities_are_valid() {
        let items = clustered(3, 8, 16);
        let org = Organization::build(&items, &OrganizeConfig::default());
        for (t, v) in &items {
            let p = org.discovery_probability(*t, v, 4.0);
            assert!((0.0..=1.0 + 1e-9).contains(&p), "p = {p}");
        }
    }

    #[test]
    fn absent_table_has_zero_probability() {
        let items = clustered(2, 5, 16);
        let org = Organization::build(&items, &OrganizeConfig::default());
        let ghost_vec = seeded_unit_vector(777, 16);
        assert_eq!(
            org.discovery_probability(TableId(9999), &ghost_vec, 4.0),
            0.0
        );
    }

    #[test]
    fn refinement_never_loses_tables_and_helps_poor_builds() {
        // Build with an adversarial seed (poor initial clustering), then
        // refine; expected discovery probability must not get worse and
        // no table may vanish.
        let items = clustered(4, 12, 32);
        let mut org = Organization::build(
            &items,
            &OrganizeConfig {
                kmeans_iters: 1,
                seed: 999,
                ..Default::default()
            },
        );
        let avg = |o: &Organization| {
            items
                .iter()
                .map(|(t, v)| o.discovery_probability(*t, v, 8.0))
                .sum::<f64>()
                / items.len() as f64
        };
        let before = avg(&org);
        let moves = org.refine(&items, 5);
        let after = avg(&org);
        let mut below = org.tables_below(org.root());
        below.sort();
        let mut all: Vec<TableId> = items.iter().map(|(t, _)| *t).collect();
        all.sort();
        assert_eq!(below, all, "refinement lost tables");
        assert!(
            after >= before - 1e-9,
            "refinement hurt: {before} -> {after} ({moves} moves)"
        );
    }

    #[test]
    fn refinement_converges() {
        let items = clustered(3, 10, 16);
        let mut org = Organization::build(&items, &OrganizeConfig::default());
        let _ = org.refine(&items, 10);
        // A second refinement pass has nothing left to move.
        let moves = org.refine(&items, 10);
        assert_eq!(moves, 0, "refinement did not converge");
    }

    #[test]
    fn single_table_lake() {
        let items = vec![(TableId(0), seeded_unit_vector(1, 8))];
        let org = Organization::build(&items, &OrganizeConfig::default());
        assert_eq!(org.num_nodes(), 1);
        assert_eq!(org.discovery_probability(TableId(0), &items[0].1, 4.0), 1.0);
    }
}
