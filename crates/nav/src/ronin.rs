//! Online hierarchies over search results (RONIN; Ouellette et al., VLDB
//! 2021; tutorial §2.6 & §3).
//!
//! RONIN's insight is that organizations need not be offline artifacts:
//! given the result set of a search query, a small hierarchy can be built
//! *online* so the user explores a few labeled groups instead of a flat
//! ranked list. We cluster the result tables' embedding vectors (spherical
//! k-means, same machinery as [`crate::organize`]) and label each group
//! with its most central table.

use crate::organize::kmeans;
use serde::{Deserialize, Serialize};
use td_embed::vector::{add_scaled, cosine, normalize};
use td_table::{DataLake, TableId};

/// One group of an online exploration view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResultGroup {
    /// Group label: the name of the most central member table.
    pub label: String,
    /// The most central member.
    pub representative: TableId,
    /// Members, most-central first.
    pub tables: Vec<TableId>,
}

/// Parameters for online grouping.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct RoninConfig {
    /// Number of groups to show.
    pub groups: usize,
    /// k-means iterations.
    pub iters: usize,
    /// Seed.
    pub seed: u64,
}

impl Default for RoninConfig {
    fn default() -> Self {
        RoninConfig {
            groups: 4,
            iters: 8,
            seed: 9,
        }
    }
}

/// Group a search-result set into labeled clusters for exploration.
///
/// `results` pairs each table with its embedding vector. Returns at most
/// `cfg.groups` non-empty groups ordered by size.
#[must_use]
pub fn group_results(
    lake: &DataLake,
    results: &[(TableId, Vec<f32>)],
    cfg: &RoninConfig,
) -> Vec<ResultGroup> {
    if results.is_empty() {
        return Vec::new();
    }
    let vectors: Vec<&[f32]> = results.iter().map(|(_, v)| v.as_slice()).collect();
    let assign = kmeans(&vectors, cfg.groups, cfg.iters, cfg.seed);
    let k = assign.iter().copied().max().unwrap_or(0) + 1;
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); k];
    for (i, &g) in assign.iter().enumerate() {
        groups[g].push(i);
    }
    let mut out = Vec::new();
    for members in groups.into_iter().filter(|g| !g.is_empty()) {
        // Centroid and centrality ordering.
        let dim = vectors[0].len();
        let mut centroid = vec![0.0f32; dim];
        for &m in &members {
            add_scaled(&mut centroid, vectors[m], 1.0);
        }
        normalize(&mut centroid);
        let mut ordered = members.clone();
        ordered.sort_by(|&a, &b| {
            cosine(vectors[b], &centroid).total_cmp(&cosine(vectors[a], &centroid))
        });
        let rep = results[ordered[0]].0;
        out.push(ResultGroup {
            label: lake.table(rep).name.clone(),
            representative: rep,
            tables: ordered.into_iter().map(|m| results[m].0).collect(),
        });
    }
    out.sort_by_key(|g| std::cmp::Reverse(g.tables.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_embed::model::seeded_unit_vector;
    use td_table::{Column, Table};

    fn setup(k: usize, per: usize) -> (DataLake, Vec<(TableId, Vec<f32>)>) {
        let mut lake = DataLake::new();
        let mut results = Vec::new();
        for c in 0..k {
            let anchor = seeded_unit_vector(c as u64 + 1, 32);
            for i in 0..per {
                let id = lake.add(
                    Table::new(
                        format!("cluster{c}_table{i}.csv"),
                        vec![Column::from_strings("x", &["1"])],
                    )
                    .unwrap(),
                );
                let mut v = anchor.clone();
                add_scaled(
                    &mut v,
                    &seeded_unit_vector((c * per + i + 500) as u64, 32),
                    0.25,
                );
                normalize(&mut v);
                results.push((id, v));
            }
        }
        (lake, results)
    }

    #[test]
    fn groups_respect_clusters() {
        let (lake, results) = setup(3, 8);
        let groups = group_results(
            &lake,
            &results,
            &RoninConfig {
                groups: 3,
                ..Default::default()
            },
        );
        assert_eq!(groups.len(), 3);
        // Every group should be pure: all members share the cluster prefix.
        for g in &groups {
            let prefix = |t: TableId| lake.table(t).name.split('_').next().unwrap().to_string();
            let p0 = prefix(g.tables[0]);
            assert!(
                g.tables.iter().all(|&t| prefix(t) == p0),
                "mixed group: {g:?}"
            );
        }
    }

    #[test]
    fn representative_is_a_member_and_labels_match() {
        let (lake, results) = setup(2, 6);
        let groups = group_results(
            &lake,
            &results,
            &RoninConfig {
                groups: 2,
                ..Default::default()
            },
        );
        for g in &groups {
            assert!(g.tables.contains(&g.representative));
            assert_eq!(g.label, lake.table(g.representative).name);
            assert_eq!(
                g.tables[0], g.representative,
                "representative leads the list"
            );
        }
    }

    #[test]
    fn empty_results_yield_no_groups() {
        let (lake, _) = setup(1, 1);
        assert!(group_results(&lake, &[], &RoninConfig::default()).is_empty());
    }

    #[test]
    fn more_groups_than_results_collapses() {
        let (lake, results) = setup(1, 2);
        let groups = group_results(
            &lake,
            &results,
            &RoninConfig {
                groups: 10,
                ..Default::default()
            },
        );
        let total: usize = groups.iter().map(|g| g.tables.len()).sum();
        assert_eq!(total, 2);
    }
}
