//! # td-obs — zero-dependency tracing and metrics for table discovery
//!
//! The tutorial's §3 calls for *cost-based and distribution-aware access
//! methods*; you cannot be distribution-aware without measuring the
//! distribution. This crate is the workspace's single measurement
//! substrate:
//!
//! * [`Registry`] — lock-free counters, gauges, and log-bucketed latency
//!   [`Histogram`]s (p50/p95/p99 readout), shared across threads through
//!   `&'static` ([`global`]) or `Arc`. Exports Prometheus text
//!   ([`Registry::export_prometheus`]) and JSON
//!   ([`Registry::export_json`]).
//! * [`span!`] — RAII span guards with parent/child nesting recorded
//!   per-thread, feeding a pluggable [`Subscriber`] (default: an in-memory
//!   [`RingRecorder`]) *and* a latency histogram named `span.<name>` in
//!   the registry, so build passes and queries show up in one snapshot.
//! * [`Timer`] / [`ScopedTimer`] — the one-liner timing helpers the bench
//!   binaries use instead of scattering `Instant::now()` pairs.
//! * [`trace`] (td-trace) — *request-scoped* span trees: a [`Trace`] per
//!   admitted request with deterministic [`TraceId`]s, cross-thread RAII
//!   spans, thread-attached [`trace::probe`] instrumentation for library
//!   code, sharded bounded [`TraceRing`] storage, and a [`SlowQueryLog`]
//!   of the worst trees since boot. Aggregates tell you *that* p95 moved;
//!   traces tell you *which* probe or queue wait moved it.
//!
//! Metric mutation is wait-free (atomic adds); name registration takes a
//! short `RwLock` only on first use — hot paths should hold on to the
//! returned `Arc` handles.
//!
//! ```
//! let reg = td_obs::Registry::new();
//! let hits = reg.counter("query.hits");
//! hits.add(3);
//! let lat = reg.histogram("query.latency_ns");
//! lat.record(1_500);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("query.hits"), Some(3));
//! assert_eq!(snap.histogram("query.latency_ns").unwrap().count, 1);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![warn(missing_docs)]
#![warn(clippy::all)]

mod registry;
mod span;
mod timer;
pub mod trace;

pub use registry::{Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry};
pub use span::{RingRecorder, SpanGuard, SpanRecord, Subscriber};
pub use timer::ScopedTimer;
pub use timer::{time, Timer};
pub use trace::{
    ActiveSpan, AttachGuard, Ring, SlowQueryLog, Trace, TraceClock, TraceId, TraceNode, TraceRing,
    TraceTree,
};

use std::sync::OnceLock;

static GLOBAL: OnceLock<Registry> = OnceLock::new();

/// The process-wide registry. All [`span!`] guards and the pipeline's
/// built-in instrumentation record here.
pub fn global() -> &'static Registry {
    GLOBAL.get_or_init(Registry::new)
}

/// Open an RAII span on the [`global`] registry: the span closes (and its
/// duration is recorded) when the returned guard drops.
///
/// ```
/// {
///     let _span = td_obs::span!("pipeline.profile");
///     // ... measured work ...
/// }
/// assert!(td_obs::global().snapshot().histogram("span.pipeline.profile").is_some());
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::global().span($name)
    };
    ($registry:expr, $name:expr) => {
        ($registry).span($name)
    };
}
