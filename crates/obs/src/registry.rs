//! The metrics registry: counters, gauges, log-bucketed histograms, and
//! the Prometheus-text / JSON exporters.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LockResult, RwLock};
use std::time::Duration;

/// Recover the guard from a poisoned lock: metrics are plain atomics, so
/// a panic mid-update cannot leave them in a state worse than a torn
/// read, and observability must never take the process down.
fn relock<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// A monotonically increasing `u64` counter (wait-free).
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// A settable `f64` gauge (stored as bit pattern in an atomic).
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }
}

impl Gauge {
    /// Set the gauge.
    pub fn set(&self, v: f64) {
        self.bits.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    #[must_use]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Add `delta` atomically (CAS loop on the f64 bit pattern) — the
    /// primitive behind level gauges such as queue depth and in-flight
    /// request counts, where many threads move the same gauge up and
    /// down concurrently and `set(get() + d)` would lose updates.
    pub fn add(&self, delta: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).to_bits();
            match self
                .bits
                // td-lint: allow(TD009) pure value cell: the f64 bits are the whole payload, the CAS publishes nothing beyond them
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Increment by one (see [`Gauge::add`]).
    pub fn inc(&self) {
        self.add(1.0);
    }

    /// Decrement by one (see [`Gauge::add`]).
    pub fn dec(&self) {
        self.add(-1.0);
    }

    /// Add `delta` atomically, clamping the result at `floor` inside the
    /// same CAS loop. Level gauges (queue depth, in-flight) use this for
    /// their decrements: under concurrent `add`/`dec` an unlucky
    /// interleaving near zero could otherwise publish a transiently
    /// negative level to a concurrent `Stats` snapshot. The clamp happens
    /// on the value being CAS-published, so no reader can ever observe a
    /// value below `floor` caused by this call.
    pub fn add_floored(&self, delta: f64, floor: f64) {
        let mut cur = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + delta).max(floor).to_bits();
            match self
                .bits
                // td-lint: allow(TD009) pure value cell: same argument as Gauge::add above
                .compare_exchange_weak(cur, next, Ordering::Relaxed, Ordering::Relaxed)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Decrement by one, never going below zero (see [`Gauge::add_floored`]).
    pub fn dec_floored(&self) {
        self.add_floored(-1.0, 0.0);
    }
}

/// Sub-buckets per power of two. 4 gives ≤ ~19% relative quantile error,
/// plenty for latency percentiles, with a fixed 256-slot table.
const SUBS: usize = 4;
const BUCKETS: usize = 64 * SUBS;

/// A log-bucketed histogram of non-negative `u64` observations
/// (conventionally nanoseconds). Recording is wait-free.
pub struct Histogram {
    buckets: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    /// Max observed value (monotonic CAS).
    max: AtomicU64,
    /// Min observed value (monotonic CAS); `u64::MAX` when empty.
    min: AtomicU64,
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram")
            .field("count", &self.count())
            .field("sum", &self.sum())
            .finish()
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            // `AtomicU64` is not `Copy`; build the array element-wise.
            buckets: Box::new(std::array::from_fn(|_| AtomicU64::new(0))),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
        }
    }
}

/// Index of the log bucket for a value.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        return 0;
    }
    let exp = 63 - v.leading_zeros() as usize; // floor(log2 v)
    let frac = if exp == 0 {
        0
    } else {
        // Top `log2(SUBS)` bits below the leading one.
        ((v >> (exp.saturating_sub(2))) & (SUBS as u64 - 1)) as usize
    };
    (exp * SUBS + frac).min(BUCKETS - 1)
}

/// Geometric midpoint of a bucket, the value reported for quantiles.
fn bucket_mid(idx: usize) -> f64 {
    let exp = idx / SUBS;
    let frac = idx % SUBS;
    let lo = (1u64 << exp) as f64 * (1.0 + frac as f64 / SUBS as f64);
    let hi = (1u64 << exp) as f64 * (1.0 + (frac as f64 + 1.0) / SUBS as f64);
    (lo * hi).sqrt()
}

impl Histogram {
    /// Record one observation.
    pub fn record(&self, v: u64) {
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
    }

    /// Record a duration in nanoseconds.
    pub fn record_duration(&self, d: Duration) {
        self.record(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Mean observation, or 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    /// Approximate quantile (`q` in `[0, 1]`) from the log buckets, or 0
    /// when empty. Exact min/max are substituted at the extremes.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let n = self.count.load(Ordering::Relaxed);
        if n == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        if q <= 0.0 {
            return self.min.load(Ordering::Relaxed) as f64;
        }
        if q >= 1.0 {
            return self.max.load(Ordering::Relaxed) as f64;
        }
        let rank = (q * n as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                // Clamp into the true observed range so approximation
                // error never violates min/max bounds.
                let min = self.min.load(Ordering::Relaxed) as f64;
                let max = self.max.load(Ordering::Relaxed) as f64;
                return bucket_mid(i).clamp(min, max);
            }
        }
        self.max.load(Ordering::Relaxed) as f64
    }

    /// Point-in-time copy of the derived statistics.
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count();
        HistogramSnapshot {
            count,
            sum: self.sum(),
            mean: self.mean(),
            p50: self.quantile(0.50),
            p95: self.quantile(0.95),
            p99: self.quantile(0.99),
            min: if count == 0 {
                0
            } else {
                self.min.load(Ordering::Relaxed)
            },
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// Derived statistics of a [`Histogram`] at one point in time.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Observation count.
    pub count: u64,
    /// Sum of observations.
    pub sum: u64,
    /// Mean observation.
    pub mean: f64,
    /// Approximate median.
    pub p50: f64,
    /// Approximate 95th percentile.
    pub p95: f64,
    /// Approximate 99th percentile.
    pub p99: f64,
    /// Exact minimum observation (0 when empty).
    pub min: u64,
    /// Exact maximum observation.
    pub max: u64,
}

/// Point-in-time copy of every metric in a [`Registry`], sorted by name.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter values.
    pub counters: Vec<(String, u64)>,
    /// Gauge values.
    pub gauges: Vec<(String, f64)>,
    /// Histogram statistics.
    pub histograms: Vec<(String, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Value of a gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Statistics of a histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }

    /// Names of histograms whose name starts with `prefix`.
    #[must_use]
    pub fn histograms_with_prefix(&self, prefix: &str) -> Vec<&str> {
        self.histograms
            .iter()
            .filter(|(n, _)| n.starts_with(prefix))
            .map(|(n, _)| n.as_str())
            .collect()
    }
}

/// The registry: a name-keyed store of counters, gauges, and histograms
/// plus the span subscriber (see [`crate::span!`]).
pub struct Registry {
    counters: RwLock<HashMap<String, Arc<Counter>>>,
    gauges: RwLock<HashMap<String, Arc<Gauge>>>,
    histograms: RwLock<HashMap<String, Arc<Histogram>>>,
    pub(crate) subscriber: RwLock<Arc<dyn crate::Subscriber>>,
    pub(crate) span_seq: AtomicU64,
}

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry with the default ring-buffer span recorder.
    #[must_use]
    pub fn new() -> Self {
        Registry {
            counters: RwLock::new(HashMap::new()),
            gauges: RwLock::new(HashMap::new()),
            histograms: RwLock::new(HashMap::new()),
            subscriber: RwLock::new(Arc::new(crate::RingRecorder::new(4096))),
            span_seq: AtomicU64::new(0),
        }
    }

    /// Get or create a counter. Hold on to the handle on hot paths.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        get_or_insert(&self.counters, name)
    }

    /// Get or create a gauge.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        get_or_insert(&self.gauges, name)
    }

    /// Get or create a histogram. Hold on to the handle on hot paths.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        get_or_insert(&self.histograms, name)
    }

    /// Swap the span subscriber (the default is a [`crate::RingRecorder`]).
    pub fn set_subscriber(&self, sub: Arc<dyn crate::Subscriber>) {
        *relock(self.subscriber.write()) = sub;
    }

    /// Current span subscriber.
    #[must_use]
    pub fn subscriber(&self) -> Arc<dyn crate::Subscriber> {
        relock(self.subscriber.read()).clone()
    }

    /// Point-in-time snapshot of every metric, names sorted.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters: Vec<(String, u64)> = relock(self.counters.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        let mut gauges: Vec<(String, f64)> = relock(self.gauges.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.get()))
            .collect();
        gauges.sort_by(|a, b| a.0.cmp(&b.0));
        let mut histograms: Vec<(String, HistogramSnapshot)> = relock(self.histograms.read())
            .iter()
            .map(|(k, v)| (k.clone(), v.snapshot()))
            .collect();
        histograms.sort_by(|a, b| a.0.cmp(&b.0));
        MetricsSnapshot {
            counters,
            gauges,
            histograms,
        }
    }

    /// Remove every metric (testing / between bench stages).
    pub fn reset(&self) {
        relock(self.counters.write()).clear();
        relock(self.gauges.write()).clear();
        relock(self.histograms.write()).clear();
    }

    /// Render the registry in the Prometheus text exposition format.
    /// Histograms are exposed as summaries (`{quantile="..."}` series plus
    /// `_sum` and `_count`). Metric names are sanitized (`.` and `-` to
    /// `_`).
    #[must_use]
    pub fn export_prometheus(&self) -> String {
        let snap = self.snapshot();
        let mut out = String::new();
        for (name, v) in &snap.counters {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} counter\n{n} {v}\n"));
        }
        for (name, v) in &snap.gauges {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {v}\n"));
        }
        for (name, h) in &snap.histograms {
            let n = prom_name(name);
            out.push_str(&format!("# TYPE {n} summary\n"));
            for (q, v) in [(0.5, h.p50), (0.95, h.p95), (0.99, h.p99)] {
                out.push_str(&format!("{n}{{quantile=\"{q}\"}} {v}\n"));
            }
            out.push_str(&format!("{n}_sum {}\n{n}_count {}\n", h.sum, h.count));
        }
        out
    }

    /// Render the registry as a JSON object:
    /// `{"counters": {...}, "gauges": {...}, "histograms": {name: {count,
    /// sum, mean, p50, p95, p99, min, max}}}`. Written by hand so td-obs
    /// keeps zero dependencies; the test suite round-trips it through the
    /// workspace `serde_json`.
    #[must_use]
    pub fn export_json(&self) -> String {
        snapshot_to_json(&self.snapshot())
    }
}

/// JSON rendering of a snapshot (also used by `td-bench`'s reports).
#[must_use]
pub fn snapshot_to_json(snap: &MetricsSnapshot) -> String {
    let mut out = String::from("{\"counters\":{");
    for (i, (name, v)) in snap.counters.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(name, &mut out);
        out.push_str(&format!(":{v}"));
    }
    out.push_str("},\"gauges\":{");
    for (i, (name, v)) in snap.gauges.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(name, &mut out);
        out.push(':');
        out.push_str(&json_f64(*v));
    }
    out.push_str("},\"histograms\":{");
    for (i, (name, h)) in snap.histograms.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(name, &mut out);
        out.push_str(&format!(
            ":{{\"count\":{},\"sum\":{},\"mean\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"min\":{},\"max\":{}}}",
            h.count,
            h.sum,
            json_f64(h.mean),
            json_f64(h.p50),
            json_f64(h.p95),
            json_f64(h.p99),
            h.min,
            h.max,
        ));
    }
    out.push_str("}}");
    out
}

/// Escape and append a JSON string literal.
pub(crate) fn json_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// JSON-safe float rendering (non-finite becomes `null`).
pub(crate) fn json_f64(v: f64) -> String {
    if v.is_finite() {
        // Ensure the token parses as a number either way.
        v.to_string()
    } else {
        "null".to_string()
    }
}

fn prom_name(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn get_or_insert<T: Default>(map: &RwLock<HashMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(v) = relock(map.read()).get(name) {
        return Arc::clone(v);
    }
    let mut w = relock(map.write());
    // td-lint: allow(TD010) the key space is the set of metric names, fixed by instrumentation sites at compile time
    Arc::clone(w.entry(name.to_string()).or_default())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        r.counter("c").inc();
        r.counter("c").add(4);
        r.gauge("g").set(2.5);
        let s = r.snapshot();
        assert_eq!(s.counter("c"), Some(5));
        assert_eq!(s.gauge("g"), Some(2.5));
        assert_eq!(s.counter("missing"), None);
    }

    #[test]
    fn gauge_deltas_do_not_lose_updates_across_threads() {
        let r = Registry::new();
        let g = r.gauge("level");
        g.set(10.0);
        g.inc();
        g.dec();
        g.add(-3.0);
        assert_eq!(g.get(), 7.0);
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..1_000 {
                        g.inc();
                        g.dec();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("gauge thread");
        }
        assert_eq!(g.get(), 7.0, "balanced inc/dec must return to baseline");
    }

    #[test]
    fn floored_gauge_never_goes_negative_under_concurrent_add_dec() {
        let r = Registry::new();
        let g = r.gauge("queue.depth");
        // Deliberately adversarial: every thread decrements *first*, so
        // without the floor the gauge would routinely dip below zero and
        // a concurrent Stats snapshot would publish a negative depth.
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let sampler = {
            let g = Arc::clone(&g);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                let mut min_seen = f64::INFINITY;
                while !stop.load(Ordering::Relaxed) {
                    let v = g.get();
                    assert!(!v.is_nan(), "torn read produced NaN");
                    min_seen = min_seen.min(v);
                }
                min_seen
            })
        };
        let writers: Vec<_> = (0..8)
            .map(|_| {
                let g = Arc::clone(&g);
                std::thread::spawn(move || {
                    for _ in 0..2_000 {
                        g.dec_floored();
                        g.inc();
                    }
                })
            })
            .collect();
        for w in writers {
            w.join().expect("gauge writer");
        }
        stop.store(true, Ordering::Relaxed);
        let min_seen = sampler.join().expect("gauge sampler");
        assert!(
            min_seen >= 0.0,
            "snapshot observed a negative level: {min_seen}"
        );
        assert!(g.get() >= 0.0);
        // A plain (unfloored) dec on an empty gauge *does* go negative —
        // the behavior the floored variant exists to prevent.
        let plain = r.gauge("plain");
        plain.dec();
        assert!(plain.get() < 0.0);
        let floored = r.gauge("floored");
        floored.dec_floored();
        assert_eq!(floored.get(), 0.0);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = Histogram::default();
        for v in 1..=10_000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 10_000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99, "{s:?}");
        assert!(s.p50 >= s.min as f64 && s.p99 <= s.max as f64, "{s:?}");
        // Log-bucket approximation: within ~20% relative error.
        assert!((s.p50 - 5_000.0).abs() / 5_000.0 < 0.25, "p50 {}", s.p50);
        assert!((s.p99 - 9_900.0).abs() / 9_900.0 < 0.25, "p99 {}", s.p99);
    }

    #[test]
    fn histogram_handles_zero_and_extremes() {
        let h = Histogram::default();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert!(s.p50 >= 0.0);
    }

    #[test]
    fn prometheus_export_has_all_series() {
        let r = Registry::new();
        r.counter("probe.count").add(7);
        r.gauge("corpus.size").set(100.0);
        r.histogram("query.ns").record(1000);
        let text = r.export_prometheus();
        assert!(text.contains("# TYPE probe_count counter"));
        assert!(text.contains("probe_count 7"));
        assert!(text.contains("# TYPE corpus_size gauge"));
        assert!(text.contains("query_ns{quantile=\"0.5\"}"));
        assert!(text.contains("query_ns_count 1"));
    }

    #[test]
    fn bucket_round_trip_is_monotone() {
        let mut last = 0usize;
        for v in [1u64, 2, 3, 7, 8, 100, 1000, 1 << 20, 1 << 40, u64::MAX] {
            let b = bucket_of(v);
            assert!(b >= last, "bucket({v}) = {b} < {last}");
            last = b;
        }
    }
}
