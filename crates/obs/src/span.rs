//! RAII spans with per-thread parent/child nesting, a pluggable
//! [`Subscriber`], and the default in-memory [`RingRecorder`].

use std::cell::RefCell;
use std::sync::atomic::Ordering;
use std::time::Instant;

use crate::trace::Ring;
use crate::Registry;

/// A closed span as delivered to a [`Subscriber`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span id, unique within the registry (assigned at open).
    pub id: u64,
    /// Id of the enclosing span on the same thread, if any.
    pub parent: Option<u64>,
    /// Nesting depth: 0 for a root span.
    pub depth: usize,
    /// Span name, e.g. `pipeline.containment.build`.
    pub name: String,
    /// Wall-clock duration in nanoseconds.
    pub dur_ns: u64,
}

/// Receives every closed span from a [`Registry`]. Implementations must be
/// cheap: `on_close` runs inline in the instrumented thread.
pub trait Subscriber: Send + Sync {
    /// Called once per span, at close (guard drop).
    fn on_close(&self, span: &SpanRecord);
}

/// Default subscriber: keeps the most recent `capacity` closed spans in a
/// bounded [`Ring`] (the same primitive the td-trace [`crate::TraceRing`]
/// shards are built on).
pub struct RingRecorder {
    ring: Ring<SpanRecord>,
}

impl RingRecorder {
    /// A recorder holding at most `capacity` spans (oldest evicted first).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        RingRecorder {
            ring: Ring::new(capacity),
        }
    }

    /// The retained spans, oldest first.
    #[must_use]
    pub fn recent(&self) -> Vec<SpanRecord> {
        self.ring.snapshot()
    }

    /// Number of retained spans.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Whether the recorder holds no spans.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Drop all retained spans.
    pub fn clear(&self) {
        self.ring.clear();
    }
}

impl Subscriber for RingRecorder {
    fn on_close(&self, span: &SpanRecord) {
        // td-lint: allow(TD010) Ring<T> is drop-oldest bounded by construction
        self.ring.push(span.clone());
    }
}

thread_local! {
    /// Stack of (registry address, span id) for the open spans on this
    /// thread; the registry address keeps nesting scoped per registry.
    static SPAN_STACK: RefCell<Vec<(usize, u64)>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard returned by [`Registry::span`] / the [`crate::span!`] macro.
/// On drop it records the duration into the `span.<name>` histogram and
/// hands a [`SpanRecord`] to the registry's subscriber.
pub struct SpanGuard<'r> {
    registry: &'r Registry,
    id: u64,
    parent: Option<u64>,
    depth: usize,
    name: String,
    start: Instant,
}

impl Registry {
    /// Open a named span; it closes when the returned guard drops.
    pub fn span(&self, name: &str) -> SpanGuard<'_> {
        let id = self.span_seq.fetch_add(1, Ordering::Relaxed) + 1;
        let key = self as *const Registry as usize;
        let (parent, depth) = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            let parent = s.iter().rev().find(|(k, _)| *k == key).map(|(_, id)| *id);
            let depth = s.iter().filter(|(k, _)| *k == key).count();
            s.push((key, id));
            (parent, depth)
        });
        SpanGuard {
            registry: self,
            id,
            parent,
            depth,
            name: name.to_string(),
            start: Instant::now(),
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let dur_ns = u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let key = self.registry as *const Registry as usize;
        SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            if let Some(pos) = s.iter().rposition(|e| *e == (key, self.id)) {
                s.remove(pos);
            }
        });
        self.registry
            .histogram(&format!("span.{}", self.name))
            .record(dur_ns);
        let record = SpanRecord {
            id: self.id,
            parent: self.parent,
            depth: self.depth,
            name: std::mem::take(&mut self.name),
            dur_ns,
        };
        self.registry.subscriber().on_close(&record);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn span_records_histogram_and_ring() {
        let reg = Registry::new();
        let ring = Arc::new(RingRecorder::new(16));
        reg.set_subscriber(ring.clone());
        {
            let _s = reg.span("build.profile");
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("span.build.profile").unwrap().count, 1);
        let spans = ring.recent();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].name, "build.profile");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[0].depth, 0);
    }

    #[test]
    fn nesting_tracks_parent_and_depth() {
        let reg = Registry::new();
        let ring = Arc::new(RingRecorder::new(16));
        reg.set_subscriber(ring.clone());
        {
            let _outer = reg.span("outer");
            {
                let _inner = reg.span("inner");
            }
        }
        let spans = ring.recent();
        // Spans close innermost-first.
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "inner");
        assert_eq!(spans[0].depth, 1);
        assert_eq!(spans[1].name, "outer");
        assert_eq!(spans[1].depth, 0);
        assert_eq!(spans[0].parent, Some(spans[1].id));
    }

    #[test]
    fn ring_evicts_oldest() {
        let ring = RingRecorder::new(2);
        for i in 0..4u64 {
            ring.on_close(&SpanRecord {
                id: i,
                parent: None,
                depth: 0,
                name: format!("s{i}"),
                dur_ns: 1,
            });
        }
        let spans = ring.recent();
        assert_eq!(spans.len(), 2);
        assert_eq!(spans[0].name, "s2");
        assert_eq!(spans[1].name, "s3");
    }

    #[test]
    fn sibling_registries_do_not_share_nesting() {
        let a = Registry::new();
        let b = Registry::new();
        let ring_b = Arc::new(RingRecorder::new(4));
        b.set_subscriber(ring_b.clone());
        let _outer_a = a.span("a.outer");
        {
            let _in_b = b.span("b.root");
        }
        let spans = ring_b.recent();
        assert_eq!(spans[0].parent, None, "b's span must not nest under a's");
        assert_eq!(spans[0].depth, 0);
    }
}
