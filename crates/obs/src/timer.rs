//! Timing helpers: [`Timer`], [`time`], and the drop-to-histogram
//! [`ScopedTimer`] the bench binaries use instead of manual
//! `Instant::now()` pairs.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crate::Histogram;

/// A started stopwatch.
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Default for Timer {
    fn default() -> Self {
        Self::start()
    }
}

impl Timer {
    /// Start timing now.
    #[must_use]
    pub fn start() -> Self {
        Timer {
            start: Instant::now(),
        }
    }

    /// Elapsed wall-clock time.
    #[must_use]
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Elapsed time in whole nanoseconds (saturating).
    #[must_use]
    pub fn elapsed_ns(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }

    /// Elapsed time in fractional milliseconds.
    #[must_use]
    pub fn elapsed_ms(&self) -> f64 {
        self.start.elapsed().as_secs_f64() * 1e3
    }

    /// Restart the stopwatch, returning the lap's duration.
    pub fn lap(&mut self) -> Duration {
        let d = self.start.elapsed();
        self.start = Instant::now();
        d
    }
}

/// Run `f`, returning its result and how long it took.
pub fn time<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let t = Timer::start();
    let out = f();
    (out, t.elapsed())
}

/// Records its lifetime into a [`Histogram`] when dropped.
///
/// ```
/// let reg = td_obs::Registry::new();
/// {
///     let _t = td_obs::ScopedTimer::new(reg.histogram("stage.ns"));
///     // ... measured work ...
/// }
/// assert_eq!(reg.snapshot().histogram("stage.ns").unwrap().count, 1);
/// ```
pub struct ScopedTimer {
    hist: Arc<Histogram>,
    start: Instant,
}

impl ScopedTimer {
    /// Start a timer that will record into `hist` on drop.
    #[must_use]
    pub fn new(hist: Arc<Histogram>) -> Self {
        ScopedTimer {
            hist,
            start: Instant::now(),
        }
    }

    /// Start a timer recording into the named histogram of the
    /// [`crate::global`] registry on drop.
    #[must_use]
    pub fn global(name: &str) -> Self {
        Self::new(crate::global().histogram(name))
    }
}

impl Drop for ScopedTimer {
    fn drop(&mut self) {
        self.hist.record_duration(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    #[test]
    fn time_returns_value_and_duration() {
        let (v, d) = time(|| 21 * 2);
        assert_eq!(v, 42);
        assert!(d.as_nanos() > 0 || d.as_nanos() == 0); // non-negative by type
    }

    #[test]
    fn scoped_timer_records_on_drop() {
        let reg = Registry::new();
        {
            let _t = ScopedTimer::new(reg.histogram("work.ns"));
            std::hint::black_box((0..100).sum::<u64>());
        }
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("work.ns").unwrap().count, 1);
    }

    #[test]
    fn lap_restarts() {
        let mut t = Timer::start();
        let first = t.lap();
        let second = t.elapsed();
        assert!(second <= first + Duration::from_secs(1));
    }
}
