//! td-trace: request-scoped span trees with deterministic ids, a
//! generic bounded [`Ring`], a sharded per-worker [`TraceRing`], and a
//! bounded [`SlowQueryLog`] of the worst span trees since boot.
//!
//! The registry's [`crate::span!`] machinery answers "how long does
//! *stage X* take in aggregate"; it cannot answer "where did *this*
//! 40 ms `search_joinable` request go". td-trace fills that gap:
//!
//! * A [`Trace`] is one request's span tree. The serving layer starts
//!   it at admission with a [`TraceId`] derived deterministically from
//!   a server seed and the client's request id, then records explicit
//!   phases (queue wait, cache lookup, execute) through RAII
//!   [`ActiveSpan`] guards that may cross threads with the request.
//! * Library code deeper in the stack (index-component probes, rank
//!   merges) records into whatever trace is *attached* to the current
//!   thread via [`attach`] + [`probe`] — a no-op costing one
//!   thread-local read when no trace is active, so instrumentation can
//!   stay on permanently.
//! * Finished traces become immutable [`TraceTree`]s, collected in a
//!   [`TraceRing`] (lock-cheap: one shard per worker, one short mutex
//!   each, bounded count) and offered to a [`SlowQueryLog`] that keeps
//!   the N worst trees over a latency threshold in a deterministic
//!   order (duration descending, trace id ascending).
//!
//! ## Determinism
//!
//! Under [`TraceClock::Wall`] durations are wall-clock nanoseconds.
//! Under [`TraceClock::Logical`] every clock read ticks a per-trace
//! counter instead, so a request's span tree depends only on the
//! sequence of instrumentation events it executes — two identical
//! seeded runs produce byte-identical [`TraceTree::to_json`] output,
//! which is what the serving layer's `SlowQueries` determinism tests
//! pin.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LockResult, Mutex};
use std::time::Instant;

use crate::registry::{json_f64, json_str};

/// Recover the guard from a poisoned lock: trace state only ever holds
/// fully written records, and tracing must never take the process down.
fn relock<G>(r: LockResult<G>) -> G {
    r.unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The splitmix64 finalizer: a bijective avalanche mix on `u64`.
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A request's trace identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceId(pub u64);

impl TraceId {
    /// Derive a trace id from a server seed and a request id.
    ///
    /// The derivation is a bijection in `request_id` for any fixed
    /// `seed` (odd-constant multiply, xor, then the splitmix64
    /// finalizer — all invertible), so distinct request ids always get
    /// distinct trace ids, and the same seeded workload gets the same
    /// ids on every run.
    #[must_use]
    pub fn derive(seed: u64, request_id: u64) -> TraceId {
        TraceId(mix64(seed ^ request_id.wrapping_mul(0x9E37_79B9_7F4A_7C15)))
    }
}

/// Time source for a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceClock {
    /// Wall-clock nanoseconds since the trace started (production).
    Wall,
    /// A per-trace event counter: every read ticks once. Durations
    /// become "number of enclosed instrumentation events" — fully
    /// deterministic for a deterministic request, which is what the
    /// byte-identical trace tests rely on.
    Logical,
}

/// One node of a finished span tree.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceNode {
    /// Span name, e.g. `probe.exact_join`.
    pub name: String,
    /// Offset from the trace start (ns, or logical ticks).
    pub start_ns: u64,
    /// Span duration (ns, or logical ticks).
    pub dur_ns: u64,
    /// Child spans, in open order.
    pub children: Vec<TraceNode>,
}

impl TraceNode {
    /// End offset of this span.
    #[must_use]
    pub fn end_ns(&self) -> u64 {
        self.start_ns.saturating_add(self.dur_ns)
    }

    fn well_formed_within(&self, lo: u64, hi: u64) -> bool {
        self.start_ns >= lo
            && self.end_ns() <= hi
            && self
                .children
                .iter()
                .all(|c| c.well_formed_within(self.start_ns, self.end_ns()))
    }

    fn render_json(&self, out: &mut String) {
        out.push_str("{\"name\":");
        json_str(&self.name, out);
        out.push_str(&format!(
            ",\"start_ns\":{},\"dur_ns\":{},\"children\":[",
            self.start_ns, self.dur_ns
        ));
        for (i, c) in self.children.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            c.render_json(out);
        }
        out.push_str("]}");
    }
}

/// A finished, immutable request trace.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceTree {
    /// The trace id.
    pub trace_id: TraceId,
    /// Endpoint the request hit (e.g. `joinable`).
    pub endpoint: String,
    /// Pipeline epoch the request was admitted under.
    pub epoch: u64,
    /// Terminal status (`ok`, `deadline_exceeded`, …).
    pub status: String,
    /// Whether the result cache answered the request.
    pub cache_hit: bool,
    /// Total duration from trace start to finish.
    pub dur_ns: u64,
    /// Spans not recorded because the per-trace cap was reached.
    pub dropped: u64,
    /// Root spans, in open order.
    pub spans: Vec<TraceNode>,
}

impl TraceTree {
    /// True when every span lies within the trace bounds and every
    /// child lies within its parent — the structural invariant the
    /// concurrent integration tests assert.
    #[must_use]
    pub fn well_formed(&self) -> bool {
        self.spans
            .iter()
            .all(|s| s.well_formed_within(0, self.dur_ns))
    }

    /// Every span name in the tree, depth-first in open order.
    #[must_use]
    pub fn span_names(&self) -> Vec<&str> {
        fn walk<'a>(nodes: &'a [TraceNode], out: &mut Vec<&'a str>) {
            for n in nodes {
                out.push(&n.name);
                walk(&n.children, out);
            }
        }
        let mut out = Vec::new();
        walk(&self.spans, &mut out);
        out
    }

    /// Deterministic JSON rendering (fixed field order, hand-written so
    /// td-obs keeps zero dependencies).
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"trace_id\":");
        out.push_str(&self.trace_id.0.to_string());
        out.push_str(",\"endpoint\":");
        json_str(&self.endpoint, &mut out);
        out.push_str(&format!(",\"epoch\":{}", self.epoch));
        out.push_str(",\"status\":");
        json_str(&self.status, &mut out);
        out.push_str(&format!(
            ",\"cache_hit\":{},\"dur_ns\":{},\"dropped\":{},\"spans\":[",
            self.cache_hit, self.dur_ns, self.dropped
        ));
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            s.render_json(&mut out);
        }
        out.push_str("]}");
        out
    }
}

/// One in-progress span.
struct FlatSpan {
    name: String,
    parent: Option<usize>,
    start: u64,
    end: Option<u64>,
}

struct TraceState {
    spans: Vec<FlatSpan>,
    open: Vec<usize>,
    dropped: u64,
    endpoint: String,
    epoch: u64,
    cache_hit: bool,
    status: String,
}

struct TraceInner {
    id: TraceId,
    clock: TraceClock,
    started: Instant,
    tick: AtomicU64,
    limit: usize,
    state: Mutex<TraceState>,
}

/// A live request trace. Cloning is cheap (`Arc`); the serving layer
/// clones the handle into the admitted job so spans recorded on the
/// connection thread and the worker thread land in the same tree. A
/// request is handled by one thread at a time, so the inner mutex is
/// effectively uncontended.
#[derive(Clone)]
pub struct Trace {
    inner: Arc<TraceInner>,
}

impl std::fmt::Debug for Trace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Trace").field("id", &self.inner.id).finish()
    }
}

impl Trace {
    /// Start a trace. `max_spans` bounds memory: spans opened past the
    /// cap are counted in [`TraceTree::dropped`] instead of recorded.
    #[must_use]
    pub fn start(id: TraceId, clock: TraceClock, max_spans: usize) -> Trace {
        Trace {
            inner: Arc::new(TraceInner {
                id,
                clock,
                started: Instant::now(),
                tick: AtomicU64::new(0),
                limit: max_spans.max(1),
                state: Mutex::new(TraceState {
                    spans: Vec::new(),
                    open: Vec::new(),
                    dropped: 0,
                    endpoint: String::new(),
                    epoch: 0,
                    cache_hit: false,
                    status: String::from("ok"),
                }),
            }),
        }
    }

    /// The trace id.
    #[must_use]
    pub fn id(&self) -> TraceId {
        self.inner.id
    }

    /// Current offset from the trace start (ns, or one fresh logical
    /// tick).
    fn now_ns(&self) -> u64 {
        match self.inner.clock {
            TraceClock::Wall => {
                u64::try_from(self.inner.started.elapsed().as_nanos()).unwrap_or(u64::MAX)
            }
            TraceClock::Logical => self.inner.tick.fetch_add(1, Ordering::Relaxed) + 1,
        }
    }

    /// Record the endpoint name.
    pub fn set_endpoint(&self, endpoint: &str) {
        relock(self.inner.state.lock()).endpoint = endpoint.to_string();
    }

    /// Record the pipeline epoch the request was admitted under.
    pub fn set_epoch(&self, epoch: u64) {
        relock(self.inner.state.lock()).epoch = epoch;
    }

    /// Mark the request as answered from the result cache.
    pub fn set_cache_hit(&self, hit: bool) {
        relock(self.inner.state.lock()).cache_hit = hit;
    }

    /// Record the terminal status (`ok` is the default).
    pub fn set_status(&self, status: &str) {
        relock(self.inner.state.lock()).status = status.to_string();
    }

    /// Open a span; it closes when the returned guard drops. The guard
    /// may travel to another thread with the request (queue wait).
    #[must_use]
    pub fn open(&self, name: &str) -> ActiveSpan {
        let now = self.now_ns();
        let mut st = relock(self.inner.state.lock());
        if st.spans.len() >= self.inner.limit {
            st.dropped += 1;
            return ActiveSpan {
                trace: self.clone(),
                idx: None,
            };
        }
        let parent = st.open.last().copied();
        st.spans.push(FlatSpan {
            name: name.to_string(),
            parent,
            start: now,
            end: None,
        });
        let idx = st.spans.len() - 1;
        st.open.push(idx);
        ActiveSpan {
            trace: self.clone(),
            idx: Some(idx),
        }
    }

    fn close(&self, idx: usize) {
        let now = self.now_ns();
        let mut st = relock(self.inner.state.lock());
        if let Some(span) = st.spans.get_mut(idx) {
            if span.end.is_none() {
                span.end = Some(now);
            }
        }
        if let Some(pos) = st.open.iter().rposition(|&i| i == idx) {
            st.open.remove(pos);
        }
    }

    /// Freeze the trace into an immutable tree. Spans still open are
    /// closed at the finish instant. (The serving layer calls this once
    /// per request; calling again re-renders the same state.)
    #[must_use]
    pub fn finish(&self) -> TraceTree {
        let now = self.now_ns();
        let mut st = relock(self.inner.state.lock());
        for span in &mut st.spans {
            if span.end.is_none() {
                span.end = Some(now);
            }
        }
        st.open.clear();
        fn collect(spans: &[FlatSpan], parent: Option<usize>, finish: u64) -> Vec<TraceNode> {
            let mut out = Vec::new();
            for (i, s) in spans.iter().enumerate() {
                if s.parent == parent {
                    let end = s.end.unwrap_or(finish);
                    out.push(TraceNode {
                        name: s.name.clone(),
                        start_ns: s.start,
                        dur_ns: end.saturating_sub(s.start),
                        children: collect(spans, Some(i), finish),
                    });
                }
            }
            out
        }
        TraceTree {
            trace_id: self.inner.id,
            endpoint: st.endpoint.clone(),
            epoch: st.epoch,
            status: st.status.clone(),
            cache_hit: st.cache_hit,
            dur_ns: now,
            dropped: st.dropped,
            spans: collect(&st.spans, None, now),
        }
    }
}

/// RAII guard for one open span of a [`Trace`]; closes on drop. `Send`,
/// so the serving layer can open a `queue.wait` span on the connection
/// thread and close it on the worker that dequeues the job.
pub struct ActiveSpan {
    trace: Trace,
    idx: Option<usize>,
}

impl Drop for ActiveSpan {
    fn drop(&mut self) {
        if let Some(idx) = self.idx.take() {
            self.trace.close(idx);
        }
    }
}

thread_local! {
    /// The traces attached to this thread, innermost last.
    static CURRENT: RefCell<Vec<Trace>> = const { RefCell::new(Vec::new()) };
}

/// Attach a trace to the current thread until the returned guard drops.
/// While attached, [`probe`] calls on this thread record into it; this
/// is how instrumentation deep in the index components reaches the
/// request's trace without threading a handle through every signature.
#[must_use]
pub fn attach(trace: &Trace) -> AttachGuard {
    CURRENT.with(|c| c.borrow_mut().push(trace.clone()));
    AttachGuard { _priv: () }
}

/// Guard returned by [`attach`]; detaches on drop.
pub struct AttachGuard {
    _priv: (),
}

impl Drop for AttachGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| {
            c.borrow_mut().pop();
        });
    }
}

/// Open a span on the trace attached to this thread, if any. Costs one
/// thread-local read when no trace is attached, so probe-level
/// instrumentation stays on permanently.
#[must_use]
pub fn probe(name: &str) -> Option<ActiveSpan> {
    CURRENT
        .with(|c| c.borrow().last().cloned())
        .map(|t| t.open(name))
}

/// A generic bounded ring buffer (oldest evicted first) — the shape
/// shared by the span-record recorder and the per-worker trace rings.
pub struct Ring<T> {
    buf: Mutex<VecDeque<T>>,
    capacity: usize,
}

impl<T> Ring<T> {
    /// A ring holding at most `capacity` items.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        Ring {
            buf: Mutex::new(VecDeque::new()),
            capacity: capacity.max(1),
        }
    }

    /// Maximum retained items.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append, evicting the oldest item at capacity.
    pub fn push(&self, item: T) {
        let mut buf = relock(self.buf.lock());
        if buf.len() == self.capacity {
            buf.pop_front();
        }
        buf.push_back(item);
    }

    /// Number of retained items.
    #[must_use]
    pub fn len(&self) -> usize {
        relock(self.buf.lock()).len()
    }

    /// True when nothing is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop every retained item.
    pub fn clear(&self) {
        relock(self.buf.lock()).clear();
    }
}

impl<T: Clone> Ring<T> {
    /// The retained items, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<T> {
        relock(self.buf.lock()).iter().cloned().collect()
    }
}

/// Finished-trace storage: one bounded [`Ring`] per worker so the hot
/// path takes a short, almost-always-uncontended per-shard mutex, never
/// a global one. Memory is bounded by `shards × capacity ×` the
/// per-trace span cap.
pub struct TraceRing {
    shards: Vec<Ring<TraceTree>>,
}

impl TraceRing {
    /// A ring with `shards` shards of `capacity` traces each.
    #[must_use]
    pub fn new(shards: usize, capacity: usize) -> Self {
        TraceRing {
            shards: (0..shards.max(1)).map(|_| Ring::new(capacity)).collect(),
        }
    }

    /// Record a finished trace. `shard_hint` picks the shard (workers
    /// pass their index; other threads pass the trace id).
    pub fn record(&self, shard_hint: u64, tree: TraceTree) {
        let shard = (shard_hint % self.shards.len() as u64) as usize;
        // td-lint: allow(TD010) each shard is a Ring<T>, drop-oldest bounded by construction
        self.shards[shard].push(tree);
    }

    /// Total retained traces across shards.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(Ring::len).sum()
    }

    /// True when no trace is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every retained trace, sorted by trace id for deterministic
    /// cross-shard ordering.
    #[must_use]
    pub fn snapshot(&self) -> Vec<TraceTree> {
        let mut out: Vec<TraceTree> = self.shards.iter().flat_map(Ring::snapshot).collect();
        out.sort_by_key(|t| t.trace_id);
        out
    }
}

/// The N worst span trees since boot, over a latency threshold.
///
/// Ordering is deterministic: duration descending, trace id ascending —
/// so two identical seeded runs (under [`TraceClock::Logical`]) render
/// byte-identical slow-query reports.
pub struct SlowQueryLog {
    entries: Mutex<Vec<TraceTree>>,
    capacity: usize,
    threshold_ns: AtomicU64,
    observed: AtomicU64,
    admitted: AtomicU64,
}

impl SlowQueryLog {
    /// A log keeping at most `capacity` offenders at or over
    /// `threshold_ns` (a threshold of 0 admits every offered trace).
    #[must_use]
    pub fn new(capacity: usize, threshold_ns: u64) -> Self {
        SlowQueryLog {
            entries: Mutex::new(Vec::new()),
            capacity: capacity.max(1),
            threshold_ns: AtomicU64::new(threshold_ns),
            observed: AtomicU64::new(0),
            admitted: AtomicU64::new(0),
        }
    }

    /// Current latency threshold.
    #[must_use]
    pub fn threshold_ns(&self) -> u64 {
        self.threshold_ns.load(Ordering::Relaxed)
    }

    /// Change the latency threshold (existing entries are kept).
    pub fn set_threshold_ns(&self, t: u64) {
        self.threshold_ns.store(t, Ordering::Relaxed);
    }

    /// Traces offered so far.
    #[must_use]
    pub fn observed(&self) -> u64 {
        self.observed.load(Ordering::Relaxed)
    }

    /// Traces that crossed the threshold (whether or not still kept).
    #[must_use]
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Offer a finished trace; true if it crossed the threshold.
    pub fn offer(&self, tree: &TraceTree) -> bool {
        self.observed.fetch_add(1, Ordering::Relaxed);
        if tree.dur_ns < self.threshold_ns.load(Ordering::Relaxed) {
            return false;
        }
        self.admitted.fetch_add(1, Ordering::Relaxed);
        let mut entries = relock(self.entries.lock());
        // Descending by duration, ascending trace id on ties.
        let pos = entries.partition_point(|e| {
            e.dur_ns > tree.dur_ns || (e.dur_ns == tree.dur_ns && e.trace_id <= tree.trace_id)
        });
        if pos >= self.capacity {
            return true; // over threshold, but not among the worst N
        }
        entries.insert(pos, tree.clone());
        entries.truncate(self.capacity);
        true
    }

    /// The worst `n` traces (duration descending, trace id ascending).
    #[must_use]
    pub fn worst(&self, n: usize) -> Vec<TraceTree> {
        let entries = relock(self.entries.lock());
        entries.iter().take(n).cloned().collect()
    }

    /// Number of retained offenders.
    #[must_use]
    pub fn len(&self) -> usize {
        relock(self.entries.lock()).len()
    }

    /// True when no offender is retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Render the worst `n` traces as a deterministic JSON array.
    #[must_use]
    pub fn render_json(&self, n: usize) -> String {
        let mut out = String::from("[");
        for (i, t) in self.worst(n).iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&t.to_json());
        }
        out.push(']');
        out
    }
}

/// Render `(endpoint, count, p50, p95, p99)` latency rows as one JSON
/// object — shared by exporter call sites that need a deterministic
/// per-endpoint block without depending on serde.
#[must_use]
pub fn latency_rows_json(rows: &[(String, u64, f64, f64, f64)]) -> String {
    let mut out = String::from("{");
    for (i, (name, count, p50, p95, p99)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json_str(name, &mut out);
        out.push_str(&format!(
            ":{{\"count\":{count},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
            json_f64(*p50),
            json_f64(*p95),
            json_f64(*p99)
        ));
    }
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn logical_trace(id: u64) -> Trace {
        Trace::start(TraceId(id), TraceClock::Logical, 64)
    }

    #[test]
    fn trace_ids_are_deterministic_and_distinct() {
        let a = TraceId::derive(42, 1);
        let b = TraceId::derive(42, 1);
        assert_eq!(a, b);
        let mut seen = std::collections::BTreeSet::new();
        for id in 0..10_000u64 {
            assert!(seen.insert(TraceId::derive(42, id)), "collision at {id}");
        }
        assert_ne!(TraceId::derive(1, 7), TraceId::derive(2, 7));
    }

    #[test]
    fn logical_clock_trees_are_byte_identical_across_runs() {
        let run = || {
            let t = logical_trace(9);
            t.set_endpoint("keyword");
            {
                let _cache = t.open("cache.lookup");
            }
            {
                let _exec = t.open("execute");
                let _probe = t.open("probe.keyword");
            }
            t.finish().to_json()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn tree_nesting_and_bounds_are_well_formed() {
        let t = logical_trace(1);
        {
            let _outer = t.open("execute");
            {
                let _q = t.open("query.joinable");
                let _p = t.open("probe.exact_join");
            }
            let _r = t.open("rank.merge");
        }
        let tree = t.finish();
        assert!(tree.well_formed(), "{tree:?}");
        assert_eq!(
            tree.span_names(),
            vec![
                "execute",
                "query.joinable",
                "probe.exact_join",
                "rank.merge"
            ]
        );
        assert_eq!(tree.spans.len(), 1, "one root span");
        assert_eq!(tree.spans[0].children.len(), 2);
    }

    #[test]
    fn spans_cross_threads_with_the_guard() {
        let t = logical_trace(2);
        let queue_span = t.open("queue.wait");
        let t2 = t.clone();
        std::thread::spawn(move || {
            drop(queue_span);
            let _exec = t2.open("execute");
        })
        .join()
        .expect("worker thread");
        let tree = t.finish();
        assert_eq!(tree.span_names(), vec!["queue.wait", "execute"]);
        assert!(tree.well_formed());
        // queue.wait closed before execute opened, so both are roots.
        assert_eq!(tree.spans.len(), 2);
    }

    #[test]
    fn span_cap_counts_dropped() {
        let t = Trace::start(TraceId(3), TraceClock::Logical, 2);
        let _a = t.open("a");
        let _b = t.open("b");
        let _c = t.open("c");
        let tree = t.finish();
        assert_eq!(tree.spans.len(), 1); // b nests under a
        assert_eq!(tree.dropped, 1);
    }

    #[test]
    fn attach_and_probe_record_into_the_current_trace() {
        assert!(probe("orphan").is_none(), "no trace attached yet");
        let t = logical_trace(4);
        {
            let _g = attach(&t);
            let _p = probe("probe.tus");
        }
        assert!(probe("orphan").is_none(), "detached after guard drop");
        let tree = t.finish();
        assert_eq!(tree.span_names(), vec!["probe.tus"]);
    }

    #[test]
    fn wall_clock_trace_is_well_formed() {
        let t = Trace::start(TraceId(5), TraceClock::Wall, 64);
        {
            let _e = t.open("execute");
            let _p = t.open("probe.keyword");
            std::hint::black_box((0..1000u64).sum::<u64>());
        }
        let tree = t.finish();
        assert!(tree.well_formed(), "{tree:?}");
        assert!(tree.dur_ns > 0);
    }

    #[test]
    fn ring_is_bounded_and_fifo() {
        let r: Ring<u32> = Ring::new(2);
        r.push(1);
        r.push(2);
        r.push(3);
        assert_eq!(r.snapshot(), vec![2, 3]);
        assert_eq!(r.len(), 2);
        r.clear();
        assert!(r.is_empty());
    }

    #[test]
    fn trace_ring_shards_and_sorts_by_id() {
        let ring = TraceRing::new(4, 8);
        for id in [5u64, 1, 3] {
            let t = logical_trace(id);
            ring.record(id, t.finish());
        }
        let ids: Vec<u64> = ring.snapshot().iter().map(|t| t.trace_id.0).collect();
        assert_eq!(ids, vec![1, 3, 5]);
        assert_eq!(ring.len(), 3);
    }

    #[test]
    fn slow_log_keeps_worst_n_in_deterministic_order() {
        let log = SlowQueryLog::new(2, 10);
        let tree_with = |id: u64, dur: u64| {
            let t = logical_trace(id);
            let mut tree = t.finish();
            tree.dur_ns = dur;
            tree
        };
        assert!(!log.offer(&tree_with(1, 5)), "below threshold");
        assert!(log.offer(&tree_with(2, 50)));
        assert!(log.offer(&tree_with(3, 100)));
        assert!(log.offer(&tree_with(4, 75)));
        let worst = log.worst(10);
        let got: Vec<(u64, u64)> = worst.iter().map(|t| (t.dur_ns, t.trace_id.0)).collect();
        assert_eq!(got, vec![(100, 3), (75, 4)]);
        assert_eq!(log.observed(), 4);
        assert_eq!(log.admitted(), 3);
        // Equal durations tie-break by ascending trace id.
        let log = SlowQueryLog::new(3, 0);
        log.offer(&tree_with(9, 40));
        log.offer(&tree_with(7, 40));
        let got: Vec<u64> = log.worst(3).iter().map(|t| t.trace_id.0).collect();
        assert_eq!(got, vec![7, 9]);
    }

    #[test]
    fn trace_json_is_deterministic_and_parseable_shape() {
        let t = logical_trace(6);
        t.set_endpoint("joinable");
        t.set_epoch(2);
        {
            let _e = t.open("execute");
        }
        let json = t.finish().to_json();
        assert!(json.starts_with("{\"trace_id\":"));
        assert!(json.contains("\"endpoint\":\"joinable\""));
        assert!(json.contains("\"epoch\":2"));
        assert!(json.contains("\"spans\":[{\"name\":\"execute\""));
    }
}
