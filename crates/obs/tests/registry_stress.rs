//! Integration tests for the td-obs registry: exactness under thread
//! contention, quantile ordering, and (via proptest) that the hand-rolled
//! JSON exporter always emits something the workspace `serde_json` parses
//! back to the same numbers.

use proptest::prelude::*;
use serde::{content_get, Content};
use std::sync::Arc;
use std::thread;
use td_obs::Registry;

const THREADS: usize = 8;
const OPS: usize = 10_000;

#[test]
fn counters_are_exact_under_contention() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                // Every thread hits one shared counter, one per-thread
                // counter, and one shared histogram, 10k times each.
                let shared = reg.counter("stress.shared");
                let own = reg.counter(&format!("stress.thread_{t}"));
                let hist = reg.histogram("stress.latency");
                for i in 0..OPS {
                    shared.inc();
                    own.add(2);
                    hist.record((i % 1_000) as u64 + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }

    let snap = reg.snapshot();
    assert_eq!(snap.counter("stress.shared"), Some((THREADS * OPS) as u64));
    for t in 0..THREADS {
        assert_eq!(
            snap.counter(&format!("stress.thread_{t}")),
            Some(2 * OPS as u64),
            "per-thread counter {t}"
        );
    }
    let h = snap
        .histogram("stress.latency")
        .expect("histogram registered");
    assert_eq!(h.count, (THREADS * OPS) as u64);
    // Sum of 1..=1000 repeated 10 times per thread, exactly.
    let per_thread: u64 = (1..=1_000u64).sum::<u64>() * (OPS as u64 / 1_000);
    assert_eq!(h.sum, per_thread * THREADS as u64);
    assert_eq!(h.min, 1);
    assert_eq!(h.max, 1_000);
}

#[test]
fn gauges_settle_under_contention() {
    let reg = Arc::new(Registry::new());
    let handles: Vec<_> = (0..THREADS)
        .map(|t| {
            let reg = Arc::clone(&reg);
            thread::spawn(move || {
                let g = reg.gauge("stress.level");
                for i in 0..OPS {
                    g.set((t * OPS + i) as f64);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Last-writer-wins: the final value is one of the written values.
    let v = reg.snapshot().gauge("stress.level").unwrap();
    assert!(v >= 0.0 && v < (THREADS * OPS) as f64);
    assert_eq!(v.fract(), 0.0);
}

#[test]
fn histogram_quantiles_are_monotone() {
    let reg = Registry::new();
    let h = reg.histogram("mono");
    // A heavy-tailed stream exercising many buckets.
    for i in 1..=10_000u64 {
        h.record(i * i % 65_536 + 1);
    }
    let s = h.snapshot();
    assert!(s.min as f64 <= s.p50, "min {} p50 {}", s.min, s.p50);
    assert!(s.p50 <= s.p95, "p50 {} p95 {}", s.p50, s.p95);
    assert!(s.p95 <= s.p99, "p95 {} p99 {}", s.p95, s.p99);
    assert!(s.p99 <= s.max as f64, "p99 {} max {}", s.p99, s.max);
    // Quantile estimates stay within the recorded range even at the edges.
    for q in [0.0, 0.001, 0.25, 0.5, 0.75, 0.999, 1.0] {
        let v = h.quantile(q);
        assert!(
            v >= s.min as f64 && v <= s.max as f64,
            "q{q} = {v} outside [{}, {}]",
            s.min,
            s.max
        );
    }
}

fn lookup<'a>(root: &'a Content, section: &str, name: &str) -> &'a Content {
    let m = root.as_map().expect("root object");
    let sec = content_get(m, section).expect("section present");
    content_get(sec.as_map().expect("section object"), name).expect("entry present")
}

fn as_u64(c: &Content) -> u64 {
    match c {
        Content::I64(v) => u64::try_from(*v).expect("non-negative"),
        Content::U64(v) => *v,
        other => panic!("expected integer, got {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The hand-written exporter vs the workspace JSON parser: every
    /// registry state (odd metric names included) must round-trip with
    /// counters and histogram counts intact.
    #[test]
    fn json_export_round_trips_through_serde_json(
        names in prop::collection::hash_set("[a-zA-Z0-9_.\" \\\\-]{1,16}", 1..8),
        counts in prop::collection::vec(0u64..50_000, 8..9),
        samples in prop::collection::vec(1u64..1_000_000, 0..64),
    ) {
        let reg = Registry::new();
        for (i, name) in names.iter().enumerate() {
            let c = reg.counter(name);
            c.add(counts[i % counts.len()]);
            let g = reg.gauge(name);
            g.set(counts[(i + 1) % counts.len()] as f64 / 3.0);
            let h = reg.histogram(name);
            for &s in &samples {
                h.record(s);
            }
        }

        let text = reg.export_json();
        let parsed: serde_json::Value =
            serde_json::from_str(&text).expect("exporter emits valid JSON");
        let snap = reg.snapshot();
        for name in &names {
            prop_assert_eq!(
                as_u64(lookup(&parsed, "counters", name)),
                snap.counter(name).unwrap()
            );
            let hist = lookup(&parsed, "histograms", name);
            let m = hist.as_map().expect("histogram object");
            prop_assert_eq!(
                as_u64(content_get(m, "count").expect("count")),
                samples.len() as u64
            );
            if !samples.is_empty() {
                prop_assert_eq!(
                    as_u64(content_get(m, "min").expect("min")),
                    *samples.iter().min().unwrap()
                );
                prop_assert_eq!(
                    as_u64(content_get(m, "max").expect("max")),
                    *samples.iter().max().unwrap()
                );
            }
        }
    }
}
