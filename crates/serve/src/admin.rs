//! The td-trace layer of the server and the admin observability plane's
//! data plumbing: per-request trace creation, finished-trace recording
//! (ring + slow-query log + SLO error budget), and the conversion from
//! `td_obs` span trees to the wire's [`TraceJson`].

use std::sync::atomic::{AtomicU64, Ordering};

use td_obs::trace::{SlowQueryLog, Trace, TraceClock, TraceId, TraceNode, TraceRing, TraceTree};

use crate::protocol::{SloStats, SpanNodeJson, TraceJson};

/// Tracing and admin-plane parameters.
#[derive(Debug, Clone)]
pub struct TraceConfig {
    /// Master switch. Off: no traces are created, `SlowQueries` answers
    /// empty, and the request path pays only an `Option` check.
    pub enabled: bool,
    /// Seed for [`TraceId::derive`]: trace ids are a deterministic
    /// function of `(seed, envelope id)`, so a seeded workload replayed
    /// against a same-seeded server reproduces its trace ids exactly.
    pub seed: u64,
    /// Trace with a per-trace logical clock instead of wall time. Span
    /// durations become deterministic event counts — the mode the
    /// byte-identical `SlowQueries` tests run the server in. Production
    /// keeps this off.
    pub logical_clock: bool,
    /// Per-trace span cap; spans past it are counted, not recorded.
    pub max_spans: usize,
    /// Finished traces retained per worker shard.
    pub ring_capacity: usize,
    /// Worst span trees retained since boot.
    pub slow_capacity: usize,
    /// Latency threshold for the slow-query log (same unit as trace
    /// durations: nanoseconds, or ticks under the logical clock; `0`
    /// admits every trace).
    pub slow_threshold_ns: u64,
    /// SLO latency objective in *wall* nanoseconds (always wall time,
    /// even when tracing logically).
    pub slo_threshold_ns: u64,
    /// Allowed SLO violation fraction (error budget), e.g. `0.01`.
    pub slo_budget: f64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            enabled: true,
            seed: 0x7D15_7ACE,
            logical_clock: false,
            max_spans: 192,
            ring_capacity: 64,
            slow_capacity: 16,
            slow_threshold_ns: 50_000_000, // 50 ms
            slo_threshold_ns: 100_000_000, // 100 ms
            slo_budget: 0.01,
        }
    }
}

/// Per-server trace state: the sharded ring of finished traces, the
/// slow-query log, and the SLO error-budget counters. One instance per
/// [`crate::Server`], so concurrent servers in one process (tests,
/// benches) never share trace state the way they share the global
/// metrics registry.
pub(crate) struct TraceLayer {
    pub(crate) cfg: TraceConfig,
    pub(crate) ring: TraceRing,
    pub(crate) slow: SlowQueryLog,
    slo_total: AtomicU64,
    slo_violations: AtomicU64,
}

impl TraceLayer {
    pub(crate) fn new(cfg: TraceConfig, workers: usize) -> Self {
        TraceLayer {
            ring: TraceRing::new(workers.max(1), cfg.ring_capacity),
            slow: SlowQueryLog::new(cfg.slow_capacity, cfg.slow_threshold_ns),
            slo_total: AtomicU64::new(0),
            slo_violations: AtomicU64::new(0),
            cfg,
        }
    }

    /// Start the trace for one admitted request.
    pub(crate) fn start(&self, request_id: u64) -> Trace {
        let clock = if self.cfg.logical_clock {
            TraceClock::Logical
        } else {
            TraceClock::Wall
        };
        Trace::start(
            TraceId::derive(self.cfg.seed, request_id),
            clock,
            self.cfg.max_spans,
        )
    }

    /// Finish one request's trace: freeze it, retain it in the worker
    /// shard's ring, offer it to the slow-query log, and charge the SLO
    /// budget with the request's *wall* latency (`real_elapsed_ns` — the
    /// admission timer, independent of the trace clock mode).
    pub(crate) fn finish(&self, shard_hint: u64, trace: &Trace, real_elapsed_ns: u64) {
        let tree = trace.finish();
        self.slow.offer(&tree);
        self.ring.record(shard_hint, tree);
        self.slo_total.fetch_add(1, Ordering::Relaxed);
        if real_elapsed_ns > self.cfg.slo_threshold_ns {
            self.slo_violations.fetch_add(1, Ordering::Relaxed);
            td_obs::global().counter("serve.slo.violations").inc();
        }
        td_obs::global().counter("serve.slo.total").inc();
    }

    /// Point-in-time SLO error-budget accounting.
    pub(crate) fn slo_stats(&self) -> SloStats {
        let total = self.slo_total.load(Ordering::Relaxed);
        let violations = self.slo_violations.load(Ordering::Relaxed);
        let budget = self.cfg.slo_budget;
        // Remaining budget: 1 − (observed violation rate / allowed rate),
        // clamped into [0, 1]. No traffic leaves the budget untouched.
        let budget_remaining = if total == 0 || budget <= 0.0 {
            1.0
        } else {
            (1.0 - (violations as f64 / total as f64) / budget).clamp(0.0, 1.0)
        };
        SloStats {
            threshold_ns: self.cfg.slo_threshold_ns,
            total,
            violations,
            budget,
            budget_remaining,
        }
    }
}

fn node_to_json(node: &TraceNode) -> SpanNodeJson {
    SpanNodeJson {
        name: node.name.clone(),
        start_ns: node.start_ns,
        dur_ns: node.dur_ns,
        children: node.children.iter().map(node_to_json).collect(),
    }
}

/// Convert a finished obs trace into its wire representation. Field
/// order is fixed by the struct declarations, so serializing the result
/// is as deterministic as the tree itself.
pub(crate) fn tree_to_json(tree: &TraceTree) -> TraceJson {
    TraceJson {
        trace_id: tree.trace_id.0,
        endpoint: tree.endpoint.clone(),
        epoch: tree.epoch,
        status: tree.status.clone(),
        cache_hit: tree.cache_hit,
        dur_ns: tree.dur_ns,
        dropped: tree.dropped,
        spans: tree.spans.iter().map(node_to_json).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn layer_records_and_orders_slow_queries() {
        let layer = TraceLayer::new(
            TraceConfig {
                logical_clock: true,
                slow_threshold_ns: 0,
                ..TraceConfig::default()
            },
            2,
        );
        for (id, spans) in [(1u64, 1usize), (2, 3), (3, 2)] {
            let trace = layer.start(id);
            trace.set_endpoint("keyword");
            for s in 0..spans {
                let _g = trace.open(if s == 0 { "execute" } else { "probe.keyword" });
            }
            layer.finish(id, &trace, 5);
        }
        assert_eq!(layer.ring.len(), 3);
        // Logical durations grow with span count: envelope 2 is slowest.
        let worst = layer.slow.worst(3);
        assert_eq!(worst[0].trace_id, TraceId::derive(layer.cfg.seed, 2));
        assert!(worst.iter().all(TraceTree::well_formed));
        let slo = layer.slo_stats();
        assert_eq!(slo.total, 3);
        assert_eq!(slo.violations, 0, "5ns wall latency is under 100ms");
        assert_eq!(slo.budget_remaining, 1.0);
    }

    #[test]
    fn slo_budget_drains_with_violations() {
        let layer = TraceLayer::new(
            TraceConfig {
                slo_threshold_ns: 10,
                slo_budget: 0.5,
                ..TraceConfig::default()
            },
            1,
        );
        for (id, elapsed) in [(1u64, 5u64), (2, 50), (3, 5), (4, 50)] {
            let trace = layer.start(id);
            layer.finish(0, &trace, elapsed);
        }
        let slo = layer.slo_stats();
        assert_eq!((slo.total, slo.violations), (4, 2));
        // Violation rate 0.5 against a 0.5 budget: exactly exhausted.
        assert_eq!(slo.budget_remaining, 0.0);
    }

    #[test]
    fn tree_conversion_preserves_structure() {
        let layer = TraceLayer::new(
            TraceConfig {
                logical_clock: true,
                ..TraceConfig::default()
            },
            1,
        );
        let trace = layer.start(7);
        trace.set_endpoint("joinable");
        trace.set_epoch(3);
        {
            let _e = trace.open("execute");
            let _p = trace.open("probe.exact_join");
        }
        let tree = trace.finish();
        let json = tree_to_json(&tree);
        assert_eq!(json.trace_id, tree.trace_id.0);
        assert_eq!(json.endpoint, "joinable");
        assert_eq!(json.epoch, 3);
        assert_eq!(json.spans.len(), 1);
        assert_eq!(json.spans[0].children[0].name, "probe.exact_join");
        assert_eq!(json.spans[0].dur_ns, tree.spans[0].dur_ns);
    }
}
